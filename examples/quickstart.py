"""Quickstart: run a GEMM on the simulated MTIA accelerator.

Builds one accelerator card (the 8x8 PE grid of Table I), runs a
fully-connected operator through the Section 4 mapping on a 4x4
sub-grid, verifies the result against numpy, and prints what the
hardware did.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Accelerator, MTIA_V1
from repro.kernels.fc import run_fc


def main():
    print(f"chip: {MTIA_V1.name} — {MTIA_V1.num_pes} PEs, "
          f"{MTIA_V1.gemm_tops('int8'):.1f} INT8 TOPS, "
          f"{MTIA_V1.dram_gbs():.0f} GB/s DRAM")

    acc = Accelerator()
    m, k, n = 512, 1024, 256

    rng = np.random.default_rng(0)
    a = rng.integers(-128, 128, (m, k), dtype=np.int8)
    b_t = rng.integers(-128, 128, (n, k), dtype=np.int8)

    print(f"\nrunning FC {m}x{k}x{n} (INT8) on a 4x4 sub-grid, "
          "k split over 2 PEs per row...")
    result = run_fc(acc, a, b_t, subgrid=acc.subgrid((0, 0), 4, 4),
                    k_split=2)

    reference = b_t.astype(np.int32) @ a.astype(np.int32).T
    assert np.array_equal(result.c_t, reference), "mismatch vs numpy!"
    print("result verified bit-exact against numpy")

    cycles = result.cycles
    print(f"\ncycles: {cycles:,.0f}  "
          f"({acc.seconds(cycles) * 1e6:.1f} us at 800 MHz)")
    print(f"achieved: {result.tops(MTIA_V1.frequency_ghz):.2f} TOPS "
          f"(sub-grid peak {MTIA_V1.gemm_tops('int8') / 4:.1f})")

    stats = acc.collect_stats()
    operands = a.nbytes + b_t.nbytes
    print(f"\nDRAM bytes read: {stats['dram.read_bytes']:,.0f} "
          f"(operands are {operands:,} B — multicast coalescing keeps "
          "the ratio near 1)")
    print(f"reduction-network transfers: {stats['rednet.transfers']:.0f}")
    print(f"MACs executed: {stats['dpe.macs']:,.0f}")


if __name__ == "__main__":
    main()
