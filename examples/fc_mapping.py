"""Section 4 walkthrough: how an FC operator maps onto the PE grid.

Reproduces the paper's Figure 7 example — a 512(m) x 1024(k) x 256(n)
FC distributed over a 4x4 sub-grid — and narrates each mechanism as the
simulator exercises it: work distribution, row/column multicast,
dual-core producer/consumer decoupling through circular buffers, and
west-to-east accumulation over the reduction network.

Run:  python examples/fc_mapping.py
"""

import numpy as np

from repro import Accelerator
from repro.kernels.fc import plan_fc, run_fc


def main():
    acc = Accelerator()
    sub = acc.subgrid((0, 0), 4, 4)
    m, k, n = 512, 1024, 256

    plan = plan_fc(sub, m, k, n, k_split=2)
    print("=== Figure 7: work distribution ===")
    print(f"m={m} split over {sub.rows} rows -> {plan.m_per_row} rows/PE")
    print(f"k={k} split over {plan.k_split} PEs/row -> "
          f"{plan.k_per_pe} deep per PE (reduction chain)")
    print(f"n={n} split over {plan.n_split} column groups -> "
          f"{plan.n_per_group} per group")
    cb_a, cb_b, cb_c = plan.cb_bytes()
    print(f"per-PE circular buffers: CB_A={cb_a} B (one 64-row A stripe), "
          f"CB_B={cb_b} B (whole B^T slice), CB_C={cb_c} B (64x64 block)")

    print("\nper-PE assignments (row, col) -> m x n x k ranges:")
    for work in plan.work_items[:4]:
        print(f"  {work.coord}: m[{work.m_begin}:{work.m_end}] "
              f"n[{work.n_begin}:{work.n_end}] k[{work.k_begin}:{work.k_end}]"
              f"  chain {work.chain_index + 1}/{work.chain_length}")
    print("  ... (12 more)")

    print("\n=== executing on the simulator ===")
    rng = np.random.default_rng(1)
    a = rng.integers(-128, 128, (m, k), dtype=np.int8)
    b_t = rng.integers(-128, 128, (n, k), dtype=np.int8)
    result = run_fc(acc, a, b_t, subgrid=sub, k_split=2)
    ref = b_t.astype(np.int32) @ a.astype(np.int32).T
    assert np.array_equal(result.c_t, ref)
    print(f"verified bit-exact; {result.cycles:,.0f} cycles")

    print("\n=== what the provisioned features did ===")
    stats = acc.collect_stats()
    operand_bytes = a.nbytes + b_t.nbytes
    read = stats["dram.read_bytes"]
    print(f"multicast: DRAM read {read:,.0f} B for {operand_bytes:,} B of "
          f"operands ({read / operand_bytes:.2f}x — without coalescing the "
          "4x4 grid would read each operand 2-4x)")
    red_bytes = stats["rednet.bytes"]
    print(f"reduction network: {stats['rednet.transfers']:.0f} transfers, "
          f"{red_bytes:,.0f} B of partial sums that never touched the NoC")
    hits = stats["dpe.operand_cache_hits"]
    misses = stats["dpe.operand_cache_misses"]
    print(f"DPE operand cache: {hits:.0f} hits / {misses:.0f} misses "
          "(each 32x32 block reused by the 2x2 accumulator arrangement)")

    pe = acc.grid.pe(0, 0)
    print(f"\nPE(0,0) DPE busy cycles: {pe.dpe_unit.stats['busy_cycles']:,.0f}"
          f" of {result.cycles:,.0f} "
          f"({100 * pe.dpe_unit.stats['busy_cycles'] / result.cycles:.0f}% "
          "occupancy)")
    print(f"PE(0,0) FI stall cycles waiting on CB space: "
          f"{pe.fi_unit.stats.get('stall_cycles', 0):,.0f} "
          "(producer running ahead of the consumer)")


if __name__ == "__main__":
    main()
