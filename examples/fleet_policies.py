"""Routing policies under a flash crowd: who tames the tail?

Round-robin is provably near-optimal when every replica is identical —
so this experiment puts it where real fleets live: a heterogeneous
tier (two fast replicas, two at 1.6x their latency, as after a partial
hardware refresh) hit by a flash-crowd trace. Load-aware policies
(least-loaded, power-of-two, hedging) should keep the slow replicas'
queues from dominating the fleet p99; blind round-robin should not.

The numbers this prints are the source of the policy table in
EXPERIMENTS.md ("Fleet-scale serving" section).

Run:  python examples/fleet_policies.py
"""

import numpy as np

from repro.serving import (FleetConfig, ROUTING_POLICIES, ReplicaSpec,
                           RouterConfig, TabularLatencyModel,
                           plan_fleet_capacity, simulate_fleet,
                           trace_preset)
from repro.serving.resilience import ResilienceConfig

BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256)
FAST_US = (60.0, 65.0, 72.0, 85.0, 110.0, 160.0, 260.0, 460.0, 860.0)

FAST = TabularLatencyModel(batches=BATCHES, latency_us=FAST_US)
SLOW = TabularLatencyModel(batches=BATCHES,
                           latency_us=tuple(1.6 * v for v in FAST_US))

SEEDS = (0, 1, 2)
SLA_US = 2_000.0


def heterogeneous_fleet(policy, seed):
    # two fast + two slow replicas across 2 racks / 2 power domains
    specs = tuple(ReplicaSpec(replica=i, rack=i // 2, power_domain=i % 2)
                  for i in range(4))
    return FleetConfig(
        replicas=specs,
        router=RouterConfig(policy=policy, route_latency_us=10.0,
                            seed=seed, hedge_backlog_us=18.0,
                            hedge_delay_us=200.0),
        resilience=ResilienceConfig(deadline_us=8 * SLA_US, max_retries=1,
                                    shed_queue_depth=512),
        racks=2, power_domains=2, seed=seed)


def main():
    from dataclasses import replace
    trace = replace(trace_preset("flash_crowd", target_qps=700_000.0),
                    duration_us=80_000.0)
    models = [FAST, FAST, SLOW, SLOW]

    print("fleet: 2 fast + 2 slow (1.6x) replicas; "
          f"trace: flash_crowd @ {trace.base_qps:,.0f} QPS base, "
          f"{trace.duration_us / 1e3:.0f} ms; seeds: {SEEDS}\n")
    print(f"{'policy':<16}{'p50 us':>9}{'p99 us':>9}{'avail':>9}"
          f"{'hedged':>8}")
    for policy in ROUTING_POLICIES:
        p50s, p99s, avails, hedged = [], [], [], []
        for seed in SEEDS:
            report = simulate_fleet(
                models, trace.arrivals(seed),
                heterogeneous_fleet(policy, seed),
                collect_telemetry=False)
            p50s.append(report.p50_us)
            p99s.append(report.p99_us)
            avails.append(report.availability)
            hedged.append(report.hedged_requests)
        print(f"{policy:<16}{np.mean(p50s):>9.0f}{np.mean(p99s):>9.0f}"
              f"{np.mean(avails):>9.4f}{np.mean(hedged):>8.0f}")

    print("\ncapacity: minimum fast-replica count for the same trace, "
          f"p99 <= {SLA_US:.0f} us at 99.9% availability")
    for policy in ("round_robin", "power_of_two"):
        plan = plan_fleet_capacity(FAST, trace, sla_us=SLA_US,
                                   policy=policy)
        probes = ", ".join(f"{p['replicas']}r:{'ok' if p['ok'] else 'x'}"
                           for p in plan.to_dict()["probes"])
        print(f"  {policy:<16} -> {plan.replicas} replicas "
              f"(p99 {plan.p99_us:.0f} us, avail {plan.availability:.4f}; "
              f"probes: {probes})")


if __name__ == "__main__":
    main()
