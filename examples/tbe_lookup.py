"""The sparse path: TableBatchedEmbedding on the cycle-level simulator.

Runs a TBE operator (the dominant memory consumer in DLRMs) across the
full 64-PE grid and sweeps the software-pipelining depth — the knob
behind the paper's observation that the production kernel reached only
10-20 % of memory bandwidth while hand-tuned kernels exceeded 60 % of
roofline (Section 6.1).

Run:  python examples/tbe_lookup.py
"""

import numpy as np

from repro import Accelerator, MTIA_V1
from repro.kernels.tbe import (TBEConfig, generate_indices, generate_tables,
                               pooled_reference, run_tbe)


def main():
    config = TBEConfig(num_tables=8, rows_per_table=50_000,
                       embedding_dim=128, pooling_factor=32, batch_size=16)
    print(f"TBE operator: {config.num_tables} tables x "
          f"{config.rows_per_table:,} rows x {config.embedding_dim} B rows, "
          f"pooling {config.pooling_factor}, batch {config.batch_size}")
    print(f"gather volume: {config.lookup_bytes / 1e6:.1f} MB useful bytes "
          f"({config.total_lookups:,} row lookups)\n")

    # Correctness first, on a small instance.
    small = TBEConfig(num_tables=4, rows_per_table=1000, embedding_dim=64,
                      pooling_factor=8, batch_size=16)
    acc = Accelerator()
    tables = generate_tables(small)
    indices = generate_indices(small)
    result = run_tbe(acc, small, tables, indices,
                     subgrid=acc.subgrid((0, 0), 2, 2))
    reference = pooled_reference(tables, indices, small.scale)
    assert np.allclose(result.output, reference, atol=1e-3)
    print("small-instance output verified against numpy\n")

    print(f"{'outstanding rows/PE':>20}{'GB/s':>8}{'% of DRAM peak':>16}")
    peak = MTIA_V1.dram_gbs()
    for depth in (1, 2, 4, 8, 16):
        acc = Accelerator()
        result = run_tbe(acc, config, subgrid=acc.subgrid(),
                         prefetch_rows=depth)
        gbs = result.gbs(MTIA_V1.frequency_ghz)
        print(f"{depth:>20}{gbs:>8.1f}{100 * gbs / peak:>15.0f}%")

    print("\nshallow pipelining = the paper's production-kernel regime "
          "(10-20%);")
    print("deep pipelining = the hand-tuned RTL-validation regime "
          "(>60% of roofline).")


if __name__ == "__main__":
    main()
