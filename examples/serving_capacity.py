"""Fleet sizing: the TCO argument in numbers.

The paper's Motivation is that perf/TCO — dominated by power — decides
what serves recommendation models in the datacenter. This example runs
the request-level serving simulator (Poisson arrivals, batching window,
latency SLA) over the analytical platform models and sizes a fleet for
a target aggregate QPS on each platform.

Run:  python examples/serving_capacity.py
"""

from repro.models.configs import MODEL_ZOO
from repro.serving import BatchingConfig, plan_capacity, simulate_serving
from repro.serving.simulator import BatchLatencyModel
from repro.eval.machines import MACHINES


def main():
    model = MODEL_ZOO["LC2"]
    sla_us = 2_000.0
    target_qps = 1_000_000

    print(f"model: {model.name}; SLA: p99 <= {sla_us:.0f} us; "
          f"target: {target_qps:,} QPS aggregate\n")

    print("single-card behaviour on MTIA under increasing load:")
    latency = BatchLatencyModel(model, MACHINES["mtia"])
    batching = BatchingConfig(max_batch=128, max_wait_us=300)
    print(f"{'QPS':>10}{'p50 us':>10}{'p99 us':>10}{'mean batch':>12}"
          f"{'busy':>7}")
    for qps in (2_000, 10_000, 30_000, 60_000):
        report = simulate_serving(latency, qps, batching,
                                  num_requests=4000)
        print(f"{qps:>10,}{report.p50_us:>10.0f}{report.p99_us:>10.0f}"
              f"{report.mean_batch:>12.1f}{report.busy_fraction:>7.2f}")

    print("\nfleet plans per platform:")
    plans = plan_capacity(model, target_qps=target_qps, sla_us=sla_us,
                          batching=batching)
    print(f"{'platform':<22}{'cards':>7}{'QPS/card':>10}{'fleet kW':>10}"
          f"{'QPS/W':>8}")
    for plan in plans.values():
        print(f"{plan.platform:<22}{plan.cards:>7}{plan.card_qps:>10.0f}"
              f"{plan.total_watts / 1000:>10.1f}"
              f"{plan.qps_per_watt:>8.0f}")

    mtia, gpu = plans["mtia"], plans["gpu"]
    print(f"\nthe headline: serving this model costs "
          f"{gpu.total_watts / mtia.total_watts:.1f}x more provisioned "
          "power on the GPU fleet than on MTIA.")


if __name__ == "__main__":
    main()
