"""The compiler stack: graph passes and the KNYFE kernel DSL.

Walks the paper's Section 5 software stack top to bottom on a real
model: FX-like graph capture, EB->TBE merging, epilogue fusion, SRAM
tensor placement, multi-card partitioning, and finally a KNYFE-compiled
fused kernel running on the cycle-level simulator.

Run:  python examples/compiler_pipeline.py
"""

import numpy as np

from repro import Accelerator
from repro.compiler.fusion import fuse_graph
from repro.compiler.knyfe import KernelSpec, compile_kernel
from repro.compiler.partitioner import partition_by_memory
from repro.compiler.placement import place_tensors
from repro.config import MTIA_V1
from repro.models.configs import MODEL_ZOO
from repro.models.dlrm import build_dlrm_graph, operator_census


def main():
    print("=== graph passes on MC1 (batch 64) ===")
    graph = build_dlrm_graph(MODEL_ZOO["MC1"], 64)
    before = operator_census(graph)
    graph, report = fuse_graph(graph)
    after = operator_census(graph)
    print(f"before fusion: {before['total']} ops "
          f"({before['embedding_bag']} EmbeddingBag)")
    print(f"after fusion:  {after['total']} ops "
          f"({report.tbe_created} TBE operators absorb "
          f"{report.eb_merged} EBs; {report.epilogues_fused} activation "
          "epilogues folded into their GEMMs)")

    placement = place_tensors(graph, MTIA_V1.sram.capacity_bytes)
    print(f"placement: peak SRAM residency "
          f"{placement.sram_peak_bytes / 1e6:.1f} MB of "
          f"{MTIA_V1.sram.capacity_bytes / 1e6:.0f} MB; "
          f"{len(placement.spilled)} tensors spilled; "
          f"{placement.sram_hit_fraction(graph) * 100:.0f}% of activation "
          "traffic stays on-chip")

    print("\n=== multi-card partitioning (HC, 725 GB) ===")
    hc = build_dlrm_graph(MODEL_ZOO["HC"], 4)
    partitions = partition_by_memory(hc, card_capacity_bytes=32 * 10 ** 9)
    print(f"{len(partitions)} cards needed; card 0 owns the dense pipeline "
          f"plus {len(partitions[0].weight_nodes)} weights "
          f"({partitions[0].weight_bytes / 1e9:.1f} GB)")

    print("\n=== KNYFE: a fused dequantise+tanh kernel ===")
    spec = (KernelSpec("dq_tanh")
            .tile(4096)
            .load("x", dtype="int8")
            .dequantize(scale=0.05)
            .apply("tanh")
            .store("y"))
    kernel = compile_kernel(spec)
    print("stages:", " -> ".join(p.stage.kind for p in kernel.plans))
    print(f"generated {len(kernel.cb_sizes)} circular buffers: "
          f"{kernel.cb_sizes}")

    rng = np.random.default_rng(0)
    q = rng.integers(-128, 128, 32768, dtype=np.int8)
    acc = Accelerator()
    out = kernel.run(acc, {"x": q}, subgrid=acc.subgrid((0, 0), 4, 4))
    expected = np.tanh(q.astype(np.float32) * 0.05)
    err = float(np.max(np.abs(out["y"] - expected)))
    print(f"ran on a 4x4 sub-grid in {kernel.cycles:,.0f} cycles; "
          f"max error vs numpy {err:.2e} (LUT interpolation)")


if __name__ == "__main__":
    main()
