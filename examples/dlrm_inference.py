"""Serve a DLRM through the full software stack.

Builds the LC2 model from the Table IV zoo, compiles it (EB->TBE
merging, epilogue fusion, SRAM tensor placement), executes a batch of
synthetic requests functionally, and reports the operator-time
breakdown (Table III style) plus perf/W on all three platforms
(Figure 14 style).

Run:  python examples/dlrm_inference.py
"""

import numpy as np

from repro.eval.machines import MACHINES
from repro.eval.opmodel import estimate_graph
from repro.models.configs import MODEL_ZOO
from repro.models.dlrm import build_dlrm_graph, model_flops, operator_census
from repro.models.workloads import WorkloadGenerator
from repro.runtime import GraphExecutor


def main():
    config = MODEL_ZOO["LC2"]
    batch = 64
    print(f"model: {config.name} — {config.num_tables} tables x "
          f"{config.rows_per_table:,} rows x {config.embedding_dim} dims, "
          f"{model_flops(config) / 1e9 * 1000:.1f} MFLOPs/sample")

    graph = build_dlrm_graph(config, batch)
    census = operator_census(graph)
    print(f"graph: {census['total']} operators "
          f"({census['embedding_bag']} EmbeddingBag, {census['fc']} FC)")

    executor = GraphExecutor(MACHINES["mtia"], mode="graph")
    generator = WorkloadGenerator(config, batch_size=batch, zipf_alpha=1.05)
    request = generator.next_request()

    outputs, report = executor.run(graph, generator.feeds_for(request))
    logits = outputs[graph.outputs[0]]
    print(f"\nserved request {request.request_id}: batch {batch}, "
          f"CTR predictions in [{logits.min():.3f}, {logits.max():.3f}]")
    print(f"modelled latency on MTIA: {report.seconds * 1e6:.0f} us "
          f"({batch / report.seconds:.0f} samples/s/card)")
    placement = report.placement
    print(f"tensor placement: {placement.sram_hit_fraction(graph) * 100:.0f}%"
          " of inter-operator traffic stays in on-chip SRAM")

    print("\noperator-time breakdown (Table III style):")
    for category, fraction in sorted(report.category_fractions.items(),
                                     key=lambda kv: -kv[1]):
        print(f"  {category:<12}{100 * fraction:6.1f} %")

    print("\nperf/W across platforms (Figure 14 style):")
    flops = model_flops(config) * batch
    mtia_perf = None
    for family, machine in MACHINES.items():
        est = estimate_graph(machine, graph,
                             placement if family == "mtia" else None)
        tflops_w = (flops / est.total_seconds / 1e12
                    / machine.provisioned_watts)
        if family == "mtia":
            mtia_perf = tflops_w
        note = ""
        if family != "mtia" and mtia_perf:
            note = f"   (MTIA = {mtia_perf / tflops_w:.2f}x)"
        print(f"  {machine.name:<22}{tflops_w:.4f} TFLOPS/s/W{note}")


if __name__ == "__main__":
    main()
