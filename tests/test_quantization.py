"""Quantisation calibration utilities."""

import numpy as np
import pytest

from repro.quantization import (QuantParams, calibrate_per_channel,
                                calibrate_per_tensor, dequantize_weights,
                                quantization_error, quantize_weights)


class TestCalibration:
    def test_per_tensor_covers_peak(self, rng):
        w = rng.standard_normal((16, 32)).astype(np.float32) * 3
        params = calibrate_per_tensor(w)
        assert not params.per_channel
        assert float(params.scale) == pytest.approx(
            np.abs(w).max() / 127.0)

    def test_per_channel_shapes(self, rng):
        w = rng.standard_normal((16, 32)).astype(np.float32)
        params = calibrate_per_channel(w, axis=0)
        assert params.per_channel
        assert params.scale.shape == (16,)

    def test_per_channel_tracks_each_row(self, rng):
        w = np.ones((4, 8), dtype=np.float32)
        w[2] *= 100.0
        params = calibrate_per_channel(w)
        assert params.scale[2] == pytest.approx(100.0 / 127.0)
        assert params.scale[0] == pytest.approx(1.0 / 127.0)

    def test_zero_channel_gets_unit_scale(self):
        w = np.zeros((3, 4), dtype=np.float32)
        w[1, 0] = 5.0
        params = calibrate_per_channel(w)
        assert params.scale[0] == 1.0
        assert params.scale[2] == 1.0


class TestRoundTrip:
    def test_per_tensor_roundtrip_error_bounded(self, rng):
        w = rng.standard_normal((32, 64)).astype(np.float32)
        params = calibrate_per_tensor(w)
        max_err, _ = quantization_error(w, params)
        assert max_err <= float(params.scale) / 2 + 1e-6

    def test_per_channel_beats_per_tensor_on_skewed_weights(self, rng):
        """The reason per-channel quantisation exists: one outlier row
        would otherwise destroy everyone else's resolution."""
        w = rng.standard_normal((16, 64)).astype(np.float32)
        w[3] *= 50.0
        _, sqnr_tensor = quantization_error(w, calibrate_per_tensor(w))
        _, sqnr_channel = quantization_error(w, calibrate_per_channel(w))
        assert sqnr_channel > sqnr_tensor + 6.0   # >6 dB better

    def test_quantized_weights_are_int8(self, rng):
        w = rng.standard_normal((8, 8)).astype(np.float32)
        q = quantize_weights(w, calibrate_per_channel(w))
        assert q.dtype == np.int8

    def test_dequantize_inverts_scaling(self, rng):
        w = rng.standard_normal((8, 16)).astype(np.float32)
        params = calibrate_per_channel(w)
        back = dequantize_weights(quantize_weights(w, params), params)
        scales = params.scale.reshape(-1, 1)
        assert (np.abs(back - w) <= scales / 2 + 1e-6).all()

    def test_sqnr_reasonable_for_gaussian(self, rng):
        w = rng.standard_normal((64, 64)).astype(np.float32)
        _, sqnr = quantization_error(w, calibrate_per_tensor(w))
        # INT8 on well-scaled Gaussian data: ~30-40 dB.
        assert 25.0 < sqnr < 50.0
