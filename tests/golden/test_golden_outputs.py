"""Golden-file regression tests for the user-facing report surfaces.

These pin the *schemas* — key sets, metric names, label keys — of
``python -m repro.profile --format json`` and
``python -m repro.report --metrics``, not the numeric values (those
belong to the calibration tests).  A renamed field or dropped metric
breaks downstream dashboards silently; these tests make it loud.

To intentionally change a schema, regenerate with::

    GOLDEN_UPDATE=1 PYTHONPATH=src python -m pytest tests/golden
"""

import json
import os
import re
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent

_METRIC_LINE = re.compile(
    r"^(?P<name>[a-z_][a-z0-9_]*)(\{(?P<labels>[^}]*)\})? (?P<value>\S+)$")
_LABEL = re.compile(r'([a-z_][a-z0-9_]*)="')


def _check(name: str, actual: dict) -> None:
    """Compare ``actual`` against the golden file (or rewrite it)."""
    path = GOLDEN_DIR / name
    if os.environ.get("GOLDEN_UPDATE"):
        path.write_text(json.dumps(actual, indent=2, sort_keys=True)
                        + "\n")
        return
    expected = json.loads(path.read_text())
    assert actual == expected, (
        f"schema drift vs {path.name}; if intentional, regenerate with "
        "GOLDEN_UPDATE=1")


def profile_schema() -> dict:
    """Key-set schema of the quickstart profile JSON report."""
    from repro.profile import profile_workload
    report, _ = profile_workload("quickstart")
    data = json.loads(report.to_json())
    return {
        "top_level": sorted(data),
        "track": sorted(data["tracks"][0]),
        "operation": sorted(data["operations"][0]),
        "bandwidth": sorted(data["bandwidth"][0]),
        "stall_causes": sorted(data["stalls_by_cause"]),
        "extras": sorted(data["extras"]),
        "workload": data["workload"],
    }


def metrics_schema(text: str) -> dict:
    """Metric names, types, and label keys from Prometheus text."""
    types = {}
    label_keys = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            types[name] = kind
        else:
            match = _METRIC_LINE.match(line)
            if match:
                keys = sorted(_LABEL.findall(match.group("labels") or ""))
                label_keys.setdefault(match.group("name"), keys)
    return {"types": types, "label_keys": label_keys}


def serve_report_schema() -> dict:
    """Key-set schema of the serve_report quickstart JSON."""
    from repro.serve_report import run_serve_report
    report, _ = run_serve_report("quickstart", num_requests=600)
    data = json.loads(report.to_json())
    tail = data["tail_attribution"]
    return {
        "top_level": sorted(data),
        "batching": sorted(data["batching"]),
        "throughput": sorted(data["throughput"]),
        "latency": sorted(data["latency_us"]),
        "breakdown": sorted(data["breakdown_us"]),
        "queue_depth": sorted(data["queue_depth"]),
        "batch_occupancy": sorted(data["batch_occupancy"]),
        "request_row": sorted(data["requests"][0]),
        "slo": sorted(data["slo"]),
        "slo_window": sorted(data["slo"]["windows"][0]),
        "tail": sorted(tail),
        "tail_cohorts": sorted(tail["phase_us"]),
        "tail_stall_cohorts": sorted(tail["stall_mix"]),
        "workload": data["workload"],
    }


def campaign_schema() -> dict:
    """Key-set schema of the fault-campaign JSON report."""
    from repro.faults.campaign import CampaignConfig, run_campaign
    report = run_campaign(CampaignConfig(seeds=1, requests=300))
    failure_row = next(r for r in report["scenarios"]
                       if r["scenario"] == "card_failure")
    return {
        "top_level": sorted(report),
        "config": sorted(report["config"]),
        "scenario_row": sorted(failure_row),
        "scenario_stats": sorted(failure_row["faulted"]),
        "status_counts": sorted(failure_row["faulted"]["counts"]),
        "summary_scenarios": sorted(report["summary"]),
        "summary_stats": sorted(report["summary"]["card_failure"]),
        "checks": sorted(report["checks"]),
        "hardware": sorted(report["hardware"]),
        "hardware_row": sorted(report["hardware"]["kinds"][0]),
        "failover": sorted(report["failover"]),
        "schema_version": report["schema_version"],
    }


def fleet_report_schema() -> dict:
    """Key-set schema of the serve_report --fleet JSON."""
    from repro.serve_report import run_fleet_report
    report, _ = run_fleet_report("quickstart", replicas=2,
                                 duration_us=10_000.0)
    data = json.loads(report.to_json())
    fleet = data["fleet"]
    return {
        "top_level": sorted(data),
        "trace": sorted(data["trace"]),
        "comparison_row": sorted(data["comparison"][0]),
        "fleet": sorted(fleet),
        "fleet_config": sorted(fleet["config"]),
        "fleet_replica_spec": sorted(fleet["config"]["replicas"][0]),
        "fleet_router": sorted(fleet["config"]["router"]),
        "fleet_latency": sorted(fleet["latency_us"]),
        "fleet_breakdown": sorted(fleet["breakdown_us"]),
        "fleet_routing": sorted(fleet["routing"]),
        "fleet_conservation": sorted(fleet["conservation"]),
        "fleet_replica_row": sorted(fleet["replicas"][0]),
        "capacity": sorted(data["capacity"]),
        "capacity_probe": sorted(data["capacity"]["probes"][0]),
        "policies": sorted(row["policy"] for row in data["comparison"]),
        "schema_version": data["schema_version"],
    }


def fleet_capacity_schema() -> dict:
    """Key-set schema of the simulated fleet capacity plan."""
    from repro.serving.capacity import plan_fleet_capacity
    from repro.serving.fleet import TabularLatencyModel
    from repro.serving.traffic import trace_preset
    from dataclasses import replace as _replace
    model = TabularLatencyModel(batches=(1, 16, 64, 256),
                                latency_us=(60.0, 110.0, 260.0, 860.0))
    trace = _replace(trace_preset("diurnal", target_qps=400_000.0),
                     duration_us=10_000.0)
    plan = plan_fleet_capacity(model, trace, sla_us=1_500.0)
    data = plan.to_dict()
    return {
        "top_level": sorted(data),
        "probe": sorted(data["probes"][0]),
        "trace": sorted(data["trace"]),
        "policy": data["policy"],
        "feasible": data["feasible"],
    }


def autotune_report_schema() -> dict:
    """Key-set schema of ``python -m repro.autotune --json``."""
    from repro.autotune import FCShape, autotune
    result = autotune(FCShape(m=128, k=64, n=128), seed=0, budget=30,
                      topk=2, jobs=1)
    data = result.to_dict()
    return {
        "top_level": sorted(data),
        "shape": sorted(data["shape"]),
        "search": sorted(data["search"]),
        "search_config": sorted(data["search"]["config"]),
        "validated_row": sorted(data["validated"][0]),
        "candidate": sorted(data["validated"][0]["candidate"]),
        "baseline": sorted(data["baseline"]),
        "winner": sorted(data["winner"]),
        "schema_version": data["schema_version"],
    }


def bench_autotuned_schema() -> dict:
    """Key-set schema of a bench row carrying ``--autotuned`` extras."""
    from repro.bench import METRICS, _bench_fc
    row = _bench_fc(autotuned=True)
    return {
        "row": sorted(row),
        "metrics": sorted(METRICS),
        "extras": sorted(row["extras"]),
        "autotuned_extras": sorted(k for k in row["extras"]
                                   if k.startswith("autotuned_")),
    }


def test_autotune_report_schema_is_stable():
    _check("autotune_report_schema.json", autotune_report_schema())


def test_bench_autotuned_row_schema_is_stable():
    _check("bench_autotuned_row_schema.json", bench_autotuned_schema())


def test_profile_json_schema_is_stable():
    _check("profile_quickstart_schema.json", profile_schema())


def test_fleet_report_json_schema_is_stable():
    _check("fleet_report_schema.json", fleet_report_schema())


def test_fleet_capacity_schema_is_stable():
    _check("fleet_capacity_schema.json", fleet_capacity_schema())


def test_serve_report_json_schema_is_stable():
    _check("serve_report_quickstart_schema.json", serve_report_schema())


def test_campaign_json_schema_is_stable():
    _check("campaign_report_schema.json", campaign_schema())


def test_report_metrics_schema_is_stable(capsys):
    from repro.report import main
    assert main(["bounds", "--metrics"]) == 0
    out = capsys.readouterr().out
    start = out.index("Collected metrics")
    _check("report_metrics_schema.json", metrics_schema(out[start:]))


def test_profile_json_round_trips_through_cli(tmp_path, capsys):
    """The CLI's --format json output parses and matches the schema."""
    from repro.profile import main
    out = tmp_path / "prof.json"
    assert main(["quickstart", "--format", "json",
                 "--output", str(out)]) == 0
    data = json.loads(out.read_text())
    golden = json.loads(
        (GOLDEN_DIR / "profile_quickstart_schema.json").read_text())
    assert sorted(data) == golden["top_level"]
    assert data["workload"] == "quickstart"
    assert data["elapsed_cycles"] > 0
