"""End-to-end tuner and CLI: pooling, baselines, byte-identity."""

import json

from repro.autotune.__main__ import main
from repro.autotune.search import key_str
from repro.autotune.space import FCShape, MappingSpace, TBEShape
from repro.autotune.tuner import SCHEMA_VERSION, autotune, render_text

SMALL_FC = FCShape(m=128, k=64, n=128)
SMALL_TBE = TBEShape(num_tables=2, rows_per_table=512, embedding_dim=32,
                     pooling_factor=4, batch_size=8)


def _tune(shape, **kwargs):
    kwargs.setdefault("budget", 40)
    kwargs.setdefault("topk", 3)
    return autotune(shape, **kwargs)


def test_winner_is_des_measured_and_ordered():
    result = _tune(SMALL_FC)
    cycles = [v.sim_cycles for v in result.validated]
    assert cycles == sorted(cycles)
    assert result.winner is result.validated[0]
    assert result.winner.sim_cycles > 0
    assert result.baseline.sim_cycles > 0


def test_speedup_is_hand_over_winner():
    result = _tune(SMALL_TBE)
    assert result.speedup == (result.baseline.sim_cycles
                              / result.winner.sim_cycles)
    report = result.to_dict()
    assert report["winner"]["beats_hand"] == (
        result.winner.sim_cycles < result.baseline.sim_cycles)


def test_multi_seed_pools_distinct_survivors():
    result = _tune(SMALL_FC, seeds=3, topk=4)
    assert result.seeds == [0, 1, 2]
    assert len(result.searches) == 3
    keys = [key_str(v.candidate) for v in result.validated]
    assert len(keys) == len(set(keys))
    assert len(keys) <= 4


def test_result_is_jobs_invariant():
    serial = _tune(SMALL_TBE, jobs=1).to_dict()
    fanned = _tune(SMALL_TBE, jobs=2).to_dict()
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(fanned, sort_keys=True)


def test_report_schema_and_replay_command():
    result = _tune(SMALL_FC, seed=7)
    report = result.to_dict()
    assert report["schema_version"] == SCHEMA_VERSION
    assert report["seeds"] == [7]
    replay = report["replay"]
    assert replay.startswith("python -m repro.autotune fc ")
    assert "--seed 7" in replay and "--budget 40" in replay
    # The replay command parses under the real CLI parser.
    from repro.autotune.__main__ import build_parser
    build_parser().parse_args(replay.split()[3:])


def test_custom_space_restrict_flows_through():
    space = MappingSpace(shape=SMALL_FC,
                         restrict={"operands": ("dram",)})
    result = _tune(SMALL_FC, space=space)
    assert all(v.candidate.operands == "dram" for v in result.validated)


def test_render_text_mentions_verdict_and_replay():
    result = _tune(SMALL_TBE)
    text = render_text(result)
    assert "winner:" in text
    assert "hand-written" in text
    assert "replay: python -m repro.autotune" in text


def _run_cli(argv, capsys):
    rc = main(argv)
    assert rc == 0
    return capsys.readouterr().out


def test_cli_json_is_byte_identical_across_runs_and_jobs(capsys):
    argv = ["fc", "--m", "128", "--k", "64", "--n", "128",
            "--seed", "3", "--budget", "30", "--topk", "2", "--json"]
    first = _run_cli(argv, capsys)
    second = _run_cli(argv, capsys)
    fanned = _run_cli(argv + ["--jobs", "2"], capsys)
    assert first == second == fanned
    report = json.loads(first)
    assert report["schema_version"] == SCHEMA_VERSION


def test_cli_text_output_is_deterministic(capsys):
    argv = ["tbe", "--tables", "2", "--rows", "512", "--dim", "32",
            "--pooling", "4", "--batch", "8", "--budget", "30"]
    assert _run_cli(argv, capsys) == _run_cli(argv, capsys)
