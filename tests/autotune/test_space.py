"""MappingSpace enumeration, canonicalisation, and search moves."""

import pytest

from repro.autotune.rng import SplitMix64
from repro.autotune.space import (FCShape, MappingCandidate, MappingSpace,
                                  TBEShape, candidate_from_dict,
                                  shape_from_dict)

FC = FCShape(m=512, k=1024, n=256)
TBE = TBEShape(num_tables=8, rows_per_table=100_000, embedding_dim=64,
               pooling_factor=16, batch_size=32)


def test_enumeration_is_sorted_and_stable():
    space = MappingSpace(shape=FC)
    first = space.candidates()
    second = MappingSpace(shape=FC).candidates()
    assert first == second
    assert list(first) == sorted(first, key=MappingCandidate.key)
    assert len(set(c.key() for c in first)) == len(first)


def test_fc_space_respects_tiling_divisibility():
    space = MappingSpace(shape=FC)
    for cand in space.candidates():
        assert FC.m % (64 * cand.rows) == 0
        n_split = cand.cols // cand.k_split
        assert FC.n % (64 * n_split) == 0
        assert FC.k % (32 * cand.k_split) == 0


def test_fc_canonical_pins_tbe_axes():
    cand = MappingCandidate(op="fc", rows=2, cols=2, prefetch_rows=9,
                            fused=False)
    canon = cand.canonical()
    assert canon.prefetch_rows == 0
    assert canon.fused is True
    assert canon.key() == cand.key()


def test_tbe_canonical_pins_fc_axes():
    cand = MappingCandidate(op="tbe", rows=2, cols=2, prefetch_rows=4,
                            k_split=3, use_multicast=False,
                            dual_core=False)
    canon = cand.canonical()
    assert canon.k_split == 1
    assert canon.use_multicast is True
    assert canon.dual_core is True


def test_tbe_space_includes_placement_and_fusion_axes():
    space = MappingSpace(shape=TBE)
    operands = {c.operands for c in space.candidates()}
    fused = {c.fused for c in space.candidates()}
    depths = {c.prefetch_rows for c in space.candidates()}
    assert operands == {"dram", "sram"}
    assert fused == {True, False}
    assert depths == {1, 2, 4, 8, 16}


def test_sram_placement_requires_fit():
    huge = TBEShape(num_tables=8, rows_per_table=10_000_000,
                    embedding_dim=64, pooling_factor=16, batch_size=32)
    space = MappingSpace(shape=huge)
    assert {c.operands for c in space.candidates()} == {"dram"}
    ok, reason = space.legal(
        MappingCandidate(op="tbe", rows=1, cols=1, prefetch_rows=2,
                         operands="sram"))
    assert not ok and "SRAM" in reason


def test_oversized_subgrid_is_illegal():
    space = MappingSpace(shape=FC)
    ok, reason = space.legal(MappingCandidate(op="fc", rows=16, cols=1))
    assert not ok and "grid" in reason


def test_wrong_family_is_illegal():
    space = MappingSpace(shape=FC)
    ok, reason = space.legal(
        MappingCandidate(op="tbe", rows=1, cols=1, prefetch_rows=2))
    assert not ok


def test_restrict_prunes_axes():
    space = MappingSpace(shape=FC, restrict={"operands": ("dram",),
                                             "dual_core": (True,)})
    assert {c.operands for c in space.candidates()} == {"dram"}
    assert {c.dual_core for c in space.candidates()} == {True}
    assert len(space) < len(MappingSpace(shape=FC))


def test_neighbors_differ_in_exactly_one_axis():
    space = MappingSpace(shape=TBE)
    cand = space.candidates()[0]
    moves = space.neighbors(cand)
    assert moves
    base = cand.to_dict()
    for move in moves:
        diff = [k for k, v in move.to_dict().items() if base[k] != v]
        assert len(diff) == 1, (cand, move, diff)


def test_mutate_and_crossover_are_seed_deterministic():
    space = MappingSpace(shape=FC)
    a, b = space.candidates()[0], space.candidates()[-1]
    m1 = space.mutate(a, SplitMix64(5))
    m2 = space.mutate(a, SplitMix64(5))
    assert m1 == m2
    c1 = space.crossover(a, b, SplitMix64(5))
    c2 = space.crossover(a, b, SplitMix64(5))
    assert c1 == c2
    assert c1 in space


def test_shape_and_candidate_dict_round_trip():
    for shape in (FC, TBE):
        assert shape_from_dict(shape.to_dict()) == shape
    cand = MappingSpace(shape=TBE).candidates()[3]
    assert candidate_from_dict(cand.to_dict()) == cand
    with pytest.raises(ValueError):
        shape_from_dict({"family": "conv"})


def test_single_pe_grid_has_a_space():
    from repro.config import MTIA_V1
    tiny = MTIA_V1.scaled(grid_rows=1, grid_cols=1)
    space = MappingSpace(shape=FCShape(m=64, k=32, n=64), config=tiny)
    cands = space.candidates()
    assert cands
    assert all(c.rows == 1 and c.cols == 1 for c in cands)
