"""Search loop: budget accounting, memoisation, trace digests."""

from repro.autotune.cost import candidate_cost
from repro.autotune.search import (SearchConfig, brute_force, key_str,
                                   run_search)
from repro.autotune.space import FCShape, MappingSpace, TBEShape

FC = FCShape(m=512, k=1024, n=256)
TBE = TBEShape(num_tables=8, rows_per_table=100_000, embedding_dim=64,
               pooling_factor=16, batch_size=32)


def test_budget_bounds_unique_evaluations():
    space = MappingSpace(shape=FC)
    result = run_search(space, SearchConfig(seed=0, budget=10))
    assert result.trace.budget_used == 10
    assert len(result.trace.events) == 10
    assert len(result.ranked) == 10


def test_trace_events_are_unique_candidates():
    space = MappingSpace(shape=TBE)
    result = run_search(space, SearchConfig(seed=3, budget=40))
    keys = [key for _phase, key, _cost in result.trace.events]
    assert len(keys) == len(set(keys))          # memoised, never re-billed


def test_ranked_is_totally_ordered_cheapest_first():
    space = MappingSpace(shape=FC)
    result = run_search(space, SearchConfig(seed=1, budget=30))
    costs = [c.sort_key() for c in result.ranked]
    assert costs == sorted(costs)
    assert result.winner is result.ranked[0]
    assert result.trace.winner_key == key_str(result.winner.candidate)


def test_digest_changes_with_seed():
    space = MappingSpace(shape=FC)
    a = run_search(space, SearchConfig(seed=0, budget=20))
    b = run_search(space, SearchConfig(seed=1, budget=20))
    assert a.trace.digest() != b.trace.digest()


def test_search_phases_appear_in_order():
    space = MappingSpace(shape=TBE)
    result = run_search(space, SearchConfig(seed=0, budget=120))
    phases = [phase for phase, _key, _cost in result.trace.events]
    assert phases[0] == "init"
    first_of = {p: phases.index(p) for p in dict.fromkeys(phases)}
    assert first_of["init"] == 0
    if "beam" in first_of and "evolve" in first_of:
        assert first_of["beam"] < first_of["evolve"]


def test_budget_larger_than_space_evaluates_at_most_space():
    space = MappingSpace(shape=FC, restrict={"operands": ("dram",),
                                             "use_multicast": (True,),
                                             "dual_core": (True,)})
    result = run_search(space, SearchConfig(seed=0, budget=10_000,
                                            init=len(space)))
    assert result.trace.budget_used <= len(space)


def test_brute_force_orders_like_search_ranking():
    space = MappingSpace(shape=FC, restrict={"operands": ("dram",),
                                             "use_multicast": (True,),
                                             "dual_core": (True,)})
    oracle = brute_force(space)
    assert len(oracle) == len(space)
    keys = [c.sort_key() for c in oracle]
    assert keys == sorted(keys)
    # Exhaustive search agrees with the oracle on every rank.
    full = run_search(space, SearchConfig(seed=0, budget=10_000,
                                          init=len(space)))
    assert [c.candidate for c in full.ranked] == \
        [c.candidate for c in oracle]


def test_cost_fn_injection():
    """Custom cost functions drive the search (the differential test's
    hook): a cost that prefers big sub-grids must change the winner."""
    space = MappingSpace(shape=FC, restrict={"operands": ("dram",),
                                             "use_multicast": (True,),
                                             "dual_core": (True,)})

    def inverted(cand):
        real = candidate_cost(FC, cand)
        from dataclasses import replace
        return replace(real, cost_s=-real.candidate.num_pes)

    result = run_search(space, SearchConfig(seed=0, budget=10_000,
                                            init=len(space)),
                        cost_fn=inverted)
    assert result.winner.candidate.num_pes == max(
        c.num_pes for c in space.candidates())
