"""Differential: search winner == brute-force winner on small spaces.

The issue's contract: for a space small enough to enumerate outright,
the beam + evolutionary search (with a *partial* budget-driven view of
the space — small random init, neighbour expansion, crossover) must
land on the same winner as costing every candidate, for at least 10
seeds.  Both sides break cost ties on the canonical candidate key, so
"same winner" is well-defined even with ties.
"""

import pytest

from repro.autotune.search import SearchConfig, brute_force, run_search
from repro.autotune.space import FCShape, MappingSpace, TBEShape

SEEDS = list(range(12))

SMALL_FC = MappingSpace(
    shape=FCShape(m=256, k=256, n=256),
    restrict={"use_multicast": (True,), "dual_core": (True,)})

SMALL_TBE = MappingSpace(
    shape=TBEShape(num_tables=4, rows_per_table=1024, embedding_dim=64,
                   pooling_factor=8, batch_size=16),
    restrict={"prefetch_rows": (1, 4, 16), "fused": (True,)})


@pytest.mark.parametrize("space", [SMALL_FC, SMALL_TBE],
                         ids=["fc", "tbe"])
def test_space_is_small_enough_to_brute_force(space):
    assert 4 <= len(space) <= 120


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("space", [SMALL_FC, SMALL_TBE],
                         ids=["fc", "tbe"])
def test_search_finds_the_brute_force_winner(space, seed):
    oracle = brute_force(space)[0]
    config = SearchConfig(seed=seed, budget=len(space), init=4,
                          beam_width=4, generations=3, population=6)
    found = run_search(space, config)
    assert found.winner.candidate == oracle.candidate, (
        f"seed {seed}: search picked {found.winner.candidate.describe()} "
        f"({found.winner.cost_s:.3e}s), brute force says "
        f"{oracle.candidate.describe()} ({oracle.cost_s:.3e}s)")
    assert found.winner.cost_s == oracle.cost_s


@pytest.mark.parametrize("space", [SMALL_FC, SMALL_TBE],
                         ids=["fc", "tbe"])
def test_partial_budget_search_really_is_partial(space):
    """The differential result is meaningful only if the search did not
    simply enumerate everything on every seed."""
    partial = 0
    for seed in SEEDS:
        config = SearchConfig(seed=seed, budget=len(space), init=4,
                              beam_width=4, generations=3, population=6)
        result = run_search(space, config)
        if result.trace.budget_used < len(space):
            partial += 1
    assert partial > 0
