"""SplitMix64 stream: known answers, forking, draw accounting."""

import pytest

from repro.autotune.rng import SplitMix64

# Published splitmix64 test vector (seed 0): the same first outputs
# every conforming implementation produces — e.g. the seeding sequence
# used by the xoshiro reference code.
KAT_SEED0 = (0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F)


def test_known_answer_seed_zero():
    rng = SplitMix64(0)
    assert tuple(rng.next_u64() for _ in range(3)) == KAT_SEED0


def test_same_seed_same_stream():
    a, b = SplitMix64(1234), SplitMix64(1234)
    assert [a.next_u64() for _ in range(100)] == \
        [b.next_u64() for _ in range(100)]


def test_different_seeds_diverge():
    a, b = SplitMix64(1), SplitMix64(2)
    assert [a.next_u64() for _ in range(4)] != \
        [b.next_u64() for _ in range(4)]


def test_uniform_is_in_unit_interval():
    rng = SplitMix64(7)
    for _ in range(1000):
        x = rng.uniform()
        assert 0.0 <= x < 1.0


def test_randrange_bounds_and_rejection():
    rng = SplitMix64(9)
    seen = {rng.randrange(5) for _ in range(500)}
    assert seen == {0, 1, 2, 3, 4}
    with pytest.raises(ValueError):
        rng.randrange(0)


def test_choice_and_sample():
    rng = SplitMix64(11)
    items = list(range(20))
    assert rng.choice(items) in items
    picked = rng.sample(items, 8)
    assert len(picked) == 8
    assert len(set(picked)) == 8
    assert rng.sample(items, 50) != []          # clamped to len(items)
    assert len(SplitMix64(11).sample(items, 50)) == 20


def test_fork_does_not_advance_parent():
    parent = SplitMix64(42)
    reference = SplitMix64(42)
    child = parent.fork("phase-a")
    assert parent.next_u64() == reference.next_u64()
    assert child.next_u64() != parent.next_u64()


def test_fork_is_label_deterministic_and_label_sensitive():
    a = SplitMix64(42).fork("init").next_u64()
    b = SplitMix64(42).fork("init").next_u64()
    c = SplitMix64(42).fork("evolve").next_u64()
    assert a == b
    assert a != c


def test_draw_counter_counts_raw_draws():
    rng = SplitMix64(3)
    rng.next_u64()
    rng.uniform()
    assert rng.draws >= 2
    before = rng.draws
    rng.fork("x")
    assert rng.draws == before                  # forking is free
