"""The spawn-safe parallel map behind every ``--jobs`` flag."""

import os

import pytest

from repro.parallel import default_jobs, parallel_map


def _square(x):
    return x * x


def _pid_and_square(x):
    return os.getpid(), x * x


def _explode(x):
    if x == 3:
        raise ValueError(f"boom on {x}")
    return x


class TestSerial:
    def test_jobs_one_is_a_plain_loop(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_single_item_never_pools(self):
        pids = parallel_map(_pid_and_square, [5], jobs=8)
        assert pids == [(os.getpid(), 25)]

    def test_progress_fires_in_order(self):
        seen = []
        parallel_map(_square, [1, 2, 3], jobs=1,
                     progress=lambda i, r: seen.append((i, r)))
        assert seen == [(0, 1), (1, 4), (2, 9)]

    def test_empty_input(self):
        assert parallel_map(_square, [], jobs=4) == []


class TestParallel:
    def test_results_in_input_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_exceptions_propagate_first_by_input_order(self):
        with pytest.raises(ValueError, match="boom on 3"):
            parallel_map(_explode, [1, 2, 3, 4, 3], jobs=2)

    def test_unpicklable_fn_falls_back_to_serial(self):
        captured = []

        def closure(x):            # closures cannot cross spawn
            captured.append(x)
            return -x

        assert parallel_map(closure, [1, 2, 3], jobs=2) == [-1, -2, -3]
        assert captured == [1, 2, 3]    # really ran in this process

    def test_serial_and_parallel_agree(self):
        items = list(range(12))
        assert (parallel_map(_square, items, jobs=1)
                == parallel_map(_square, items, jobs=3))


def test_default_jobs_positive():
    assert default_jobs() >= 1
