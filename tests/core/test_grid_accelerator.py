"""PE composition, grid/sub-grid management, accelerator facade."""

import numpy as np
import pytest

from repro import Accelerator
from repro.config import MTIA_V1
from repro.memory import SRAMMode
from repro.memory.address_map import SRAM_BASE
from repro.sim import SimulationError


class TestPE:
    def test_pe_indexing(self, accelerator):
        pe = accelerator.grid.pe(3, 5)
        assert pe.coord == (3, 5)
        assert pe.index == 3 * 8 + 5

    def test_pe_has_two_cores(self, accelerator):
        pe = accelerator.grid.pe(0, 0)
        assert len(pe.cores) == 2
        assert pe.cores[0].core_id == 0
        assert pe.cores[1].core_id == 1

    def test_cb_limit_enforced(self, small_accelerator):
        pe = small_accelerator.grid.pe(0, 0)
        limit = MTIA_V1.local_memory.max_circular_buffers
        for i in range(limit):
            pe.define_cb(i, 0, 64)
        with pytest.raises(SimulationError, match="CBs"):
            pe.define_cb(limit, 0, 64)
        # redefinition of an existing ID is allowed
        pe.define_cb(0, 0, 128)

    def test_unit_routing(self, accelerator):
        from repro.isa.commands import (CopyCmd, DMALoad, MML, PopCB,
                                        QuantizeCmd, Reduce)
        pe = accelerator.grid.pe(0, 0)
        assert pe.unit_for(MML(), 0) is pe.dpe_unit
        assert pe.unit_for(DMALoad(), 0) is pe.fi_unit
        assert pe.unit_for(CopyCmd(), 0) is pe.mlu_unit
        assert pe.unit_for(QuantizeCmd(), 0) is pe.se_unit
        assert pe.unit_for(Reduce(dest_cb=0), 0) is pe.re_unit
        cp0 = pe.unit_for(PopCB(), 0)
        cp1 = pe.unit_for(PopCB(), 1)
        assert cp0 is not cp1    # per-core CP pseudo-units

    def test_stats_rollup(self, small_accelerator):
        from repro.kernels.fc import run_fc
        acc = small_accelerator
        run_fc(acc, m=64, k=64, n=64, subgrid=acc.subgrid((0, 0), 1, 1))
        stats = acc.grid.pe(0, 0).collect_stats()
        assert stats["dpe.macs"] > 0
        assert stats["fi.load_bytes"] > 0


class TestGridAndSubgrid:
    def test_grid_iteration_covers_all(self, accelerator):
        coords = [pe.coord for pe in accelerator.grid]
        assert len(coords) == 64
        assert len(set(coords)) == 64

    def test_out_of_range_pe_rejected(self, accelerator):
        with pytest.raises(SimulationError):
            accelerator.grid.pe(8, 0)
        with pytest.raises(SimulationError):
            accelerator.grid.pe(0, -1)

    def test_subgrid_local_coordinates(self, accelerator):
        sub = accelerator.subgrid((2, 3), 2, 4)
        assert sub.pe(0, 0).coord == (2, 3)
        assert sub.pe(1, 3).coord == (3, 6)
        assert sub.num_pes == 8

    def test_subgrid_bounds_checked(self, accelerator):
        with pytest.raises(SimulationError):
            accelerator.subgrid((7, 7), 2, 2)
        with pytest.raises(SimulationError):
            accelerator.subgrid((0, 0), -1, 4)

    def test_subgrid_local_access_bounds(self, accelerator):
        sub = accelerator.subgrid((0, 0), 2, 2)
        with pytest.raises(SimulationError):
            sub.pe(2, 0)

    def test_default_subgrid_is_whole_grid(self, accelerator):
        sub = accelerator.subgrid()
        assert sub.rows == 8 and sub.cols == 8

    def test_reduction_chains(self, accelerator):
        sub = accelerator.subgrid((1, 1), 3, 3)
        east = sub.reduction_chain_east(0)
        assert east == [(1, 1), (1, 2), (1, 3)]
        south = sub.reduction_chain_south(2)
        assert south == [(1, 3), (2, 3), (3, 3)]

    def test_multicast_group_helpers(self, accelerator):
        sub = accelerator.subgrid((2, 2), 2, 4)
        row_group = sub.row_multicast_group(0, [0, 2])
        assert row_group.members == [(2, 2), (2, 4)]
        col_group = sub.col_multicast_group(1, [0, 1])
        assert col_group.members == [(2, 3), (3, 3)]


class TestAcceleratorFacade:
    def test_alloc_dram_is_aligned_and_disjoint(self, accelerator):
        a = accelerator.alloc_dram(100)
        b = accelerator.alloc_dram(100)
        assert a % Accelerator.ALLOC_ALIGN == 0
        assert b >= a + 100

    def test_alloc_sram_requires_scratchpad_mode(self, accelerator,
                                                 scratchpad_accelerator):
        with pytest.raises(SimulationError, match="cache mode"):
            accelerator.alloc_sram(100)
        addr = scratchpad_accelerator.alloc_sram(100)
        assert addr >= SRAM_BASE

    def test_dram_exhaustion(self):
        acc = Accelerator(MTIA_V1.scaled(grid_rows=1, grid_cols=1))
        with pytest.raises(MemoryError):
            acc.alloc_dram(MTIA_V1.dram.capacity_bytes + 1)

    def test_upload_download_roundtrip(self, accelerator, rng):
        data = rng.standard_normal((16, 16)).astype(np.float32)
        addr = accelerator.upload(data)
        out = accelerator.download(addr, (16, 16), np.float32)
        np.testing.assert_array_equal(out, data)

    def test_seconds_conversion(self, accelerator):
        assert accelerator.seconds(8e8) == pytest.approx(1.0)

    def test_failed_program_surfaces_error(self, small_accelerator):
        def bad_program(ctx):
            yield 1
            raise RuntimeError("kernel bug")

        small_accelerator.launch(bad_program,
                                 small_accelerator.grid.pe(0, 0).cores[0])
        with pytest.raises(RuntimeError, match="kernel bug"):
            small_accelerator.run()

    def test_collect_stats_aggregates(self, small_accelerator):
        from repro.kernels.fc import run_fc
        acc = small_accelerator
        run_fc(acc, m=64, k=64, n=64, subgrid=acc.subgrid((0, 0), 1, 1))
        stats = acc.collect_stats()
        assert stats["dpe.macs"] == 64 * 64 * 64
        assert stats["dram.read_bytes"] > 0
