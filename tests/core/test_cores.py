"""CoreContext and the RISC-V vector unit."""

import numpy as np
import pytest

from repro.isa.commands import InitCB, PopCB
from repro.sim import SimulationError


@pytest.fixture
def pe(small_accelerator):
    return small_accelerator.grid.pe(0, 0)


def run(acc, pe, program, core=1):
    proc = acc.launch(program, pe.cores[core], name="core-test")
    acc.run()
    return proc.value


class TestCoreContext:
    def test_issue_rejects_non_commands(self, small_accelerator, pe):
        def program(ctx):
            yield from ctx.issue("not a command")

        with pytest.raises(SimulationError, match="not a Command"):
            run(small_accelerator, pe, program, core=0)

    def test_issue_charges_issue_cycles(self, small_accelerator, pe):
        def program(ctx):
            t0 = ctx.engine.now
            yield from ctx.issue(InitCB(cb_id=0, base=0, size=64))
            return ctx.engine.now - t0

        elapsed = run(small_accelerator, pe, program, core=0)
        assert elapsed >= pe.config.cp.issue_cycles

    def test_drain_waits_for_outstanding(self, small_accelerator, pe):
        def program(ctx):
            yield from ctx.issue(InitCB(cb_id=0, base=0, size=256))
            pe.cb  # command not yet executed necessarily
            yield from ctx.drain()
            return pe.cb(0).size

        assert run(small_accelerator, pe, program, core=0) == 256

    def test_drain_with_nothing_outstanding(self, small_accelerator, pe):
        def program(ctx):
            yield from ctx.drain()
            return "ok"

        assert run(small_accelerator, pe, program, core=0) == "ok"

    def test_local_load_store(self, small_accelerator, pe, rng):
        payload = rng.integers(0, 256, 64, dtype=np.uint8)

        def program(ctx):
            yield from ctx.store(0x100, payload)
            data = yield from ctx.load(0x100, 64)
            return data

        out = run(small_accelerator, pe, program, core=0)
        np.testing.assert_array_equal(out, payload)

    def test_invalid_core_id_rejected(self, pe):
        from repro.core.cores import CoreContext
        with pytest.raises(SimulationError):
            CoreContext(pe, 2)

    def test_wait_all(self, small_accelerator, pe):
        def program(ctx):
            handles = []
            for i in range(3):
                h = yield from ctx.issue(InitCB(cb_id=i, base=i * 64,
                                                size=64))
                handles.append(h)
            yield from ctx.wait_all(handles)
            return [pe.cb(i).size for i in range(3)]

        assert run(small_accelerator, pe, program, core=0) == [64, 64, 64]


class TestVectorUnit:
    def test_only_core1_has_vector(self, pe):
        assert pe.cores[0].vector is None
        assert pe.cores[1].vector is not None

    @pytest.mark.parametrize("op,fn", [
        ("add", np.add), ("sub", np.subtract), ("mul", np.multiply),
        ("max", np.maximum)])
    def test_binary_ops(self, small_accelerator, pe, rng, op, fn):
        a = rng.standard_normal(100).astype(np.float32)
        b = rng.standard_normal(100).astype(np.float32)
        pe.local_memory.poke(0, a)
        pe.local_memory.poke(512, b)

        def program(ctx):
            yield from ctx.vector.binary_op(op, 0, 512, 1024, 100)

        run(small_accelerator, pe, program)
        out = pe.local_memory.peek_array(1024, (100,), np.float32)
        np.testing.assert_allclose(out, fn(a, b), rtol=1e-6)

    def test_unknown_binary_op_rejected(self, small_accelerator, pe):
        def program(ctx):
            yield from ctx.vector.binary_op("xor", 0, 0, 0, 8)

        with pytest.raises(SimulationError, match="unknown op"):
            run(small_accelerator, pe, program)

    def test_reduce_add(self, small_accelerator, pe, rng):
        values = rng.standard_normal(257).astype(np.float32)
        pe.local_memory.poke(0, values)

        def program(ctx):
            total = yield from ctx.vector.reduce_add(0, 257)
            return total

        total = run(small_accelerator, pe, program)
        assert total == pytest.approx(float(values.sum()), rel=1e-5)

    def test_fill(self, small_accelerator, pe):
        def program(ctx):
            yield from ctx.vector.fill(64, 10, 2.5)

        run(small_accelerator, pe, program)
        out = pe.local_memory.peek_array(64, (10,), np.float32)
        assert (out == 2.5).all()

    def test_dequant_accumulate(self, small_accelerator, pe, rng):
        row = rng.integers(-128, 128, 64, dtype=np.int8)
        acc0 = rng.standard_normal(64).astype(np.float32)
        pe.local_memory.poke(0, row)
        pe.local_memory.poke(256, acc0)

        def program(ctx):
            yield from ctx.vector.dequant_accumulate(0, 256, 64, scale=0.5,
                                                     bias=1.0)

        run(small_accelerator, pe, program)
        out = pe.local_memory.peek_array(256, (64,), np.float32)
        expected = acc0 + row.astype(np.float32) * 0.5 + 1.0
        np.testing.assert_allclose(out, expected, rtol=1e-6)

    def test_timing_scales_with_elements(self, small_accelerator, pe):
        def program(ctx):
            t0 = ctx.engine.now
            yield from ctx.vector.fill(0, 64, 0.0)
            small = ctx.engine.now - t0
            t0 = ctx.engine.now
            yield from ctx.vector.fill(0, 4096, 0.0)
            return small, ctx.engine.now - t0

        small, large = run(small_accelerator, pe, program)
        assert large > 2 * small

    def test_batched_reduce_add(self, small_accelerator, pe, rng):
        mat = rng.standard_normal((10, 32)).astype(np.float32)
        pe.local_memory.poke(0, mat)

        def program(ctx):
            yield from ctx.vector.batched_reduce_add(0, 10, 32, 4096)

        run(small_accelerator, pe, program)
        out = pe.local_memory.peek_array(4096, (32,), np.float32)
        np.testing.assert_allclose(out, mat.sum(axis=0), rtol=1e-5)

    def test_layernorm_numerics(self, small_accelerator, pe, rng):
        vec = (rng.standard_normal(128) * 7 + 2).astype(np.float32)
        pe.local_memory.poke(0, vec)

        def program(ctx):
            yield from ctx.vector.layernorm(0, 128, 1024)

        run(small_accelerator, pe, program)
        out = pe.local_memory.peek_array(1024, (128,), np.float32)
        assert out.mean() == pytest.approx(0.0, abs=1e-5)
        assert out.std() == pytest.approx(1.0, abs=1e-2)
