"""Fixed-function unit behaviours (MLU, DPE, RE, SE)."""

import numpy as np
import pytest

from repro.dtypes import FP16, FP32, INT8
from repro.isa.commands import (ConcatCmd, CopyCmd, ElementwiseCmd,
                                InitAccumulators, InitCB, MML, NonlinearCmd,
                                QuantizeCmd, Reduce, TransposeCmd)
from repro.sim import SimulationError


@pytest.fixture
def pe(small_accelerator):
    return small_accelerator.grid.pe(0, 0)


def run(acc, pe, program, core=0):
    proc = acc.launch(program, pe.cores[core], name="unit-test")
    acc.run()
    return proc.value


def init_cbs(ctx, *sizes):
    base = 0
    for cb_id, size in enumerate(sizes):
        yield from ctx.issue_and_wait(InitCB(cb_id=cb_id, base=base,
                                             size=size))
        base += size


class TestMLU:
    def test_transpose(self, small_accelerator, pe, rng):
        tile = rng.integers(-128, 128, (16, 8), dtype=np.int8)

        def program(ctx):
            yield from init_cbs(ctx, 1024, 1024)
            pe.cb(0).write_and_push(tile)
            yield from ctx.issue(TransposeCmd(src_cb=0, dst_cb=1, rows=16,
                                              cols=8, pop_input=True))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        out = pe.cb(1).read_and_pop(128).view(np.int8).reshape(8, 16)
        np.testing.assert_array_equal(out, tile.T)
        assert pe.cb(0).available == 0   # input consumed

    def test_transpose_fp32(self, small_accelerator, pe, rng):
        tile = rng.standard_normal((8, 8)).astype(np.float32)

        def program(ctx):
            yield from init_cbs(ctx, 1024, 1024)
            pe.cb(0).write_and_push(tile)
            yield from ctx.issue(TransposeCmd(src_cb=0, dst_cb=1, rows=8,
                                              cols=8, dtype=FP32))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        out = pe.cb(1).read_and_pop(256).view(np.float32).reshape(8, 8)
        np.testing.assert_array_equal(out, tile.T)

    def test_concat(self, small_accelerator, pe, rng):
        a = rng.integers(0, 255, 48, dtype=np.uint8)
        b = rng.integers(0, 255, 16, dtype=np.uint8)

        def program(ctx):
            yield from init_cbs(ctx, 256, 256, 256)
            pe.cb(0).write_and_push(a)
            pe.cb(1).write_and_push(b)
            yield from ctx.issue(ConcatCmd(src_cbs=(0, 1),
                                           src_nbytes=(48, 16), dst_cb=2))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        np.testing.assert_array_equal(pe.cb(2).read_and_pop(64),
                                      np.concatenate([a, b]))

    def test_copy(self, small_accelerator, pe, rng):
        data = rng.integers(0, 255, 100, dtype=np.uint8)

        def program(ctx):
            yield from init_cbs(ctx, 256, 256)
            pe.cb(0).write_and_push(data)
            yield from ctx.issue(CopyCmd(src_cb=0, dst_cb=1, nbytes=100,
                                         pop_input=True))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        np.testing.assert_array_equal(pe.cb(1).read_and_pop(100), data)

    def test_mlu_charges_time_per_byte(self, small_accelerator, pe):
        def program(ctx):
            yield from init_cbs(ctx, 16384, 16384)
            pe.cb(0).write_and_push(np.zeros(8192, np.uint8))
            t0 = ctx.engine.now
            yield from ctx.issue_and_wait(CopyCmd(src_cb=0, dst_cb=1,
                                                  nbytes=8192))
            return ctx.engine.now - t0

        elapsed = run(small_accelerator, pe, program)
        min_cycles = 8192 / pe.config.mlu.bytes_per_cycle
        assert elapsed >= min_cycles


class TestDPE:
    def test_int8_block_matmul(self, small_accelerator, pe, rng):
        a = rng.integers(-128, 128, (32, 32), dtype=np.int8)
        b = rng.integers(-128, 128, (32, 32), dtype=np.int8)

        def program(ctx):
            yield from init_cbs(ctx, 2048, 2048)
            pe.cb(0).write_and_push(b)
            pe.cb(1).write_and_push(a)
            yield from ctx.issue(InitAccumulators(banks=(0,)))
            yield from ctx.issue(MML(acc=0, cb_b=0, cb_a=1))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        expected = b.astype(np.int32) @ a.astype(np.int32).T
        np.testing.assert_array_equal(pe.re_unit.bank_value(0), expected)

    def test_partial_block_sizes(self, small_accelerator, pe, rng):
        a = rng.integers(-128, 128, (16, 8), dtype=np.int8)
        b = rng.integers(-128, 128, (24, 8), dtype=np.int8)

        def program(ctx):
            yield from init_cbs(ctx, 2048, 2048)
            pe.cb(0).write_and_push(b)
            pe.cb(1).write_and_push(a)
            yield from ctx.issue(InitAccumulators(banks=(0,)))
            yield from ctx.issue(MML(acc=0, m=16, k=8, n=24, cb_b=0, cb_a=1))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        expected = b.astype(np.int32) @ a.astype(np.int32).T
        np.testing.assert_array_equal(pe.re_unit.bank_value(0, 24, 16),
                                      expected)

    def test_oversize_block_rejected(self, small_accelerator, pe):
        def program(ctx):
            yield from init_cbs(ctx, 8192, 8192)
            pe.cb(0).write_and_push(np.zeros((33, 32), np.int8))
            pe.cb(1).write_and_push(np.zeros((33, 32), np.int8))
            yield from ctx.issue_and_wait(MML(acc=0, m=33, k=32, n=33,
                                              cb_b=0, cb_a=1))

        with pytest.raises(SimulationError, match="32x32x32"):
            run(small_accelerator, pe, program)

    def test_accumulation_over_k(self, small_accelerator, pe, rng):
        a = rng.integers(-16, 16, (32, 64), dtype=np.int8)
        b = rng.integers(-16, 16, (32, 64), dtype=np.int8)

        def program(ctx):
            yield from init_cbs(ctx, 4096, 4096)
            # blocks stored k-major: (k0) then (k1)
            pe.cb(0).write_and_push(
                np.concatenate([b[:, :32].ravel(), b[:, 32:].ravel()]))
            pe.cb(1).write_and_push(
                np.concatenate([a[:, :32].ravel(), a[:, 32:].ravel()]))
            yield from ctx.issue(InitAccumulators(banks=(0,)))
            for ki in range(2):
                yield from ctx.issue(MML(acc=0, cb_b=0, cb_a=1,
                                         offset_b=ki * 1024,
                                         offset_a=ki * 1024))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        expected = b.astype(np.int32) @ a.astype(np.int32).T
        np.testing.assert_array_equal(pe.re_unit.bank_value(0), expected)

    def test_fp16_matmul_accumulates_fp32(self, small_accelerator, pe, rng):
        a = rng.standard_normal((32, 32)).astype(np.float16)
        b = rng.standard_normal((32, 32)).astype(np.float16)

        def program(ctx):
            yield from init_cbs(ctx, 4096, 4096)
            pe.cb(0).write_and_push(b)
            pe.cb(1).write_and_push(a)
            yield from ctx.issue(InitAccumulators(banks=(1,)))
            yield from ctx.issue(MML(acc=1, cb_b=0, cb_a=1, dtype=FP16))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        expected = b.astype(np.float32) @ a.astype(np.float32).T
        np.testing.assert_allclose(pe.re_unit.bank_value(1), expected,
                                   rtol=1e-3)

    def test_int8_full_block_takes_32_cycles(self, small_accelerator, pe):
        """Section 3.1.2: two maximum-size matrices take 32 cycles."""
        def program(ctx):
            yield from init_cbs(ctx, 2048, 2048)
            pe.cb(0).write_and_push(np.ones((32, 32), np.int8))
            pe.cb(1).write_and_push(np.ones((32, 32), np.int8))
            yield from ctx.issue(InitAccumulators(banks=(0,)))
            # Warm the operand cache so the second MML is stream-only.
            yield from ctx.issue_and_wait(MML(acc=0, cb_b=0, cb_a=1))
            t0 = ctx.engine.now
            yield from ctx.issue_and_wait(MML(acc=0, cb_b=0, cb_a=1))
            return ctx.engine.now - t0

        elapsed = run(small_accelerator, pe, program)
        issue_overhead = pe.config.cp.issue_cycles
        # 32 stream cycles + command issue/dispatch overheads
        assert 32 <= elapsed <= 32 + issue_overhead + 16


class TestRE:
    def test_bias_load(self, small_accelerator, pe):
        bias = np.full((32, 32), 7, dtype=np.int32)

        def program(ctx):
            yield from init_cbs(ctx, 8192)
            pe.cb(0).write_and_push(bias)
            yield from ctx.issue(InitAccumulators(banks=(2,), bias_cb=0))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        np.testing.assert_array_equal(pe.re_unit.bank_value(2), bias)

    def test_reduce_2x2_layout(self, small_accelerator, pe):
        def program(ctx):
            yield from init_cbs(ctx, 4096, 4096, 16384)
            pe.cb(0).write_and_push(np.ones((32, 32), np.int8))
            pe.cb(1).write_and_push(np.ones((32, 32), np.int8))
            yield from ctx.issue(InitAccumulators())
            for acc_id in range(4):
                yield from ctx.issue(MML(acc=acc_id, cb_b=0, cb_a=1,
                                         m=32, k=32, n=32))
            yield from ctx.issue(Reduce(dest_cb=2))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        out = pe.cb(2).read_and_pop(64 * 64 * 4).view(np.int32)
        assert (out == 32).all()   # ones @ ones^T = k = 32 everywhere

    def test_reduce_with_output_quantisation(self, small_accelerator, pe):
        def program(ctx):
            yield from init_cbs(ctx, 2048, 2048, 8192)
            pe.cb(0).write_and_push(np.ones((32, 32), np.int8))
            pe.cb(1).write_and_push(np.ones((32, 32), np.int8))
            yield from ctx.issue(InitAccumulators(banks=(0,)))
            yield from ctx.issue(MML(acc=0, cb_b=0, cb_a=1))
            yield from ctx.issue(Reduce(banks_layout=((0,),), dest_cb=2,
                                        out_dtype=INT8, out_scale=0.25))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        out = pe.cb(2).read_and_pop(1024).view(np.int8)
        assert (out == 8).all()    # 32 * 0.25

    def test_reduce_needs_exactly_one_destination(self):
        with pytest.raises(ValueError, match="exactly one"):
            Reduce(dest_pe=None, dest_cb=None)
        with pytest.raises(ValueError, match="exactly one"):
            Reduce(dest_pe=(0, 1), dest_cb=2)

    def test_reduce_send_and_receive_across_pes(self, small_accelerator):
        acc = small_accelerator
        west, east = acc.grid.pe(0, 0), acc.grid.pe(0, 1)

        def sender(ctx):
            yield from init_cbs(ctx, 2048, 2048)
            west.cb(0).write_and_push(np.ones((32, 32), np.int8))
            west.cb(1).write_and_push(np.ones((32, 32), np.int8))
            yield from ctx.issue(InitAccumulators(banks=(0,)))
            yield from ctx.issue(MML(acc=0, cb_b=0, cb_a=1))
            yield from ctx.issue(Reduce(banks_layout=((0,),),
                                        dest_pe=east.coord))
            yield from ctx.drain()

        def receiver(ctx):
            yield from init_cbs(ctx, 2048, 2048, 8192)
            east.cb(0).write_and_push(np.ones((32, 32), np.int8))
            east.cb(1).write_and_push(np.ones((32, 32), np.int8))
            yield from ctx.issue(InitAccumulators(banks=(0,)))
            yield from ctx.issue(MML(acc=0, cb_b=0, cb_a=1))
            yield from ctx.issue(Reduce(banks_layout=((0,),), receive=True,
                                        dest_cb=2))
            yield from ctx.drain()

        acc.launch(sender, west.cores[0], name="send")
        acc.launch(receiver, east.cores[0], name="recv")
        acc.run()
        out = east.cb(2).read_and_pop(4096).view(np.int32)
        assert (out == 64).all()   # 32 + 32 accumulated across the chain


class TestSE:
    def test_quantize(self, small_accelerator, pe, rng):
        values = rng.standard_normal(256).astype(np.float32)

        def program(ctx):
            yield from init_cbs(ctx, 2048, 2048)
            pe.cb(0).write_and_push(values)
            yield from ctx.issue(QuantizeCmd(src_cb=0, dst_cb=1, count=256,
                                             scale=0.05))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        out = pe.cb(1).read_and_pop(256).view(np.int8)
        ref = np.clip(np.round(values / 0.05), -128, 127).astype(np.int8)
        np.testing.assert_array_equal(out, ref)

    def test_dequantize(self, small_accelerator, pe, rng):
        q = rng.integers(-128, 128, 128, dtype=np.int8)

        def program(ctx):
            yield from init_cbs(ctx, 1024, 2048)
            pe.cb(0).write_and_push(q)
            yield from ctx.issue(QuantizeCmd(src_cb=0, dst_cb=1, count=128,
                                             scale=0.1,
                                             direction="dequantize"))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        out = pe.cb(1).read_and_pop(512).view(np.float32)
        np.testing.assert_allclose(out, q.astype(np.float32) * 0.1)

    @pytest.mark.parametrize("func,ref", [
        ("tanh", np.tanh),
        ("sigmoid", lambda x: 1 / (1 + np.exp(-x))),
        ("exp", np.exp),
    ])
    def test_nonlinear_lut_accuracy(self, small_accelerator, pe, rng,
                                    func, ref):
        values = (rng.standard_normal(128) * 2).astype(np.float32)

        def program(ctx):
            yield from init_cbs(ctx, 1024, 1024)
            pe.cb(0).write_and_push(values)
            yield from ctx.issue(NonlinearCmd(func=func, src_cb=0, dst_cb=1,
                                              count=128, src_dtype=FP32))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        out = pe.cb(1).read_and_pop(512).view(np.float32)
        expected = ref(values.astype(np.float64))
        scale = np.maximum(np.abs(expected), 1.0)
        assert np.max(np.abs(out - expected) / scale) < 2e-3

    def test_elementwise_add_int8(self, small_accelerator, pe, rng):
        a = rng.integers(-50, 50, 64, dtype=np.int8)
        b = rng.integers(-50, 50, 64, dtype=np.int8)

        def program(ctx):
            yield from init_cbs(ctx, 512, 512, 512)
            pe.cb(0).write_and_push(a)
            pe.cb(1).write_and_push(b)
            yield from ctx.issue(ElementwiseCmd(op="add", src_cb_a=0,
                                                src_cb_b=1, dst_cb=2,
                                                count=64, dtype=INT8))
            yield from ctx.drain()

        run(small_accelerator, pe, program)
        out = pe.cb(2).read_and_pop(64).view(np.int8)
        np.testing.assert_array_equal(out, (a + b).astype(np.int8))

    def test_unknown_nonlinear_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            NonlinearCmd(func="softmax")

    def test_unknown_elementwise_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            ElementwiseCmd(op="div")

    def test_bad_quantize_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            QuantizeCmd(direction="sideways")
