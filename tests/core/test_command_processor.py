"""Command Processor: schedulers, interlocks, element/space stalls."""

import numpy as np
import pytest

from repro.isa.commands import (DMALoad, DMAStore, InitAccumulators, InitCB,
                                MML, PopCB, PushCB)
from repro.sim import SimulationError


def run_program(acc, pe, core_id, program):
    proc = acc.launch(program, pe.cores[core_id], name="test")
    acc.run()
    return proc.value


class TestCBManagement:
    def test_init_cb_defines_buffer(self, small_accelerator):
        acc = small_accelerator
        pe = acc.grid.pe(0, 0)

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=3, base=0, size=512))

        run_program(acc, pe, 0, program)
        assert pe.cb(3).size == 512

    def test_undefined_cb_raises(self, small_accelerator):
        pe = small_accelerator.grid.pe(0, 0)
        with pytest.raises(SimulationError, match="not defined"):
            pe.cb(7)

    def test_pop_waits_for_elements(self, small_accelerator):
        acc = small_accelerator
        pe = acc.grid.pe(0, 0)
        times = {}

        def popper(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=256))
            yield from ctx.issue_and_wait(PopCB(cb_id=0, nbytes=64))
            times["pop"] = ctx.engine.now

        def producer(ctx):
            yield 100
            pe.cb(0).write_and_push(np.zeros(64, np.uint8))

        acc.launch(popper, pe.cores[0], name="popper")
        acc.launch(producer, pe.cores[1], name="producer")
        acc.run()
        assert times["pop"] >= 100

    def test_push_waits_for_space(self, small_accelerator):
        acc = small_accelerator
        pe = acc.grid.pe(0, 0)
        times = {}

        def pusher(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=128))
            pe.cb(0).write_and_push(np.zeros(128, np.uint8))  # fill it
            yield from ctx.issue_and_wait(PushCB(cb_id=0, nbytes=64))
            times["push"] = ctx.engine.now

        def consumer(ctx):
            yield 80
            pe.cb(0).pop(128)

        acc.launch(pusher, pe.cores[0], name="pusher")
        acc.launch(consumer, pe.cores[1], name="consumer")
        acc.run()
        assert times["push"] >= 80


class TestInterlocks:
    def test_mml_waits_for_prior_pop_same_cb(self, small_accelerator):
        """A read must see the settled read pointer (program order)."""
        acc = small_accelerator
        pe = acc.grid.pe(0, 0)

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=8192))
            yield from ctx.issue_and_wait(InitCB(cb_id=1, base=8192,
                                                 size=8192))
            # Two A blocks back to back; pop the first, then multiply
            # "offset 0" — which must resolve to the *second* block.
            a1 = np.full((32, 32), 1, np.int8)
            a2 = np.full((32, 32), 2, np.int8)
            b = np.eye(32, dtype=np.int8)
            pe.cb(0).write_and_push(b)
            pe.cb(1).write_and_push(a1)
            pe.cb(1).write_and_push(a2)
            yield from ctx.issue(InitAccumulators(banks=(0,)))
            yield from ctx.issue(PopCB(cb_id=1, nbytes=1024))
            yield from ctx.issue(MML(acc=0, cb_b=0, cb_a=1))
            yield from ctx.drain()

        run_program(acc, pe, 0, program)
        result = pe.re_unit.bank_value(0)
        assert (result == 2).all()

    def test_reduce_waits_for_mml_through_acc_regs(self, small_accelerator):
        """InitAcc -> MML -> Reduce must serialise through bank IDs."""
        acc = small_accelerator
        pe = acc.grid.pe(0, 0)
        from repro.isa.commands import Reduce

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=4096))
            yield from ctx.issue_and_wait(InitCB(cb_id=1, base=4096,
                                                 size=4096))
            yield from ctx.issue_and_wait(InitCB(cb_id=2, base=8192,
                                                 size=8192))
            a = np.eye(32, dtype=np.int8)
            b = np.full((32, 32), 3, np.int8)
            pe.cb(0).write_and_push(b)
            pe.cb(1).write_and_push(a)
            # Issue all three without waiting: ordering must come from
            # the CP's register interlocks, not from the program.
            yield from ctx.issue(InitAccumulators(banks=(0,)))
            yield from ctx.issue(MML(acc=0, cb_b=0, cb_a=1))
            yield from ctx.issue(Reduce(banks_layout=((0,),), dest_cb=2))
            yield from ctx.drain()

        run_program(acc, pe, 0, program)
        out = pe.cb(2).read_and_pop(32 * 32 * 4).view(np.int32)
        assert (out == 3).all()

    def test_consecutive_dma_loads_pipeline(self, small_accelerator):
        """FIFO-produce ops must NOT serialise on each other — that is
        the memory-level parallelism of Section 3.5."""
        acc = small_accelerator
        pe = acc.grid.pe(0, 0)
        addr = acc.alloc_dram(64 * 1024)
        n_loads = 8

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0,
                                                 size=n_loads * 512))
            for i in range(n_loads):
                yield from ctx.issue(DMALoad(addr=addr + i * 512,
                                             row_bytes=512, cb_id=0))
            yield from ctx.drain()
            return ctx.engine.now

        elapsed = run_program(acc, pe, 0, program)
        # Serial execution would cost ~8x the single-load latency
        # (>=100 cycles DRAM latency each); pipelined should be far less.
        assert elapsed < n_loads * 100

    def test_scheduler_queue_backpressure(self, small_accelerator):
        acc = small_accelerator
        pe = acc.grid.pe(0, 0)
        depth = acc.config.cp.queue_depth
        issued_times = []

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=64))
            # Pops that can never complete clog the CP unit queue, then
            # the scheduler queue; the core must eventually block.
            for i in range(3 * depth):
                yield from ctx.issue(PopCB(cb_id=0, nbytes=64))
                issued_times.append(ctx.engine.now)

        acc.launch(program, pe.cores[0], name="clog")
        with pytest.raises(SimulationError, match="did not finish"):
            acc.run()
        # The core got roughly two queue depths in (scheduler queue +
        # unit queue) before stalling, far short of what it wanted.
        assert len(issued_times) <= 2 * depth + 4


class TestDualCoreDecoupling:
    def test_producer_consumer_without_explicit_sync(self, small_accelerator):
        """The Figure 8 pattern: DMA on core 0, compute on core 1, with
        only CB element checks in between."""
        acc = small_accelerator
        pe = acc.grid.pe(0, 0)
        data = np.arange(1024, dtype=np.uint8)
        src = acc.upload(data)
        dst = acc.alloc_dram(1024)
        barrier = acc.barrier(2)

        def core0(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=512))
            yield from barrier.wait()
            for i in range(4):
                yield from ctx.issue(DMALoad(addr=src + i * 256,
                                             row_bytes=256, cb_id=0))
            yield from ctx.drain()

        def core1(ctx):
            yield from barrier.wait()
            for i in range(4):
                yield from ctx.issue(DMAStore(addr=dst + i * 256,
                                              row_bytes=256, cb_id=0))
            yield from ctx.drain()

        acc.launch(core0, pe.cores[0], name="prod")
        acc.launch(core1, pe.cores[1], name="cons")
        acc.run()
        np.testing.assert_array_equal(
            acc.download(dst, (1024,), np.uint8), data)


class TestPEToPEAccess:
    def test_dma_from_another_pes_local_memory(self, small_accelerator, rng):
        """Section 3.1.5: the FI "allows other entities (other PEs ...)
        to access the PE's internal resources" — a DMA can source from
        a neighbour's local-memory aperture."""
        acc = small_accelerator
        src_pe = acc.grid.pe(0, 0)
        dst_pe = acc.grid.pe(1, 1)
        payload = rng.integers(0, 256, 256, dtype=np.uint8)
        src_pe.local_memory.poke(0x200, payload)
        aperture = acc.memory.address_map.local_address(src_pe.index, 0x200)

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=512))
            yield from ctx.issue_and_wait(DMALoad(addr=aperture,
                                                  row_bytes=256, cb_id=0))

        acc.launch(program, dst_pe.cores[0])
        acc.run()
        np.testing.assert_array_equal(dst_pe.cb(0).read_and_pop(256),
                                      payload)

    def test_dma_store_into_another_pes_aperture(self, small_accelerator,
                                                 rng):
        acc = small_accelerator
        writer = acc.grid.pe(0, 1)
        target = acc.grid.pe(1, 0)
        payload = rng.integers(0, 256, 128, dtype=np.uint8)
        aperture = acc.memory.address_map.local_address(target.index, 0x400)

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=256))
            writer.cb(0).write_and_push(payload)
            yield from ctx.issue_and_wait(DMAStore(addr=aperture,
                                                   row_bytes=128, cb_id=0))

        acc.launch(program, writer.cores[0])
        acc.run()
        np.testing.assert_array_equal(target.local_memory.peek(0x400, 128),
                                      payload)
