"""Synchronisation primitives built on the CP's atomics (Section 3.1.6)."""

import pytest

from repro.core.sync import AtomicCounter, Barrier, TicketLock
from repro.sim import Engine


class TestAtomicCounter:
    def test_fetch_and_add_returns_previous(self, engine):
        ctr = AtomicCounter(engine)
        assert ctr.add(1) == 0
        assert ctr.add(5) == 1
        assert ctr.value == 6

    def test_wait_for_threshold(self, engine):
        ctr = AtomicCounter(engine)
        times = []

        def waiter():
            yield ctr.wait_for(3)
            times.append(engine.now)

        def incrementer():
            for _ in range(3):
                yield 10
                ctr.add(1)

        engine.process(waiter())
        engine.process(incrementer())
        engine.run()
        assert times == [30]

    def test_wait_already_satisfied(self, engine):
        ctr = AtomicCounter(engine, value=5)
        assert ctr.wait_for(3).triggered

    def test_set_wakes_waiters(self, engine):
        ctr = AtomicCounter(engine)
        ev = ctr.wait_for(10)
        ctr.set(10)
        assert ev.triggered


class TestBarrier:
    def test_all_parties_released_together(self, engine):
        barrier = Barrier(engine, parties=3)
        times = []

        def participant(delay):
            yield delay
            yield from barrier.wait()
            times.append(engine.now)

        for delay in (5, 20, 12):
            engine.process(participant(delay))
        engine.run()
        assert times == [20, 20, 20]

    def test_reusable_across_generations(self, engine):
        barrier = Barrier(engine, parties=2)
        log = []

        def participant(tag):
            for phase in range(3):
                yield 1
                yield from barrier.wait()
                log.append((phase, tag))

        engine.process(participant("a"))
        engine.process(participant("b"))
        engine.run()
        phases = [p for p, _ in log]
        assert phases == sorted(phases)
        assert len(log) == 6

    def test_single_party_barrier_is_trivial(self, engine):
        barrier = Barrier(engine, parties=1)

        def solo():
            yield from barrier.wait()
            return engine.now

        assert engine.run_process(solo()) == 0

    def test_nonpositive_parties_rejected(self, engine):
        with pytest.raises(ValueError):
            Barrier(engine, parties=0)


class TestTicketLock:
    def test_mutual_exclusion(self, engine):
        lock = TicketLock(engine)
        active = [0]
        peak = [0]

        def worker():
            yield from lock.acquire()
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield 5
            active[0] -= 1
            lock.release()

        for _ in range(4):
            engine.process(worker())
        engine.run()
        assert peak[0] == 1

    def test_fifo_tickets(self, engine):
        lock = TicketLock(engine)
        order = []

        def worker(tag):
            ticket = yield from lock.acquire()
            order.append((tag, ticket))
            yield 1
            lock.release()

        for tag in "abc":
            engine.process(worker(tag))
        engine.run()
        assert order == [("a", 0), ("b", 1), ("c", 2)]

    def test_locked_property(self, engine):
        lock = TicketLock(engine)
        assert not lock.locked

        def holder():
            yield from lock.acquire()
            yield 10
            lock.release()

        engine.process(holder())
        engine.run(until=5)
        assert lock.locked
        engine.run()
        assert not lock.locked
