"""Circular buffers: the buffet-style abstraction of Section 3.3."""

import numpy as np
import pytest

from repro.config import MTIA_V1
from repro.core.circular_buffer import CircularBuffer
from repro.memory.local_memory import LocalMemory
from repro.sim import Engine, SimulationError


@pytest.fixture
def lm(engine):
    return LocalMemory(engine, MTIA_V1.local_memory)


@pytest.fixture
def cb(engine, lm):
    return CircularBuffer(engine, lm, cb_id=0, base=0, size=256)


class TestAccounting:
    def test_starts_empty(self, cb):
        assert cb.available == 0
        assert cb.space == 256

    def test_produce_consume(self, cb):
        cb.write_and_push(np.arange(100, dtype=np.uint8))
        assert cb.available == 100
        assert cb.space == 156
        cb.pop(40)
        assert cb.available == 60
        assert cb.total_consumed == 40

    def test_pop_beyond_available_rejected(self, cb):
        cb.write_and_push(np.zeros(10, np.uint8))
        with pytest.raises(SimulationError):
            cb.pop(11)

    def test_push_beyond_space_rejected(self, cb):
        cb.push(200)
        with pytest.raises(SimulationError):
            cb.push(100)

    def test_completely_full_buffer_representable(self, cb):
        cb.write_and_push(np.zeros(256, np.uint8))
        assert cb.available == 256
        assert cb.space == 0

    def test_out_of_bounds_definition_rejected(self, engine, lm):
        with pytest.raises(ValueError):
            CircularBuffer(engine, lm, 0, base=0,
                           size=MTIA_V1.local_memory.capacity_bytes + 1)
        with pytest.raises(ValueError):
            CircularBuffer(engine, lm, 0, base=0, size=0)


class TestDataPath:
    def test_fifo_roundtrip(self, cb, rng):
        data = rng.integers(0, 256, 200, dtype=np.uint8)
        cb.write_and_push(data)
        np.testing.assert_array_equal(cb.read_and_pop(200), data)

    def test_wraparound(self, cb, rng):
        first = rng.integers(0, 256, 200, dtype=np.uint8)
        cb.write_and_push(first)
        cb.pop(200)
        # Now 56 bytes remain before the wrap point.
        second = rng.integers(0, 256, 150, dtype=np.uint8)
        cb.write_and_push(second)
        np.testing.assert_array_equal(cb.read_and_pop(150), second)

    def test_offset_read_does_not_consume(self, cb, rng):
        """Section 3.3: offset reads allow reuse before marking consumed."""
        data = rng.integers(0, 256, 128, dtype=np.uint8)
        cb.write_and_push(data)
        for _ in range(3):
            np.testing.assert_array_equal(cb.read_at(64, 32), data[64:96])
        assert cb.available == 128

    def test_offset_write_then_explicit_push(self, cb, rng):
        data = rng.integers(0, 256, 64, dtype=np.uint8)
        cb.write_at(0, data)
        assert cb.available == 0      # not yet produced
        cb.push(64)
        np.testing.assert_array_equal(cb.read_at(0, 64), data)

    def test_read_larger_than_buffer_rejected(self, cb):
        with pytest.raises(SimulationError):
            cb.read_at(200, 100)

    def test_data_lives_in_local_memory(self, cb, lm, rng):
        data = rng.integers(0, 256, 32, dtype=np.uint8)
        cb.write_and_push(data)
        np.testing.assert_array_equal(lm.peek(0, 32), data)


class TestBlockingChecks:
    def test_wait_elements_blocks_until_push(self, engine, cb):
        times = []

        def consumer():
            yield cb.wait_elements(64)
            times.append(engine.now)

        def producer():
            yield 30
            cb.write_and_push(np.zeros(32, np.uint8))
            yield 30
            cb.write_and_push(np.zeros(32, np.uint8))

        engine.process(consumer())
        engine.process(producer())
        engine.run()
        assert times == [60]

    def test_wait_space_blocks_until_pop(self, engine, cb):
        cb.write_and_push(np.zeros(256, np.uint8))
        times = []

        def producer():
            yield cb.wait_space(100)
            times.append(engine.now)

        def consumer():
            yield 25
            cb.pop(100)

        engine.process(producer())
        engine.process(consumer())
        engine.run()
        assert times == [25]

    def test_satisfied_wait_fires_immediately(self, engine, cb):
        cb.write_and_push(np.zeros(10, np.uint8))
        ev = cb.wait_elements(10)
        assert ev.triggered

    def test_impossible_wait_rejected(self, cb):
        with pytest.raises(SimulationError, match="never succeed"):
            cb.wait_elements(257)
        with pytest.raises(SimulationError, match="never succeed"):
            cb.wait_space(257)

    def test_multiple_waiters_wake_in_any_satisfied_order(self, engine, cb):
        woken = []

        def waiter(tag, amount):
            yield cb.wait_elements(amount)
            woken.append(tag)

        engine.process(waiter("small", 16))
        engine.process(waiter("large", 128))
        engine.run()
        cb.write_and_push(np.zeros(16, np.uint8))
        engine.run()
        assert woken == ["small"]
        cb.write_and_push(np.zeros(112, np.uint8))
        engine.run()
        assert woken == ["small", "large"]


class TestReservations:
    def test_reserve_claims_space(self, cb):
        cb.reserve(100)
        assert cb.space == 156
        assert cb.reserved == 100

    def test_commit_converts_to_fill(self, cb, rng):
        data = rng.integers(0, 256, 100, dtype=np.uint8)
        cb.reserve(100)
        cb.commit(data)
        assert cb.reserved == 0
        assert cb.available == 100
        np.testing.assert_array_equal(cb.read_at(0, 100), data)

    def test_overcommit_rejected(self, cb):
        cb.reserve(10)
        with pytest.raises(SimulationError):
            cb.commit(np.zeros(11, np.uint8))

    def test_reserve_beyond_space_rejected(self, cb):
        cb.write_and_push(np.zeros(200, np.uint8))
        with pytest.raises(SimulationError):
            cb.reserve(100)

    def test_wait_space_respects_reservations(self, engine, cb):
        cb.reserve(200)
        ev = cb.wait_space(100)
        assert not ev.triggered
        cb.commit(np.zeros(200, np.uint8))
        cb.pop(200)
        engine.run()
        assert ev.triggered

    def test_interleaved_reservations_commit_in_order(self, cb):
        cb.reserve(32)
        cb.reserve(32)
        first = np.full(32, 1, np.uint8)
        second = np.full(32, 2, np.uint8)
        cb.commit(first)
        cb.commit(second)
        np.testing.assert_array_equal(cb.read_and_pop(32), first)
        np.testing.assert_array_equal(cb.read_and_pop(32), second)
