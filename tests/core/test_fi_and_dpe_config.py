"""FI memory-level parallelism and DPE dtype handling."""

import dataclasses

import numpy as np
import pytest

from repro import Accelerator, MTIA_V1
from repro.dtypes import BF16
from repro.isa.commands import DMALoad, InitCB, MML
from repro.sim import SimulationError


class TestMemoryLevelParallelism:
    def _load_time(self, max_outstanding, n_loads=16):
        config = MTIA_V1.scaled(
            fi=dataclasses.replace(MTIA_V1.fi,
                                   max_outstanding_loads=max_outstanding))
        acc = Accelerator(config)
        pe = acc.grid.pe(0, 0)
        addr = acc.alloc_dram(n_loads * 512)

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0,
                                                 size=n_loads * 512))
            for i in range(n_loads):
                yield from ctx.issue(DMALoad(addr=addr + i * 512,
                                             row_bytes=512, cb_id=0))
            yield from ctx.drain()
            return ctx.engine.now

        proc = acc.launch(program, pe.cores[0])
        acc.run()
        return proc.value

    def test_more_outstanding_loads_is_faster(self):
        """Section 3.5's MLP: deeper request pipelining hides latency."""
        serial = self._load_time(max_outstanding=1)
        pipelined = self._load_time(max_outstanding=8)
        assert pipelined < serial / 2

    def test_commits_remain_in_order_under_parallelism(self, rng):
        """Out-of-order DMA completion must not reorder CB contents."""
        acc = Accelerator()
        pe = acc.grid.pe(0, 0)
        chunks = [rng.integers(0, 256, 256, dtype=np.uint8)
                  for _ in range(8)]
        addrs = [acc.upload(c) for c in chunks]

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=4096))
            for addr in addrs:
                yield from ctx.issue(DMALoad(addr=addr, row_bytes=256,
                                             cb_id=0))
            yield from ctx.drain()

        acc.launch(program, pe.cores[0])
        acc.run()
        for chunk in chunks:
            np.testing.assert_array_equal(pe.cb(0).read_and_pop(256), chunk)


class TestDPEDtypes:
    def test_bf16_rejected_with_guidance(self, small_accelerator):
        acc = small_accelerator
        pe = acc.grid.pe(0, 0)

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=4096))
            yield from ctx.issue_and_wait(InitCB(cb_id=1, base=4096,
                                                 size=4096))
            pe.cb(0).write_and_push(np.zeros(2048, np.uint8))
            pe.cb(1).write_and_push(np.zeros(2048, np.uint8))
            yield from ctx.issue_and_wait(MML(acc=0, cb_b=0, cb_a=1,
                                              dtype=BF16))

        acc.launch(program, pe.cores[0])
        with pytest.raises(SimulationError, match="bf16"):
            acc.run()

    def test_fp16_takes_twice_the_stream_cycles(self, small_accelerator):
        """512 FP16 MACs/cycle vs 1024 INT8 (Section 3.1.2)."""
        from repro.dtypes import FP16, INT8
        acc = small_accelerator
        pe = acc.grid.pe(0, 0)
        durations = {}

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=8192))
            yield from ctx.issue_and_wait(InitCB(cb_id=1, base=8192,
                                                 size=8192))
            pe.cb(0).write_and_push(np.zeros((32, 32), np.int8))
            pe.cb(1).write_and_push(np.zeros((32, 32), np.int8))
            pe.cb(0).write_and_push(np.zeros((32, 32), np.float16))
            pe.cb(1).write_and_push(np.zeros((32, 32), np.float16))
            # Warm both operand-cache entries, then time the streams.
            yield from ctx.issue_and_wait(MML(acc=0, cb_b=0, cb_a=1,
                                              dtype=INT8))
            t0 = ctx.engine.now
            yield from ctx.issue_and_wait(MML(acc=0, cb_b=0, cb_a=1,
                                              dtype=INT8))
            durations["int8"] = ctx.engine.now - t0
            yield from ctx.issue_and_wait(MML(acc=1, cb_b=0, cb_a=1,
                                              offset_b=1024, offset_a=1024,
                                              dtype=FP16))
            t0 = ctx.engine.now
            yield from ctx.issue_and_wait(MML(acc=1, cb_b=0, cb_a=1,
                                              offset_b=1024, offset_a=1024,
                                              dtype=FP16))
            durations["fp16"] = ctx.engine.now - t0

        acc.launch(program, pe.cores[0])
        acc.run()
        # Stream cycles: 32 vs 64, plus the wider operand's extra
        # local-memory port time; issue overheads cancel.
        assert durations["fp16"] - durations["int8"] == pytest.approx(
            32, abs=8)
