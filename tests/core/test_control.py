"""Control subsystem, register network, boot sequence, doorbells."""

import pytest

from repro import Accelerator
from repro.config import MTIA_V1
from repro.core.control import (BOOT_STAGE_CYCLES, BootStage,
                                ControlSubsystem, REG_BOOT_STAGE,
                                REG_DOORBELL, REG_JOBS_SUBMITTED,
                                REG_PE_STATE)
from repro.noc.register_network import RegisterNetwork
from repro.sim import Engine, SimulationError


class TestRegisterNetwork:
    def test_read_write_transaction(self, engine):
        net = RegisterNetwork(engine, MTIA_V1)
        block = net.register_block("unit")
        block.define(0x0, 7)

        def program():
            value = yield from net.read("unit", 0x0)
            yield from net.write("unit", 0x0, value + 1)
            return (yield from net.read("unit", 0x0))

        assert engine.run_process(program()) == 8
        assert net.stats["reads"] == 2
        assert net.stats["writes"] == 1

    def test_undefined_register_rejected(self, engine):
        net = RegisterNetwork(engine, MTIA_V1)
        net.register_block("unit")

        def program():
            yield from net.read("unit", 0x40)

        with pytest.raises(SimulationError, match="undefined register"):
            engine.run_process(program())

    def test_unknown_block_rejected(self, engine):
        net = RegisterNetwork(engine, MTIA_V1)

        def program():
            yield from net.read("ghost", 0)

        with pytest.raises(SimulationError, match="no register block"):
            engine.run_process(program())

    def test_duplicate_block_rejected(self, engine):
        net = RegisterNetwork(engine, MTIA_V1)
        net.register_block("x")
        with pytest.raises(SimulationError, match="already exists"):
            net.register_block("x")

    def test_transactions_take_time(self, engine):
        net = RegisterNetwork(engine, MTIA_V1)
        block = net.register_block("unit")
        block.define(0)

        def program():
            yield from net.read("unit", 0)
            return engine.now

        assert engine.run_process(program()) >= 4

    def test_write_hook_fires(self, engine):
        net = RegisterNetwork(engine, MTIA_V1)
        seen = []
        block = net.register_block("unit")
        block.define(0x8, on_write=seen.append)

        def program():
            yield from net.write("unit", 0x8, 42)

        engine.run_process(program())
        assert seen == [42]

    def test_poll_until_value(self, engine):
        net = RegisterNetwork(engine, MTIA_V1)
        block = net.register_block("unit")
        block.define(0)

        def setter():
            yield 200
            block.poke(0, 1)

        def poller():
            waited = yield from net.poll("unit", 0, expected=1)
            return engine.now

        engine.process(setter())
        proc = engine.process(poller())
        engine.run()
        assert proc.value >= 200

    def test_poll_timeout(self, engine):
        net = RegisterNetwork(engine, MTIA_V1)
        block = net.register_block("unit")
        block.define(0)

        def poller():
            yield from net.poll("unit", 0, expected=1, timeout=100)

        with pytest.raises(SimulationError, match="timed out"):
            engine.run_process(poller())


class TestBootSequence:
    def test_stages_progress_in_order(self, engine):
        control = ControlSubsystem(engine, MTIA_V1)
        assert control.stage is BootStage.RESET
        ready = control.boot()
        engine.run()
        assert ready.triggered
        assert control.stage is BootStage.READY
        assert engine.now == sum(BOOT_STAGE_CYCLES.values())

    def test_boot_twice_rejected(self, engine):
        control = ControlSubsystem(engine, MTIA_V1)
        control.boot()
        engine.run()
        with pytest.raises(SimulationError):
            control.boot()

    def test_boot_stage_visible_in_csr(self, engine):
        control = ControlSubsystem(engine, MTIA_V1)
        control.boot()
        engine.run()
        assert control.csr.read(REG_BOOT_STAGE) == BootStage.READY.value

    def test_accelerator_default_is_booted(self):
        acc = Accelerator()
        assert acc.control.ready

    def test_accelerator_simulate_boot(self):
        acc = Accelerator(simulate_boot=True)
        assert not acc.control.ready
        acc.control.boot()
        acc.engine.run()
        assert acc.control.ready


class TestDoorbellsAndMonitors:
    def test_host_doorbell_reaches_firmware(self):
        acc = Accelerator()
        control = acc.control
        got = []

        def firmware():
            value = yield control.next_doorbell()
            got.append(value)

        def host():
            yield 10
            yield from control.ring_doorbell(99)

        acc.engine.process(firmware())
        acc.engine.process(host())
        acc.engine.run()
        assert got == [99]
        assert control.csr.read(REG_JOBS_SUBMITTED) == 1

    def test_doorbell_before_boot_rejected(self, engine):
        control = ControlSubsystem(engine, MTIA_V1)

        def host():
            yield from control.ring_doorbell()

        with pytest.raises(SimulationError, match="not booted"):
            engine.run_process(host())

    def test_pe_monitors_track_state(self):
        acc = Accelerator()
        acc.control.mark_pe(5, 2)
        assert acc.control.busy_pes() == 1
        assert acc.control.pe_monitors[5].read(REG_PE_STATE) == 2
        acc.control.mark_pe(5, 0)
        assert acc.control.busy_pes() == 0

    def test_job_counters(self):
        acc = Accelerator()
        acc.control.complete_job()
        acc.control.complete_job()
        from repro.core.control import REG_JOBS_COMPLETED
        assert acc.control.csr.read(REG_JOBS_COMPLETED) == 2
