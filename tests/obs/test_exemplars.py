"""ExemplarStore: slowest-k, priority reservoir, merge invariance."""

import json

import numpy as np
import pytest

from repro.obs.exemplars import ExemplarRecord, ExemplarStore, priority_hash


def make_record(request_id, latency, replica=0):
    return ExemplarRecord(
        replica=replica, request_id=request_id,
        arrival_us=float(request_id) * 10.0, latency_us=float(latency),
        queue_wait_us=1.0, batch_wait_us=2.0,
        execute_us=float(latency) - 3.0,
        batch_index=request_id // 4, batch_size=4)


def canonical(store: ExemplarStore) -> str:
    return json.dumps(store.to_dict(), sort_keys=True)


class TestPriorityHash:
    def test_deterministic_and_uniform_ish(self):
        a = priority_hash(0, 1, 2)
        assert a == priority_hash(0, 1, 2)
        assert 0.0 <= a < 1.0
        values = [priority_hash(7, r, i)
                  for r in range(4) for i in range(250)]
        assert 0.4 < float(np.mean(values)) < 0.6

    def test_seed_changes_sample(self):
        ids = [priority_hash(0, 0, i) for i in range(100)]
        other = [priority_hash(1, 0, i) for i in range(100)]
        assert ids != other


class TestSlowestK:
    def test_keeps_exactly_the_slowest(self):
        rng = np.random.default_rng(0)
        latencies = rng.permutation(np.arange(100.0, 600.0, 5.0))
        store = ExemplarStore(slowest_k=5, reservoir_size=0)
        for i, lat in enumerate(latencies):
            store.offer(make_record(i, lat))
        kept = [r.latency_us for r in store.slowest]
        assert kept == sorted(latencies, reverse=True)[:5]

    def test_tie_break_is_total_order(self):
        store = ExemplarStore(slowest_k=2, reservoir_size=0)
        for rid in (5, 3, 9):
            store.offer(make_record(rid, 100.0))
        # equal latency → lowest (replica, request_id) wins
        assert store.slowest_ids() == [(0, 3), (0, 5)]


class TestMergeInvariance:
    def test_merge_any_order_equals_single_store(self):
        rng = np.random.default_rng(1)
        records = [make_record(i, rng.exponential(200.0), replica=i % 3)
                   for i in range(300)]
        single = ExemplarStore(slowest_k=6, reservoir_size=10, seed=9)
        for r in records:
            single.offer(r)

        def sharded(order):
            shards = []
            for lo in range(0, 300, 100):
                s = ExemplarStore(slowest_k=6, reservoir_size=10, seed=9)
                for r in records[lo:lo + 100]:
                    s.offer(r)
                shards.append(s)
            out = ExemplarStore(slowest_k=6, reservoir_size=10, seed=9)
            for i in order:
                out.merge(shards[i])
            return out

        assert canonical(sharded((0, 1, 2))) == canonical(single)
        assert canonical(sharded((2, 0, 1))) == canonical(single)

    def test_merge_rejects_seed_mismatch(self):
        with pytest.raises(ValueError):
            ExemplarStore(seed=0).merge(ExemplarStore(seed=1))

    def test_reservoir_is_set_function_not_order_function(self):
        records = [make_record(i, 100.0 + i) for i in range(50)]
        fwd = ExemplarStore(reservoir_size=8, seed=3)
        rev = ExemplarStore(reservoir_size=8, seed=3)
        for r in records:
            fwd.offer(r)
        for r in reversed(records):
            rev.offer(r)
        assert canonical(fwd) == canonical(rev)


class TestExport:
    def test_roundtrip(self):
        store = ExemplarStore(slowest_k=3, reservoir_size=4, seed=5)
        for i in range(20):
            store.offer(make_record(i, 50.0 + 13.0 * (i % 7)))
        clone = ExemplarStore.from_dict(store.to_dict())
        assert canonical(clone) == canonical(store)

    def test_record_dict_keys(self):
        row = make_record(1, 100.0).to_dict()
        assert set(row) == {"replica", "request", "arrival_us",
                            "latency_us", "queue_wait_us",
                            "batch_wait_us", "execute_us",
                            "retry_overhead_us", "batch", "batch_size",
                            "status"}
