"""QuantileSketch: relative-error bound, merges, serialization."""

import json
import math

import numpy as np
import pytest

from repro.obs.sketch import (DEFAULT_MAX_BINS, DEFAULT_RELATIVE_ACCURACY,
                              QuantileSketch)


def canonical(sketch: QuantileSketch) -> str:
    return json.dumps(sketch.to_dict(), sort_keys=True)


def exact_percentile(values, q):
    """Lower order statistic at rank q — the value the sketch bounds."""
    ordered = sorted(values)
    rank = q / 100.0 * (len(ordered) - 1)
    return ordered[math.floor(rank)]


class TestBasics:
    def test_empty(self):
        s = QuantileSketch()
        assert s.count == 0
        assert s.percentile(50) == 0.0
        assert s.min == 0.0 and s.max == 0.0
        assert s.sum == 0.0

    def test_single_value(self):
        s = QuantileSketch()
        s.add(42.0)
        assert s.count == 1
        assert s.percentile(0) == 42.0
        assert s.percentile(100) == 42.0
        assert abs(s.percentile(50) - 42.0) <= 0.01 * 42.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=1.0)
        with pytest.raises(ValueError):
            QuantileSketch(max_bins=1)
        with pytest.raises(ValueError):
            QuantileSketch().add(float("nan"))
        with pytest.raises(ValueError):
            QuantileSketch().add_many([1.0, float("nan")])

    def test_add_many_matches_add(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(3.0, 1.0, size=500)
        one = QuantileSketch()
        for v in values:
            one.add(float(v))
        bulk = QuantileSketch()
        bulk.add_many(values)
        assert canonical(one) == canonical(bulk)

    def test_zeros_and_negatives(self):
        s = QuantileSketch()
        s.add_many([-100.0, -1.0, 0.0, 0.0, 1.0, 100.0])
        assert s.count == 6
        assert s.zero_count == 2
        assert s.percentile(0) == -100.0
        assert s.percentile(100) == 100.0
        # zeros sit between the negatives and positives in rank order
        assert s.percentile(50) == 0.0

    def test_relative_error_bound_lognormal(self):
        rng = np.random.default_rng(1)
        values = rng.lognormal(3.0, 1.2, size=20_000)
        s = QuantileSketch(0.01)
        s.add_many(values)
        for q in (1, 10, 25, 50, 75, 90, 95, 99, 99.9):
            true = exact_percentile(values, q)
            est = s.percentile(q)
            assert abs(est - true) <= 0.0101 * abs(true), (
                f"p{q}: est {est} vs true {true}")

    def test_count_min_max_mean(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        s = QuantileSketch()
        s.add_many(values)
        assert s.count == len(values)
        assert s.min == 1.0 and s.max == 9.0
        assert abs(s.mean - np.mean(values)) <= 0.01 * np.mean(values)
        assert s.value == s.mean


class TestMergeInvariance:
    def test_merge_both_orders_equals_single_stream(self):
        rng = np.random.default_rng(2)
        values = rng.exponential(100.0, size=5_000)
        whole = QuantileSketch()
        whole.add_many(values)
        a, b = QuantileSketch(), QuantileSketch()
        a.add_many(values[:1234])
        b.add_many(values[1234:])
        ab = a.copy().merge(b)
        ba = b.copy().merge(a)
        assert canonical(whole) == canonical(ab) == canonical(ba)

    def test_merge_many_shards_any_grouping(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(2.0, 1.0, size=3_000)
        shards = np.array_split(values, 7)

        def build(order):
            out = QuantileSketch()
            for i in order:
                part = QuantileSketch()
                part.add_many(shards[i])
                out.merge(part)
            return out

        fwd = build(range(7))
        rev = build(reversed(range(7)))
        assert canonical(fwd) == canonical(rev)

    def test_merge_requires_same_accuracy(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_merge_preserves_exact_count(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.add_many([1.0, 2.0, 0.0])
        b.add_many([-3.0, 4.0])
        assert a.merge(b).count == 5


class TestBoundedMemory:
    def test_collapse_caps_buckets(self):
        rng = np.random.default_rng(4)
        # nine decades of dynamic range blows past a 64-bucket budget
        values = np.power(10.0, rng.uniform(-3, 6, size=20_000))
        s = QuantileSketch(0.01, max_bins=64)
        s.add_many(values)
        assert s.num_buckets > 64          # live map is uncollapsed
        dump = s.to_dict()
        assert len(dump["counts"]) <= 64   # serialized state is capped
        assert sum(dump["counts"].values()) + dump["zero_count"] == s.count
        # quantiles in the *kept* range (the tail telemetry cares
        # about) keep the guarantee; folded low quantiles only ever
        # overestimate (mass moves up into the fold bucket), never
        # corrupt the tail
        for q in (99, 99.9):
            true = exact_percentile(values, q)
            assert abs(s.percentile(q) - true) <= 0.0101 * true
        assert s.percentile(10) >= exact_percentile(values, 10)

    def test_collapse_is_merge_order_invariant(self):
        rng = np.random.default_rng(5)
        values = np.power(10.0, rng.uniform(-3, 6, size=4_000))
        whole = QuantileSketch(0.01, max_bins=32)
        whole.add_many(values)
        a = QuantileSketch(0.01, max_bins=32)
        b = QuantileSketch(0.01, max_bins=32)
        a.add_many(values[:2_000])
        b.add_many(values[2_000:])
        assert canonical(a.copy().merge(b)) == canonical(whole)
        assert canonical(b.copy().merge(a)) == canonical(whole)


class TestSerialization:
    def test_roundtrip(self):
        rng = np.random.default_rng(6)
        s = QuantileSketch(0.02)
        s.add_many(rng.normal(0.0, 50.0, size=2_000))   # mixed signs
        clone = QuantileSketch.from_dict(s.to_dict())
        assert canonical(clone) == canonical(s)
        for q in (1, 50, 99):
            assert clone.percentile(q) == s.percentile(q)

    def test_summary_keys(self):
        s = QuantileSketch()
        s.add_many([1.0, 2.0, 3.0])
        summary = s.summary()
        assert set(summary) == {"count", "relative_accuracy",
                                "num_buckets", "min", "max", "mean",
                                "p50", "p95", "p99"}


class TestAcceptance:
    def test_million_sample_stream(self):
        """ISSUE acceptance: 1M samples, p50/p95/p99 within 1 %, O(1k)
        buckets."""
        rng = np.random.default_rng(42)
        # diurnal-ish latency mix: lognormal body + heavy tail burst
        body = rng.lognormal(5.0, 0.6, size=900_000)
        tail = rng.lognormal(7.0, 0.4, size=100_000)
        values = np.concatenate([body, tail])
        s = QuantileSketch(DEFAULT_RELATIVE_ACCURACY)
        s.add_many(values)
        assert s.count == 1_000_000
        for q in (50, 95, 99):
            true = float(np.percentile(values, q))
            est = s.percentile(q)
            assert abs(est - true) / true <= 0.01, (
                f"p{q}: {est} vs {true}")
        assert s.num_buckets <= 1_000         # O(1k) live buckets
        assert s.max_bins == DEFAULT_MAX_BINS
