"""Stall attribution: every idle cycle lands under a named cause."""

import pytest

from repro import Accelerator
from repro.kernels.fc import run_fc
from repro.kernels.tbe import TBEConfig, run_tbe
from repro.obs import MetricRegistry, Observer, STALL_CAUSES


def small_fc(acc):
    return run_fc(acc, m=64, k=64, n=64,
                  subgrid=acc.subgrid((0, 0), 1, 1))


def small_tbe(acc, prefetch_rows):
    config = TBEConfig(num_tables=2, rows_per_table=512, embedding_dim=64,
                       pooling_factor=8, batch_size=4)
    return run_tbe(acc, config, subgrid=acc.subgrid((0, 0), 1, 1),
                   prefetch_rows=prefetch_rows)


class TestObserverBasics:
    def test_disabled_observer_records_nothing(self):
        obs = Observer(enabled=False)
        obs.stall("pe0.dpe", "dep_interlock", 0, 100)
        obs.count("x")
        assert obs.stalls_by_cause() == {}
        assert obs.registry.rollup("x") == {}

    def test_stall_lands_in_labelled_counter(self):
        obs = Observer(enabled=True)
        obs.stall("pe0.dpe", "dep_interlock", 10, 25)
        obs.stall("pe0.dpe", "dep_interlock", 30, 35)
        obs.stall("pe1.fi", "cb_space_wait", 0, 8)
        assert obs.stalls_by_cause() == {"dep_interlock": 20,
                                         "cb_space_wait": 8}
        assert obs.stalls_by_track()["pe0.dpe"] == {"dep_interlock": 20}

    def test_zero_length_stall_ignored(self):
        obs = Observer(enabled=True)
        obs.stall("t", "dep_interlock", 5, 5)
        assert obs.stalls_by_cause() == {}

    def test_stall_becomes_tracer_span(self):
        from repro.sim import Tracer
        tracer = Tracer(enabled=True)
        obs = Observer(enabled=True, tracer=tracer)
        obs.stall("pe0.dpe", "dep_interlock", 10, 25)
        (span,) = tracer.spans
        assert span.name == "stall:dep_interlock"
        assert (span.start, span.end) == (10, 25)


class TestUnobservedRuns:
    def test_default_run_records_no_attribution(self):
        acc = Accelerator()
        small_fc(acc)
        assert acc.obs.stalls_by_cause() == {}

    def test_observed_run_matches_unobserved_timing(self):
        """Attribution must not perturb the simulated schedule."""
        plain = small_fc(Accelerator()).cycles
        observed = small_fc(Accelerator(observe=True)).cycles
        assert observed == plain


class TestFCAttribution:
    def test_producer_starved_fc_attributes_element_waits(self):
        """Consumers outrun the DMA stream -> cb_element_wait > 0."""
        acc = Accelerator(observe=True)
        small_fc(acc)
        causes = acc.obs.stalls_by_cause()
        assert causes.get("cb_element_wait", 0) > 0
        assert causes.get("dep_interlock", 0) > 0
        assert set(causes) <= set(STALL_CAUSES)

    def test_attribution_is_per_track(self):
        acc = Accelerator(observe=True)
        small_fc(acc)
        by_track = acc.obs.stalls_by_track()
        unit_tracks = [t for t in by_track if t.startswith("pe0.")]
        assert unit_tracks, by_track
        for causes in by_track.values():
            assert all(cycles > 0 for cycles in causes.values())

    def test_multi_pe_fc_attributes_noc_arbitration(self):
        acc = Accelerator(observe=True)
        run_fc(acc, m=128, k=64, n=128, subgrid=acc.subgrid((0, 0), 2, 2))
        causes = acc.obs.stalls_by_cause()
        assert causes.get("noc_link_arb", 0) > 0


class TestTBEAttribution:
    def test_space_limited_tbe_attributes_space_waits(self):
        """One-row CBs backpressure the FI -> cb_space_wait > 0."""
        acc = Accelerator(observe=True)
        small_tbe(acc, prefetch_rows=1)
        causes = acc.obs.stalls_by_cause()
        assert causes.get("cb_space_wait", 0) > 0

    def test_deeper_pipelining_reduces_space_waits(self):
        shallow = Accelerator(observe=True)
        small_tbe(shallow, prefetch_rows=1)
        deep = Accelerator(observe=True)
        small_tbe(deep, prefetch_rows=8)
        assert (deep.obs.stalls_by_cause().get("cb_space_wait", 0)
                < shallow.obs.stalls_by_cause().get("cb_space_wait", 0))


class TestExternalRegistry:
    def test_shared_registry_aggregates_two_cards(self):
        registry = MetricRegistry("fleet")
        card0 = Accelerator(registry=registry, name="card0")
        card1 = Accelerator(registry=registry, name="card1")
        small_fc(card0)
        small_fc(card1)
        total = registry.rollup("stall_cycles")[()]
        assert total == pytest.approx(
            sum(card0.obs.stalls_by_cause().values()))
        assert card0.metrics is card1.metrics is registry
