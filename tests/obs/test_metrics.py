"""Metrics registry: instruments, labels, roll-up, exporters."""

import csv
import io
import json

import pytest

from repro.obs import (MetricRegistry, default_registry,
                       disable_default_registry, enable_default_registry,
                       format_labels)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricRegistry()
        c = reg.counter("bytes").labels(pe=0)
        c.inc()
        c.inc(99)
        assert c.value == 100

    def test_counter_rejects_negative(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").labels().inc(-1)

    def test_gauge_set_inc_dec_max(self):
        reg = MetricRegistry()
        g = reg.gauge("depth").labels()
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6
        g.set_max(3)
        assert g.value == 6
        g.set_max(10)
        assert g.value == 10

    def test_histogram_percentiles_exact(self):
        reg = MetricRegistry()
        h = reg.histogram("lat").labels()
        for v in range(1, 101):
            h.observe(v)
        assert h.count == 100
        assert h.p50 == pytest.approx(50.5)
        assert h.p95 == pytest.approx(95.05)
        assert h.p99 == pytest.approx(99.01)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100

    def test_histogram_custom_buckets_appends_inf(self):
        reg = MetricRegistry()
        h = reg.histogram("w", buckets=(1, 10)).labels()
        h.observe(500)
        assert h.buckets[-1] == float("inf")
        assert h.bucket_counts[-1] == 1

    def test_observe_many_matches_scalar_loop(self):
        import numpy as np
        reg = MetricRegistry()
        values = np.random.default_rng(0).exponential(300.0, size=500)
        # include exact bucket boundaries — searchsorted must agree
        # with scalar observe's "first bound >= v" rule
        values = np.concatenate([values, [0.0, 1.0, 1000.0]])
        bulk = reg.histogram("bulk").labels()
        bulk.observe_many(values)
        loop = reg.histogram("loop").labels()
        for v in values:
            loop.observe(float(v))
        assert bulk.count == loop.count
        assert bulk.sum == pytest.approx(loop.sum)
        assert bulk.bucket_counts == loop.bucket_counts
        assert bulk.p99 == pytest.approx(loop.p99)

    def test_observe_many_accepts_lists_and_empty(self):
        reg = MetricRegistry()
        h = reg.histogram("x").labels()
        h.observe_many([1, 2, 3])
        h.observe_many([])
        assert h.count == 3


class TestFamilies:
    def test_same_labels_return_same_child(self):
        reg = MetricRegistry()
        fam = reg.counter("stalls")
        assert fam.labels(pe=3, unit="dpe") is fam.labels(unit="dpe", pe=3)
        assert fam.labels(pe=4) is not fam.labels(pe=3)
        assert len(fam) == 3   # {pe=3,unit=dpe}, {pe=4}, {pe=3}

    def test_family_constructor_is_idempotent(self):
        reg = MetricRegistry()
        reg.counter("n").labels().inc()
        reg.counter("n").labels().inc()
        assert reg.counter("n").total() == 2

    def test_kind_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("n")
        with pytest.raises(ValueError):
            reg.gauge("n")

    def test_get_does_not_create(self):
        reg = MetricRegistry()
        fam = reg.counter("n")
        assert fam.get(pe=1) is None
        fam.labels(pe=1)
        assert fam.get(pe=1) is not None

    def test_format_labels(self):
        reg = MetricRegistry()
        fam = reg.counter("n")
        fam.labels(unit="dpe", pe=3)
        (key, _), = fam.samples()
        assert format_labels(key) == "pe=3,unit=dpe"


class TestRollup:
    def _populate(self):
        reg = MetricRegistry()
        fam = reg.counter("stall_cycles")
        fam.labels(track="pe0.dpe", cause="dep_interlock").inc(10)
        fam.labels(track="pe0.fi", cause="cb_space_wait").inc(5)
        fam.labels(track="pe1.dpe", cause="dep_interlock").inc(7)
        return reg

    def test_rollup_by_cause(self):
        reg = self._populate()
        by_cause = reg.rollup("stall_cycles", by=("cause",))
        assert by_cause[("dep_interlock",)] == 17
        assert by_cause[("cb_space_wait",)] == 5

    def test_rollup_grand_total(self):
        reg = self._populate()
        assert reg.rollup("stall_cycles")[()] == 22

    def test_rollup_by_track_and_cause(self):
        reg = self._populate()
        grouped = reg.rollup("stall_cycles", by=("track", "cause"))
        assert grouped[("pe0.dpe", "dep_interlock")] == 10

    def test_rollup_unknown_family_is_empty(self):
        assert MetricRegistry().rollup("nope", by=("x",)) == {}


class TestExporters:
    def _populate(self):
        reg = MetricRegistry("repro")
        reg.counter("bytes", "bytes moved").labels(pe=0).inc(4096)
        reg.gauge("util").labels().set(0.5)
        h = reg.histogram("lat_us", "latency").labels(model="mc1")
        h.observe(3)
        h.observe(30)
        return reg

    def test_json_round_trips(self):
        doc = json.loads(self._populate().to_json())
        assert doc["metrics"]["bytes"]["type"] == "counter"
        sample = doc["metrics"]["bytes"]["samples"][0]
        assert sample == {"labels": {"pe": "0"}, "value": 4096}
        hist = doc["metrics"]["lat_us"]["samples"][0]
        assert hist["count"] == 2 and hist["sum"] == 33

    def test_csv_has_row_per_sample(self):
        rows = list(csv.DictReader(io.StringIO(self._populate().to_csv())))
        by_name = {r["metric"]: r for r in rows}
        assert by_name["bytes"]["labels"] == "pe=0"
        assert float(by_name["bytes"]["value"]) == 4096

    def test_prometheus_exposition(self):
        text = self._populate().to_prometheus()
        assert "# TYPE repro_bytes counter" in text
        assert 'repro_bytes{pe="0"} 4096' in text
        assert '# HELP repro_bytes bytes moved' in text
        assert 'repro_lat_us_bucket{model="mc1",le="5"} 1' in text
        assert 'repro_lat_us_bucket{model="mc1",le="+Inf"} 2' in text
        assert 'repro_lat_us_count{model="mc1"} 2' in text


class TestDefaultRegistry:
    def test_disabled_by_default_and_opt_in(self):
        disable_default_registry()
        assert default_registry() is None
        reg = enable_default_registry()
        try:
            assert default_registry() is reg
            assert enable_default_registry() is reg
        finally:
            disable_default_registry()
        assert default_registry() is None
