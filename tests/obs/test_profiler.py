"""Profiler: full cycle attribution, roofline BW, and the CLI."""

import json

import pytest

from repro import Accelerator
from repro.kernels.fc import run_fc
from repro.obs import Profiler


@pytest.fixture(scope="module")
def fc_report():
    acc = Accelerator()
    with Profiler(acc, workload="fc-test") as prof:
        run_fc(acc, m=128, k=128, n=128, subgrid=acc.subgrid((0, 0), 2, 2))
    return prof.report(extras={"answer": 42.0})


class TestAccounting:
    def test_every_track_sums_to_elapsed(self, fc_report):
        assert fc_report.tracks
        for track in fc_report.tracks:
            accounted = (track.compute + track.memory + track.stall_total
                         + track.idle)
            assert accounted == pytest.approx(fc_report.elapsed_cycles)

    def test_residual_is_zero(self, fc_report):
        assert fc_report.attribution_residual() == pytest.approx(0.0)

    def test_compute_units_have_compute_cycles(self, fc_report):
        dpe = fc_report.track("pe0.dpe")
        assert dpe is not None and dpe.compute > 0
        assert dpe.memory == 0

    def test_fi_cycles_classified_as_memory(self, fc_report):
        fi = fc_report.track("pe0.fi")
        assert fi is not None and fi.memory > 0
        assert fi.compute == 0

    def test_stalls_attributed_to_named_causes(self, fc_report):
        assert fc_report.stalls_by_cause
        assert all(v > 0 for v in fc_report.stalls_by_cause.values())

    def test_busy_never_exceeds_elapsed_despite_overlap(self, fc_report):
        """FI keeps loads in flight; union accounting caps at elapsed."""
        for track in fc_report.tracks:
            assert track.busy <= fc_report.elapsed_cycles + 1e-9

    def test_top_tracks_sorted_by_accounted_cycles(self, fc_report):
        top = fc_report.top_tracks(5)
        actives = [t.active for t in top]
        assert actives == sorted(actives, reverse=True)

    def test_operations_aggregate_by_command(self, fc_report):
        ops = {o.name: o for o in fc_report.operations}
        # Per PE: (m/64)x(n/64)x(k/32)x4 accumulator commands = 16; the
        # 2x2 sub-grid with k_split=2 runs 4 PEs.
        assert ops["MML"].count == 16 * 4
        assert ops["DMALoad"].cycles > 0


class TestBandwidth:
    def test_dram_fraction_between_zero_and_one(self, fc_report):
        dram = fc_report.bandwidth_for("dram")
        assert dram is not None
        assert 0 < dram.fraction <= 1
        assert dram.achieved_gbs == pytest.approx(
            dram.fraction * dram.peak_gbs)

    def test_report_exports(self, fc_report):
        doc = json.loads(fc_report.to_json())
        assert doc["workload"] == "fc-test"
        assert doc["extras"] == {"answer": 42.0}
        text = fc_report.to_text()
        assert "achieved bandwidth vs roofline" in text
        assert "stall cycles by cause" in text
        assert "attribution check" in text


class TestWindowing:
    def test_profiler_windows_a_later_run(self):
        """Spans/stalls from before __enter__ must not leak in."""
        acc = Accelerator()
        run_fc(acc, m=64, k=64, n=64, subgrid=acc.subgrid((0, 0), 1, 1))
        with Profiler(acc, workload="second") as prof:
            run_fc(acc, m=64, k=64, n=64,
                   subgrid=acc.subgrid((0, 0), 1, 1))
        report = prof.report()
        assert report.elapsed_cycles < acc.engine.now
        for track in report.tracks:
            assert track.elapsed == pytest.approx(report.elapsed_cycles)


class TestCLI:
    def test_resolve_workload_names_and_paths(self):
        from repro.profile import resolve_workload
        assert resolve_workload("fc") == "fc"
        assert resolve_workload("examples/fc_mapping.py") == "fc"
        assert resolve_workload("examples/quickstart.py") == "quickstart"
        with pytest.raises(SystemExit):
            resolve_workload("nonsense")

    def test_json_output_parses(self, capsys):
        from repro.profile import main
        assert main(["quickstart", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == "quickstart"
        assert doc["tracks"] and doc["stalls_by_cause"]

    def test_text_output_mentions_stalls(self, capsys):
        from repro.profile import main
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck report" in out
        assert "dep_interlock" in out

    def test_chrome_output_writes_trace(self, tmp_path, capsys):
        from repro.profile import main
        path = tmp_path / "q.trace.json"
        assert main(["quickstart", "--format", "chrome",
                     "-o", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
