"""Critical-path extraction + what-if projection on the DES."""

import math

import pytest

from repro.config import MTIA_V1
from repro.core.accelerator import Accelerator
from repro.kernels.fc import run_fc
from repro.obs.critical import (CriticalPathError, classify_label,
                                extract_critical_path)
from repro.obs.whatif import (RESOURCE_SCALINGS, project_whatif,
                              scaled_chip_config)


@pytest.fixture(scope="module")
def fc_run():
    """One small FC kernel with edge recording on."""
    acc = Accelerator(record_edges=True)
    result = run_fc(acc, m=64, k=64, n=64, dtype="int8",
                    subgrid=acc.subgrid((0, 0), 1, 1), seed=3)
    return acc, result


class TestClassify:
    @pytest.mark.parametrize("label,expect", [
        ("dram.ctrl0.xfer", "dram"),
        ("sram.slice3.xfer", "sram"),
        ("noc.row1", "noc"),
        ("rednet.inbox5.get", "rednet"),
        ("pe00.lm.port", "local_memory"),
        ("pe00.sem.acquire", "semaphore"),
        ("pe00.inbox.put", "queue"),
        ("timeout(12)", "wait"),
        ("firmware.dispatch", "control"),
        ("pe00.dpe", "compute"),
        ("mystery", "other"),
    ])
    def test_label_buckets(self, label, expect):
        assert classify_label(label) == expect


class TestExtraction:
    def test_path_verifies_and_ends_at_now(self, fc_run):
        acc, result = fc_run
        path = extract_critical_path(acc.edges)
        path.verify()
        assert path.end == acc.engine.now
        assert path.total == float(result.cycles) - path.start

    def test_segment_sum_is_exact(self, fc_run):
        acc, _ = fc_run
        path = extract_critical_path(acc.edges)
        assert math.fsum(s.duration for s in path.segments) == path.total
        assert math.fsum(path.by_resource().values()) \
            == pytest.approx(path.total)

    def test_condensed_preserves_tiling(self, fc_run):
        acc, _ = fc_run
        path = extract_critical_path(acc.edges)
        condensed = path.condensed()
        assert len(condensed) <= len(path.segments)
        for prev, cur in zip(condensed, condensed[1:]):
            assert cur.start >= prev.end
        assert math.fsum(s.duration for s in condensed) == path.total

    def test_compute_dominates_dense_fc(self, fc_run):
        acc, _ = fc_run
        shares = extract_critical_path(acc.edges).by_resource()
        assert max(shares, key=shares.get) == "compute"

    def test_to_dict_and_text(self, fc_run):
        acc, _ = fc_run
        path = extract_critical_path(acc.edges)
        data = path.to_dict(max_segments=5)
        assert data["unit"] == "cycles"
        assert len(data["segments"]) == 5
        assert data["num_segments"] == len(path.segments)
        assert "critical path:" in path.to_text()

    def test_recorder_stats(self, fc_run):
        acc, _ = fc_run
        stats = acc.edges.stats()
        assert stats["nodes"] > 0
        assert stats["charges"] > 0
        assert set(stats["kinds"]) <= {"spawn", "callback", "wakeup",
                                       "delay"}

    def test_unknown_completion_rejected(self, fc_run):
        acc, _ = fc_run
        with pytest.raises(CriticalPathError):
            extract_critical_path(acc.edges, completion=-12345)

    def test_disabled_recording_leaves_no_recorder(self):
        acc = Accelerator()
        assert acc.edges is None


class TestWhatIf:
    def test_factor_one_is_identity(self, fc_run):
        acc, _ = fc_run
        for resource in RESOURCE_SCALINGS:
            projection = project_whatif(acc.edges, resource, 1.0)
            assert projection.projected == projection.baseline
            assert projection.delta == 0.0
            assert projection.speedup == 1.0

    def test_speedup_is_monotone_and_bounded(self, fc_run):
        acc, _ = fc_run
        previous = None
        for factor in (1.0, 1.5, 2.0, 4.0):
            projection = project_whatif(acc.edges, "noc", factor)
            assert 0.0 < projection.projected <= projection.baseline
            if previous is not None:
                assert projection.projected <= previous
            previous = projection.projected
        assert projection.scaled_edges > 0
        assert projection.projected < projection.baseline

    def test_slowdown_projects_slower(self, fc_run):
        acc, _ = fc_run
        projection = project_whatif(acc.edges, "noc", 0.5)
        assert projection.projected > projection.baseline

    def test_bad_inputs_rejected(self, fc_run):
        acc, _ = fc_run
        with pytest.raises(ValueError):
            project_whatif(acc.edges, "sram", 0.0)
        with pytest.raises(ValueError):
            project_whatif(acc.edges, "flux_capacitor", 2.0)

    def test_prediction_tracks_resimulation(self):
        """The acceptance band on a small shape: predict noc x2, then
        actually re-simulate with the scaled config."""
        acc = Accelerator(record_edges=True)
        run_fc(acc, m=64, k=64, n=64, dtype="int8",
               subgrid=acc.subgrid((0, 0), 1, 1), seed=3)
        config, effective = scaled_chip_config(MTIA_V1, "noc", 2.0)
        projection = project_whatif(acc.edges, "noc", effective)

        scaled = Accelerator(config=config)
        run_fc(scaled, m=64, k=64, n=64, dtype="int8",
               subgrid=scaled.subgrid((0, 0), 1, 1), seed=3)
        assert scaled.cycles < acc.cycles
        true_delta = float(acc.cycles) - float(scaled.cycles)
        assert true_delta > 0
        assert abs(projection.delta - true_delta) <= 0.10 * true_delta

    def test_to_dict_and_text(self, fc_run):
        acc, _ = fc_run
        projection = project_whatif(acc.edges, "noc", 2.0)
        data = projection.to_dict()
        assert data["resource"] == "noc"
        assert data["factor"] == 2.0
        assert "what-if noc x2" in projection.to_text()


class TestScaledConfig:
    @pytest.mark.parametrize("resource", sorted(RESOURCE_SCALINGS))
    def test_each_resource_scales(self, resource):
        config, effective = scaled_chip_config(MTIA_V1, resource, 2.0)
        assert config is not MTIA_V1
        assert effective == pytest.approx(2.0, rel=0.35)

    def test_integer_fields_report_effective_factor(self):
        # link width is an integer: a 1.1x request realises a rounded
        # width, and the effective factor reflects it exactly
        config, effective = scaled_chip_config(MTIA_V1, "noc", 1.1)
        assert config.noc.link_bytes_per_cycle == round(
            MTIA_V1.noc.link_bytes_per_cycle * 1.1)
        assert effective == (config.noc.link_bytes_per_cycle
                             / MTIA_V1.noc.link_bytes_per_cycle)

    def test_unknown_resource_rejected(self):
        with pytest.raises(ValueError):
            scaled_chip_config(MTIA_V1, "nope", 2.0)
        with pytest.raises(ValueError):
            scaled_chip_config(MTIA_V1, "dram", -1.0)
