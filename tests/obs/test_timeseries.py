"""WindowedSeries: bucketing, merging, downsampling, export."""

import json
import math

import numpy as np
import pytest

from repro.obs.timeseries import WindowedSeries, WindowStats


def canonical(series: WindowedSeries) -> str:
    return json.dumps(series.to_dict(include_sketch_state=True),
                      sort_keys=True)


class TestBucketing:
    def test_record_buckets_by_window(self):
        s = WindowedSeries(window_us=100.0)
        s.record(10.0, 5.0)
        s.record(99.0, 7.0)
        s.record(100.0, 1.0)
        assert s.window_indices() == [0, 1]
        w0 = s.window(0)
        assert w0.count == 2 and w0.total == 12.0
        assert w0.min == 5.0 and w0.max == 7.0 and w0.mean == 6.0

    def test_counts_default_to_one(self):
        s = WindowedSeries(window_us=50.0)
        for t in (0.0, 10.0, 60.0):
            s.record(t)
        assert s.count == 3
        assert s.rate_per_s(0) == 2 / (50.0 / 1e6)

    def test_record_many_matches_record(self):
        rng = np.random.default_rng(0)
        ts = rng.uniform(0, 10_000, size=300)
        vals = rng.exponential(5.0, size=300)
        one = WindowedSeries(window_us=250.0, track_quantiles=True)
        for t, v in zip(ts, vals):
            one.record(float(t), float(v))
        bulk = WindowedSeries(window_us=250.0, track_quantiles=True)
        bulk.record_many(ts, vals)
        assert canonical(one) == canonical(bulk)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedSeries(window_us=0.0)
        with pytest.raises(ValueError):
            WindowedSeries().record_many([1.0, 2.0], [1.0])


class TestMerge:
    def test_merge_window_by_window(self):
        a = WindowedSeries(window_us=100.0)
        b = WindowedSeries(window_us=100.0)
        a.record(50.0, 2.0)
        b.record(60.0, 4.0)
        b.record(150.0, 6.0)
        a.merge(b)
        assert a.count == 3
        assert a.window(0).total == 6.0
        assert a.window(1).total == 6.0

    def test_merge_rejects_window_mismatch(self):
        with pytest.raises(ValueError):
            WindowedSeries(100.0).merge(WindowedSeries(200.0))

    def test_merge_in_fixed_order_is_deterministic(self):
        rng = np.random.default_rng(1)
        parts = []
        for _ in range(4):
            s = WindowedSeries(window_us=500.0, track_quantiles=True)
            s.record_many(rng.uniform(0, 50_000, 200),
                          rng.exponential(10.0, 200))
            parts.append(s)

        def merged():
            out = WindowedSeries(window_us=500.0, track_quantiles=True)
            for p in parts:
                out.merge(p)
            return canonical(out)

        assert merged() == merged()

    def test_merge_leaves_source_untouched(self):
        a = WindowedSeries(window_us=100.0, track_quantiles=True)
        b = WindowedSeries(window_us=100.0, track_quantiles=True)
        b.record(10.0, 3.0)
        before = canonical(b)
        a.merge(b)
        a.record(20.0, 9.0)
        assert canonical(b) == before


class TestDownsample:
    def test_downsample_preserves_mass(self):
        rng = np.random.default_rng(2)
        s = WindowedSeries(window_us=100.0, track_quantiles=True)
        s.record_many(rng.uniform(0, 100_000, 1_000),
                      rng.exponential(3.0, 1_000))
        d = s.downsample(8)
        assert d.window_us == 800.0
        assert d.count == s.count
        assert math.isclose(
            sum(w.total for w in d._windows.values()),
            sum(w.total for w in s._windows.values()))

    def test_resampled_fits_budget_power_of_two(self):
        s = WindowedSeries(window_us=10.0)
        s.record_many(np.arange(0.0, 10_000.0, 7.0))
        r = s.resampled(16)
        assert len(r) <= 16
        factor = r.window_us / s.window_us
        assert factor == 2 ** round(math.log2(factor))
        assert r.count == s.count

    def test_resample_commutes_with_merge(self):
        """Power-of-two alignment: merge-then-resample equals
        resample-then-merge."""
        rng = np.random.default_rng(3)
        a = WindowedSeries(window_us=50.0)
        b = WindowedSeries(window_us=50.0)
        a.record_many(rng.uniform(0, 20_000, 400))
        b.record_many(rng.uniform(0, 20_000, 400))
        merged_then = WindowedSeries(window_us=50.0)
        merged_then.merge(a).merge(b)
        merged_then = merged_then.downsample(8)
        then_merged = a.downsample(8).merge(b.downsample(8))
        assert canonical(merged_then) == canonical(then_merged)


class TestQuantilesAndExport:
    def test_per_window_quantiles(self):
        s = WindowedSeries(window_us=1_000.0, track_quantiles=True)
        s.record_many(np.full(100, 100.0), np.arange(100.0))
        p50 = s.values("p50")[0]
        assert abs(p50 - 49.0) <= 0.02 * 49.0 + 1.0
        assert s.values("count") == [100.0]

    def test_values_stat_validation(self):
        s = WindowedSeries(window_us=100.0)
        s.record(1.0)
        with pytest.raises(ValueError):
            s.values("p50")        # needs track_quantiles
        with pytest.raises(ValueError):
            s.values("median")

    def test_roundtrip_with_sketch_state(self):
        rng = np.random.default_rng(4)
        s = WindowedSeries(window_us=250.0, track_quantiles=True,
                           name="lat")
        s.record_many(rng.uniform(0, 5_000, 200),
                      rng.exponential(40.0, 200))
        clone = WindowedSeries.from_dict(
            s.to_dict(include_sketch_state=True))
        assert canonical(clone) == canonical(s)

    def test_to_dict_windows_in_time_order(self):
        s = WindowedSeries(window_us=10.0)
        for t in (95.0, 5.0, 55.0):
            s.record(t)
        indices = [w["index"] for w in s.to_dict()["windows"]]
        assert indices == sorted(indices)

    def test_empty_stats(self):
        w = WindowStats()
        assert w.mean == 0.0
        s = WindowedSeries(window_us=10.0)
        assert s.span_us == 0.0
        assert s.to_dict()["windows"] == []
