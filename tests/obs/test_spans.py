"""Request-level span tracer: nesting, flows, export, no-op contract."""

import json

import pytest

from repro.obs.spans import ObsSpan, SpanTracer, merge_chrome_traces
from repro.sim.trace import Tracer


class TestNesting:
    def test_add_records_under_current(self):
        spans = SpanTracer(enabled=True)
        with spans.span("request.0", "req0", 0.0, 100.0) as req:
            child = spans.add("request.0", "execute", 40.0, 100.0)
        assert child.parent_id == req.span_id
        assert spans.children_of(req) == [child]

    def test_three_level_propagation(self):
        spans = SpanTracer(enabled=True)
        with spans.span("a", "outer", 0.0, 10.0) as outer:
            with spans.span("a", "mid", 1.0, 9.0) as mid:
                leaf = spans.add("a", "leaf", 2.0, 3.0)
        assert mid.parent_id == outer.span_id
        assert leaf.parent_id == mid.span_id
        assert outer.parent_id is None

    def test_stack_pops_after_exit(self):
        spans = SpanTracer(enabled=True)
        with spans.span("a", "one", 0.0, 1.0):
            pass
        assert spans.current is None
        orphan = spans.add("a", "two", 2.0, 3.0)
        assert orphan.parent_id is None

    def test_explicit_parent_overrides_stack(self):
        spans = SpanTracer(enabled=True)
        root = spans.add("a", "root", 0.0, 10.0)
        with spans.span("a", "other", 0.0, 5.0):
            child = spans.add("a", "child", 1.0, 2.0, parent=root)
        assert child.parent_id == root.span_id

    def test_attach_reenters_recorded_span(self):
        spans = SpanTracer(enabled=True)
        root = spans.add("serving.device", "batch0", 0.0, 100.0)
        with spans.attach(root):
            child = spans.add("executor.graph", "graph_execute", 0.0, 90.0)
        assert child.parent_id == root.span_id

    def test_end_before_start_rejected(self):
        spans = SpanTracer(enabled=True)
        with pytest.raises(ValueError):
            spans.add("a", "bad", 5.0, 1.0)

    def test_queries(self):
        spans = SpanTracer(enabled=True)
        spans.add("b", "late", 5.0, 6.0)
        spans.add("a", "x", 0.0, 1.0)
        spans.add("b", "early", 1.0, 2.0)
        assert spans.tracks() == ["a", "b"]
        assert [s.name for s in spans.spans_on("b")] == ["early", "late"]
        assert len(spans.find("x")) == 1


class TestDisabledIsNoOp:
    """The PR-1 observability contract, extended to spans."""

    def test_everything_returns_none_and_records_nothing(self):
        spans = SpanTracer(enabled=False)
        assert spans.add("a", "x", 0.0, 1.0) is None
        with spans.span("a", "y", 0.0, 1.0) as span:
            assert span is None
            assert spans.add("a", "z", 0.0, 1.0) is None
        assert spans.link(None) is None
        assert spans.spans == []
        assert spans.current is None

    def test_disabled_skips_validation(self):
        # No per-call work at all: even a bad interval is not examined.
        SpanTracer(enabled=False).add("a", "bad", 5.0, 1.0)

    def test_attach_disabled_passes_through(self):
        spans = SpanTracer(enabled=False)
        with spans.attach(None) as span:
            assert span is None


class TestFlows:
    def test_link_marks_both_ends(self):
        spans = SpanTracer(enabled=True)
        src = spans.add("a", "src", 0.0, 1.0)
        dst = spans.add("b", "dst", 1.0, 2.0)
        fid = spans.link(src, dst)
        assert src.flow_out == (fid,)
        assert dst.flow_in == (fid,)

    def test_flow_ids_unique(self):
        spans = SpanTracer(enabled=True)
        assert spans.new_flow() != spans.new_flow()

    def test_link_without_dst_returns_id_for_other_tracker(self):
        spans = SpanTracer(enabled=True)
        src = spans.add("a", "src", 0.0, 1.0)
        fid = spans.link(src)
        assert fid in src.flow_out

    def test_flow_events_in_chrome_export(self):
        spans = SpanTracer(enabled=True)
        src = spans.add("a", "src", 0.0, 1.0)
        dst = spans.add("b", "dst", 1.0, 2.0)
        fid = spans.link(src, dst)
        events = spans.to_chrome_trace()["traceEvents"]
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert [e["id"] for e in starts] == [fid]
        assert [e["id"] for e in finishes] == [fid]
        assert all(e["cat"] == "flow" for e in starts + finishes)
        # Arrow leaves near the source's end, lands at the dest's start.
        assert starts[0]["ts"] <= 1.0
        assert finishes[0]["ts"] == 1.0

    def test_flow_links_into_sim_tracer_export(self):
        """A serving span can point at a cycle-level Tracer span."""
        spans = SpanTracer(enabled=True)
        batch = spans.add("serving.device", "batch0", 10.0, 20.0)
        fid = spans.link(batch)

        tracer = Tracer(enabled=True)
        tracer.record("pe0.dpe", "MML", 0, 800)
        tracer.mark_flow_in(fid)
        sim = tracer.to_chrome_trace(frequency_ghz=0.8, ts_offset_us=10.0)

        finishes = [e for e in sim["traceEvents"] if e.get("ph") == "f"]
        assert [e["id"] for e in finishes] == [fid]
        assert finishes[0]["cat"] == "flow"
        assert finishes[0]["ts"] == pytest.approx(10.0)  # shifted start

        merged = merge_chrome_traces(spans.to_chrome_trace(), sim)
        ids_s = {e["id"] for e in merged["traceEvents"] if e["ph"] == "s"}
        ids_f = {e["id"] for e in merged["traceEvents"] if e["ph"] == "f"}
        assert fid in ids_s & ids_f


class TestChromeExport:
    def test_x_events_carry_ids_and_parent(self):
        spans = SpanTracer(enabled=True)
        with spans.span("request.1", "req1", 0.0, 10.0) as req:
            spans.add("request.1", "execute", 4.0, 10.0)
        events = spans.to_chrome_trace()["traceEvents"]
        xs = {e["name"]: e for e in events if e["ph"] == "X"}
        assert xs["req1"]["args"]["span_id"] == req.span_id
        assert xs["execute"]["args"]["parent_id"] == req.span_id
        assert xs["execute"]["ts"] == 4.0
        assert xs["execute"]["dur"] == pytest.approx(6.0)

    def test_pid_defaults_from_track_prefix(self):
        spans = SpanTracer(enabled=True)
        spans.add("request.1", "a", 0.0, 1.0)
        spans.add("request.2", "b", 0.0, 1.0)
        spans.add("serving.device", "c", 0.0, 1.0, pid="serving")
        events = spans.to_chrome_trace()["traceEvents"]
        meta = {e["args"]["name"]: e["pid"] for e in events
                if e["ph"] == "M"}
        assert set(meta) == {"request", "serving"}
        xs = [e for e in events if e["ph"] == "X"]
        assert xs[0]["pid"] == xs[1]["pid"]       # both request.* rows
        assert xs[2]["pid"] != xs[0]["pid"]

    def test_zero_duration_span_gets_min_width(self):
        spans = SpanTracer(enabled=True)
        spans.add("a", "instant", 5.0, 5.0)
        event = spans.to_chrome_trace()["traceEvents"][0]
        assert event["dur"] > 0

    def test_save_round_trips(self, tmp_path):
        spans = SpanTracer(enabled=True)
        spans.add("a", "x", 0.0, 1.0)
        path = tmp_path / "spans.json"
        spans.save(str(path))
        data = json.loads(path.read_text())
        assert data["traceEvents"]


class TestMerge:
    def test_pids_renumbered_into_one_namespace(self):
        a = SpanTracer(enabled=True)
        a.add("request.0", "ra", 0.0, 1.0)
        b = SpanTracer(enabled=True)
        b.add("request.0", "rb", 0.0, 1.0)
        merged = merge_chrome_traces(a.to_chrome_trace(),
                                     b.to_chrome_trace())
        xs = [e for e in merged["traceEvents"] if e["ph"] == "X"]
        assert xs[0]["pid"] != xs[1]["pid"]

    def test_inputs_not_mutated(self):
        a = SpanTracer(enabled=True)
        a.add("x", "a", 0.0, 1.0)
        trace = a.to_chrome_trace()
        before = json.dumps(trace, sort_keys=True)
        merge_chrome_traces(trace, trace)
        assert json.dumps(trace, sort_keys=True) == before
