"""EWMA/CUSUM detectors and the SLO burn hookup."""

import numpy as np
import pytest

from repro.obs.detect import (AnomalyReport, EWMADetector, burn_anomalies,
                              cusum_changepoints, detect_series)
from repro.obs.timeseries import WindowedSeries
from repro.serving.simulator import BatchingConfig, simulate_serving
from repro.serving.slo import slo_from_report


class TestEWMA:
    def test_flags_spike_and_recovers(self):
        values = [10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9, 10.0,
                  50.0,                       # the spike
                  10.0, 10.1, 9.9, 10.0]
        hits = EWMADetector(threshold=3.0, warmup=5).detect(values)
        assert [a.index for a in hits] == [8]
        assert hits[0].kind == "spike"
        assert hits[0].score > 3.0

    def test_flags_drop(self):
        values = [10.0 + 0.1 * (i % 3) for i in range(10)] + [1.0]
        hits = EWMADetector(threshold=3.0, warmup=5).detect(values)
        assert hits and hits[-1].kind == "drop"

    def test_quiet_series_is_quiet(self):
        rng = np.random.default_rng(0)
        values = rng.normal(100.0, 1.0, size=200)
        hits = EWMADetector(threshold=6.0).detect(values)
        assert hits == []

    def test_warmup_suppresses_early_points(self):
        hits = EWMADetector(warmup=10).detect([1.0, 1.0, 100.0])
        assert hits == []

    def test_validation(self):
        with pytest.raises(ValueError):
            EWMADetector(alpha=0.0)
        with pytest.raises(ValueError):
            EWMADetector(warmup=0)


class TestCUSUM:
    def test_level_shift_detected_near_boundary(self):
        values = [10.0] * 40 + [14.0] * 40
        hits = cusum_changepoints(values, threshold=5.0)
        assert hits
        assert any(35 <= a.index <= 55 for a in hits)
        assert all(a.kind == "changepoint" for a in hits)

    def test_constant_series_no_changepoints(self):
        assert cusum_changepoints([5.0] * 50) == []
        assert cusum_changepoints([5.0]) == []

    def test_resets_after_trip(self):
        values = [0.0] * 20 + [10.0] * 20 + [0.0] * 20
        hits = cusum_changepoints(values, threshold=4.0)
        assert len(hits) >= 2     # both regime shifts, not one smear


class TestSeriesIntegration:
    def test_detect_series_runs_both(self):
        s = WindowedSeries(window_us=100.0)
        for i in range(40):
            value = 10.0 if i != 30 else 200.0
            s.record(i * 100.0 + 1.0, value)
        report = detect_series(s, "mean")
        assert isinstance(report, AnomalyReport)
        assert report.points == 40
        assert report.anomalous
        assert any(a.index == 30 for a in report.anomalies)
        d = report.to_dict()
        assert set(d) == {"stat", "points", "anomalies", "changepoints",
                          "anomalous"}

    def test_to_text_mentions_counts(self):
        quiet = AnomalyReport(stat="rate", points=12)
        assert "no anomalies" in quiet.to_text()


class TestBurnAnomalies:
    def test_burn_spike_from_overload_tail(self):
        # load ramps far beyond capacity → late windows burn budget
        def model(batch):
            return 400.0 + 8.0 * batch

        report = simulate_serving(model, qps=30_000,
                                  batching=BatchingConfig(max_batch=8),
                                  num_requests=3_000, seed=0,
                                  registry=None)
        slo = slo_from_report(report, sla_us=900.0, window_us=10_000.0)
        burn = burn_anomalies(slo)
        assert burn.stat == "error_budget_burn"
        assert burn.points == len(slo.windows)
        # deterministic: same run, same report
        again = burn_anomalies(slo)
        assert burn.to_dict() == again.to_dict()
