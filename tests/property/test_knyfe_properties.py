"""Property-based test: random KNYFE pipelines match their reference."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Accelerator
from repro.compiler.knyfe import KernelSpec, compile_kernel
from tests import strategies as shared


@settings(max_examples=15)   # each example compiles + runs a DES kernel
@given(spec_parts=shared.knyfe_pipelines(),
       count=st.integers(64, 1500),
       seed=shared.seeds)
def test_random_pipelines_match_reference(spec_parts, count, seed):
    load_dtype, stages = spec_parts
    rng = np.random.default_rng(seed)

    spec = KernelSpec("prop").tile(512).load("x", dtype=load_dtype)
    inputs = {}
    if load_dtype == "int8":
        inputs["x"] = rng.integers(-128, 128, count, dtype=np.int8)
    else:
        inputs["x"] = rng.standard_normal(count).astype(np.float32)

    operand_id = 0
    for stage in stages:
        if stage == "quantize":
            spec = spec.quantize(0.05)
        elif stage == "dequantize":
            spec = spec.dequantize(0.05)
        elif stage == "binary":
            name = f"op{operand_id}"
            operand_id += 1
            spec = spec.binary("add", name)
            inputs[name] = rng.standard_normal(count).astype(np.float32)
        else:
            spec = spec.apply(stage)
    spec = spec.store("y")

    kernel = compile_kernel(spec)
    acc = Accelerator()
    out = kernel.run(acc, inputs, subgrid=acc.subgrid((0, 0), 1, 2))
    ref = kernel.reference(inputs)
    assert out["y"].dtype == ref.dtype
    if ref.dtype == np.int8:
        # LUT error before quantisation can flip a level at most.
        assert np.max(np.abs(out["y"].astype(np.int16)
                             - ref.astype(np.int16))) <= 1
    elif "quantize" in stages:
        # A quantize stage inside an fp32 pipeline rounds to 0.05-wide
        # levels; inputs within the SE's (cubic-interpolated) LUT error
        # of a rounding boundary may flip one level, which a subsequent
        # dequantise turns into a full-scale (0.05) absolute error.
        # Allow that single level on top of the relative tolerance.
        scale = np.maximum(np.abs(ref), 1.0)
        assert np.max((np.abs(out["y"] - ref) - 0.05) / scale) < 2e-2
    else:
        scale = np.maximum(np.abs(ref), 1.0)
        assert np.max(np.abs(out["y"] - ref) / scale) < 2e-2
