"""Property-based test: random KNYFE pipelines match their reference."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Accelerator
from repro.compiler.knyfe import KernelSpec, compile_kernel

# Type-valid stage transitions: each entry maps the current dtype to
# the stages that may follow and the dtype they produce.
_FP32_STAGES = ["quantize", "tanh", "relu", "sigmoid", "binary"]
_INT8_STAGES = ["dequantize"]


@st.composite
def pipeline_strategy(draw):
    """A random, type-correct stage sequence starting from a load."""
    start_int8 = draw(st.booleans())
    dtype = "int8" if start_int8 else "fp32"
    stages = []
    for _ in range(draw(st.integers(1, 4))):
        if dtype == "int8":
            stage = "dequantize"
            dtype = "fp32"
        else:
            stage = draw(st.sampled_from(_FP32_STAGES))
            if stage == "quantize":
                dtype = "int8"
        stages.append(stage)
    return ("int8" if start_int8 else "fp32"), stages


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec_parts=pipeline_strategy(),
       count=st.integers(64, 1500),
       seed=st.integers(0, 2 ** 16))
def test_random_pipelines_match_reference(spec_parts, count, seed):
    load_dtype, stages = spec_parts
    rng = np.random.default_rng(seed)

    spec = KernelSpec("prop").tile(512).load("x", dtype=load_dtype)
    inputs = {}
    if load_dtype == "int8":
        inputs["x"] = rng.integers(-128, 128, count, dtype=np.int8)
    else:
        inputs["x"] = rng.standard_normal(count).astype(np.float32)

    operand_id = 0
    for stage in stages:
        if stage == "quantize":
            spec = spec.quantize(0.05)
        elif stage == "dequantize":
            spec = spec.dequantize(0.05)
        elif stage == "binary":
            name = f"op{operand_id}"
            operand_id += 1
            spec = spec.binary("add", name)
            inputs[name] = rng.standard_normal(count).astype(np.float32)
        else:
            spec = spec.apply(stage)
    spec = spec.store("y")

    kernel = compile_kernel(spec)
    acc = Accelerator()
    out = kernel.run(acc, inputs, subgrid=acc.subgrid((0, 0), 1, 2))
    ref = kernel.reference(inputs)
    assert out["y"].dtype == ref.dtype
    if ref.dtype == np.int8:
        # LUT error before quantisation can flip a level at most.
        assert np.max(np.abs(out["y"].astype(np.int16)
                             - ref.astype(np.int16))) <= 1
    elif "quantize" in stages:
        # A quantize stage inside an fp32 pipeline rounds to 0.05-wide
        # levels; inputs within the SE's (cubic-interpolated) LUT error
        # of a rounding boundary may flip one level, which a subsequent
        # dequantise turns into a full-scale (0.05) absolute error.
        # Allow that single level on top of the relative tolerance.
        scale = np.maximum(np.abs(ref), 1.0)
        assert np.max((np.abs(out["y"] - ref) - 0.05) / scale) < 2e-2
    else:
        scale = np.maximum(np.abs(ref), 1.0)
        assert np.max(np.abs(out["y"] - ref) / scale) < 2e-2
