"""Fast-path engine vs straight-heap reference — semantic equivalence.

The production :class:`~repro.sim.engine.Engine` routes same-timestamp
callbacks through a FIFO deque instead of the time heap (the scheduling
fast-path).  These tests execute randomly generated process programs on
both the production engine and a reference engine that forces *every*
callback through a single ``(time, ticket)`` heap — the textbook DES
kernel — and assert the observable behaviour is identical: the exact
interleaving of process steps, wake-up values, failure delivery, final
simulation time, and the event count.
"""

from hypothesis import given, settings

from repro.sim.calendar import HeapTimeQueue
from repro.sim.engine import _NO_ARG, Engine, SimulationError
from tests import strategies as shared


class _HeapShunt:
    """Deque stand-in that reroutes every append to the time queue.

    ``Engine.run`` only touches ``_immediate_q`` when it is truthy, so
    a permanently-falsy shunt forces the run loop down the pure-heap
    path while preserving the global ticket order (tickets are drawn by
    the callers before the append).
    """

    def __init__(self, engine):
        self._engine = engine

    def append(self, entry):
        ticket, callback, arg = entry
        if arg is not _NO_ARG:
            def callback(callback=callback, arg=arg):
                return callback(arg)
        self._engine._timeq.push(self._engine.now, ticket, callback)

    def popleft(self):
        # run() binds this attribute up front but can never call it:
        # the shunt is permanently falsy.
        raise AssertionError("straight-heap reference used the deque")

    def __bool__(self):
        return False

    def __len__(self):
        return 0


class StraightHeapEngine(Engine):
    """The reference kernel: one binary heap, ordered by (time, ticket).

    Both the calendar-queue structure *and* the FIFO fast path are
    stripped: timed entries go to a plain :class:`HeapTimeQueue`, and
    every would-be immediate callback is shunted into it at the current
    time — the textbook single-heap DES kernel.
    """

    def __init__(self):
        super().__init__()
        self._timeq = HeapTimeQueue()
        self._immediate_q = _HeapShunt(self)


def _execute(engine_cls, spec, until):
    """Interpret ``spec`` on ``engine_cls``; return the observable trace."""
    n_events, programs = spec
    engine = engine_cls()
    events = [engine.event(f"e{i}") for i in range(n_events)]
    trace = []

    def proc(pid, program, depth):
        for step, (op, operand) in enumerate(program):
            trace.append((engine.now, pid, step, op))
            if op == "delay":
                yield operand
            elif op == "timeout":
                yield engine.timeout(operand)
            elif op == "trigger":
                ev = events[operand]
                if not ev.triggered:
                    ev.succeed((pid, step))
            elif op == "fail":
                ev = events[operand]
                if not ev.triggered:
                    ev.fail(SimulationError(f"fail:{pid}:{step}"))
            elif op == "wait":
                try:
                    value = yield events[operand]
                except SimulationError as exc:
                    value = f"exc:{exc}"
                trace.append((engine.now, pid, step, "woke", value))
            elif op == "spawn":
                if depth < 1:
                    child = engine.process(
                        proc((pid, step), programs[operand], depth + 1))
                    value = yield child
                    trace.append((engine.now, pid, step, "joined", value))
                else:
                    yield 1
        return pid

    for i, program in enumerate(programs):
        engine.process(proc(i, program, 0), name=f"p{i}")
    engine.run(until=until)
    return trace, engine.now, engine.events_processed


@settings(max_examples=200, deadline=None)
@given(spec=shared.engine_programs(), until=shared.engine_untils)
def test_fast_path_matches_straight_heap(spec, until):
    """Same programs, same interleaving, on both kernels."""
    fast = _execute(Engine, spec, until)
    reference = _execute(StraightHeapEngine, spec, until)
    assert fast[0] == reference[0]          # step-by-step trace
    assert fast[1] == reference[1]          # final simulation time
    assert fast[2] == reference[2]          # events processed


@given(delays=shared.event_delays)
@settings(max_examples=100, deadline=None)
def test_timeout_storm_matches_straight_heap(delays):
    """Many timeouts (zero-delay included) fire in identical order."""

    def run(engine_cls):
        engine = engine_cls()
        order = []
        for i, delay in enumerate(delays):
            engine.timeout(delay).add_callback(
                lambda ev, i=i: order.append((engine.now, i)))
        engine.run()
        return order, engine.now

    assert run(Engine) == run(StraightHeapEngine)


def test_reference_engine_is_really_heap_only():
    """Sanity: the shunt keeps the reference's deque permanently empty."""
    engine = StraightHeapEngine()
    engine.timeout(0)
    engine.timeout(1)
    assert not engine._immediate_q
    assert isinstance(engine._timeq, HeapTimeQueue)
    assert engine._timeq.size == 2
    engine.run()
    assert engine.now == 1
