"""Edge recording and critical-path extraction — structural laws.

Random process programs (the same strategy pool the engine-equivalence
suite uses) run with an :class:`EdgeRecorder` attached.  Three laws
must hold on every program:

* recording is a perfect no-op — the observable trace, final time, and
  event count are identical with the recorder on or off;
* the recorded edges form a DAG consistent with execution order —
  every parent executed strictly before its child;
* the critical path from any completion is time-monotone, tiles its
  interval, and its segment sum equals ``t(completion) - t(root)``
  IEEE-exactly (``math.fsum`` over shared-boundary floats telescopes).
"""

import math

from hypothesis import given, settings

from repro.obs.critical import (CriticalPathError, EdgeRecorder,
                                extract_critical_path)
from repro.sim.engine import Engine, SimulationError
from tests import strategies as shared


def _execute(spec, until, record):
    """Interpret ``spec``; return (trace, now, events, edges)."""
    n_events, programs = spec
    engine = Engine()
    if record:
        engine.edges = EdgeRecorder()
    events = [engine.event(f"e{i}") for i in range(n_events)]
    trace = []

    def proc(pid, program, depth):
        for step, (op, operand) in enumerate(program):
            trace.append((engine.now, pid, step, op))
            if op == "delay":
                yield operand
            elif op == "timeout":
                yield engine.timeout(operand)
            elif op == "trigger":
                ev = events[operand]
                if not ev.triggered:
                    ev.succeed((pid, step))
            elif op == "fail":
                ev = events[operand]
                if not ev.triggered:
                    ev.fail(SimulationError(f"fail:{pid}:{step}"))
            elif op == "wait":
                try:
                    value = yield events[operand]
                except SimulationError as exc:
                    value = f"exc:{exc}"
                trace.append((engine.now, pid, step, "woke", value))
            elif op == "spawn":
                if depth < 1:
                    child = engine.process(
                        proc((pid, step), programs[operand], depth + 1))
                    value = yield child
                    trace.append((engine.now, pid, step, "joined", value))
                else:
                    yield 1
        return pid

    for i, program in enumerate(programs):
        engine.process(proc(i, program, 0), name=f"p{i}")
    engine.run(until=until)
    return trace, engine.now, engine.events_processed, engine.edges


@settings(max_examples=150, deadline=None)
@given(spec=shared.engine_programs(), until=shared.engine_untils)
def test_recording_is_bit_identical_noop(spec, until):
    plain = _execute(spec, until, record=False)
    recorded = _execute(spec, until, record=True)
    assert plain[0] == recorded[0]          # step-by-step trace
    assert plain[1] == recorded[1]          # final simulation time
    assert plain[2] == recorded[2]          # events processed
    assert plain[3] is None and recorded[3] is not None


@settings(max_examples=150, deadline=None)
@given(spec=shared.engine_programs(), until=shared.engine_untils)
def test_edges_form_execution_ordered_dag(spec, until):
    _, _, _, edges = _execute(spec, until, record=True)
    position = {ticket: i for i, ticket in enumerate(edges.order)}
    assert len(position) == len(edges.order)    # no node executes twice
    for child, parent in edges.parent.items():
        if parent is None or child not in position:
            continue
        assert parent in position, \
            f"child {child} executed before parent {parent}"
        assert position[parent] < position[child]
        assert edges.time[parent] <= edges.time[child]
    for child, registrant in edges.wait_parent.items():
        if child in position:
            assert position[registrant] < position[child]


@settings(max_examples=150, deadline=None)
@given(spec=shared.engine_programs(), until=shared.engine_untils)
def test_critical_path_tiles_and_sums_exactly(spec, until):
    _, now, _, edges = _execute(spec, until, record=True)
    if not edges.order:
        return
    # from the final completion and from a mid-run node: both must obey
    # the same invariants (verify() checks tiling + monotonicity).
    for completion in (None, edges.order[len(edges.order) // 2]):
        path = extract_critical_path(edges, completion=completion)
        assert path.total == path.end - path.start
        assert math.fsum(s.duration for s in path.segments) == path.total
        times = [edges.time[n] for n in path.nodes]
        assert times == sorted(times)
        if completion is None:
            # `until` can advance the clock past the last executed
            # node; on a drained run the path ends exactly at `now`.
            assert path.end == now if until is None else path.end <= now
    # condensed view preserves the exact sum (dropped pieces are width-0)
    path = extract_critical_path(edges)
    assert math.fsum(s.duration for s in path.condensed()) == path.total


def test_empty_recorder_rejected():
    try:
        extract_critical_path(EdgeRecorder())
    except CriticalPathError:
        pass
    else:
        raise AssertionError("empty recorder must raise")
