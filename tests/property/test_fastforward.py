"""Steady-state fast-forward — on == off, bitwise, and honest refusal.

Every test runs the same program twice — once with a
:class:`~repro.sim.fastforward.FastForward` detector attached, once
without — and asserts the *complete observable outcome* is identical:
final time, ``events_processed``, per-cause stall attributions, and any
program-visible side effects.  Engagement itself is asserted separately
(a detector that silently never skips would pass the identity checks
while delivering no speedup).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine, SimulationError
from repro.sim.fastforward import FastForward


def _run(build, until, ff=False, max_events=100_000_000):
    engine = Engine()
    engine.obs.enabled = True
    if ff:
        engine.fast_forward = FastForward()
    build(engine)
    error = None
    try:
        engine.run(until=until, max_events=max_events)
    except SimulationError as exc:
        error = str(exc)
    stalls = sorted(
        (key, counter.value) for key, counter in
        engine.obs.registry.counter("stall_cycles").samples())
    return {
        "now": engine.now,
        "events": engine.events_processed,
        "stalls": stalls,
        "error": error,
    }, engine.fast_forward


def _assert_identical(build, until, expect_engaged, max_events=100_000_000):
    plain, _ = _run(build, until, ff=False, max_events=max_events)
    fast, ff = _run(build, until, ff=True, max_events=max_events)
    assert fast == plain
    if expect_engaged:
        assert ff.engagements >= 1 and ff.periods_skipped > 0
    else:
        assert ff.engagements == 0
    return ff


# -- periodic programs engage and stay bitwise identical -----------------

def test_stateless_periodic_pair_engages():
    def build(engine):
        def beat(period):
            while True:
                yield period
        engine.process(beat(3), name="a")
        engine.process(beat(5), name="b")

    ff = _assert_identical(build, until=200_000, expect_engaged=True)
    # The skip must cover the overwhelming majority of the horizon.
    assert ff.cycles_skipped > 150_000


def test_periodic_with_stall_attribution_replays_counters():
    def build(engine):
        def worker():
            while True:
                yield 7
                engine.obs.stall("pe0.dpe", "cb_element_wait",
                                 engine.now - 2, engine.now)
        engine.process(worker(), name="w")

    ff = _assert_identical(build, until=70_000, expect_engaged=True)
    assert ff.events_skipped > 0


def test_periodic_event_handoff_engages():
    """A two-process rendezvous (event ping-pong with delays)."""
    def build(engine):
        box = {"ev": engine.event("ping")}

        def producer():
            while True:
                yield 4
                ev, box["ev"] = box["ev"], engine.event("ping")
                ev.succeed()

        def consumer():
            while True:
                yield box["ev"]
        engine.process(producer(), name="prod")
        engine.process(consumer(), name="cons")

    _assert_identical(build, until=100_000, expect_engaged=True)


@given(periods=st.lists(st.integers(min_value=1, max_value=9),
                        min_size=1, max_size=4),
       until=st.integers(min_value=1_000, max_value=50_000))
@settings(max_examples=40, deadline=None)
def test_random_periodic_ensembles_identical(periods, until):
    def build(engine):
        def beat(period):
            while True:
                yield period
        for i, p in enumerate(periods):
            engine.process(beat(p), name=f"p{i}")

    plain, _ = _run(build, until, ff=False)
    fast, ff = _run(build, until, ff=True)
    assert fast == plain
    # Small ensembles of constant-delay loops are exactly the stationary
    # shape the detector exists for; it must engage on a long horizon.
    if until >= 10_000:
        assert ff.engagements >= 1


# -- aperiodic / unprovable programs refuse, results still identical -----

def test_loop_counter_refuses():
    """A local loop index changes every iteration: never engages."""
    def build(engine):
        def counted():
            for i in range(4_000):
                yield 3
        engine.process(counted(), name="c")

    _assert_identical(build, until=11_000, expect_engaged=False)


def test_non_integral_state_refuses():
    """A non-integral float in reachable state fails closed."""
    def build(engine):
        def beat():
            jitter = 0.5  # stashed in f_locals: uncanonicalizable
            while True:
                yield 3
        engine.process(beat(), name="f")

    ff = _assert_identical(build, until=10_000, expect_engaged=False)
    assert ff.refusals > 0


def test_dyadic_fraction_identity():
    """Fractional delays whose captures align integrally may engage —
    but only ever bit-identically (2.5-cycle beats land on integral
    times every other period, and dyadic addition is exact)."""
    def build(engine):
        def beat():
            while True:
                yield 2.5
        engine.process(beat(), name="f")

    plain, _ = _run(build, until=10_000, ff=False)
    fast, _ = _run(build, until=10_000, ff=True)
    assert fast == plain


def test_tracer_attached_refuses():
    def build(engine):
        engine.tracer.enabled = True

        def beat():
            while True:
                yield 3
        engine.process(beat(), name="t")

    _assert_identical(build, until=10_000, expect_engaged=False)


def test_no_until_refuses():
    engine = Engine()
    engine.fast_forward = FastForward()

    def finite():
        for _ in range(50):
            yield 2
    engine.process(finite())
    engine.run()  # drains; no horizon to skip toward
    assert engine.fast_forward.engagements == 0
    assert engine.now == 100


# -- guard interplay ------------------------------------------------------

@pytest.mark.parametrize("max_events", [50, 137, 1000])
def test_max_events_guard_trips_identically(max_events):
    def build(engine):
        def beat():
            while True:
                yield 3
        engine.process(beat(), name="b")

    # Engagement happens early (periods are single events), but the
    # guard must still trip at the identical event count and time.
    _assert_identical(build, until=1_000_000, expect_engaged=True,
                      max_events=max_events)


def test_until_boundary_exact():
    """The final partial period is simulated for real up to `until`."""
    def build(engine):
        def beat():
            while True:
                yield 7
        engine.process(beat(), name="b")

    for until in (69_997, 69_998, 70_000, 70_001):
        plain, _ = _run(build, until, ff=False)
        fast, ff = _run(build, until, ff=True)
        assert fast == plain
        assert ff.engagements >= 1
