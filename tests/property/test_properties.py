"""Property-based tests (hypothesis) on core data structures."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.config import MTIA_V1
from repro.core.circular_buffer import CircularBuffer
from repro.memory.backing_store import SparseByteStore
from repro.memory.cache import SetAssociativeCache
from repro.memory.local_memory import LocalMemory
from repro.sim import Engine, SimulationError
from repro import dtypes
from tests import strategies as shared


class TestCircularBufferProperties:
    @given(ops=shared.cb_op_lists)
    def test_fifo_matches_reference_deque(self, ops):
        """The CB behaves exactly like a bounded FIFO of bytes."""
        engine = Engine()
        lm = LocalMemory(engine, MTIA_V1.local_memory)
        cb = CircularBuffer(engine, lm, 0, base=0, size=256)
        reference = bytearray()
        produced = 0
        for op, amount in ops:
            if op == "push":
                data = np.arange(produced, produced + amount,
                                 dtype=np.int64).astype(np.uint8)
                if amount <= cb.space:
                    cb.write_and_push(data)
                    reference.extend(data.tobytes())
                    produced += amount
                else:
                    with pytest.raises(SimulationError):
                        cb.write_and_push(data)
            else:
                if amount <= cb.available:
                    out = cb.read_and_pop(amount)
                    expected = bytes(reference[:amount])
                    del reference[:amount]
                    assert out.tobytes() == expected
                else:
                    with pytest.raises(SimulationError):
                        cb.pop(amount)
            assert cb.available == len(reference)
            assert cb.space == 256 - len(reference) - cb.reserved

    @given(read=shared.cb_offset_reads)
    def test_offset_reads_never_move_pointers(self, read):
        offset, nbytes = read
        engine = Engine()
        lm = LocalMemory(engine, MTIA_V1.local_memory)
        cb = CircularBuffer(engine, lm, 0, base=0, size=256)
        payload = np.arange(256, dtype=np.uint8)
        cb.write_and_push(payload)
        before = (cb.read_ptr, cb.write_ptr, cb.available)
        out = cb.read_at(offset, nbytes)
        assert (cb.read_ptr, cb.write_ptr, cb.available) == before
        np.testing.assert_array_equal(out, payload[offset:offset + nbytes])


class TestCacheProperties:
    @given(addresses=shared.cache_addresses)
    def test_stats_invariants(self, addresses):
        cache = SetAssociativeCache(4096, line_bytes=64, ways=4)
        for addr in addresses:
            cache.access(addr, 1)
        assert cache.stats.accesses == len(addresses)
        assert cache.stats.hits + cache.stats.misses == len(addresses)
        assert cache.resident_lines <= 4096 // 64

    @given(addresses=shared.small_cache_addresses)
    def test_second_pass_of_small_set_hits(self, addresses):
        """Any working set smaller than capacity fully hits on re-walk."""
        unique_lines = {a // 64 for a in addresses}
        cache = SetAssociativeCache(1 << 20, line_bytes=64, ways=16)
        for addr in addresses:
            cache.access(addr, 1)
        if len(unique_lines) * 64 <= (1 << 20) // 16:
            before_hits = cache.stats.hits
            for addr in addresses:
                hits, misses = cache.access(addr, 1)
                assert misses == 0


class TestBackingStoreProperties:
    @given(writes=shared.backing_store_writes)
    def test_matches_flat_array_model(self, writes):
        store = SparseByteStore(1 << 19)
        model = np.zeros(1 << 19, dtype=np.uint8)
        for addr, blob in writes:
            data = np.frombuffer(blob, dtype=np.uint8)
            if addr + data.size <= model.size:
                store.write(addr, data)
                model[addr:addr + data.size] = data
        for addr, blob in writes:
            size = min(len(blob) + 32, model.size - addr)
            if size > 0:
                np.testing.assert_array_equal(store.read(addr, size),
                                              model[addr:addr + size])


class TestQuantisationProperties:
    @given(values=shared.quant_values, scale=shared.quant_scales)
    def test_roundtrip_error_bounded_by_half_scale(self, values, scale):
        x = np.array(values, dtype=np.float32)
        q = dtypes.quantize(x, scale)
        back = dtypes.dequantize(q, scale)
        clipped = np.clip(x, -128 * scale, 127 * scale)
        assert np.max(np.abs(back - clipped)) <= scale / 2 + 1e-4

    @given(values=shared.bf16_values)
    def test_bf16_monotone_rounding(self, values):
        x = np.array(values, dtype=np.float32)
        rounded = dtypes.to_bf16(x)
        # bf16 rounding error is bounded by 2^-8 relative.
        err = np.abs(rounded - x)
        bound = np.maximum(np.abs(x) * 2 ** -8, 1e-30)
        assert (err <= bound + 1e-30).all()


class TestFCProperty:
    @settings(max_examples=8)   # DES runs are expensive
    @given(m=shared.fc_m, k=shared.fc_k, n=shared.fc_n,
           seed=shared.seeds)
    def test_fc_always_bit_exact(self, m, k, n, seed):
        """Any tileable INT8 shape computes exactly."""
        from repro import Accelerator
        from repro.kernels.fc import run_fc
        rng = np.random.default_rng(seed)
        a = rng.integers(-128, 128, (m, k), dtype=np.int8)
        b_t = rng.integers(-128, 128, (n, k), dtype=np.int8)
        acc = Accelerator()
        result = run_fc(acc, a, b_t, subgrid=acc.subgrid((0, 0), 1, 1))
        expected = b_t.astype(np.int32) @ a.astype(np.int32).T
        np.testing.assert_array_equal(result.c_t, expected)


class TestEngineProperties:
    @given(delays=shared.event_delays)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        engine = Engine()
        fired = []
        for d in delays:
            engine.schedule(d, lambda d=d: fired.append((engine.now, d)))
        engine.run()
        times = [t for t, _ in fired]
        assert times == sorted(times)
        assert sorted(d for _, d in fired) == sorted(delays)

    @given(amounts=shared.resource_amounts, rate=shared.resource_rates)
    def test_resource_total_time_is_work_over_rate(self, amounts, rate):
        from repro.sim import Resource
        engine = Engine()
        res = Resource(engine, rate)

        def user(amount):
            yield from res.use(amount)

        for a in amounts:
            engine.process(user(a))
        engine.run()
        assert engine.now == pytest.approx(sum(amounts) / rate)
