"""Property tests for the mergeable quantile sketch.

Two invariants the fleet telemetry path leans on, checked over
adversarial value streams instead of hand-picked fixtures:

* **accuracy** — every reported percentile is within the configured
  relative-error bound of the exact order statistic, whatever the
  input distribution (heavy tails, duplicates, mixed signs, zeros);
* **merge invariance** — sharding a stream and merging the shard
  sketches in any order serializes bit-for-bit identically to the
  single-stream sketch, which is what makes ``--jobs N`` reports
  byte-stable.
"""

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import QuantileSketch

# adversarial payloads: huge dynamic range, repeats, exact zeros, and
# negative latencies-like values all in one stream
sketch_values = st.lists(
    st.one_of(
        st.floats(min_value=1e-6, max_value=1e9, allow_nan=False,
                  allow_infinity=False),
        st.floats(min_value=-1e6, max_value=-1e-6, allow_nan=False,
                  allow_infinity=False),
        st.just(0.0),
        st.sampled_from([1.0, 1.0, 100.0, 100.0]),   # duplicate-heavy
    ),
    min_size=1, max_size=300)

accuracies = st.sampled_from([0.005, 0.01, 0.02, 0.05])
quantiles = st.sampled_from([0.0, 1.0, 10.0, 50.0, 90.0, 99.0, 100.0])


def canonical(sketch: QuantileSketch) -> str:
    return json.dumps(sketch.to_dict(), sort_keys=True)


def exact_percentile(values, q):
    ordered = sorted(values)
    rank = q / 100.0 * (len(ordered) - 1)
    return ordered[math.floor(rank)]


@settings(deadline=None)
@given(values=sketch_values, alpha=accuracies, q=quantiles)
def test_percentile_within_relative_error(values, alpha, q):
    s = QuantileSketch(alpha)
    s.add_many(values)
    true = exact_percentile(values, q)
    est = s.percentile(q)
    # the sketch guarantees |est - v| <= alpha * |v| for some value v
    # within one rank of the true order statistic; with duplicates the
    # neighbouring order statistics bound the reachable values
    ordered = sorted(values)
    rank = math.floor(q / 100.0 * (len(ordered) - 1))
    lo = min(ordered[max(rank - 1, 0)], true)
    hi = max(ordered[min(rank + 1, len(ordered) - 1)], true)
    slack = alpha * max(abs(lo), abs(hi)) + 1e-12
    assert lo - slack <= est <= hi + slack


@settings(deadline=None)
@given(values=sketch_values, alpha=accuracies)
def test_bounds_and_count_are_exact(values, alpha):
    s = QuantileSketch(alpha)
    s.add_many(values)
    assert s.count == len(values)
    assert s.min == min(values)
    assert s.max == max(values)
    assert s.min <= s.percentile(50) <= s.max


@settings(deadline=None)
@given(values=sketch_values, alpha=accuracies,
       split=st.integers(min_value=0, max_value=300))
def test_merge_any_order_equals_single_stream(values, alpha, split):
    split = min(split, len(values))
    whole = QuantileSketch(alpha)
    whole.add_many(values)

    a, b = QuantileSketch(alpha), QuantileSketch(alpha)
    a.add_many(values[:split])
    b.add_many(values[split:])
    ab = a.copy().merge(b)
    ba = b.copy().merge(a)

    assert canonical(ab) == canonical(ba) == canonical(whole)


@settings(deadline=None)
@given(values=sketch_values, alpha=accuracies,
       nshards=st.integers(min_value=2, max_value=6))
def test_sharded_merge_roundtrips_through_serialization(values, alpha,
                                                        nshards):
    whole = QuantileSketch(alpha)
    whole.add_many(values)

    size = max(1, (len(values) + nshards - 1) // nshards)
    merged = QuantileSketch(alpha)
    for lo in range(0, len(values), size):
        shard = QuantileSketch(alpha)
        shard.add_many(values[lo:lo + size])
        # ship each shard through its wire format before merging, as
        # the fleet path does between replicas
        merged.merge(QuantileSketch.from_dict(shard.to_dict()))

    assert canonical(merged) == canonical(whole)
    for q in (50.0, 99.0):
        assert merged.percentile(q) == whole.percentile(q)
