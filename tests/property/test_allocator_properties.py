"""Property-based tests for the firmware sub-grid allocator."""

from hypothesis import given
from hypothesis import strategies as st

from repro import Accelerator
from repro.firmware import SubGridAllocator
from tests import strategies as shared


@given(ops=shared.allocator_requests, cluster=shared.allocator_clusters)
def test_allocations_never_overlap_and_release_restores(ops, cluster):
    acc = Accelerator()
    alloc = SubGridAllocator(acc.grid, cluster=cluster)
    live = []
    for op in ops:
        if op[0] == "alloc":
            _, rows, cols = op
            subgrid = alloc.allocate(rows, cols)
            if subgrid is not None:
                live.append(subgrid)
        else:
            _, index, _ = op
            if live:
                alloc.release(live.pop(index % len(live)))

        # Invariant 1: live sub-grids are pairwise disjoint.
        seen = set()
        for sg in live:
            coords = set(sg.coords())
            assert not (coords & seen)
            seen |= coords
        # Invariant 2: the busy count covers at least the live PEs
        # (cluster rounding may reserve more, never less).
        assert alloc.busy_pes >= len(seen)
        assert alloc.busy_pes + alloc.free_pes == acc.grid.num_pes

    # Releasing everything restores a fully free grid.
    for sg in live:
        alloc.release(sg)
    assert alloc.busy_pes == 0
    assert alloc.allocate(8, 8) is not None


@given(rows=st.integers(1, 8), cols=st.integers(1, 8),
       cluster=shared.allocator_clusters)
def test_allocated_shape_is_what_was_asked(rows, cols, cluster):
    acc = Accelerator()
    alloc = SubGridAllocator(acc.grid, cluster=cluster)
    subgrid = alloc.allocate(rows, cols)
    assert subgrid is not None
    assert subgrid.rows == rows and subgrid.cols == cols


@given(shapes=st.lists(st.tuples(st.integers(1, 4), st.integers(1, 4)),
                       min_size=1, max_size=20))
def test_full_grid_capacity_respected(shapes):
    """Total PEs reserved never exceeds the grid."""
    acc = Accelerator()
    alloc = SubGridAllocator(acc.grid)
    granted = 0
    for rows, cols in shapes:
        if alloc.allocate(rows, cols) is not None:
            granted += rows * cols
    assert granted <= acc.grid.num_pes
