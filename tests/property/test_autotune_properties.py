"""Property tests for the mapping-space autotuner.

Three contracts from the PR-10 issue, fuzzed over shape families:

* **legality** — every candidate the enumerator produces is actually
  runnable: FC candidates pass the real :func:`plan_fc` planner (the
  enumerator's arithmetic must mirror it exactly), TBE candidates pass
  the kernel's CB-fit check, and SRAM placements fit the SRAM;
* **seed determinism** — the same seed yields the identical candidate
  sequence, winner, and trace digest;
* **canonicalisation invariance** — the opmodel cost of a candidate
  does not change when family-irrelevant fields are perturbed
  (``canonical()`` pins them, and cost must go through it).

Search moves (sample/mutate/crossover) are also proven closed over the
legal set — an illegal child would crash phase 2.
"""

from hypothesis import given, settings

from tests import strategies as strat

from repro.autotune.cost import candidate_cost
from repro.autotune.rng import SplitMix64
from repro.autotune.search import SearchConfig, run_search
from repro.autotune.space import MappingSpace


def _replace(candidate, **kwargs):
    from dataclasses import replace
    return replace(candidate, **kwargs)


@given(shape=strat.mapping_shapes())
def test_every_enumerated_candidate_is_legal(shape):
    space = MappingSpace(shape=shape)
    candidates = space.candidates()
    assert candidates, f"empty space for {shape!r}"
    for cand in candidates:
        ok, reason = space.legal(cand)
        assert ok, f"{cand!r}: {reason}"
        if cand.operands == "sram":
            if shape.family == "tbe":
                assert shape.table_bytes <= space.config.sram.capacity_bytes


@given(shape=strat.fc_mapping_shapes())
@settings(max_examples=15)
def test_fc_candidates_pass_the_real_planner(shape):
    """The enumerator's legality arithmetic must mirror plan_fc."""
    from repro.core import Accelerator
    from repro.kernels.fc import plan_fc

    acc = Accelerator()
    space = MappingSpace(shape=shape)
    for cand in space.candidates():
        plan = plan_fc(acc.subgrid((0, 0), cand.rows, cand.cols),
                       shape.m, shape.k, shape.n, shape.dtype,
                       k_split=cand.k_split,
                       use_multicast=cand.use_multicast)
        assert plan.k_split == cand.k_split
        assert plan.n_split == cand.cols // cand.k_split


@given(shape=strat.mapping_shapes(), seed=strat.search_seeds)
@settings(max_examples=15)
def test_search_is_seed_deterministic(shape, seed):
    space = MappingSpace(shape=shape)
    config = SearchConfig(seed=seed, budget=24, init=8, beam_width=4,
                          generations=2, population=6)
    first = run_search(space, config)
    second = run_search(space, config)
    assert first.trace.events == second.trace.events
    assert first.trace.winner_key == second.trace.winner_key
    assert first.trace.digest() == second.trace.digest()
    assert [c.candidate for c in first.ranked] == \
        [c.candidate for c in second.ranked]


@given(case=strat.mapping_candidates())
def test_cost_is_invariant_under_recanonicalisation(case):
    shape, cand = case
    base = candidate_cost(shape, cand)
    if shape.family == "fc":
        scrambled = _replace(cand, prefetch_rows=7, fused=False)
    else:
        scrambled = _replace(cand, k_split=3, use_multicast=False,
                             dual_core=False)
    again = candidate_cost(shape, scrambled)
    assert again.cost_s == base.cost_s
    assert again.candidate == base.candidate      # both canonical
    assert again.breakdown == base.breakdown


@given(case=strat.mapping_candidates(), seed=strat.search_seeds)
def test_search_moves_are_closed_over_the_legal_set(case, seed):
    shape, cand = case
    space = MappingSpace(shape=shape)
    rng = SplitMix64(seed)
    mutated = space.mutate(cand, rng)
    assert mutated in space
    other = rng.choice(space.candidates())
    child = space.crossover(cand, other, rng)
    assert child in space
    sampled = space.sample(rng, 5)
    assert len(sampled) == len(set(c.key() for c in sampled))
    for s in sampled:
        assert s in space
