"""Cross-module integration: full pipelines from model to metal."""

import numpy as np
import pytest

from repro import Accelerator
from repro.compiler.fusion import fuse_graph
from repro.compiler.partitioner import partition_by_memory
from repro.compiler.placement import place_tensors
from repro.config import MTIA_V1
from repro.eval.machines import MACHINES
from repro.eval.opmodel import estimate_graph
from repro.models.configs import MODEL_ZOO
from repro.models.dlrm import DLRMConfig, build_dlrm_graph
from repro.models.workloads import WorkloadGenerator
from repro.runtime import DeviceSet, GraphExecutor, MTIADevice


@pytest.fixture(scope="module")
def tiny_dlrm():
    return DLRMConfig(name="tiny", num_tables=4, rows_per_table=64,
                      embedding_dim=16, pooling=4, dense_features=8,
                      bottom_mlp=(16, 16), top_mlp=(16,),
                      interaction_group=0, quantized=True)


class TestModelThroughExecutor:
    def test_compiled_graph_matches_eager(self, tiny_dlrm, rng):
        batch = 8
        gen = WorkloadGenerator(tiny_dlrm, batch_size=batch, seed=5)
        feeds = gen.feeds_for(gen.next_request())
        weights = {}
        for t in range(tiny_dlrm.num_tables):
            weights[f"table{t}"] = rng.integers(
                -20, 20, (64, 16), dtype=np.int8)
        out_eager, _ = GraphExecutor(mode="eager").run(
            build_dlrm_graph(tiny_dlrm, batch), feeds, weights)
        out_graph, report = GraphExecutor(mode="graph").run(
            build_dlrm_graph(tiny_dlrm, batch), feeds, weights)
        a = out_eager[list(out_eager)[0]]
        b = out_graph[list(out_graph)[0]]
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)
        assert report.placement is not None

    def test_full_compile_pipeline_on_mc1(self):
        """Fusion -> placement -> estimate, end to end on the real
        medium-complexity model."""
        graph = build_dlrm_graph(MODEL_ZOO["MC1"], 64)
        graph, fusion_report = fuse_graph(graph)
        assert fusion_report.tbe_created > 0
        placement = place_tensors(graph, MTIA_V1.sram.capacity_bytes)
        assert placement.sram_peak_bytes <= MTIA_V1.sram.capacity_bytes
        estimate = estimate_graph(MACHINES["mtia"], graph, placement)
        assert estimate.total_seconds > 0
        assert estimate.total_flops > 0

    def test_throughput_scales_sublinearly_with_batch(self):
        """Larger batches amortise overheads (Section 6.1) so per-sample
        latency falls."""
        graph64 = build_dlrm_graph(MODEL_ZOO["LC2"], 64)
        graph512 = build_dlrm_graph(MODEL_ZOO["LC2"], 512)
        ex = GraphExecutor(MACHINES["mtia"], mode="graph")
        t64 = estimate_graph(MACHINES["mtia"], graph64,
                             ex.compile(graph64)).total_seconds
        t512 = estimate_graph(MACHINES["mtia"], graph512,
                              ex.compile(graph512)).total_seconds
        assert t512 < 8 * t64 * 1.01
        assert t512 / 512 < t64 / 64


class TestMultiCard:
    def test_hc_partitions_and_gathers(self):
        graph = build_dlrm_graph(MODEL_ZOO["HC"], 4)
        partitions = partition_by_memory(graph, 32 * 10 ** 9)
        devices = DeviceSet(len(partitions))
        assert len(devices) >= 23
        # Simulate the sparse-gather step: each non-dense card ships its
        # pooled outputs to card 0.
        pooled_bytes = 4 * MODEL_ZOO["HC"].embedding_dim * 4
        for part in partitions[1:]:
            src = devices[part.card].from_numpy(
                np.zeros(pooled_bytes, np.float32), name=f"p{part.card}")
            devices.p2p_copy(src, devices[0])
        devices.synchronize()
        assert devices[0].cycles > 0

    def test_lc2_single_device_inference_path(self, rng):
        device = MTIADevice()
        data = rng.standard_normal((64, 128)).astype(np.float32)
        tensor = device.from_numpy(data, name="acts")
        out = device.to_numpy(tensor)
        np.testing.assert_array_equal(out, data)
        device.synchronize()
        assert device.cycles > 0


class TestSimulatorAgainstExecutor:
    def test_fc_operator_functional_agreement(self, rng):
        """The DES kernel and the executor's numpy semantics agree on
        the same FC computation."""
        from repro.kernels.fc import run_fc
        from repro.compiler.ir import GraphBuilder

        m, k, n = 64, 64, 64
        a = rng.integers(-64, 64, (m, k), dtype=np.int8)
        w = rng.integers(-64, 64, (n, k), dtype=np.int8)

        acc = Accelerator()
        sim = run_fc(acc, a, w, subgrid=acc.subgrid((0, 0), 1, 1))

        b = GraphBuilder()
        x = b.input((m, k), dtype="int8", name="x")
        wn = b.weight((n, k), dtype="int8", name="w")
        fc = b.add("fc", (x.name, wn.name), out_dtype="fp32", name="fc")
        g = b.output(fc.name)
        out, _ = GraphExecutor(mode="eager").run(g, {"x": a}, {"w": w})
        np.testing.assert_array_equal(sim.c, out["fc"].astype(np.int32))

    def test_simulated_cycles_feed_power_model(self):
        from repro.kernels.fc import run_fc
        from repro.platforms.power import ChipPowerModel

        acc = Accelerator()
        result = run_fc(acc, m=128, k=128, n=128,
                        subgrid=acc.subgrid((0, 0), 2, 2), k_split=2)
        model = ChipPowerModel()
        activity = model.activity_from_stats(acc.collect_stats())
        watts = model.average_watts(activity, result.cycles)
        assert model.idle_watts < watts < MTIA_V1.tdp_watts * 1.2


class TestHeterogeneousJobs:
    def test_fc_and_tbe_share_the_chip(self):
        """Sub-graph parallelism (Section 7): dense and sparse operators
        run concurrently on disjoint sub-grids of one chip, both
        producing correct results."""
        from repro.firmware import JobScheduler
        from repro.firmware.jobs import make_fc_job, make_tbe_job
        from repro.kernels.tbe import TBEConfig

        acc = Accelerator()
        sched = JobScheduler(acc)
        fc_jobs = [make_fc_job(f"fc{i}", acc, 128, 128, 128, rows=2,
                               cols=2, k_split=2, seed=i) for i in range(2)]
        tbe_cfg = TBEConfig(num_tables=4, rows_per_table=1000,
                            embedding_dim=64, pooling_factor=8,
                            batch_size=16)
        tbe_jobs = [make_tbe_job(f"tbe{i}", acc, tbe_cfg, rows=2, cols=2,
                                 seed=10 + i) for i in range(2)]
        # Interleave submissions so dense and sparse dispatch together.
        for fc, tbe in zip(fc_jobs, tbe_jobs):
            sched.submit(fc)
            sched.submit(tbe)
        stats = sched.run()
        assert stats.completed == 4
        assert stats.failed == 0
        for job in fc_jobs:
            out = acc.download(job.result_addr, job.result_shape, np.int32)
            np.testing.assert_array_equal(out, job.expected)
        for job in tbe_jobs:
            out = acc.download(job.result_addr, job.result_shape,
                               np.float32)
            np.testing.assert_allclose(out, job.expected, atol=1e-3)

    def test_concurrent_jobs_overlap_in_time(self):
        from repro.firmware import JobScheduler
        from repro.firmware.jobs import make_fc_job, make_tbe_job
        from repro.kernels.tbe import TBEConfig

        acc = Accelerator()
        sched = JobScheduler(acc)
        fc = make_fc_job("fc", acc, 256, 256, 128, rows=2, cols=2,
                         k_split=2)
        tbe = make_tbe_job("tbe", acc,
                           TBEConfig(num_tables=4, rows_per_table=2000,
                                     embedding_dim=64, pooling_factor=16,
                                     batch_size=32),
                           rows=2, cols=2)
        sched.submit(fc)
        sched.submit(tbe)
        sched.run()
        # Both started before either finished: genuine overlap.
        assert fc.start_cycle < tbe.finish_cycle
        assert tbe.start_cycle < fc.finish_cycle
