"""Failure injection: errors must surface, never silently corrupt."""

import numpy as np
import pytest

from repro import Accelerator
from repro.firmware import Job, JobScheduler
from repro.firmware.jobs import make_fc_job
from repro.isa.commands import DMALoad, InitCB, MML
from repro.sim import SimulationError


class TestKernelFaults:
    def test_unmapped_address_dma_fails_loudly(self):
        acc = Accelerator()
        pe = acc.grid.pe(0, 0)
        bad_addr = acc.config.dram.capacity_bytes + (1 << 30)

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=256))
            yield from ctx.issue_and_wait(DMALoad(addr=bad_addr,
                                                  row_bytes=64, cb_id=0))

        acc.launch(program, pe.cores[0])
        with pytest.raises(IndexError, match="unmapped"):
            acc.run()

    def test_mml_on_undefined_cb_fails(self):
        acc = Accelerator()
        pe = acc.grid.pe(0, 0)

        def program(ctx):
            yield from ctx.issue_and_wait(MML(acc=0, cb_b=4, cb_a=5))

        acc.launch(program, pe.cores[0])
        with pytest.raises(SimulationError, match="not defined"):
            acc.run()

    def test_cb_overflow_by_direct_write_fails(self):
        acc = Accelerator()
        pe = acc.grid.pe(0, 0)

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=64))
            pe.cb(0).write_and_push(np.zeros(100, np.uint8))
            yield

        acc.launch(program, pe.cores[0])
        with pytest.raises(SimulationError, match="free"):
            acc.run()

    def test_deadlocked_kernel_reported_not_hung(self):
        """A consumer waiting for data that never comes ends as a
        diagnosable error, not an infinite loop."""
        acc = Accelerator()
        pe = acc.grid.pe(0, 0)

        def program(ctx):
            yield from ctx.issue_and_wait(InitCB(cb_id=0, base=0, size=256))
            yield pe.cb(0).wait_elements(128)   # no producer exists

        acc.launch(program, pe.cores[0])
        with pytest.raises(SimulationError, match="did not finish"):
            acc.run()


class TestSchedulerFaults:
    def test_failing_job_frees_its_subgrid(self):
        """One crashing job must not leak PEs or block later jobs."""
        acc = Accelerator()
        sched = JobScheduler(acc)

        def bad_body(accelerator, subgrid):
            raise RuntimeError("kernel bug in job body")

        bad = Job(name="bad", rows=4, cols=4, body=bad_body)
        good = make_fc_job("good", acc, 512, 128, 256, rows=8, cols=8,
                           k_split=2)
        bad_done = sched.submit(bad)
        good_done = sched.submit(good)
        stats = sched.run()
        assert stats.failed == 1
        assert stats.completed == 1
        with pytest.raises(RuntimeError, match="kernel bug"):
            bad_done.value
        assert good_done.triggered
        assert sched.allocator.busy_pes == 0
        out = acc.download(good.result_addr, good.result_shape, np.int32)
        np.testing.assert_array_equal(out, good.expected)

    def test_failure_mid_execution_propagates(self):
        """A kernel program that dies mid-flight fails its job event."""
        acc = Accelerator()
        sched = JobScheduler(acc)

        def body(accelerator, subgrid):
            pe = subgrid.pe(0, 0)

            def crashing_program(ctx):
                yield 100
                raise ValueError("numerical fault at cycle 100")

            return [accelerator.launch(crashing_program, pe.cores[0])]

        done = sched.submit(Job(name="crash", rows=1, cols=1, body=body))
        stats = sched.run()
        assert stats.failed == 1
        with pytest.raises(ValueError, match="numerical fault"):
            done.value
        assert acc.control.busy_pes() == 0
