"""End-to-end checks of ``python -m repro.conformance``."""

import json

import pytest

from repro.conformance.__main__ import build_parser, main
from repro.conformance.runner import (ConformanceConfig,
                                      run_conformance)


def test_small_sweep_passes_and_writes_json(tmp_path, capsys):
    out = tmp_path / "report.json"
    code = main(["--seeds", "2", "--pillars", "golden,determinism",
                 "--quiet", "--json", str(out)])
    assert code == 0
    assert "PASS" in capsys.readouterr().out
    report = json.loads(out.read_text())
    assert report["passed"] is True
    assert report["totals"]["cases"] == 4
    assert report["totals"]["golden_divergences"] == 0
    assert report["totals"]["determinism_violations"] == 0
    assert report["config"]["seeds"] == [0, 1]


def test_replay_overrides_sweep(capsys):
    code = main(["--replay", "17", "--pillars", "golden", "--quiet"])
    assert code == 0
    out = capsys.readouterr().out
    assert "1 cases over 1 seeds" in out


def test_unknown_op_family_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        build_parser().parse_args(["--ops", "fc,bogus"])
    assert exc.value.code == 2
    assert "bogus" in capsys.readouterr().err


def test_runner_captures_case_exceptions_as_errors():
    # An op subset the graph-fuzzer pillars accept but whose crossval
    # band is impossible still yields a structured report, and a case
    # that raises is recorded as status="error", failing the run.
    config = ConformanceConfig(seeds=1, pillars=("golden",),
                               ops=("fc",))
    report = run_conformance(config)
    assert report.passed and len(report.cases) == 1

    config = ConformanceConfig(seeds=1, pillars=("bogus-pillar",))
    report = run_conformance(config)
    assert not report.passed
    assert report.cases[0].status == "error"
    assert "bogus-pillar" in report.cases[0].details["exception"]


def test_report_json_is_stable_and_round_trips():
    config = ConformanceConfig(seeds=1, pillars=("golden",))
    report = run_conformance(config)
    payload = json.loads(report.to_json())
    assert set(payload) == {"config", "passed", "totals", "failures",
                            "cases"}
    assert set(payload["totals"]) == {
        "cases", "golden_divergences", "determinism_violations",
        "cache_violations", "faults_violations", "autotune_violations",
        "crossval_cases", "band_violation_rate", "errors"}
