"""Crossval shape rules + band logic, and the determinism pillar."""

import pytest
from hypothesis import given, settings

from repro.conformance import (CrossvalBand, check_graph_determinism,
                               check_sim_determinism, crossval_fc,
                               fuzz_fc_shape)
from repro.conformance.crossval import CrossvalResult, fuzz_tbe_shape
from tests import strategies as shared


@given(seed=shared.seeds)
def test_fuzzed_fc_shapes_satisfy_tiling_rules(seed):
    s = fuzz_fc_shape(seed)
    n_split = s["cols"] // s["k_split"]
    assert s["m"] % (64 * s["rows"]) == 0
    assert s["n"] % (64 * n_split) == 0
    assert s["k"] % (32 * s["k_split"]) == 0
    assert s["k_split"] <= s["cols"]


@given(seed=shared.seeds)
def test_fuzzed_tbe_shapes_are_bounded(seed):
    s = fuzz_tbe_shape(seed)
    assert 2 <= s["num_tables"] <= 4
    assert s["embedding_dim"] in (32, 64, 128)
    assert s["pooling_factor"] in (8, 16, 32)


def test_band_logic():
    band = CrossvalBand(lo=0.5, hi=2.0)
    assert band.contains(1.0)
    assert not band.contains(0.5) and not band.contains(2.5)
    zero_sim = CrossvalResult(kind="fc", shape={}, sim_seconds=0.0,
                              model_seconds=1.0, band=band)
    assert zero_sim.ratio == float("inf") and not zero_sim.in_band


@pytest.mark.parametrize("seed", [0, 1])
def test_crossval_fc_stays_in_band(seed):
    result = crossval_fc(fuzz_fc_shape(seed))
    assert result.in_band, result.to_dict()
    assert result.sim_seconds > 0 and result.model_seconds > 0


def test_sim_determinism_and_hooks_are_noops():
    result = check_sim_determinism(0)
    assert result.ok, result.violations
    assert result.cycles > 0


@settings(max_examples=5)   # each example executes a fuzzed graph twice
@given(seed=shared.fuzz_seeds)
def test_graph_executor_replays_deterministically(seed):
    import numpy as np
    with np.errstate(over="ignore"):
        result = check_graph_determinism(seed)
    assert result.ok, result.violations
