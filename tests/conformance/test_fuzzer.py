"""Fuzzer invariants: validity, purity, op-subset respect."""

import numpy as np
import pytest
from hypothesis import given

from repro.conformance import FuzzConfig, fuzz_graph
from tests import strategies as shared


@given(seed=shared.fuzz_seeds)
def test_fuzzed_graphs_validate_and_bind_all_inputs(seed):
    case = fuzz_graph(seed)
    case.graph.validate()
    assert case.graph.outputs
    for node in case.graph:
        if node.op == "input":
            assert node.name in case.feeds
    # summary carries enough to triage a failure without re-running
    assert case.summary["nodes"] == len(case.graph)
    assert case.summary["outputs"] == list(case.graph.outputs)


@given(seed=shared.fuzz_seeds)
def test_fuzz_is_a_pure_function_of_seed(seed):
    a = fuzz_graph(seed)
    b = fuzz_graph(seed)
    assert ([(n.name, n.op, tuple(n.inputs)) for n in a.graph]
            == [(n.name, n.op, tuple(n.inputs)) for n in b.graph])
    assert a.graph.outputs == b.graph.outputs
    assert sorted(a.feeds) == sorted(b.feeds)
    for name in a.feeds:
        np.testing.assert_array_equal(a.feeds[name], b.feeds[name])
    assert sorted(a.weights) == sorted(b.weights)
    for name in a.weights:
        np.testing.assert_array_equal(a.weights[name], b.weights[name])


@given(seed=shared.seeds, ops=shared.fuzzer_op_subsets())
def test_op_subsets_are_respected(seed, ops):
    case = fuzz_graph(seed, FuzzConfig(ops=ops))
    used = {n.op for n in case.graph}
    forbidden = {"eb": {"embedding_bag", "tbe"},
                 "bmm": {"batch_matmul"},
                 "quantize": {"quantize", "dequantize"}}
    for family, op_names in forbidden.items():
        if family not in ops:
            assert not (used & op_names), (family, used)


def test_unknown_op_family_rejected():
    with pytest.raises(ValueError, match="bogus"):
        FuzzConfig(ops=("fc", "bogus"))
