"""Differential checks: executor (eager and fused) vs the golden
reference, plus the comparison machinery itself."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.compiler.ir import GraphBuilder
from repro.conformance import (TolerancePolicy, compare_outputs,
                               evaluate_graph)
from repro.conformance.runner import ConformanceConfig, run_golden_case
from tests import strategies as shared


@settings(max_examples=15)   # each example runs two executor modes
@given(seed=shared.fuzz_seeds)
def test_fused_and_unfused_agree_with_golden(seed):
    with np.errstate(over="ignore"):
        result = run_golden_case(seed, ConformanceConfig())
    assert result.ok, result.details["divergences"]


@pytest.mark.parametrize("seed", [10, 70])
def test_noncontiguous_tbe_merge_regression(seed):
    """Seeds that once merged non-adjacent EmbeddingBags into one TBE,
    reordering the sparse-feature concat's columns in fused mode."""
    result = run_golden_case(seed, ConformanceConfig())
    assert result.ok, result.details["divergences"]


def test_quantized_fc_is_bit_exact_against_golden():
    from repro.runtime.executor import GraphExecutor

    b = GraphBuilder("q_exact")
    x = b.input((8, 16), dtype="fp32", name="x")
    q = b.add("quantize", (x.name,), scale=0.05)
    w = b.weight((12, 16), dtype="int8", name="w")
    fc = b.add("fc", (q.name, w.name), out_dtype="fp32")
    y = b.add("dequantize", (fc.name,), scale=0.05 * 0.05, name="y")
    graph = b.output(q.name, y.name)

    rng = np.random.default_rng(7)
    feeds = {"x": rng.standard_normal((8, 16)).astype(np.float32)}
    weights = {"w": rng.integers(-16, 16, (12, 16), dtype=np.int8)}
    reference = evaluate_graph(graph, feeds, weights)
    outputs, _ = GraphExecutor(mode="eager").run(graph.copy(), feeds,
                                                 weights)
    # int8 output must match bit-for-bit, not just within tolerance.
    np.testing.assert_array_equal(outputs[q.name], reference[q.name])
    assert not compare_outputs(outputs, reference)


def test_compare_outputs_flags_each_divergence_kind():
    want = {"a": np.zeros((2, 2), np.float32),
            "b": np.zeros(4, np.int8)}
    # shape mismatch
    got = {"a": np.zeros((2, 3), np.float32), "b": want["b"]}
    assert "shape" in compare_outputs(got, want)[0].reason
    # dtype mismatch
    got = {"a": np.zeros((2, 2), np.float64), "b": want["b"]}
    assert "dtype" in compare_outputs(got, want)[0].reason
    # quantized outputs must match exactly: off-by-one fails
    got = {"a": want["a"], "b": np.ones(4, np.int8)}
    div = compare_outputs(got, want)
    assert div and div[0].max_abs_err == 1.0
    # fp within tolerance passes, outside fails
    policy = TolerancePolicy(atol=1e-3, rtol=0.0)
    got = {"a": np.full((2, 2), 5e-4, np.float32), "b": want["b"]}
    assert not compare_outputs(got, want, policy)
    got = {"a": np.full((2, 2), 5e-3, np.float32), "b": want["b"]}
    assert compare_outputs(got, want, policy)


def test_compare_outputs_maps_renamed_fused_outputs_positionally():
    want = {"act": np.ones(3, np.float32)}
    got = {"fc0": np.ones(3, np.float32)}
    assert not compare_outputs(got, want, actual_names=["fc0"],
                               expected_names=["act"])
    got = {"fc0": np.zeros(3, np.float32)}
    div = compare_outputs(got, want, actual_names=["fc0"],
                          expected_names=["act"])
    assert div and "fused: fc0" in div[0].output


def test_evaluate_graph_rejects_unmodeled_ops():
    b = GraphBuilder("unknown_op")
    x = b.input((2, 2), dtype="fp32", name="x")
    y = b.add("relu", (x.name,), name="y")
    graph = b.output(y.name)
    graph.node("y").op = "frobnicate"
    with pytest.raises(ValueError, match="frobnicate"):
        evaluate_graph(graph, {"x": np.zeros((2, 2), np.float32)})
