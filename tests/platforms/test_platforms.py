"""Platform specs (Table II) and the chip power model."""

import pytest

from repro.platforms import (PLATFORMS, ChipPowerModel, YOSEMITE_V2,
                             YOSEMITE_V3, ZION_4S)


class TestTableII:
    def test_platform_identities(self):
        assert YOSEMITE_V2.accelerator == "NNPI"
        assert ZION_4S.accelerator == "A100 GPU"
        assert YOSEMITE_V3.accelerator == "MTIA"

    def test_card_counts(self):
        assert YOSEMITE_V2.num_cards == 6
        assert ZION_4S.num_cards == 8
        assert YOSEMITE_V3.num_cards == 12

    def test_system_power(self):
        assert YOSEMITE_V2.system_power_w == 298
        assert ZION_4S.system_power_w == 4500
        assert YOSEMITE_V3.system_power_w == 780

    def test_power_percentage_matches_table(self):
        # Table II "Percentage" row: 27.2 %, 58.7 %, 53.8 %.
        assert YOSEMITE_V2.accelerator_power_fraction == pytest.approx(
            0.272, abs=0.005)
        assert ZION_4S.accelerator_power_fraction == pytest.approx(
            0.587, abs=0.005)
        assert YOSEMITE_V3.accelerator_power_fraction == pytest.approx(
            0.538, abs=0.005)

    def test_provisioned_power_methodology(self):
        assert YOSEMITE_V3.provisioned_watts_per_card == pytest.approx(65.0)
        assert ZION_4S.provisioned_watts_per_card == pytest.approx(562.5)

    def test_aggregate_compute(self):
        assert YOSEMITE_V3.total_int8_tops == pytest.approx(104 * 12)
        assert ZION_4S.total_device_memory_gb == pytest.approx(320)

    def test_table_row_rendering(self):
        row = YOSEMITE_V3.as_table_row()
        assert row["INT8 (TOPS/s)"] == "104 x 12"
        assert row["Dev.-to-Dev."] == "PCIe"
        assert "53.8" in row["Percentage"]

    def test_platform_registry(self):
        assert set(PLATFORMS) == {"nnpi", "gpu", "mtia"}


class TestChipPowerModel:
    def test_idle_floor(self):
        model = ChipPowerModel()
        watts = model.average_watts({}, elapsed_cycles=1000)
        assert watts == pytest.approx(model.idle_watts)
        assert 0 < model.idle_watts < 25

    def test_activity_increases_power(self):
        model = ChipPowerModel()
        idle = model.average_watts({}, 1000)
        busy = model.average_watts({"int8_mac": 1e9}, 1000)
        assert busy > idle

    def test_power_capped_near_tdp(self):
        model = ChipPowerModel()
        watts = model.average_watts({"dram_byte": 1e15}, 1000)
        assert watts <= 25 * 1.2

    def test_unknown_counter_rejected(self):
        model = ChipPowerModel()
        with pytest.raises(KeyError):
            model.dynamic_energy_j({"quantum_flux": 1.0})

    def test_nonpositive_interval_rejected(self):
        model = ChipPowerModel()
        with pytest.raises(ValueError):
            model.average_watts({}, 0)

    def test_activity_mapping_from_simulator(self):
        """Map real simulator counters into the energy model."""
        import numpy as np
        from repro import Accelerator
        from repro.kernels.fc import run_fc
        acc = Accelerator()
        result = run_fc(acc, m=128, k=128, n=128,
                        subgrid=acc.subgrid((0, 0), 2, 2), k_split=2)
        stats = acc.collect_stats()
        model = ChipPowerModel()
        activity = model.activity_from_stats(stats)
        assert activity["int8_mac"] == 128 ** 3
        assert activity["dram_byte"] > 0
        watts = model.average_watts(activity, result.cycles)
        assert model.idle_watts < watts <= 30

    def test_data_movement_dominates_compute_energy(self):
        """The architecture's premise: moving a byte from DRAM costs far
        more than an INT8 MAC (why multicast/reduction trees exist)."""
        from repro.platforms.power import ENERGY_PJ
        assert ENERGY_PJ["dram_byte"] > 50 * ENERGY_PJ["int8_mac"]
        assert ENERGY_PJ["sram_byte"] > ENERGY_PJ["local_memory_byte"]
