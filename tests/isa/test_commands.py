"""Command effect declarations (the CP's dependency metadata)."""

import pytest

from repro.dtypes import FP16, INT8
from repro.isa.commands import (ConcatCmd, CopyCmd, DMALoad, DMAStore,
                                ElementwiseCmd, InitAccumulators, InitCB,
                                MML, NonlinearCmd, PopCB, PushCB,
                                QuantizeCmd, Reduce, TransposeCmd)


class TestEffectSets:
    def test_dma_load_produces_only(self):
        cmd = DMALoad(addr=0, row_bytes=64, cb_id=3)
        assert cmd.produces_cbs() == (3,)
        assert cmd.consumes_cbs() == ()
        assert cmd.reads_cbs() == ()
        assert cmd.required_space() == {3: 64}

    def test_dma_load_2d_accounting(self):
        cmd = DMALoad(addr=0, rows=16, row_bytes=32, stride=128, cb_id=0)
        assert cmd.nbytes == 512
        assert cmd.required_space() == {0: 512}

    def test_dma_load_default_stride_is_contiguous(self):
        cmd = DMALoad(addr=0, rows=4, row_bytes=32, cb_id=0)
        assert cmd.stride == 32

    def test_dma_store_consumes(self):
        cmd = DMAStore(addr=0, row_bytes=128, cb_id=2)
        assert cmd.consumes_cbs() == (2,)
        assert cmd.produces_cbs() == ()
        assert cmd.required_elements() == {2: 128}

    def test_pop_push_effects(self):
        assert PopCB(cb_id=1, nbytes=64).consumes_cbs() == (1,)
        assert PushCB(cb_id=1, nbytes=64).produces_cbs() == (1,)

    def test_init_cb_is_full_barrier(self):
        cmd = InitCB(cb_id=4, base=0, size=64)
        assert cmd.reads_cbs() == (4,)
        assert cmd.produces_cbs() == (4,)
        assert cmd.consumes_cbs() == (4,)

    def test_mml_reads_and_writes_reg(self):
        cmd = MML(acc=2, cb_b=0, cb_a=1)
        assert set(cmd.reads_cbs()) == {0, 1}
        assert cmd.writes_regs() == ("acc2",)
        assert cmd.produces_cbs() == ()

    def test_mml_element_requirements_include_offsets(self):
        cmd = MML(acc=0, m=32, k=32, n=32, cb_b=5, cb_a=6,
                  offset_b=1024, offset_a=2048)
        req = cmd.required_elements()
        assert req[5] == 1024 + 32 * 32
        assert req[6] == 2048 + 32 * 32

    def test_mml_fp16_requirements_scale_by_element(self):
        cmd = MML(acc=0, cb_b=0, cb_a=1, dtype=FP16)
        assert cmd.required_elements()[0] == 32 * 32 * 2

    def test_init_accumulators_writes_regs(self):
        cmd = InitAccumulators(banks=(0, 2))
        assert set(cmd.writes_regs()) == {"acc0", "acc2"}
        assert cmd.reads_cbs() == ()
        biased = InitAccumulators(banks=(1,), bias_cb=7)
        assert biased.reads_cbs() == (7,)

    def test_reduce_effects(self):
        cmd = Reduce(dest_cb=3)
        assert set(cmd.writes_regs()) == {"acc0", "acc1", "acc2", "acc3"}
        assert cmd.produces_cbs() == (3,)
        assert cmd.required_space() == {3: 64 * 64 * 4}
        to_pe = Reduce(banks_layout=((0,),), dest_pe=(1, 1))
        assert to_pe.produces_cbs() == ()
        assert to_pe.output_shape() == (32, 32)

    def test_reduce_output_space_scales_with_dtype(self):
        cmd = Reduce(banks_layout=((0,),), dest_cb=1, out_dtype=INT8)
        assert cmd.required_space() == {1: 32 * 32}

    def test_transpose_pop_flag(self):
        keep = TransposeCmd(src_cb=0, dst_cb=1, rows=8, cols=8)
        assert keep.consumes_cbs() == ()
        pop = TransposeCmd(src_cb=0, dst_cb=1, rows=8, cols=8,
                           pop_input=True)
        assert pop.consumes_cbs() == (0,)
        assert pop.nbytes == 64

    def test_concat_requires_aligned_lists(self):
        with pytest.raises(ValueError, match="align"):
            ConcatCmd(src_cbs=(0, 1), src_nbytes=(64,), dst_cb=2)

    def test_concat_effects(self):
        cmd = ConcatCmd(src_cbs=(0, 1), src_nbytes=(64, 32), dst_cb=2)
        assert cmd.consumes_cbs() == (0, 1)
        assert cmd.required_space() == {2: 96}

    def test_quantize_requirements(self):
        cmd = QuantizeCmd(src_cb=0, dst_cb=1, count=100)
        assert cmd.required_elements() == {0: 400}   # fp32 in
        assert cmd.required_space() == {1: 100}      # int8 out
        dq = QuantizeCmd(src_cb=0, dst_cb=1, count=100,
                         direction="dequantize")
        assert dq.required_elements() == {0: 100}
        assert dq.required_space() == {1: 400}

    def test_elementwise_requirements(self):
        cmd = ElementwiseCmd(op="add", src_cb_a=0, src_cb_b=1, dst_cb=2,
                             count=64, dtype=INT8)
        assert cmd.required_elements() == {0: 64, 1: 64}
        assert cmd.required_space() == {2: 64}

    def test_unit_assignments(self):
        assert DMALoad().unit == "fi"
        assert MML().unit == "dpe"
        assert Reduce(dest_cb=0).unit == "re"
        assert QuantizeCmd().unit == "se"
        assert TransposeCmd().unit == "mlu"
        assert PopCB().unit == "cp"
