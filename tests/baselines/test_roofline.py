"""Roofline model and device rooflines."""

import pytest

from repro.baselines import (Roofline, RooflinePoint, gpu_roofline,
                             mtia_roofline, nnpi_roofline)


class TestRoofline:
    def test_memory_bound_region(self):
        r = Roofline("test", peak_gflops=1000,
                     bandwidth_gbs={"dram": 100})
        assert r.attainable_gflops(1.0, "dram") == 100
        assert r.bound_kind(1.0, "dram") == "memory"

    def test_compute_bound_region(self):
        r = Roofline("test", peak_gflops=1000, bandwidth_gbs={"dram": 100})
        assert r.attainable_gflops(100.0, "dram") == 1000
        assert r.bound_kind(100.0, "dram") == "compute"

    def test_ridge_point(self):
        r = Roofline("test", peak_gflops=1000, bandwidth_gbs={"dram": 100})
        assert r.ridge_intensity("dram") == pytest.approx(10.0)

    def test_default_ceiling_is_fastest(self):
        r = Roofline("test", peak_gflops=1000,
                     bandwidth_gbs={"dram": 100, "sram": 500})
        assert r.attainable_gflops(1.0) == 500

    def test_zero_intensity(self):
        r = Roofline("t", peak_gflops=10, bandwidth_gbs={"dram": 1})
        assert r.attainable_gflops(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Roofline("bad", peak_gflops=0, bandwidth_gbs={"dram": 1})
        with pytest.raises(ValueError):
            Roofline("bad", peak_gflops=10, bandwidth_gbs={})
        with pytest.raises(ValueError):
            Roofline("bad", peak_gflops=10, bandwidth_gbs={"dram": -1})

    def test_sweep(self):
        r = Roofline("t", peak_gflops=100, bandwidth_gbs={"dram": 10})
        series = r.sweep([0.1, 1, 10, 100], "dram")
        values = [v for _, v in series]
        assert values == sorted(values)
        assert values[-1] == 100

    def test_point_efficiency(self):
        r = Roofline("t", peak_gflops=100, bandwidth_gbs={"dram": 10})
        point = RooflinePoint("op", arithmetic_intensity=100,
                              achieved_gflops=50)
        assert point.efficiency(r, "dram") == pytest.approx(0.5)


class TestDeviceRooflines:
    def test_mtia_ridge_points(self):
        """MTIA's INT8 ridge: ~600 FLOP/byte from DRAM, ~130 from SRAM —
        why DLRM operators are overwhelmingly memory bound."""
        r = mtia_roofline("int8")
        assert r.ridge_intensity("dram") == pytest.approx(104857.6 / 150,
                                                          rel=0.05)
        assert r.ridge_intensity("onchip") < r.ridge_intensity("dram")

    def test_gpu_has_higher_ceilings(self):
        mtia, gpu = mtia_roofline(), gpu_roofline()
        assert gpu.peak_gflops > mtia.peak_gflops
        assert gpu.bandwidth_gbs["dram"] > mtia.bandwidth_gbs["dram"]

    def test_nnpi_is_smallest(self):
        nnpi, mtia = nnpi_roofline(), mtia_roofline()
        assert nnpi.peak_gflops < mtia.peak_gflops
        assert nnpi.bandwidth_gbs["dram"] < mtia.bandwidth_gbs["dram"]

    def test_tbe_is_memory_bound_everywhere(self):
        """Embedding gathers run at ~0.25 FLOP/byte — deep inside every
        device's memory-bound region."""
        for make in (mtia_roofline, gpu_roofline, nnpi_roofline):
            assert make().bound_kind(0.25, "dram") == "memory"

    def test_fp16_halves_mtia_ceiling(self):
        assert mtia_roofline("fp16").peak_gflops == pytest.approx(
            mtia_roofline("int8").peak_gflops / 2)
