"""AXI-style network with multicast coalescing."""

import numpy as np
import pytest

from repro.config import MTIA_V1
from repro.memory import MemorySystem, SRAMMode
from repro.noc import NoC
from repro.sim import Engine, SimulationError


@pytest.fixture
def noc(engine):
    memory = MemorySystem(engine, MTIA_V1, sram_mode=SRAMMode.CACHE)
    return NoC(engine, MTIA_V1, memory)


class TestUnicast:
    def test_read_returns_data(self, engine, noc, rng):
        data = rng.integers(0, 256, 256, dtype=np.uint8)
        noc.memory.poke(1024, data)

        def proc():
            out = yield from noc.read((0, 0), 1024, 256)
            return out

        np.testing.assert_array_equal(engine.run_process(proc()), data)

    def test_write_lands_in_memory(self, engine, noc, rng):
        data = rng.integers(0, 256, 128, dtype=np.uint8)

        def proc():
            yield from noc.write((3, 4), 2048, data)

        engine.run_process(proc())
        np.testing.assert_array_equal(noc.memory.peek(2048, 128), data)

    def test_hop_count_is_distance_to_edge(self, noc):
        assert noc.hop_count((0, 0)) == 1     # corner PE
        assert noc.hop_count((3, 3)) == 4     # interior PE
        assert noc.hop_count((0, 7)) == 1
        assert noc.hop_count((4, 4)) == 4

    def test_interior_pe_pays_more_latency(self, noc):
        engine = noc.engine

        def read_from(coord, addr):
            t0 = engine.now
            yield from noc.read(coord, addr, 64)
            return engine.now - t0

        # distinct addresses so the second read is not a cache hit
        t_corner = engine.run_process(read_from((0, 0), 0))
        t_interior = engine.run_process(read_from((4, 4), 1 << 20))
        assert t_interior > t_corner

    def test_link_bytes_counted(self, engine, noc):
        def proc():
            yield from noc.read((2, 2), 0, 512)

        engine.run_process(proc())
        assert noc.stats["link_bytes"] == 512
        assert noc.row_links[2].total_units == 512
        assert noc.col_links[2].total_units == 512

    def test_2d_read(self, engine, noc):
        matrix = np.arange(64, dtype=np.uint8).reshape(8, 8)
        noc.memory.poke(0, matrix)

        def proc():
            out = yield from noc.read_2d((0, 0), 8 + 2, rows=3, row_bytes=4,
                                         stride=8)
            return out

        out = engine.run_process(proc()).reshape(3, 4)
        np.testing.assert_array_equal(out, matrix[1:4, 2:6])


class TestMulticast:
    def test_group_must_share_row_or_column(self, noc):
        noc.multicast_group([(0, 0), (0, 3), (0, 7)])    # row: fine
        noc.multicast_group([(1, 2), (5, 2)])            # column: fine
        with pytest.raises(SimulationError, match="row or column"):
            noc.multicast_group([(0, 0), (1, 1)])

    def test_empty_or_duplicate_groups_rejected(self, noc):
        with pytest.raises(SimulationError):
            noc.multicast_group([])
        with pytest.raises(SimulationError):
            noc.multicast_group([(0, 0), (0, 0)])

    def test_non_member_read_rejected(self, engine, noc):
        group = noc.multicast_group([(0, 0), (0, 1)])

        def proc():
            yield from group.read((5, 5), 0, 64)

        with pytest.raises(SimulationError, match="not in this multicast"):
            engine.run_process(proc())

    def test_coalesces_identical_reads(self, engine, noc, rng):
        """Section 3.4: one memory fetch serves all requesters."""
        data = rng.integers(0, 256, 256, dtype=np.uint8)
        noc.memory.poke(4096, data)
        members = [(2, c) for c in range(4)]
        group = noc.multicast_group(members)
        results = []

        def reader(coord):
            out = yield from group.read(coord, 4096, 256)
            results.append(out)

        for coord in members:
            engine.process(reader(coord))
        engine.run()
        assert len(results) == 4
        for out in results:
            np.testing.assert_array_equal(out, data)
        assert group.stats["fetches"] == 1
        assert group.stats["coalesced"] == 3
        assert group.coalescing_ratio() == pytest.approx(0.75)

    def test_memory_sees_single_request(self, engine, noc):
        members = [(0, c) for c in range(8)]
        group = noc.multicast_group(members)

        def reader(coord):
            yield from group.read(coord, 0, 1024)

        for coord in members:
            engine.process(reader(coord))
        engine.run()
        # Only the first member's request reached DRAM.
        assert noc.memory.dram.stats["read_bytes"] == 1024

    def test_different_addresses_not_coalesced(self, engine, noc):
        group = noc.multicast_group([(0, 0), (0, 1)])

        def reader(coord, addr):
            yield from group.read(coord, addr, 64)

        engine.process(reader((0, 0), 0))
        engine.process(reader((0, 1), 4096))
        engine.run()
        assert group.stats["fetches"] == 2
        assert group.stats["coalesced"] == 0

    def test_each_member_pays_delivery(self, engine, noc):
        members = [(1, c) for c in range(4)]
        group = noc.multicast_group(members)

        def reader(coord):
            yield from group.read(coord, 0, 512)

        for coord in members:
            engine.process(reader(coord))
        engine.run()
        # The response still traverses every requester's links.
        assert noc.stats["link_bytes"] == 4 * 512
