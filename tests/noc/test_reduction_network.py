"""The dedicated reduction network."""

import numpy as np
import pytest

from repro.config import MTIA_V1
from repro.noc import ReductionNetwork
from repro.sim import Engine, SimulationError


@pytest.fixture
def rednet(engine):
    return ReductionNetwork(engine, MTIA_V1)


class TestRouting:
    def test_send_to_east_neighbor(self, engine, rednet):
        payload = np.arange(16, dtype=np.int32)

        def sender():
            yield from rednet.send((2, 3), (2, 4), payload)

        def receiver():
            out = yield from rednet.receive((2, 4))
            return out

        engine.process(sender())
        proc = engine.process(receiver())
        engine.run()
        np.testing.assert_array_equal(proc.value, payload)

    def test_send_to_south_neighbor(self, engine, rednet):
        def sender():
            yield from rednet.send((0, 0), (1, 0), np.zeros(4, np.int32))

        engine.run_process(sender())
        assert rednet.stats["transfers"] == 1

    @pytest.mark.parametrize("src,dst", [
        ((2, 3), (2, 2)),    # west: against the flow
        ((3, 3), (2, 3)),    # north: against the flow
        ((0, 0), (1, 1)),    # diagonal
        ((0, 0), (0, 2)),    # skip a hop
    ])
    def test_illegal_hops_rejected(self, engine, rednet, src, dst):
        """Section 3.4: links run north->south and west->east between
        immediate neighbours only."""
        def sender():
            yield from rednet.send(src, dst, np.zeros(4, np.int32))

        with pytest.raises(SimulationError):
            engine.run_process(sender())

    def test_out_of_grid_rejected(self, engine, rednet):
        def sender():
            yield from rednet.send((7, 7), (7, 8), np.zeros(4, np.int32))

        with pytest.raises(SimulationError):
            engine.run_process(sender())


class TestSemantics:
    def test_fifo_ordering_per_receiver(self, engine, rednet):
        def sender():
            for i in range(3):
                yield from rednet.send((0, 0), (0, 1),
                                       np.full(4, i, np.int32))

        received = []

        def receiver():
            for _ in range(3):
                out = yield from rednet.receive((0, 1))
                received.append(int(out[0]))

        engine.process(sender())
        engine.process(receiver())
        engine.run()
        assert received == [0, 1, 2]

    def test_receive_blocks_until_send(self, engine, rednet):
        times = []

        def receiver():
            yield from rednet.receive((1, 1))
            times.append(engine.now)

        def sender():
            yield 50
            yield from rednet.send((1, 0), (1, 1), np.zeros(1024, np.int32))

        engine.process(receiver())
        engine.process(sender())
        engine.run()
        assert times[0] >= 50

    def test_chain_accumulation(self, engine, rednet):
        """A west-to-east chain of partial sums, like the FC mapping."""
        chain = [(0, c) for c in range(4)]
        final = []

        def pe_program(index):
            partial = np.full(8, index + 1, dtype=np.int32)
            if index > 0:
                inbound = yield from rednet.receive(chain[index])
                partial = partial + inbound
            if index < len(chain) - 1:
                yield from rednet.send(chain[index], chain[index + 1],
                                       partial)
            else:
                final.append(partial)

        for i in range(len(chain)):
            engine.process(pe_program(i))
        engine.run()
        np.testing.assert_array_equal(final[0], np.full(8, 10, np.int32))

    def test_bandwidth_accounting(self, engine, rednet):
        block = np.zeros((32, 32), np.int32)

        def sender():
            yield from rednet.send((0, 0), (0, 1), block)

        engine.run_process(sender())
        assert rednet.total_bytes() == block.nbytes

    def test_transfer_charges_link_time(self, engine, rednet):
        block = np.zeros((32, 32), np.int32)   # 4 KB at 64 B/cycle

        def sender():
            yield from rednet.send((0, 0), (0, 1), block)
            return engine.now

        elapsed = engine.run_process(sender())
        assert elapsed >= block.nbytes / ReductionNetwork.LINK_BYTES_PER_CYCLE
