"""Firmware: sub-grid allocation and job scheduling."""

import numpy as np
import pytest

from repro import Accelerator
from repro.firmware import Job, JobScheduler, SubGridAllocator
from repro.firmware.jobs import make_fc_job
from repro.sim import SimulationError


class TestAllocator:
    def test_first_fit_placement(self, accelerator):
        alloc = SubGridAllocator(accelerator.grid)
        a = alloc.allocate(2, 2)
        b = alloc.allocate(2, 2)
        assert a.origin == (0, 0)
        assert b.origin == (0, 2)
        assert alloc.busy_pes == 8

    def test_release_reuses_space(self, accelerator):
        alloc = SubGridAllocator(accelerator.grid)
        a = alloc.allocate(4, 8)
        alloc.allocate(4, 8)
        assert alloc.allocate(1, 1) is None     # full
        alloc.release(a)
        again = alloc.allocate(4, 8)
        assert again.origin == (0, 0)

    def test_allocation_failure_returns_none(self, accelerator):
        alloc = SubGridAllocator(accelerator.grid)
        alloc.allocate(8, 8)
        assert alloc.allocate(1, 1) is None

    def test_fragmentation(self, accelerator):
        """A 4x4 hole can't serve an 8x1 job — the monolithic-grid
        management pain of Section 7."""
        alloc = SubGridAllocator(accelerator.grid)
        alloc.allocate(8, 4)           # left half busy
        assert alloc.allocate(8, 8) is None
        assert alloc.allocate(8, 4) is not None

    def test_cluster_granularity_rounds_up(self, accelerator):
        alloc = SubGridAllocator(accelerator.grid, cluster=2)
        a = alloc.allocate(1, 1)       # reserves a whole 2x2 cluster
        assert alloc.busy_pes == 4
        b = alloc.allocate(1, 1)
        assert b.origin == (0, 2)      # next cluster, not (0, 1)

    def test_cluster_reduces_management_units(self, accelerator):
        pe_level = SubGridAllocator(accelerator.grid, cluster=1)
        clustered = SubGridAllocator(accelerator.grid, cluster=2)
        assert pe_level.management_units(4, 4) == 16
        assert clustered.management_units(4, 4) == 4

    def test_invalid_cluster_rejected(self, accelerator):
        with pytest.raises(ValueError):
            SubGridAllocator(accelerator.grid, cluster=3)
        with pytest.raises(ValueError):
            SubGridAllocator(accelerator.grid, cluster=0)

    def test_utilization(self, accelerator):
        alloc = SubGridAllocator(accelerator.grid)
        alloc.allocate(4, 8)
        assert alloc.utilization() == pytest.approx(0.5)


class TestScheduler:
    def test_concurrent_jobs_all_correct(self):
        acc = Accelerator()
        sched = JobScheduler(acc)
        jobs = [make_fc_job(f"fc{i}", acc, 128, 128, 128, rows=2, cols=2,
                            k_split=2, seed=i) for i in range(4)]
        for job in jobs:
            sched.submit(job)
        stats = sched.run()
        assert stats.completed == 4
        for job in jobs:
            out = acc.download(job.result_addr, job.result_shape, np.int32)
            np.testing.assert_array_equal(out, job.expected)

    def test_concurrency_beats_serial(self):
        acc = Accelerator()
        sched = JobScheduler(acc)
        jobs = [make_fc_job(f"fc{i}", acc, 128, 128, 128, rows=2, cols=2,
                            k_split=2, seed=i) for i in range(8)]
        for job in jobs:
            sched.submit(job)
        stats = sched.run()
        from repro.kernels.fc import run_fc
        acc2 = Accelerator()
        serial = sum(run_fc(acc2, m=128, k=128, n=128,
                            subgrid=acc2.subgrid((0, 0), 2, 2), k_split=2,
                            seed=i).cycles for i in range(8))
        assert stats.makespan < serial / 2

    def test_queueing_when_grid_full(self):
        acc = Accelerator()
        sched = JobScheduler(acc)
        # Two 8x8 jobs cannot overlap: the second must queue.
        jobs = [make_fc_job(f"big{i}", acc, 512, 256, 512, rows=8, cols=8,
                            k_split=2, seed=i) for i in range(2)]
        for job in jobs:
            sched.submit(job)
        sched.run()
        assert jobs[1].start_cycle >= jobs[0].finish_cycle
        assert jobs[1].queueing_cycles > 0

    def test_oversized_job_rejected(self):
        acc = Accelerator()
        sched = JobScheduler(acc)
        with pytest.raises(SimulationError, match="never fit"):
            sched.submit(Job(name="huge", rows=9, cols=1,
                             body=lambda a, s: []))

    def test_setup_cost_scales_with_units(self):
        acc_pe = Accelerator()
        sched_pe = JobScheduler(acc_pe, cluster=1)
        job = make_fc_job("j", acc_pe, 128, 128, 128, rows=4, cols=4,
                          k_split=2)
        sched_pe.submit(job)
        stats_pe = sched_pe.run()

        acc_cl = Accelerator()
        sched_cl = JobScheduler(acc_cl, cluster=2)
        job2 = make_fc_job("j", acc_cl, 128, 128, 128, rows=4, cols=4,
                           k_split=2)
        sched_cl.submit(job2)
        stats_cl = sched_cl.run()
        # 16 PE units vs 4 cluster units of setup.
        assert stats_cl.total_setup_cycles == stats_pe.total_setup_cycles / 4

    def test_job_timestamps_consistent(self):
        acc = Accelerator()
        sched = JobScheduler(acc)
        job = make_fc_job("t", acc, 64, 64, 64, rows=1, cols=1)
        sched.submit(job)
        sched.run()
        assert job.submit_cycle <= job.start_cycle <= job.finish_cycle
        assert job.service_cycles > 0
