"""The python -m repro.serve_report and python -m repro.bench CLIs."""

import json

import pytest

from repro.serve_report import (WORKLOADS, build_chrome_trace, main,
                                run_serve_report)

#: Small, exemplar-free run shared across the class (the DES exemplar
#: profiles are exercised separately and in the CLI smoke test).
pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


@pytest.fixture(scope="module")
def quick():
    return run_serve_report("quickstart", num_requests=800,
                            exemplars=False)


class TestServeReport:
    def test_report_sections_populated(self, quick):
        report, model = quick
        data = report.to_dict()
        assert data["schema_version"] == 1
        assert data["num_requests"] == 800
        assert set(data["breakdown_us"]) == {"queue_wait", "batch_wait",
                                             "retry_overhead", "execute"}
        assert data["slo"]["total"] == 800
        assert data["tail_attribution"]["tail_requests"] > 0
        assert data["tail_attribution"]["category_mix"]["tail"]
        rows = data["requests"]
        assert len(rows) == data["request_rows_included"] == 100
        for row in rows[:5]:
            assert row["latency_us"] == pytest.approx(
                row["queue_wait_us"] + row["batch_wait_us"]
                + row["execute_us"])

    def test_json_round_trips(self, quick):
        report, _ = quick
        assert json.loads(report.to_json())["workload"] == "quickstart"

    def test_text_render(self, quick):
        report, _ = quick
        text = report.to_text()
        for needle in ("== latency ==", "== SLO", "tail attribution",
                       "queue_wait"):
            assert needle in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_serve_report("nope")

    def test_workload_presets_complete(self):
        for spec in WORKLOADS.values():
            assert {"model", "qps", "sla_us", "num_requests"} <= set(spec)

    def test_exemplars_add_stall_mix(self):
        report, _ = run_serve_report("quickstart", num_requests=400,
                                     exemplars=True)
        mix = report.tail.stall_mix
        assert set(mix) == {"tail", "median", "delta"}
        assert sum(mix["tail"].values()) == pytest.approx(1.0)

    def test_chrome_trace_links_request_to_sim(self, quick):
        report, model = quick
        trace = build_chrome_trace(report, model)
        events = trace["traceEvents"]
        names = {e["args"]["name"] for e in events if e.get("ph") == "M"}
        assert "serving.requests" in names
        assert any(n.endswith(".model") for n in names)
        assert any(n.endswith(".sim") for n in names)
        starts = {e["id"] for e in events if e.get("ph") == "s"}
        finishes = {e["id"] for e in events if e.get("ph") == "f"}
        assert starts and starts == finishes   # every arrow lands

    def test_telemetry_attached_and_exported(self, quick):
        report, _ = quick
        assert report.telemetry is not None
        assert report.telemetry.num_requests == 800
        data = report.to_dict()
        assert data["replicas"] == 1
        assert data["telemetry"]["latency"]["count"] == 800
        assert data["sketch_vs_exact"]["p99"]["relative_error"] <= 0.0101
        assert "== fleet telemetry" in report.to_text()

    def test_fleet_replicas_merge(self):
        report, _ = run_serve_report("quickstart", num_requests=300,
                                     exemplars=False, replicas=3)
        assert report.replicas == 3
        assert report.telemetry.replicas == [0, 1, 2]
        assert report.telemetry.num_requests == 900
        # per-request rows stay replica-0 only; fleet stats are merged
        assert report.to_dict()["num_requests"] == 300

    def test_fleet_report_jobs_invariant(self):
        def fleet(jobs):
            report, _ = run_serve_report("quickstart", num_requests=300,
                                         exemplars=False, replicas=3,
                                         jobs=jobs)
            return json.dumps(report.to_dict(), sort_keys=True)

        assert fleet(1) == fleet(2)

    def test_chrome_trace_carries_exemplar_spans(self):
        report, model = run_serve_report("quickstart", num_requests=300,
                                         exemplars=False)
        trace = build_chrome_trace(report, model)
        tracks = {e["tid"] for e in trace["traceEvents"]
                  if e.get("ph") == "X"}
        # Slowest-k waterfalls land on the namespaced exemplar tracks;
        # requests the batch-exemplar tracing already drew live keep
        # their plain request.N rows (and are skipped post-hoc).
        for _rep, rid in report.telemetry.exemplars.slowest_ids():
            assert (f"exemplar.request.{rid}" in tracks
                    or f"request.{rid}" in tracks)
        assert any(t.startswith("exemplar.request.") for t in tracks)

    def test_cli_text_json_and_chrome(self, tmp_path, capsys):
        assert main(["quickstart", "--requests", "400",
                     "--no-exemplars"]) == 0
        assert "serve report" in capsys.readouterr().out

        out = tmp_path / "serve.json"
        assert main(["quickstart", "--requests", "400", "--no-exemplars",
                     "--json", "-o", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["requests"][0]["queue_wait_us"] >= 0

        trace = tmp_path / "serve.trace.json"
        assert main(["quickstart", "--requests", "400", "--chrome",
                     "-o", str(trace)]) == 0
        assert json.loads(trace.read_text())["traceEvents"]


class TestBench:
    def test_run_bench_schema(self):
        from repro.bench import run_bench
        payload = run_bench(workloads=["dlrm"])
        assert payload["schema_version"] == 1
        result = payload["workloads"]["dlrm"]
        assert set(result) == {"latency_us", "achieved_tflops",
                               "sim_cycles", "wall_time_s", "extras"}
        assert result["latency_us"] > 0
        assert result["achieved_tflops"] > 0

    def test_unknown_workload_rejected(self):
        from repro.bench import run_bench
        with pytest.raises(SystemExit):
            run_bench(workloads=["nope"])

    def test_compare_flags_regressions(self):
        from repro.bench import compare
        base = {"workloads": {"fc": {"latency_us": 100.0,
                                     "achieved_tflops": 10.0,
                                     "sim_cycles": 1000.0,
                                     "wall_time_s": 1.0}}}
        same = compare(base, base)
        assert same == []
        worse = {"workloads": {"fc": {"latency_us": 150.0,
                                      "achieved_tflops": 8.0,
                                      "sim_cycles": 1000.0,
                                      "wall_time_s": 99.0}}}
        lines = compare(worse, base, threshold=0.10)
        assert any("latency_us grew" in l for l in lines)
        assert any("achieved_tflops dropped" in l for l in lines)
        assert not any("wall_time" in l for l in lines)

    def test_compare_tolerates_missing_baseline_workload(self):
        from repro.bench import compare
        current = {"workloads": {"new": {"latency_us": 5.0}}}
        assert compare(current, {"workloads": {}}) == []

    def test_cli_writes_bench_file(self, tmp_path, capsys):
        from repro.bench import main as bench_main
        assert bench_main(["dlrm", "--label", "test",
                           "-o", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / "BENCH_test.json").read_text())
        assert payload["label"] == "test"
        assert "dlrm" in payload["workloads"]

    def test_cli_strict_compare_fails_on_regression(self, tmp_path):
        from repro.bench import main as bench_main
        baseline = tmp_path / "BENCH_base.json"
        baseline.write_text(json.dumps(
            {"workloads": {"dlrm": {"latency_us": 1e-6,
                                    "achieved_tflops": 1e9,
                                    "sim_cycles": 0.0}}}))
        assert bench_main(["dlrm", "--label", "t2", "-o", str(tmp_path),
                           "--compare", str(baseline), "--strict"]) == 1
        assert bench_main(["dlrm", "--label", "t3", "-o", str(tmp_path),
                           "--compare", str(baseline)]) == 0
