"""The per-operator graph cache (chained-fingerprint memoisation)."""

import os

import numpy as np
import pytest

from repro.conformance.fuzzer import FuzzConfig, fuzz_graph
from repro.models.configs import MODEL_ZOO
from repro.models.dlrm import build_dlrm_graph
from repro.runtime.executor import GraphExecutor
from repro.simcache import (GRAPH_CACHE_ENV_VAR, GraphOpCache,
                            graph_cache_from_env, reset_env_graph_cache,
                            resolve_graph_cache)
from repro.simcache.graph import (leaf_fingerprint, node_fingerprint,
                                  zero_leaf_fingerprint)


@pytest.fixture(autouse=True)
def _no_env_cache(monkeypatch):
    """Keep these tests independent of the user's REPRO_GRAPH_CACHE."""
    monkeypatch.delenv(GRAPH_CACHE_ENV_VAR, raising=False)
    reset_env_graph_cache()
    yield
    reset_env_graph_cache()


def _case(seed=3):
    return fuzz_graph(seed, FuzzConfig())


class TestFingerprints:
    def test_node_fingerprint_chains_inputs(self):
        case = _case()
        node = next(n for n in case.graph
                    if n.op not in ("input", "weight"))
        base = node_fingerprint(node, ["a", "b"])
        assert node_fingerprint(node, ["a", "b"]) == base
        assert node_fingerprint(node, ["a", "c"]) != base
        assert node_fingerprint(node, ["b", "a"]) != base

    def test_leaf_fingerprint_sees_content(self):
        a = np.arange(6, dtype=np.float32)
        b = a.copy()
        assert leaf_fingerprint(a) == leaf_fingerprint(b)
        b[0] = 1.5
        assert leaf_fingerprint(a) != leaf_fingerprint(b)

    def test_zero_leaf_fingerprint_is_metadata_keyed(self):
        fp = zero_leaf_fingerprint((4, 8), "fp16")
        assert zero_leaf_fingerprint((4, 8), "fp16") == fp
        assert zero_leaf_fingerprint((8, 4), "fp16") != fp
        assert zero_leaf_fingerprint((4, 8), "int8") != fp
        # Distinct namespace from content-hashed leaves.
        assert not fp.startswith("leaf:")


class TestGraphOpCache:
    def test_memory_tier_roundtrip(self):
        cache = GraphOpCache()
        assert cache.lookup("k") is None
        out = np.arange(4, dtype=np.int32)
        cache.store("k", out)
        np.testing.assert_array_equal(cache.lookup("k"), out)
        assert len(cache) == 1
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 1, "entries": 1,
                         "hit_rate": 0.5}

    def test_directory_tier_survives_process_restart(self, tmp_path):
        path = str(tmp_path / "gcache")
        first = GraphOpCache(path=path)
        first.store("k", np.arange(6, dtype=np.float32).reshape(2, 3))
        # A fresh cache (≈ new process) warms from the directory tier.
        second = GraphOpCache(path=path)
        hit = second.lookup("k")
        np.testing.assert_array_equal(
            hit, np.arange(6, dtype=np.float32).reshape(2, 3))
        assert second.stats()["hits"] == 1
        files = os.listdir(path)
        assert files and all(f.startswith("g1_") and f.endswith(".npy")
                             for f in files)


class TestEnvResolution:
    def test_unset_means_off(self):
        assert graph_cache_from_env() is None
        assert resolve_graph_cache(None) is None

    def test_memory_spellings(self, monkeypatch):
        for value in ("1", "mem", "memory"):
            monkeypatch.setenv(GRAPH_CACHE_ENV_VAR, value)
            reset_env_graph_cache()
            cache = graph_cache_from_env()
            assert isinstance(cache, GraphOpCache) and cache.path is None

    def test_path_value_gets_directory_tier(self, monkeypatch, tmp_path):
        path = str(tmp_path / "env-cache")
        monkeypatch.setenv(GRAPH_CACHE_ENV_VAR, path)
        reset_env_graph_cache()
        cache = graph_cache_from_env()
        assert cache.path == path and os.path.isdir(path)

    def test_explicit_cache_wins_and_false_forces_off(self, monkeypatch):
        monkeypatch.setenv(GRAPH_CACHE_ENV_VAR, "mem")
        reset_env_graph_cache()
        mine = GraphOpCache()
        assert resolve_graph_cache(mine) is mine
        assert resolve_graph_cache(False) is None


class TestExecutorIntegration:
    def test_warm_run_is_bitwise_identical(self):
        case = _case()
        fresh, fresh_rep = GraphExecutor(op_cache=False).run(
            case.graph.copy(), case.feeds, case.weights)
        cache = GraphOpCache()
        GraphExecutor(op_cache=cache).run(case.graph.copy(), case.feeds,
                                          case.weights)
        assert cache.hits == 0 and cache.misses > 0
        warm, warm_rep = GraphExecutor(op_cache=cache).run(
            case.graph.copy(), case.feeds, case.weights)
        assert cache.hits == cache.misses        # every op replayed
        for name in fresh:
            np.testing.assert_array_equal(fresh[name], warm[name])
        assert fresh_rep.seconds == warm_rep.seconds  # timing not cached

    def test_one_weight_edit_invalidates_only_downstream(self):
        case = _case()
        cache = GraphOpCache()
        GraphExecutor(op_cache=cache).run(case.graph.copy(), case.feeds,
                                          case.weights)
        cold_misses = cache.misses
        bound = [n.name for n in case.graph
                 if n.op == "weight" and n.name in case.weights]
        edited = dict(case.weights)
        name = bound[-1]                         # smallest downstream cone
        edited[name] = case.weights[name] + 1
        partial, _ = GraphExecutor(op_cache=cache).run(
            case.graph.copy(), case.feeds, edited)
        new_misses = cache.misses - cold_misses
        assert 0 < new_misses < cold_misses      # cone only, not the graph
        assert cache.hits > 0
        fresh, _ = GraphExecutor(op_cache=False).run(
            case.graph.copy(), case.feeds, edited)
        for key in fresh:
            np.testing.assert_array_equal(fresh[key], partial[key])

    def test_unbound_zero_weights_hit_without_hashing(self):
        # Perf-only DLRM runs leave embedding tables unbound; warm runs
        # must key them from metadata and never materialise the zeros.
        graph = build_dlrm_graph(MODEL_ZOO["LC2"], 8)
        rng = np.random.default_rng(0)
        feeds = {}
        for node in graph:
            if node.op == "input":
                dt = node.meta.dtype.numpy_dtype
                if np.issubdtype(dt, np.integer):
                    feeds[node.name] = rng.integers(
                        0, 100, node.meta.shape).astype(dt)
                else:
                    feeds[node.name] = rng.standard_normal(
                        node.meta.shape).astype(dt)
        fresh, _ = GraphExecutor(op_cache=False).run(graph.copy(), feeds)
        cache = GraphOpCache()
        GraphExecutor(op_cache=cache).run(graph.copy(), feeds)
        warm, _ = GraphExecutor(op_cache=cache).run(graph.copy(), feeds)
        assert cache.hits == cache.misses
        for name in fresh:
            np.testing.assert_array_equal(fresh[name], warm[name])
