"""The content-addressed sim-result cache."""

import json
import os

import numpy as np
import pytest

from repro.simcache import (CACHE_ENV_VAR, CacheEntry, SimCache,
                            array_digest, cache_from_env, fingerprint,
                            reset_env_cache, resolve_cache)
from repro.simcache.cache import SCHEMA_VERSION, canonical, usable_for


@pytest.fixture(autouse=True)
def _no_env_cache(monkeypatch):
    """Keep these tests independent of the user's REPRO_SIM_CACHE."""
    monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
    reset_env_cache()
    yield
    reset_env_cache()


def _entry(key="k0", op="fc", cycles=123.5, with_stalls=False):
    stalls = [("pe(0,0).dpe", "operand_wait", 40.0),
              ("dram", "bandwidth", 7.25)] if with_stalls else []
    return CacheEntry(key=key, op=op, cycles=cycles,
                      outputs={"c_t": np.arange(12,
                                                dtype=np.int32).reshape(3, 4)},
                      stalls=stalls, stalls_recorded=with_stalls,
                      extras={"m": 64})


class TestFingerprint:
    def test_stable_across_container_spellings(self):
        a = {"shape": (64, 32), "knobs": {"b": 2, "a": 1}}
        b = {"knobs": {"a": 1, "b": 2}, "shape": [64, 32]}
        assert fingerprint(a) == fingerprint(b)

    def test_numpy_scalars_canonicalise_to_python(self):
        assert (fingerprint({"m": np.int64(64), "f": np.float64(0.5)})
                == fingerprint({"m": 64, "f": 0.5}))

    def test_enums_and_dataclasses_flatten(self):
        from repro.config import MTIA_V1
        from repro.memory.sram import SRAMMode
        payload = canonical({"chip": MTIA_V1, "mode": SRAMMode.CACHE})
        assert payload["mode"] == "CACHE"
        assert isinstance(payload["chip"], dict)
        # Round-trips through JSON (the fingerprint's transport).
        json.dumps(payload)

    def test_different_payloads_differ(self):
        base = {"op": "fc", "m": 64}
        assert fingerprint(base) != fingerprint({"op": "fc", "m": 128})
        assert fingerprint(base) != fingerprint({"op": "tbe", "m": 64})

    def test_operand_digest_sees_dtype_shape_and_bytes(self):
        a = np.arange(8, dtype=np.int8)
        assert array_digest(a) != array_digest(a.astype(np.int16))
        assert array_digest(a) != array_digest(a.reshape(2, 4))
        b = a.copy()
        b[3] += 1
        assert array_digest(a) != array_digest(b)
        assert array_digest(a) == array_digest(a.copy())


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = SimCache()
        assert cache.lookup("k0", "fc") is None
        cache.store(_entry())
        entry = cache.lookup("k0", "fc")
        assert entry is not None and entry.cycles == 123.5
        np.testing.assert_array_equal(
            entry.outputs["c_t"], np.arange(12, dtype=np.int32).reshape(3, 4))
        assert cache.stats() == {"hits": 1.0, "misses": 1.0, "entries": 1.0}

    def test_hit_miss_counters_labelled_by_op(self):
        cache = SimCache()
        cache.lookup("k0", "fc")
        cache.store(_entry())
        cache.lookup("k0", "fc")
        hits = cache.registry.counter("sim_cache_hits")
        misses = cache.registry.counter("sim_cache_misses")
        assert hits.get(op="fc").value == 1
        assert misses.get(op="fc").value == 1

    def test_need_stalls_treats_poor_entries_as_misses(self):
        cache = SimCache()
        cache.store(_entry(with_stalls=False))
        assert cache.lookup("k0", "fc", need_stalls=True) is None
        assert cache.lookup("k0", "fc", need_stalls=False) is not None
        # A richer entry overwrites and satisfies observing consumers.
        cache.store(_entry(with_stalls=True))
        entry = cache.lookup("k0", "fc", need_stalls=True)
        assert entry is not None and entry.stalls_recorded
        assert entry.stalls[0] == ("pe(0,0).dpe", "operand_wait", 40.0)


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        path = str(tmp_path / "cache")
        SimCache(path=path).store(_entry(with_stalls=True))
        fresh = SimCache(path=path)     # cold memory tier
        entry = fresh.lookup("k0", "fc", need_stalls=True)
        assert entry is not None
        assert entry.cycles == 123.5
        assert entry.outputs["c_t"].dtype == np.int32
        np.testing.assert_array_equal(
            entry.outputs["c_t"], np.arange(12, dtype=np.int32).reshape(3, 4))
        assert entry.stalls == [("pe(0,0).dpe", "operand_wait", 40.0),
                                ("dram", "bandwidth", 7.25)]
        assert "k0" in fresh

    def test_foreign_schema_version_is_ignored(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = SimCache(path=path)
        cache.store(_entry())
        file = os.path.join(path, "k0.json")
        data = json.load(open(file))
        data["schema_version"] = SCHEMA_VERSION + 1
        with open(file, "w") as fh:
            json.dump(data, fh)
        assert SimCache(path=path).lookup("k0", "fc") is None

    def test_corrupt_file_is_a_miss_not_an_error(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = SimCache(path=path)
        os.makedirs(path, exist_ok=True)
        with open(os.path.join(path, "bad.json"), "w") as fh:
            fh.write("{not json")
        assert cache.lookup("bad", "fc") is None


class TestEnvOptIn:
    def test_off_by_default(self):
        assert cache_from_env() is None
        assert resolve_cache(None) is None

    def test_memory_spellings(self, monkeypatch):
        for value in ("1", "mem", "memory"):
            monkeypatch.setenv(CACHE_ENV_VAR, value)
            reset_env_cache()
            cache = cache_from_env()
            assert cache is not None and cache.path is None

    def test_directory_value_selects_disk(self, monkeypatch, tmp_path):
        path = str(tmp_path / "envcache")
        monkeypatch.setenv(CACHE_ENV_VAR, path)
        reset_env_cache()
        cache = cache_from_env()
        assert cache is not None and cache.path == path
        assert cache_from_env() is cache    # shared instance
        explicit = SimCache()
        assert resolve_cache(explicit) is explicit

    def test_usable_for_requires_pristine_machine(self):
        from repro import Accelerator
        cache = SimCache()
        acc = Accelerator()
        assert usable_for(cache, acc)
        assert not usable_for(None, acc)
        acc.engine.timeout(1)
        acc.engine.run()
        assert not usable_for(cache, acc)   # machine has prior state


class TestKernelIntegration:
    def test_fc_hit_is_bit_identical(self):
        from repro import Accelerator
        from repro.kernels.fc import run_fc

        cache = SimCache()
        acc1 = Accelerator()
        fresh = run_fc(acc1, m=64, k=64, n=64, seed=7,
                       subgrid=acc1.subgrid((0, 0), 1, 1), cache=cache)
        assert cache.stats()["misses"] == 1
        acc2 = Accelerator()
        warm = run_fc(acc2, m=64, k=64, n=64, seed=7,
                      subgrid=acc2.subgrid((0, 0), 1, 1), cache=cache)
        assert cache.stats()["hits"] == 1
        assert warm.cycles == fresh.cycles
        np.testing.assert_array_equal(warm.c_t, fresh.c_t)
        # Replay runs no DES events at all.
        assert acc2.engine.events_processed == 0

    def test_fc_different_seed_misses(self):
        from repro import Accelerator
        from repro.kernels.fc import run_fc

        cache = SimCache()
        acc1 = Accelerator()
        run_fc(acc1, m=64, k=64, n=64, seed=7,
               subgrid=acc1.subgrid((0, 0), 1, 1), cache=cache)
        acc2 = Accelerator()
        run_fc(acc2, m=64, k=64, n=64, seed=8,
               subgrid=acc2.subgrid((0, 0), 1, 1), cache=cache)
        assert cache.stats() == {"hits": 0.0, "misses": 2.0, "entries": 2.0}
