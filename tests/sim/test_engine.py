"""The discrete-event kernel."""

import pytest

from repro.sim import Engine, SimulationError


class TestScheduling:
    def test_time_starts_at_zero(self, engine):
        assert engine.now == 0

    def test_callbacks_run_in_time_order(self, engine):
        order = []
        engine.schedule(5, lambda: order.append("b"))
        engine.schedule(2, lambda: order.append("a"))
        engine.schedule(9, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 9

    def test_ties_run_fifo(self, engine):
        order = []
        for tag in "abc":
            engine.schedule(3, lambda t=tag: order.append(t))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_cannot_schedule_in_the_past(self, engine):
        engine.schedule(5, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(1, lambda: None)

    def test_run_until_stops_early(self, engine):
        hits = []
        engine.schedule(10, lambda: hits.append(1))
        engine.run(until=5)
        assert not hits
        assert engine.now == 5
        engine.run()
        assert hits == [1]


class TestProcesses:
    def test_delay_advances_time(self, engine):
        def proc():
            yield 10
            yield 5
            return engine.now

        assert engine.run_process(proc()) == 15

    def test_return_value(self, engine):
        def proc():
            yield 1
            return "done"

        assert engine.run_process(proc()) == "done"

    def test_zero_delay_allowed(self, engine):
        def proc():
            yield 0
            return True

        assert engine.run_process(proc()) is True

    def test_negative_delay_raises_inside_process(self, engine):
        def proc():
            yield -3

        with pytest.raises(SimulationError):
            engine.run_process(proc())

    def test_yielding_garbage_raises(self, engine):
        def proc():
            yield "not a delay"

        with pytest.raises(SimulationError):
            engine.run_process(proc())

    def test_process_waits_on_event(self, engine):
        ev = engine.event("gate")

        def opener():
            yield 7
            ev.succeed("payload")

        def waiter():
            value = yield ev
            return engine.now, value

        engine.process(opener())
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == (7, "payload")

    def test_process_waits_on_process(self, engine):
        def child():
            yield 4
            return 42

        def parent():
            result = yield engine.process(child())
            return result + 1

        assert engine.run_process(parent()) == 43

    def test_event_failure_propagates(self, engine):
        ev = engine.event()

        def failer():
            yield 1
            ev.fail(RuntimeError("boom"))

        def waiter():
            yield ev

        engine.process(failer())
        proc = engine.process(waiter())
        engine.run()
        with pytest.raises(RuntimeError, match="boom"):
            proc.value

    def test_exception_can_be_caught_in_process(self, engine):
        ev = engine.event()

        def failer():
            yield 1
            ev.fail(ValueError("expected"))

        def waiter():
            try:
                yield ev
            except ValueError:
                return "recovered"

        engine.process(failer())
        assert engine.run_process(waiter()) == "recovered"

    def test_deadlock_detected_by_run_process(self, engine):
        ev = engine.event("never")

        def stuck():
            yield ev

        with pytest.raises(SimulationError, match="did not finish"):
            engine.run_process(stuck())


class TestEvents:
    def test_double_trigger_rejected(self, engine):
        ev = engine.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_value_before_trigger_rejected(self, engine):
        ev = engine.event("pending")
        with pytest.raises(SimulationError):
            ev.value

    def test_waiting_on_triggered_event_resumes_immediately(self, engine):
        ev = engine.event()
        ev.succeed(5)

        def proc():
            value = yield ev
            return engine.now, value

        assert engine.run_process(proc()) == (0, 5)

    def test_timeout(self, engine):
        def proc():
            yield engine.timeout(12)
            return engine.now

        assert engine.run_process(proc()) == 12

    def test_all_of_waits_for_every_event(self, engine):
        events = [engine.event(str(i)) for i in range(3)]
        for delay, ev in zip((3, 9, 6), events):
            engine.schedule(delay, lambda e=ev, d=delay: e.succeed(d))

        def proc():
            values = yield engine.all_of(events)
            return engine.now, values

        assert engine.run_process(proc()) == (9, [3, 9, 6])

    def test_all_of_empty_fires_now(self, engine):
        def proc():
            values = yield engine.all_of([])
            return values

        assert engine.run_process(proc()) == []

    def test_livelock_guard(self, engine):
        def spinner():
            while True:
                yield 0

        engine.process(spinner())
        with pytest.raises(SimulationError, match="livelock"):
            engine.run(max_events=1000)


class TestMaxEventsBoundary:
    """The guard raises when the (max_events + 1)-th callback is
    *attempted* — never after silently executing it."""

    def test_exactly_max_events_completes(self, engine):
        ran = []
        for i in range(5):
            engine.schedule(i, lambda i=i: ran.append(i))
        assert engine.run(max_events=5) == 4
        assert ran == [0, 1, 2, 3, 4]

    def test_one_past_the_guard_raises_without_executing(self, engine):
        ran = []
        for i in range(6):
            engine.schedule(i, lambda i=i: ran.append(i))
        with pytest.raises(SimulationError, match="livelock"):
            engine.run(max_events=5)
        assert ran == [0, 1, 2, 3, 4]

    def test_guard_applies_to_the_deque_fast_path_too(self, engine):
        ran = []
        for i in range(6):
            engine.schedule(engine.now, lambda i=i: ran.append(i))
        with pytest.raises(SimulationError, match="livelock"):
            engine.run(max_events=5)
        assert ran == [0, 1, 2, 3, 4]
