"""Shared-resource primitives."""

import pytest

from repro.sim import Engine, Queue, Resource, Semaphore, SimulationError


class TestResource:
    def test_service_time(self, engine):
        res = Resource(engine, rate_per_cycle=64)
        assert res.service_time(128) == pytest.approx(2.0)

    def test_serialises_users(self, engine):
        res = Resource(engine, rate_per_cycle=10)
        times = []

        def user(amount):
            yield from res.use(amount)
            times.append(engine.now)

        engine.process(user(100))   # 10 cycles
        engine.process(user(50))    # queued: finishes at 15
        engine.run()
        assert times == [10, 15]

    def test_idle_gap_not_charged(self, engine):
        res = Resource(engine, rate_per_cycle=10)
        times = []

        def late_user():
            yield 100
            yield from res.use(10)
            times.append(engine.now)

        engine.process(late_user())
        engine.run()
        assert times == [101]

    def test_utilization(self, engine):
        res = Resource(engine, rate_per_cycle=10)

        def user():
            yield from res.use(100)

        engine.process(user())
        engine.run()
        # 10 busy cycles out of 10 elapsed
        assert res.utilization() == pytest.approx(1.0)
        assert res.total_units == 100

    def test_rejects_nonpositive_rate(self, engine):
        with pytest.raises(ValueError):
            Resource(engine, rate_per_cycle=0)


class TestSemaphore:
    def test_acquire_release(self, engine):
        sem = Semaphore(engine, 2)
        grants = []

        def worker(tag, hold):
            yield sem.acquire()
            grants.append((tag, engine.now))
            yield hold
            sem.release()

        for tag, hold in (("a", 10), ("b", 10), ("c", 5)):
            engine.process(worker(tag, hold))
        engine.run()
        assert grants == [("a", 0), ("b", 0), ("c", 10)]

    def test_fifo_wakeup(self, engine):
        sem = Semaphore(engine, 1)
        order = []

        def worker(tag):
            yield sem.acquire()
            order.append(tag)
            yield 1
            sem.release()

        for tag in "abcd":
            engine.process(worker(tag))
        engine.run()
        assert order == list("abcd")

    def test_release_without_acquire_rejected(self, engine):
        sem = Semaphore(engine, 1)
        with pytest.raises(SimulationError):
            sem.release()

    def test_negative_capacity_rejected(self, engine):
        with pytest.raises(ValueError):
            Semaphore(engine, -1)


class TestQueue:
    def test_fifo_order(self, engine):
        q = Queue(engine)
        got = []

        def consumer():
            for _ in range(3):
                item = yield q.get()
                got.append(item)

        def producer():
            for item in (1, 2, 3):
                yield q.put(item)
                yield 1

        engine.process(consumer())
        engine.process(producer())
        engine.run()
        assert got == [1, 2, 3]

    def test_get_blocks_until_put(self, engine):
        q = Queue(engine)
        times = []

        def consumer():
            item = yield q.get()
            times.append((engine.now, item))

        def producer():
            yield 8
            yield q.put("x")

        engine.process(consumer())
        engine.process(producer())
        engine.run()
        assert times == [(8, "x")]

    def test_bounded_put_blocks_until_space(self, engine):
        q = Queue(engine, capacity=1)
        events = []

        def producer():
            yield q.put(1)
            events.append(("put1", engine.now))
            yield q.put(2)
            events.append(("put2", engine.now))

        def consumer():
            yield 5
            item = yield q.get()
            events.append(("got", engine.now, item))

        engine.process(producer())
        engine.process(consumer())
        engine.run()
        assert ("put1", 0) in events
        assert ("put2", 5) in events

    def test_len_and_full(self, engine):
        q = Queue(engine, capacity=2)

        def fill():
            yield q.put(1)
            yield q.put(2)

        engine.process(fill())
        engine.run()
        assert len(q) == 2
        assert q.full
