"""Statistics counters."""

from repro.sim import StatGroup


class TestStatGroup:
    def test_add_accumulates(self):
        stats = StatGroup("x")
        stats.add("hits")
        stats.add("hits", 2)
        assert stats["hits"] == 3

    def test_get_with_default(self):
        stats = StatGroup()
        assert stats.get("missing") == 0.0
        assert stats.get("missing", -1) == -1

    def test_contains_and_iter(self):
        stats = StatGroup()
        stats.add("a")
        stats.add("b", 2)
        assert "a" in stats
        assert sorted(stats) == ["a", "b"]

    def test_set_max(self):
        stats = StatGroup()
        stats.set_max("depth", 3)
        stats.set_max("depth", 1)
        stats.set_max("depth", 7)
        assert stats["depth"] == 7

    def test_merge_with_prefix(self):
        parent = StatGroup("chip")
        child = StatGroup("pe0")
        child.add("bytes", 100)
        parent.merge(child, prefix="pe0.")
        parent.merge(child, prefix="pe0.")
        assert parent["pe0.bytes"] == 200

    def test_merge_sums_same_keys(self):
        total = StatGroup()
        for _ in range(3):
            part = StatGroup()
            part.add("ops", 5)
            total.merge(part)
        assert total["ops"] == 15

    def test_reset(self):
        stats = StatGroup()
        stats.add("x", 5)
        stats.reset()
        assert stats.as_dict() == {}

    def test_repr_is_sorted_and_readable(self):
        stats = StatGroup("u")
        stats.add("b", 2)
        stats.add("a", 1)
        assert "a=1" in repr(stats)
        assert repr(stats).index("a=1") < repr(stats).index("b=2")
