"""Statistics counters."""

from repro.sim import StatGroup


class TestStatGroup:
    def test_add_accumulates(self):
        stats = StatGroup("x")
        stats.add("hits")
        stats.add("hits", 2)
        assert stats["hits"] == 3

    def test_get_with_default(self):
        stats = StatGroup()
        assert stats.get("missing") == 0.0
        assert stats.get("missing", -1) == -1

    def test_contains_and_iter(self):
        stats = StatGroup()
        stats.add("a")
        stats.add("b", 2)
        assert "a" in stats
        assert sorted(stats) == ["a", "b"]

    def test_set_max(self):
        stats = StatGroup()
        stats.set_max("depth", 3)
        stats.set_max("depth", 1)
        stats.set_max("depth", 7)
        assert stats["depth"] == 7

    def test_merge_with_prefix(self):
        parent = StatGroup("chip")
        child = StatGroup("pe0")
        child.add("bytes", 100)
        parent.merge(child, prefix="pe0.")
        parent.merge(child, prefix="pe0.")
        assert parent["pe0.bytes"] == 200

    def test_merge_sums_same_keys(self):
        total = StatGroup()
        for _ in range(3):
            part = StatGroup()
            part.add("ops", 5)
            total.merge(part)
        assert total["ops"] == 15

    def test_reset(self):
        stats = StatGroup()
        stats.add("x", 5)
        stats.reset()
        assert stats.as_dict() == {}

    def test_repr_is_sorted_and_readable(self):
        stats = StatGroup("u")
        stats.add("b", 2)
        stats.add("a", 1)
        assert "a=1" in repr(stats)
        assert repr(stats).index("a=1") < repr(stats).index("b=2")


class TestSnapshotDiff:
    def test_diff_reports_only_changes(self):
        stats = StatGroup()
        stats.add("bytes", 100)
        stats.add("ops", 3)
        before = stats.snapshot()
        stats.add("bytes", 50)
        assert stats.diff(before) == {"bytes": 50}

    def test_snapshot_is_immutable_copy(self):
        stats = StatGroup()
        stats.add("x", 1)
        snap = stats.snapshot()
        stats.add("x", 9)
        assert snap == {"x": 1}
        assert stats.diff(snap) == {"x": 9}

    def test_diff_includes_new_keys(self):
        stats = StatGroup()
        before = stats.snapshot()
        stats.add("fresh", 7)
        assert stats.diff(before) == {"fresh": 7}

    def test_diff_ignores_snapshot_only_keys(self):
        stats = StatGroup()
        stats.add("mine", 2)
        assert stats.diff({"theirs": 5}) == {"mine": 2}

    def test_diff_after_merge_rollup_with_prefixes(self):
        chip = StatGroup("chip")
        before = chip.snapshot()
        for name in ("pe0", "pe1"):
            pe = StatGroup(name)
            pe.add("stall_cycles", 10)
            chip.merge(pe, prefix=f"{name}.")
        delta = chip.diff(before)
        assert delta == {"pe0.stall_cycles": 10, "pe1.stall_cycles": 10}
