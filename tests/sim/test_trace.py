"""Execution tracing."""

import json

import numpy as np
import pytest

from repro import Accelerator
from repro.kernels.fc import run_fc
from repro.sim import Tracer


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record("pe0.dpe", "MML", 0, 32)
        assert tracer.spans == []

    def test_record_and_query(self):
        tracer = Tracer(enabled=True)
        tracer.record("pe0.dpe", "MML", 10, 42)
        tracer.record("pe0.fi", "DMALoad", 0, 20, bytes=2048)
        tracer.record("pe0.dpe", "MML", 50, 82)
        assert tracer.tracks() == ["pe0.dpe", "pe0.fi"]
        assert tracer.busy_cycles("pe0.dpe") == 64
        assert tracer.utilization("pe0.dpe", 100) == pytest.approx(0.64)
        spans = tracer.spans_on("pe0.dpe")
        assert [s.start for s in spans] == [10, 50]

    def test_backwards_span_rejected(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            tracer.record("t", "x", 10, 5)

    def test_chrome_trace_structure(self):
        tracer = Tracer(enabled=True)
        tracer.record("pe0.dpe", "MML", 0, 32, acc=1)
        doc = tracer.to_chrome_trace(frequency_ghz=0.8)
        assert "traceEvents" in doc
        event = doc["traceEvents"][0]
        assert event["ph"] == "X"
        assert event["name"] == "MML"
        assert event["tid"] == "pe0.dpe"
        assert event["args"] == {"acc": 1}
        # 32 cycles at 0.8 GHz = 40 ns = 0.04 us
        assert event["dur"] == pytest.approx(0.04)

    def test_save_round_trips_json(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.record("pe0.se", "QuantizeCmd", 5, 9)
        path = tmp_path / "trace.json"
        tracer.save(str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == 1

    def test_summary(self):
        tracer = Tracer(enabled=True)
        tracer.record("a", "x", 0, 10)
        tracer.record("a", "y", 10, 15)
        summary = tracer.summary()
        assert summary["a"] == {"spans": 2, "busy_cycles": 15}


class TestTracerPids:
    def test_default_pid_groups_by_track_prefix(self):
        tracer = Tracer(enabled=True)
        tracer.record("pe0.dpe", "MML", 0, 32)
        tracer.record("pe1.dpe", "MML", 0, 32)
        doc = tracer.to_chrome_trace()
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x_events[0]["pid"] != x_events[1]["pid"]

    def test_explicit_pid_separates_cards(self):
        """Two cards' identical tracks must not collide on one row."""
        tracer = Tracer(enabled=True)
        tracer.record("pe0.dpe", "MML", 0, 32, pid="card0")
        tracer.record("pe0.dpe", "MML", 0, 32, pid="card1")
        doc = tracer.to_chrome_trace()
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x_events[0]["pid"] != x_events[1]["pid"]
        names = {e["args"]["name"]: e["pid"]
                 for e in doc["traceEvents"] if e["ph"] == "M"}
        assert names == {"card0": x_events[0]["pid"],
                         "card1": x_events[1]["pid"]}

    def test_default_pid_applies_to_all_spans(self):
        tracer = Tracer(enabled=True, default_pid="cardA")
        tracer.record("pe0.dpe", "MML", 0, 32)
        assert tracer.spans[0].pid == "cardA"
        doc = tracer.to_chrome_trace()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "cardA"

    def test_named_accelerator_sets_default_pid(self):
        acc = Accelerator(trace=True, name="card3")
        run_fc(acc, m=64, k=64, n=64, subgrid=acc.subgrid((0, 0), 1, 1))
        assert all(s.pid == "card3" for s in acc.tracer.spans)

    def test_explicit_pid_overrides_default(self):
        tracer = Tracer(enabled=True, default_pid="cardA")
        tracer.record("pe0.dpe", "MML", 0, 32, pid="cardB")
        assert tracer.spans[0].pid == "cardB"


class TestTracedSimulation:
    def test_fc_run_produces_spans(self):
        acc = Accelerator(trace=True)
        run_fc(acc, m=64, k=64, n=64, subgrid=acc.subgrid((0, 0), 1, 1))
        tracer = acc.tracer
        assert "pe0.dpe" in tracer.tracks()
        assert "pe0.fi" in tracer.tracks()
        mml_spans = [s for s in tracer.spans_on("pe0.dpe")
                     if s.name == "MML"]
        # 64x64x64 = 2x2x2 blocks x 4 accumulator commands... exactly
        # (m/64)*(n/64)*(k/32)*4 = 8 MMLs.
        assert len(mml_spans) == 8
        dma_spans = [s for s in tracer.spans_on("pe0.fi")
                     if s.name == "DMALoad"]
        assert len(dma_spans) == 4   # 2 A stripes + 2 B stripes

    def test_spans_do_not_overlap_per_serial_unit(self):
        acc = Accelerator(trace=True)
        run_fc(acc, m=64, k=64, n=64, subgrid=acc.subgrid((0, 0), 1, 1))
        spans = [s for s in acc.tracer.spans_on("pe0.dpe")]
        for a, b in zip(spans, spans[1:]):
            assert b.start >= a.end   # the DPE serves serially

    def test_untraced_run_is_clean(self):
        acc = Accelerator()
        run_fc(acc, m=64, k=64, n=64, subgrid=acc.subgrid((0, 0), 1, 1))
        assert acc.tracer.spans == []

    def test_save_trace_from_accelerator(self, tmp_path):
        acc = Accelerator(trace=True)
        run_fc(acc, m=64, k=64, n=64, subgrid=acc.subgrid((0, 0), 1, 1))
        path = tmp_path / "fc.json"
        acc.save_trace(str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) > 10
