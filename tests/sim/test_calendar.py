"""Calendar-queue edge cases: storms, overflow promotion, boundaries.

The calendar queue must be observably identical to a single binary heap
ordered by ``(at, ticket)`` — these tests hit the structural edges the
random equivalence programs are unlikely to reach: the overflow ladder
(pushes beyond the bucket horizon), batch promotion when the buckets
drain, backdated pushes below the calendar base, uniform time shifts,
zero-delay self-reschedule storms, and the ``max_events`` guard
boundary under the new queue.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calendar import CalendarQueue, HeapTimeQueue
from repro.sim.engine import Engine, SimulationError

# Small geometry so a handful of pushes exercises overflow + promotion.
WIDTH, NBUCKETS = 4.0, 8
HORIZON = WIDTH * NBUCKETS


def _drain(q):
    out = []
    while q.size:
        assert q.head is not None
        entry = q.pop()
        assert q.head is None or q.head >= (entry[0], entry[1])
        out.append((entry[0], entry[1]))
    assert q.head is None
    return out


@given(ats=st.lists(st.floats(min_value=0, max_value=10 * HORIZON,
                              allow_nan=False, width=32), max_size=200))
@settings(max_examples=200, deadline=None)
def test_calendar_matches_heap_order(ats):
    """Random push sets drain in identical (at, ticket) order."""
    cal = CalendarQueue(width=WIDTH, nbuckets=NBUCKETS)
    ref = HeapTimeQueue()
    for ticket, at in enumerate(ats):
        cal.push(at, ticket, None)
        ref.push(at, ticket, None)
        assert cal.head == ref.head
        assert cal.size == ref.size
    assert _drain(cal) == _drain(ref)


@given(ats=st.lists(st.floats(min_value=0, max_value=10 * HORIZON,
                              allow_nan=False, width=32),
                    min_size=1, max_size=120),
       pops=st.lists(st.integers(min_value=0, max_value=3), max_size=120))
@settings(max_examples=200, deadline=None)
def test_interleaved_push_pop_matches_heap(ats, pops):
    """Interleaved pushes and pops (promotion mid-stream) stay identical."""
    cal = CalendarQueue(width=WIDTH, nbuckets=NBUCKETS)
    ref = HeapTimeQueue()
    ticket = 0
    it = iter(pops + [0] * len(ats))
    for at in ats:
        cal.push(at, ticket, None)
        ref.push(at, ticket, None)
        ticket += 1
        for _ in range(next(it)):
            if not cal.size:
                break
            assert cal.pop()[:2] == ref.pop()[:2]
            assert cal.head == ref.head
    assert _drain(cal) == _drain(ref)


def test_overflow_ladder_promotion_cascade():
    """Entries many horizons out promote in batches, in order."""
    q = CalendarQueue(width=WIDTH, nbuckets=NBUCKETS)
    ats = [float(k * HORIZON + j) for k in range(5) for j in (0, 1, 7)]
    for ticket, at in enumerate(sorted(ats, reverse=True)):
        q.push(at, ticket, None)
    popped = _drain(q)
    assert [at for at, _ in popped] == sorted(ats)
    # Equal times pop in ticket order (reverse insertion gave the later
    # time the smaller ticket, so ties are a real ordering decision).
    for (a1, t1), (a2, t2) in zip(popped, popped[1:]):
        assert (a1, t1) < (a2, t2)


def test_equal_time_overflow_ties_break_by_ticket():
    """Promotion must respect tickets for equal far-future times."""
    q = CalendarQueue(width=WIDTH, nbuckets=NBUCKETS)
    far = 3 * HORIZON + 2.0
    for ticket in (5, 1, 3):
        q.push(far, ticket, f"cb{ticket}")
    assert [q.pop()[1] for _ in range(3)] == [1, 3, 5]


def test_backdated_push_rebases():
    """A push below the calendar base rebuilds without losing order."""
    q = CalendarQueue(width=WIDTH, nbuckets=NBUCKETS)
    q.push(5 * HORIZON, 0, None)       # straight to overflow
    assert q.pop()[0] == 5 * HORIZON   # promotion re-bases far out
    assert q.base > 0
    q.push(1.0, 1, None)               # far below the new base
    q.push(5 * HORIZON + 1, 2, None)
    q.push(2.0, 3, None)
    assert [q.pop()[:2] for _ in range(3)] == [
        (1.0, 1), (2.0, 3), (5 * HORIZON + 1, 2)]


def test_shift_all_preserves_order_across_tiers():
    q = CalendarQueue(width=WIDTH, nbuckets=NBUCKETS)
    ats = [0.5, 3.0, HORIZON - 1, 2 * HORIZON, 7 * HORIZON]
    for ticket, at in enumerate(ats):
        q.push(at, ticket, None)
    q.shift_all(10.25)
    assert q.head == (10.75, 0)
    assert [q.pop()[0] for _ in range(len(ats))] == [
        at + 10.25 for at in sorted(ats)]


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        CalendarQueue().pop()


# -- engine-level edges under the calendar queue -------------------------

def test_zero_delay_self_reschedule_storm():
    """A process re-arming zero timeouts must interleave FIFO-fairly."""
    engine = Engine()
    order = []

    def storm(pid, n):
        for i in range(n):
            yield engine.timeout(0)
            order.append((engine.now, pid, i))

    engine.process(storm("a", 50))
    engine.process(storm("b", 50))
    engine.run()
    assert engine.now == 0
    # Strict round-robin: both processes alternate at time zero.
    assert order == [(0, pid, i) for i in range(50) for pid in ("a", "b")]


def test_far_future_timeouts_fire_in_order():
    """Timeouts past the default bucket horizon promote correctly."""
    engine = Engine()
    horizon = engine._timeq.width * engine._timeq.nbuckets
    delays = [0, 1, horizon - 1, horizon + 3, 2.5 * horizon, 10 * horizon]
    fired = []
    for d in delays:
        engine.timeout(d).add_callback(
            lambda ev, d=d: fired.append((engine.now, d)))
    engine.run()
    assert fired == [(d, d) for d in sorted(delays)]
    assert engine.now == 10 * horizon


def test_max_events_boundary_with_overflow_entries():
    """The max_events guard raises at the same point with far futures."""
    engine = Engine()
    horizon = engine._timeq.width * engine._timeq.nbuckets

    def ticker():
        for _ in range(10):
            yield 2 * horizon  # every resume costs spawn/resume callbacks

    engine.process(ticker())
    with pytest.raises(SimulationError):
        engine.run(max_events=3)
    # Exactly 3 callbacks ran; the 4th attempt raised with `now` already
    # advanced to the 4th entry's timestamp (PR 4 off-by-one contract).
    assert engine.events_processed == 3


def test_exactly_max_events_completes_under_calendar():
    engine = Engine()
    horizon = engine._timeq.width * engine._timeq.nbuckets
    fired = []
    for i in range(3):
        engine.timeout((i + 1) * 3 * horizon).add_callback(
            lambda ev, i=i: fired.append(i))
    # Each timeout costs two callbacks: the succeed, then the waiter.
    engine.run(max_events=6)
    assert fired == [0, 1, 2]
