"""The memory-reduce FC counterfactual and the ablation knobs."""

import numpy as np
import pytest

from repro import Accelerator
from repro.kernels.fc import run_fc
from repro.kernels.fc_variants import run_fc_memory_reduce
from repro.memory import SRAMMode


def reference(m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.integers(-128, 128, (m, k), dtype=np.int8)
    b_t = rng.integers(-128, 128, (n, k), dtype=np.int8)
    return a, b_t, b_t.astype(np.int32) @ a.astype(np.int32).T


class TestMemoryReduce:
    @pytest.mark.parametrize("m,k,n,rows,cols,k_split", [
        (64, 64, 64, 1, 1, 1),
        (64, 128, 64, 1, 2, 2),
        (128, 128, 128, 2, 2, 2),
        (128, 256, 128, 2, 4, 4),
    ])
    def test_bit_exact(self, m, k, n, rows, cols, k_split):
        a, b_t, c_t = reference(m, k, n)
        acc = Accelerator()
        result = run_fc_memory_reduce(
            acc, a, b_t, subgrid=acc.subgrid((0, 0), rows, cols),
            k_split=k_split)
        np.testing.assert_array_equal(result.c_t, c_t)

    def test_slower_than_reduction_network(self):
        a, b_t, _ = reference(256, 512, 128)
        acc1 = Accelerator()
        with_net = run_fc(acc1, a, b_t, subgrid=acc1.subgrid((0, 0), 4, 4),
                          k_split=2)
        acc2 = Accelerator()
        without = run_fc_memory_reduce(
            acc2, a, b_t, subgrid=acc2.subgrid((0, 0), 4, 4), k_split=2)
        assert without.cycles > 1.3 * with_net.cycles

    def test_no_reduction_network_traffic(self):
        a, b_t, _ = reference(128, 128, 128)
        acc = Accelerator()
        run_fc_memory_reduce(acc, a, b_t,
                             subgrid=acc.subgrid((0, 0), 2, 2), k_split=2)
        assert acc.reduction_network.stats.get("transfers", 0) == 0

    def test_extra_dram_traffic_equals_partials(self):
        """The spilled traffic is exactly the partial-sum round trip."""
        a, b_t, _ = reference(128, 128, 128)
        acc1 = Accelerator(sram_mode=SRAMMode.SCRATCHPAD)
        run_fc(acc1, a, b_t, subgrid=acc1.subgrid((0, 0), 2, 2), k_split=2)
        acc2 = Accelerator(sram_mode=SRAMMode.SCRATCHPAD)
        run_fc_memory_reduce(acc2, a, b_t,
                             subgrid=acc2.subgrid((0, 0), 2, 2), k_split=2)
        extra_writes = (acc2.memory.dram.stats["write_bytes"]
                        - acc1.memory.dram.stats["write_bytes"])
        # 2 chain positions x 4 blocks x 16 KB of INT32 partials.
        partial_bytes = 2 * (128 // 64) * (128 // 64) * 64 * 64 * 4
        assert extra_writes == partial_bytes
