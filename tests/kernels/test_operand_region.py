"""Operand placement (``operand_region``): DRAM vs SRAM scratchpad.

The autotuner's ``operands`` axis rides on this kernel knob; placement
must never change computed results (only cycles), must refuse to stage
into a cache-mode SRAM, and must fingerprint distinctly in the sim
cache so a DRAM replay is never served for an SRAM run.
"""

import numpy as np
import pytest

from repro import Accelerator
from repro.kernels.fc import run_fc
from repro.kernels.tbe import (TBEConfig, generate_indices,
                               generate_tables, run_tbe)
from repro.memory import SRAMMode
from repro.sim import SimulationError
from repro.simcache import SimCache

FC_DIMS = dict(m=128, k=64, n=128)
TBE_CFG = TBEConfig(num_tables=2, rows_per_table=256, embedding_dim=32,
                    pooling_factor=4, batch_size=8)


def _scratchpad():
    return Accelerator(sram_mode=SRAMMode.SCRATCHPAD)


class TestFCPlacement:
    def test_sram_output_is_bit_equal_to_dram(self):
        dram = run_fc(_scratchpad(), **FC_DIMS, seed=5)
        sram = run_fc(_scratchpad(), **FC_DIMS, seed=5,
                      operand_region="sram")
        np.testing.assert_array_equal(dram.c_t, sram.c_t)
        assert dram.cycles > 0 and sram.cycles > 0

    def test_sram_requires_scratchpad_mode(self):
        with pytest.raises(SimulationError, match="SCRATCHPAD"):
            run_fc(Accelerator(sram_mode=SRAMMode.CACHE), **FC_DIMS,
                   operand_region="sram")

    def test_unknown_region_is_rejected(self):
        with pytest.raises(ValueError, match="operand_region"):
            run_fc(_scratchpad(), **FC_DIMS, operand_region="hbm")

    def test_cache_fingerprints_distinguish_placement(self):
        cache = SimCache()
        dram = run_fc(_scratchpad(), **FC_DIMS, cache=cache)
        assert len(cache._memory) == 1
        sram = run_fc(_scratchpad(), **FC_DIMS, operand_region="sram",
                      cache=cache)
        assert len(cache._memory) == 2     # distinct keys, no collision
        np.testing.assert_array_equal(dram.c_t, sram.c_t)
        # Replays stay placement-faithful (bit-equal cycles per region).
        assert run_fc(_scratchpad(), **FC_DIMS,
                      cache=cache).cycles == dram.cycles
        assert run_fc(_scratchpad(), **FC_DIMS, operand_region="sram",
                      cache=cache).cycles == sram.cycles


class TestTBEPlacement:
    def test_sram_output_is_bit_equal_to_dram(self):
        tables = generate_tables(TBE_CFG)
        idx = generate_indices(TBE_CFG)
        dram = run_tbe(_scratchpad(), TBE_CFG, tables, idx)
        sram = run_tbe(_scratchpad(), TBE_CFG, tables, idx,
                       operand_region="sram")
        np.testing.assert_array_equal(dram.output, sram.output)
        assert dram.cycles > 0 and sram.cycles > 0

    def test_sram_requires_scratchpad_mode(self):
        with pytest.raises(SimulationError, match="SCRATCHPAD"):
            run_tbe(Accelerator(sram_mode=SRAMMode.CACHE), TBE_CFG,
                    operand_region="sram")

    def test_unknown_region_is_rejected(self):
        with pytest.raises(ValueError, match="operand_region"):
            run_tbe(_scratchpad(), TBE_CFG, operand_region="local")

    def test_cache_fingerprints_distinguish_placement(self):
        cache = SimCache()
        run_tbe(_scratchpad(), TBE_CFG, cache=cache)
        run_tbe(_scratchpad(), TBE_CFG, operand_region="sram",
                cache=cache)
        assert len(cache._memory) == 2
