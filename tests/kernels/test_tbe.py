"""The TBE / EmbeddingBag kernel."""

import numpy as np
import pytest

from repro import Accelerator
from repro.config import MTIA_V1
from repro.kernels.tbe import (TBEConfig, generate_indices, generate_tables,
                               pooled_reference, run_tbe)
from repro.memory import SRAMMode
from repro.sim import SimulationError


@pytest.fixture
def small_cfg():
    return TBEConfig(num_tables=4, rows_per_table=500, embedding_dim=64,
                     pooling_factor=8, batch_size=8)


class TestConfig:
    def test_derived_quantities(self, small_cfg):
        assert small_cfg.num_bags == 32
        assert small_cfg.total_lookups == 256
        assert small_cfg.lookup_bytes == 256 * 64

    def test_generate_tables_shape(self, small_cfg):
        tables = generate_tables(small_cfg)
        assert tables.shape == (4, 500, 64)
        assert tables.dtype == np.int8

    def test_generate_indices_within_range(self, small_cfg):
        idx = generate_indices(small_cfg)
        assert idx.shape == (4, 8, 8)
        assert idx.min() >= 0 and idx.max() < 500

    def test_zipf_indices_are_skewed(self):
        cfg = TBEConfig(num_tables=1, rows_per_table=100_000,
                        embedding_dim=64, pooling_factor=64, batch_size=256)
        uniform = generate_indices(cfg, alpha=None)
        skewed = generate_indices(cfg, alpha=1.2)
        assert len(np.unique(skewed)) < len(np.unique(uniform)) / 2


class TestCorrectness:
    def test_single_pe(self, small_cfg):
        acc = Accelerator()
        tables = generate_tables(small_cfg)
        idx = generate_indices(small_cfg)
        result = run_tbe(acc, small_cfg, tables, idx,
                         subgrid=acc.subgrid((0, 0), 1, 1))
        ref = pooled_reference(tables, idx, small_cfg.scale)
        np.testing.assert_allclose(result.output, ref, atol=1e-4)

    @pytest.mark.parametrize("rows,cols", [(2, 2), (4, 2)])
    def test_multi_pe(self, small_cfg, rows, cols):
        acc = Accelerator()
        tables = generate_tables(small_cfg)
        idx = generate_indices(small_cfg)
        result = run_tbe(acc, small_cfg, tables, idx,
                         subgrid=acc.subgrid((0, 0), rows, cols))
        ref = pooled_reference(tables, idx, small_cfg.scale)
        np.testing.assert_allclose(result.output, ref, atol=1e-4)

    def test_repeated_index_counted_per_occurrence(self):
        cfg = TBEConfig(num_tables=1, rows_per_table=10, embedding_dim=64,
                        pooling_factor=4, batch_size=1, scale=1.0)
        acc = Accelerator()
        tables = generate_tables(cfg)
        idx = np.full((1, 1, 4), 3, dtype=np.int64)
        result = run_tbe(acc, cfg, tables, idx,
                         subgrid=acc.subgrid((0, 0), 1, 1))
        expected = tables[0, 3].astype(np.float32) * 4
        np.testing.assert_allclose(result.output[0, 0], expected, atol=1e-4)

    def test_pooling_one(self):
        cfg = TBEConfig(num_tables=2, rows_per_table=100, embedding_dim=32,
                        pooling_factor=1, batch_size=4)
        acc = Accelerator()
        tables = generate_tables(cfg)
        idx = generate_indices(cfg)
        result = run_tbe(acc, cfg, tables, idx,
                         subgrid=acc.subgrid((0, 0), 1, 2))
        ref = pooled_reference(tables, idx, cfg.scale)
        np.testing.assert_allclose(result.output, ref, atol=1e-4)

    def test_more_bags_than_pes_round_robins(self):
        cfg = TBEConfig(num_tables=3, rows_per_table=50, embedding_dim=32,
                        pooling_factor=2, batch_size=7)   # 21 bags, 4 PEs
        acc = Accelerator()
        tables = generate_tables(cfg)
        idx = generate_indices(cfg)
        result = run_tbe(acc, cfg, tables, idx,
                         subgrid=acc.subgrid((0, 0), 2, 2))
        ref = pooled_reference(tables, idx, cfg.scale)
        np.testing.assert_allclose(result.output, ref, atol=1e-4)

    def test_invalid_prefetch_rejected(self, small_cfg):
        with pytest.raises(SimulationError):
            run_tbe(Accelerator(), small_cfg, prefetch_rows=0)

    def test_oversized_dim_rejected(self):
        cfg = TBEConfig(num_tables=1, rows_per_table=10,
                        embedding_dim=40_000, pooling_factor=2, batch_size=1)
        with pytest.raises(SimulationError, match="local memory"):
            run_tbe(Accelerator(), cfg)


class TestPerformanceBehaviour:
    def _bandwidth(self, prefetch, pes=(8, 8), pooling=32, dim=128):
        cfg = TBEConfig(num_tables=8, rows_per_table=50_000,
                        embedding_dim=dim, pooling_factor=pooling,
                        batch_size=16)
        acc = Accelerator()
        result = run_tbe(acc, cfg, subgrid=acc.subgrid((0, 0), *pes),
                         prefetch_rows=prefetch)
        return result.gbs(MTIA_V1.frequency_ghz)

    def test_deeper_prefetch_raises_bandwidth(self):
        """The paper's software-pipelining headroom (Section 6.1): the
        production kernel's few outstanding requests reach a fraction
        of what deep pipelining achieves."""
        shallow = self._bandwidth(prefetch=1)
        deep = self._bandwidth(prefetch=8)
        assert deep > 1.5 * shallow

    def test_hand_tuned_regime_exceeds_half_roofline(self):
        """Hand-written kernels reached >60 % of roofline (Section 6.1)."""
        deep = self._bandwidth(prefetch=16)
        assert deep > 0.5 * MTIA_V1.dram_gbs()

    def test_bandwidth_metric_counts_useful_bytes(self):
        cfg = TBEConfig(num_tables=2, rows_per_table=100, embedding_dim=64,
                        pooling_factor=4, batch_size=8)
        acc = Accelerator()
        result = run_tbe(acc, cfg, subgrid=acc.subgrid((0, 0), 2, 2))
        expected_bytes = cfg.total_lookups * cfg.embedding_dim
        assert result.config.lookup_bytes == expected_bytes
        assert result.gbs(0.8) == pytest.approx(
            expected_bytes * 0.8 / result.cycles)

    def test_sram_cache_mode_accelerates_hot_tables(self):
        """Tables that fit in the 128 MB cache serve hits at SRAM speed
        (the Figure 12 cache-configuration argument)."""
        cfg = TBEConfig(num_tables=4, rows_per_table=2_000,
                        embedding_dim=128, pooling_factor=32, batch_size=32)
        acc = Accelerator(sram_mode=SRAMMode.CACHE)
        # Warm: run once, then run again and compare.
        tables = generate_tables(cfg)
        idx = generate_indices(cfg)
        first = run_tbe(acc, cfg, tables, idx,
                        subgrid=acc.subgrid((0, 0), 4, 4))
        start_hits = acc.memory.sram.stats.get("hit_lines")
        assert start_hits > 0   # reuse within the first run already hits


class TestWeightedPooling:
    def test_weighted_matches_reference(self):
        cfg = TBEConfig(num_tables=2, rows_per_table=300, embedding_dim=32,
                        pooling_factor=4, batch_size=8)
        acc = Accelerator()
        tables = generate_tables(cfg, 0)
        idx = generate_indices(cfg, 1)
        rng = np.random.default_rng(5)
        weights = rng.uniform(0.1, 2.0, idx.shape).astype(np.float32)
        result = run_tbe(acc, cfg, tables, idx, weights=weights,
                         subgrid=acc.subgrid((0, 0), 2, 2))
        ref = pooled_reference(tables, idx, cfg.scale, weights=weights)
        np.testing.assert_allclose(result.output, ref, atol=1e-3)

    def test_unit_weights_equal_unweighted(self):
        cfg = TBEConfig(num_tables=1, rows_per_table=100, embedding_dim=16,
                        pooling_factor=3, batch_size=4)
        tables = generate_tables(cfg, 0)
        idx = generate_indices(cfg, 1)
        ones = np.ones(idx.shape, dtype=np.float32)
        acc1, acc2 = Accelerator(), Accelerator()
        weighted = run_tbe(acc1, cfg, tables, idx, weights=ones,
                           subgrid=acc1.subgrid((0, 0), 1, 1))
        plain = run_tbe(acc2, cfg, tables, idx,
                        subgrid=acc2.subgrid((0, 0), 1, 1))
        np.testing.assert_allclose(weighted.output, plain.output, atol=1e-4)

    def test_zero_weights_zero_output(self):
        cfg = TBEConfig(num_tables=1, rows_per_table=50, embedding_dim=16,
                        pooling_factor=2, batch_size=2)
        tables = generate_tables(cfg, 0)
        idx = generate_indices(cfg, 1)
        zeros = np.zeros(idx.shape, dtype=np.float32)
        acc = Accelerator()
        result = run_tbe(acc, cfg, tables, idx, weights=zeros,
                         subgrid=acc.subgrid((0, 0), 1, 1))
        assert np.abs(result.output).max() == 0.0


class TestWeightedOpsRegistry:
    def test_embedding_bag_op_with_weights(self, rng):
        from repro.compiler.ir import GraphBuilder
        from repro.compiler.ops import execute_node
        b = GraphBuilder()
        table = b.weight((100, 8), dtype="int8", name="t")
        idx = b.input((4, 3), dtype="int32", name="i")
        w = b.input((4, 3), dtype="fp32", name="w")
        node = b.add("embedding_bag", (table.name, idx.name, w.name),
                     batch=4, pooling=3, scale=1.0)
        tv = rng.integers(-20, 20, (100, 8), dtype=np.int8)
        iv = rng.integers(0, 100, (4, 3))
        wv = rng.uniform(0, 2, (4, 3)).astype(np.float32)
        out = execute_node(node, [tv, iv, wv])
        ref = (tv[iv].astype(np.float32) * wv[..., None]).sum(axis=1)
        np.testing.assert_allclose(out, ref, rtol=1e-5)
