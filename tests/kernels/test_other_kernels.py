"""BatchMatMul, Transpose, Concat, Quantize, elementwise, vector kernels."""

import numpy as np
import pytest

from repro import Accelerator
from repro.kernels.batch_matmul import BMMConfig, bmm_reference, run_bmm
from repro.kernels.elementwise import run_binary, run_nonlinear
from repro.kernels.memory_ops import run_concat, run_transpose
from repro.kernels.quantize import run_quantize
from repro.kernels.vector_ops import (layernorm_reference,
                                      run_batched_reduce_add, run_layernorm)
from repro.memory import SRAMMode
from repro.sim import SimulationError


class TestBatchMatMul:
    def test_int8_bit_exact(self, rng):
        cfg = BMMConfig(batch=6, m=64, k=96, n=32, dtype="int8")
        a = rng.integers(-128, 128, (6, 64, 96), dtype=np.int8)
        b_t = rng.integers(-128, 128, (6, 32, 96), dtype=np.int8)
        acc = Accelerator()
        result = run_bmm(acc, cfg, a, b_t, subgrid=acc.subgrid((0, 0), 2, 2))
        np.testing.assert_array_equal(result.output, bmm_reference(a, b_t))

    def test_fp16(self, rng):
        cfg = BMMConfig(batch=3, m=32, k=64, n=32, dtype="fp16")
        a = rng.standard_normal((3, 32, 64)).astype(np.float16)
        b_t = rng.standard_normal((3, 32, 64)).astype(np.float16)
        acc = Accelerator()
        result = run_bmm(acc, cfg, a, b_t, subgrid=acc.subgrid((0, 0), 1, 2))
        ref = bmm_reference(a, b_t)
        np.testing.assert_allclose(result.output, ref, rtol=2e-3, atol=1e-2)

    def test_batches_distribute_over_pes(self):
        cfg = BMMConfig(batch=8, m=32, k=32, n=32)
        acc = Accelerator()
        run_bmm(acc, cfg, subgrid=acc.subgrid((0, 0), 2, 2))
        busy_pes = sum(1 for pe in acc.subgrid((0, 0), 2, 2)
                       if pe.dpe_unit.stats.get("commands"))
        assert busy_pes == 4

    def test_unaligned_shape_rejected(self):
        with pytest.raises(SimulationError, match="multiple of 32"):
            BMMConfig(batch=1, m=33, k=32, n=32)

    def test_too_large_operands_rejected(self):
        cfg = BMMConfig(batch=1, m=512, k=512, n=64)
        with pytest.raises(SimulationError, match="local memory"):
            run_bmm(Accelerator(), cfg)

    def test_tops_accounting(self):
        cfg = BMMConfig(batch=4, m=32, k=32, n=32)
        acc = Accelerator()
        result = run_bmm(acc, cfg, subgrid=acc.subgrid((0, 0), 2, 2))
        assert result.config.total_macs == 4 * 32 ** 3
        assert result.tops(0.8) > 0


class TestTranspose:
    @pytest.mark.parametrize("rows,cols", [(32, 32), (64, 128), (96, 32)])
    def test_int8(self, rng, rows, cols):
        arr = rng.integers(-128, 128, (rows, cols), dtype=np.int8)
        acc = Accelerator()
        result = run_transpose(acc, arr, subgrid=acc.subgrid((0, 0), 2, 2))
        np.testing.assert_array_equal(result.output, arr.T)

    def test_fp32_elements(self, rng):
        arr = rng.standard_normal((64, 64)).astype(np.float32)
        acc = Accelerator()
        result = run_transpose(acc, arr, dtype="fp32",
                               subgrid=acc.subgrid((0, 0), 1, 1))
        np.testing.assert_array_equal(result.output, arr.T)

    def test_sram_placement_faster(self, rng):
        arr = rng.integers(-128, 128, (128, 128), dtype=np.int8)
        acc_dram = Accelerator()
        t_dram = run_transpose(acc_dram, arr,
                               subgrid=acc_dram.subgrid((0, 0), 2, 2)).cycles
        acc_sram = Accelerator(sram_mode=SRAMMode.SCRATCHPAD)
        t_sram = run_transpose(acc_sram, arr, in_sram=True,
                               subgrid=acc_sram.subgrid((0, 0), 2, 2)).cycles
        assert t_sram < t_dram

    def test_non_tiling_shape_rejected(self):
        with pytest.raises(SimulationError, match="tile"):
            run_transpose(Accelerator(), np.zeros((33, 32), np.int8))


class TestConcat:
    def test_two_inputs(self, rng):
        a = rng.integers(-128, 128, (16, 48), dtype=np.int8)
        b = rng.integers(-128, 128, (16, 16), dtype=np.int8)
        acc = Accelerator()
        result = run_concat(acc, a, b, subgrid=acc.subgrid((0, 0), 2, 2))
        np.testing.assert_array_equal(result.output,
                                      np.concatenate([a, b], axis=1))

    def test_row_count_mismatch_rejected(self, rng):
        a = np.zeros((4, 8), np.int8)
        b = np.zeros((5, 8), np.int8)
        with pytest.raises(SimulationError, match="row count"):
            run_concat(Accelerator(), a, b)

    def test_bandwidth_metric(self, rng):
        a = rng.integers(-128, 128, (8, 64), dtype=np.int8)
        b = rng.integers(-128, 128, (8, 64), dtype=np.int8)
        acc = Accelerator()
        result = run_concat(acc, a, b, subgrid=acc.subgrid((0, 0), 1, 1))
        assert result.moved_bytes == a.nbytes + b.nbytes
        assert result.gbs(0.8) > 0


class TestQuantize:
    def test_quantize_matches_reference(self, rng):
        values = rng.standard_normal(5000).astype(np.float32)
        acc = Accelerator()
        result = run_quantize(acc, values, scale=0.05,
                              subgrid=acc.subgrid((0, 0), 2, 2))
        ref = np.clip(np.round(values / 0.05), -128, 127).astype(np.int8)
        np.testing.assert_array_equal(result.output, ref)

    def test_dequantize(self, rng):
        q = rng.integers(-128, 128, 3000, dtype=np.int8)
        acc = Accelerator()
        result = run_quantize(acc, q, direction="dequantize", scale=0.1,
                              subgrid=acc.subgrid((0, 0), 2, 2))
        np.testing.assert_allclose(result.output,
                                   q.astype(np.float32) * 0.1, atol=1e-6)

    def test_partial_last_tile(self, rng):
        values = rng.standard_normal(4097).astype(np.float32)
        acc = Accelerator()
        result = run_quantize(acc, values, scale=0.1, tile_elems=4096,
                              subgrid=acc.subgrid((0, 0), 1, 2))
        assert result.output.size == 4097


class TestElementwise:
    def test_tanh_within_lut_error(self, rng):
        values = (rng.standard_normal(4096) * 3).astype(np.float32)
        acc = Accelerator()
        result = run_nonlinear(acc, values, func="tanh",
                               subgrid=acc.subgrid((0, 0), 2, 2))
        assert np.max(np.abs(result.output - np.tanh(values))) < 5e-3

    def test_relu_exact(self, rng):
        values = rng.standard_normal(2048).astype(np.float32)
        acc = Accelerator()
        result = run_nonlinear(acc, values, func="relu",
                               subgrid=acc.subgrid((0, 0), 1, 1))
        np.testing.assert_array_equal(result.output,
                                      np.maximum(values, 0.0))

    def test_sigmoid_close(self, rng):
        values = (rng.standard_normal(2048) * 2).astype(np.float32)
        acc = Accelerator()
        result = run_nonlinear(acc, values, func="sigmoid",
                               subgrid=acc.subgrid((0, 0), 1, 2))
        ref = 1.0 / (1.0 + np.exp(-values))
        assert np.max(np.abs(result.output - ref)) < 5e-3

    @pytest.mark.parametrize("op,fn", [("add", np.add), ("mul", np.multiply),
                                       ("sub", np.subtract),
                                       ("max", np.maximum)])
    def test_binary_fp32(self, rng, op, fn):
        a = rng.standard_normal(3000).astype(np.float32)
        b = rng.standard_normal(3000).astype(np.float32)
        acc = Accelerator()
        result = run_binary(acc, a, b, op=op,
                            subgrid=acc.subgrid((0, 0), 2, 2))
        np.testing.assert_allclose(result.output, fn(a, b), rtol=1e-6)


class TestVectorOps:
    def test_layernorm_matches_reference(self, rng):
        values = rng.standard_normal((24, 256)).astype(np.float32)
        acc = Accelerator()
        result = run_layernorm(acc, values, subgrid=acc.subgrid((0, 0), 2, 2))
        np.testing.assert_allclose(result.output,
                                   layernorm_reference(values), atol=1e-4)

    def test_layernorm_output_statistics(self, rng):
        values = (rng.standard_normal((8, 512)) * 5 + 3).astype(np.float32)
        acc = Accelerator()
        result = run_layernorm(acc, values, subgrid=acc.subgrid((0, 0), 2, 2))
        np.testing.assert_allclose(result.output.mean(axis=1),
                                   np.zeros(8), atol=1e-4)
        np.testing.assert_allclose(result.output.std(axis=1),
                                   np.ones(8), atol=1e-2)

    def test_batched_reduce_add(self, rng):
        values = rng.standard_normal((96, 384)).astype(np.float32)
        acc = Accelerator()
        result = run_batched_reduce_add(acc, values,
                                        subgrid=acc.subgrid((0, 0), 2, 2))
        np.testing.assert_allclose(result.output, values.sum(axis=0),
                                   atol=1e-3)

    def test_reduce_add_single_column_slice(self, rng):
        values = rng.standard_normal((10, 3)).astype(np.float32)
        acc = Accelerator()
        result = run_batched_reduce_add(acc, values,
                                        subgrid=acc.subgrid((0, 0), 1, 1))
        np.testing.assert_allclose(result.output, values.sum(axis=0),
                                   atol=1e-4)

    def test_vector_ops_run_on_core1_only(self, rng):
        acc = Accelerator()
        pe = acc.grid.pe(0, 0)
        assert pe.cores[0].vector is None
        assert pe.cores[1].vector is not None


class TestSoftmaxKernel:
    def test_matches_numpy(self, rng):
        from repro.kernels.vector_ops import run_softmax
        values = (rng.standard_normal((16, 128)) * 2).astype(np.float32)
        acc = Accelerator()
        result = run_softmax(acc, values, subgrid=acc.subgrid((0, 0), 2, 2))
        shifted = values - values.max(axis=1, keepdims=True)
        e = np.exp(shifted)
        ref = e / e.sum(axis=1, keepdims=True)
        # Bounded by the SE's 256-entry exp LUT interpolation error.
        assert np.max(np.abs(result.output - ref)) < 2e-2

    def test_rows_sum_to_one(self, rng):
        from repro.kernels.vector_ops import run_softmax
        values = rng.standard_normal((8, 64)).astype(np.float32)
        acc = Accelerator()
        result = run_softmax(acc, values, subgrid=acc.subgrid((0, 0), 1, 2))
        np.testing.assert_allclose(result.output.sum(axis=1),
                                   np.ones(8), atol=1e-4)

    def test_uses_se_and_vector_units(self, rng):
        """The pipeline really crosses units: SE exp + vector scale."""
        from repro.kernels.vector_ops import run_softmax
        values = rng.standard_normal((4, 64)).astype(np.float32)
        acc = Accelerator()
        run_softmax(acc, values, subgrid=acc.subgrid((0, 0), 1, 1))
        pe = acc.grid.pe(0, 0)
        assert pe.se_unit.stats.get("elements", 0) > 0      # SE exp ran
        assert pe.fi_unit.stats.get("load_bytes", 0) > 0    # DMA staged
