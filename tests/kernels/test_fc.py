"""The Section 4 FC kernel, verified bit-exactly against numpy."""

import numpy as np
import pytest

from repro import Accelerator
from repro.config import MTIA_V1
from repro.kernels.fc import (FCPlan, _auto_subgrid, padded_shape,
                              plan_fc, run_fc)
from repro.sim import SimulationError


def reference(m, k, n, dtype=np.int8, seed=0):
    rng = np.random.default_rng(seed)
    if dtype == np.int8:
        a = rng.integers(-128, 128, (m, k), dtype=np.int8)
        b_t = rng.integers(-128, 128, (n, k), dtype=np.int8)
        c_t = b_t.astype(np.int32) @ a.astype(np.int32).T
    else:
        a = rng.standard_normal((m, k)).astype(dtype)
        b_t = rng.standard_normal((n, k)).astype(dtype)
        c_t = b_t.astype(np.float32) @ a.astype(np.float32).T
    return a, b_t, c_t


class TestPlanning:
    def test_figure7_example_plan(self, accelerator):
        """The paper's example: 512x1024x256 on a 4x4 sub-grid with the
        reduction dimension split over two PEs per row."""
        sub = accelerator.subgrid((0, 0), 4, 4)
        plan = plan_fc(sub, 512, 1024, 256, k_split=2)
        assert plan.n_split == 2
        assert plan.m_per_row == 128
        assert plan.k_per_pe == 512
        assert plan.n_per_group == 128
        assert len(plan.work_items) == 16
        chains = {w.coord: (w.chain_index, w.chain_length)
                  for w in plan.work_items}
        assert chains[(0, 0)] == (0, 2)
        assert chains[(0, 1)] == (1, 2)

    def test_multicast_groups_follow_figure7(self, accelerator):
        sub = accelerator.subgrid((0, 0), 4, 4)
        plan = plan_fc(sub, 512, 1024, 256, k_split=2)
        by_coord = {w.coord: w for w in plan.work_items}
        # Columns 0 and 2 share the same k slice -> same A group.
        assert by_coord[(0, 0)].multicast_a is by_coord[(0, 2)].multicast_a
        assert by_coord[(0, 0)].multicast_a is not by_coord[(0, 1)].multicast_a
        # Every PE in a column shares the B group.
        assert by_coord[(0, 0)].multicast_b is by_coord[(3, 0)].multicast_b

    def test_shape_must_tile(self, accelerator):
        sub = accelerator.subgrid((0, 0), 2, 2)
        with pytest.raises(SimulationError, match="multiple"):
            plan_fc(sub, 100, 64, 64)
        with pytest.raises(SimulationError, match="multiple"):
            plan_fc(sub, 128, 48, 64, k_split=1)

    def test_local_memory_budget_enforced(self, accelerator):
        sub = accelerator.subgrid((0, 0), 1, 1)
        with pytest.raises(SimulationError, match="local memory"):
            plan_fc(sub, 64, 8192, 1024, k_split=1)

    def test_k_split_must_divide_cols(self, accelerator):
        sub = accelerator.subgrid((0, 0), 2, 4)
        with pytest.raises(SimulationError, match="divide"):
            plan_fc(sub, 128, 128, 256, k_split=3)

    def test_cb_sizing(self, accelerator):
        sub = accelerator.subgrid((0, 0), 1, 1)
        plan = plan_fc(sub, 64, 128, 64)
        cb_a, cb_b, cb_c = plan.cb_bytes()
        assert cb_a == (128 // 32) * 64 * 32      # one 64-row A stripe
        assert cb_b == (64 // 64) * (128 // 32) * 64 * 32
        assert cb_c == 64 * 64 * 4

    def test_auto_subgrid_prefers_large(self, accelerator):
        sub = _auto_subgrid(accelerator, 512, 1024, 512)
        assert sub.rows == 8 and sub.cols == 8


class TestCorrectness:
    @pytest.mark.parametrize("m,k,n,rows,cols,k_split", [
        (64, 32, 64, 1, 1, 1),          # minimal single PE
        (64, 64, 64, 1, 1, 1),
        (128, 64, 64, 2, 1, 1),         # m across rows
        (64, 128, 64, 1, 2, 2),         # k chain along a row
        (64, 64, 128, 1, 2, 1),         # n across column groups
        (128, 128, 128, 2, 2, 2),       # everything at once
        (128, 96, 64, 1, 1, 1),         # k not a power of two
    ])
    def test_int8_bit_exact(self, m, k, n, rows, cols, k_split):
        acc = Accelerator()
        a, b_t, c_t = reference(m, k, n)
        result = run_fc(acc, a, b_t, subgrid=acc.subgrid((0, 0), rows, cols),
                        k_split=k_split)
        np.testing.assert_array_equal(result.c_t, c_t)

    def test_figure7_shape_full(self):
        acc = Accelerator()
        a, b_t, c_t = reference(512, 1024, 256)
        result = run_fc(acc, a, b_t, subgrid=acc.subgrid((0, 0), 4, 4),
                        k_split=2)
        np.testing.assert_array_equal(result.c_t, c_t)
        assert result.macs == 512 * 1024 * 256

    def test_fp16_close_to_reference(self):
        acc = Accelerator()
        a, b_t, c_t = reference(128, 128, 128, dtype=np.float16)
        result = run_fc(acc, a, b_t, dtype="fp16",
                        subgrid=acc.subgrid((0, 0), 2, 2), k_split=2)
        np.testing.assert_allclose(result.c_t, c_t, rtol=2e-3, atol=1e-2)

    def test_c_property_transposes(self):
        acc = Accelerator()
        a, b_t, c_t = reference(64, 32, 64)
        result = run_fc(acc, a, b_t, subgrid=acc.subgrid((0, 0), 1, 1))
        np.testing.assert_array_equal(result.c, c_t.T)

    def test_deterministic_given_seed(self):
        r1 = run_fc(Accelerator(), m=64, k=64, n=64, seed=7,
                    subgrid=Accelerator().subgrid((0, 0), 1, 1))
        r2 = run_fc(Accelerator(), m=64, k=64, n=64, seed=7,
                    subgrid=Accelerator().subgrid((0, 0), 1, 1))
        np.testing.assert_array_equal(r1.c_t, r2.c_t)
        assert r1.cycles == r2.cycles

    def test_mismatched_operands_rejected(self):
        acc = Accelerator()
        with pytest.raises(ValueError, match="k mismatch"):
            run_fc(acc, np.zeros((64, 32), np.int8),
                   np.zeros((64, 64), np.int8))

    def test_dimensions_required_without_operands(self):
        with pytest.raises(ValueError, match="m, k, n"):
            run_fc(Accelerator(), m=64, k=64)


class TestPerformanceBehaviour:
    def test_more_pes_run_faster(self):
        shapes = dict(m=256, k=256, n=128)
        acc1 = Accelerator()
        t1 = run_fc(acc1, subgrid=acc1.subgrid((0, 0), 1, 1), **shapes).cycles
        acc2 = Accelerator()
        t2 = run_fc(acc2, subgrid=acc2.subgrid((0, 0), 4, 4), k_split=2,
                    **shapes).cycles
        assert t2 < t1 / 2

    def test_multicast_reduces_memory_traffic(self):
        """Figure 7's row/column sharing: with a 2x2 grid the same
        operand bytes are fetched once, not per PE."""
        shapes = dict(m=128, k=128, n=128)
        acc = Accelerator()
        run_fc(acc, subgrid=acc.subgrid((0, 0), 2, 2), k_split=1, **shapes)
        dram_read = acc.memory.dram.stats["read_bytes"]
        operand_bytes = 128 * 128 * 2   # A + B^T
        # B^T is shared down each column via multicast; A is fetched by
        # both column groups... total must stay well under 2x operands.
        assert dram_read < 2.01 * operand_bytes

    def test_reduction_network_used_when_k_split(self):
        acc = Accelerator()
        run_fc(acc, m=64, k=128, n=64, subgrid=acc.subgrid((0, 0), 1, 2),
               k_split=2)
        assert acc.reduction_network.stats["transfers"] > 0

    def test_no_reduction_traffic_without_k_split(self):
        acc = Accelerator()
        run_fc(acc, m=64, k=128, n=64, subgrid=acc.subgrid((0, 0), 1, 1))
        assert acc.reduction_network.stats.get("transfers", 0) == 0

    def test_achieved_tops_below_peak(self):
        acc = Accelerator()
        result = run_fc(acc, m=256, k=256, n=128,
                        subgrid=acc.subgrid((0, 0), 4, 4), k_split=2)
        tops = result.tops(MTIA_V1.frequency_ghz)
        sub_peak = MTIA_V1.gemm_tops("int8") * 16 / 64
        assert 0 < tops < sub_peak

    def test_dpe_operand_cache_hits_on_reuse(self):
        """Each 32x32 block is used twice by the 2x2 accumulator
        arrangement (Section 4)."""
        acc = Accelerator()
        run_fc(acc, m=128, k=64, n=128, subgrid=acc.subgrid((0, 0), 1, 1))
        pe = acc.grid.pe(0, 0)
        assert pe.dpe_unit.stats["operand_cache_hits"] > 0


class TestAutoPad:
    @pytest.mark.parametrize("m,k,n", [(100, 50, 37), (1, 1, 1),
                                       (65, 96, 129), (63, 31, 65)])
    def test_arbitrary_shapes_bit_exact(self, m, k, n):
        rng = np.random.default_rng(42)
        a = rng.integers(-128, 128, (m, k), dtype=np.int8)
        b_t = rng.integers(-128, 128, (n, k), dtype=np.int8)
        acc = Accelerator()
        result = run_fc(acc, a, b_t, subgrid=acc.subgrid((0, 0), 1, 1),
                        auto_pad=True)
        expected = b_t.astype(np.int32) @ a.astype(np.int32).T
        assert result.c_t.shape == (n, m)
        np.testing.assert_array_equal(result.c_t, expected)

    def test_auto_pad_on_multi_pe_grid(self):
        rng = np.random.default_rng(3)
        a = rng.integers(-128, 128, (130, 70), dtype=np.int8)
        b_t = rng.integers(-128, 128, (90, 70), dtype=np.int8)
        acc = Accelerator()
        result = run_fc(acc, a, b_t, subgrid=acc.subgrid((0, 0), 2, 2),
                        k_split=2, auto_pad=True)
        expected = b_t.astype(np.int32) @ a.astype(np.int32).T
        np.testing.assert_array_equal(result.c_t, expected)

    def test_macs_count_useful_work_only(self):
        acc = Accelerator()
        rng = np.random.default_rng(0)
        a = rng.integers(-128, 128, (100, 64), dtype=np.int8)
        b_t = rng.integers(-128, 128, (37, 64), dtype=np.int8)
        result = run_fc(acc, a, b_t, subgrid=acc.subgrid((0, 0), 1, 1),
                        auto_pad=True)
        assert result.macs == 100 * 64 * 37

    def test_padded_shape_helper(self, accelerator):
        sub = accelerator.subgrid((0, 0), 2, 4)
        pm, pk, pn = padded_shape(100, 50, 37, sub, k_split=2)
        assert pm == 128      # 64 x 2 rows
        assert pk == 64       # 32 x 2 splits
        assert pn == 128      # 64 x 2 column groups
        # already-tiled shapes are unchanged
        assert padded_shape(128, 64, 128, sub, 2) == (128, 64, 128)

    def test_aligned_shapes_untouched(self):
        acc = Accelerator()
        result = run_fc(acc, m=64, k=64, n=64,
                        subgrid=acc.subgrid((0, 0), 1, 1), auto_pad=True)
        assert result.c_t.shape == (64, 64)
