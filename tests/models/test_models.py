"""DLRM construction, the Table IV zoo, workloads, and trends."""

import numpy as np
import pytest

from repro.models.configs import MODEL_ZOO, TABLE_IV_TARGETS, table_iv_rows
from repro.models.dlrm import (DLRMConfig, build_dlrm_graph, model_flops,
                               model_size_bytes, operator_census)
from repro.models.trends import (compute_memory_gap, figure1_series,
                                 figure2_series)
from repro.models.workloads import WorkloadGenerator, access_skew


class TestTableIVZoo:
    @pytest.mark.parametrize("name", list(MODEL_ZOO))
    def test_size_matches_table_iv(self, name):
        target_gb, _ = TABLE_IV_TARGETS[name]
        actual_gb = model_size_bytes(MODEL_ZOO[name]) / 1e9
        assert actual_gb == pytest.approx(target_gb, rel=0.02)

    @pytest.mark.parametrize("name", list(MODEL_ZOO))
    def test_complexity_matches_table_iv(self, name):
        _, target_gflops = TABLE_IV_TARGETS[name]
        actual = model_flops(MODEL_ZOO[name]) / 1e9
        assert actual == pytest.approx(target_gflops, rel=0.05)

    def test_zoo_ordering(self):
        sizes = [model_size_bytes(MODEL_ZOO[n]) for n in
                 ("LC2", "LC1", "MC1", "MC2", "HC")]
        assert sizes == sorted(sizes)

    def test_table_iv_rows_structure(self):
        rows = table_iv_rows()
        assert set(rows) == set(MODEL_ZOO)
        for row in rows.values():
            assert row["Size (GB)"] > 0


class TestGraphConstruction:
    def test_mc1_census_matches_section_6_1(self):
        """"approximately 750 layers with nearly 550 consisting of EB
        operators"."""
        census = operator_census(build_dlrm_graph(MODEL_ZOO["MC1"], 64))
        assert census["embedding_bag"] == 550
        assert 650 <= census["total"] <= 950

    def test_operator_mix_covers_table_iii_buckets(self):
        census = operator_census(build_dlrm_graph(MODEL_ZOO["MC1"], 64))
        for op in ("fc", "embedding_bag", "concat", "transpose", "quantize",
                   "dequantize", "batch_matmul"):
            assert census.get(op, 0) > 0, op

    def test_output_is_single_logit(self):
        g = build_dlrm_graph(MODEL_ZOO["LC2"], 32)
        out = g.node(g.outputs[0])
        assert out.meta.shape == (32, 1)

    def test_batch_size_propagates(self):
        g = build_dlrm_graph(MODEL_ZOO["LC2"], 128)
        eb = g.nodes_by_op("embedding_bag")[0]
        assert eb.meta.shape[0] == 128

    def test_unquantized_variant_has_no_qdq(self):
        cfg = MODEL_ZOO["LC2"]
        from dataclasses import replace
        plain = replace(cfg, quantized=False)
        census = operator_census(build_dlrm_graph(plain, 16))
        assert "quantize" not in census

    def test_bottom_mlp_must_end_at_embedding_dim(self):
        with pytest.raises(ValueError, match="embedding_dim"):
            DLRMConfig(name="bad", num_tables=4, rows_per_table=10,
                       embedding_dim=64, pooling=2, dense_features=16,
                       bottom_mlp=(32,), top_mlp=(16,))

    def test_small_model_executes_functionally(self, rng):
        """A tiny DLRM end to end through the executor vs numpy."""
        from repro.runtime.executor import GraphExecutor
        cfg = DLRMConfig(name="tiny", num_tables=3, rows_per_table=50,
                         embedding_dim=16, pooling=4, dense_features=8,
                         bottom_mlp=(16, 16), top_mlp=(8,),
                         interaction_group=4, quantized=False)
        batch = 8
        g = build_dlrm_graph(cfg, batch)
        gen = WorkloadGenerator(cfg, batch_size=batch, zipf_alpha=None)
        request = gen.next_request()
        feeds = gen.feeds_for(request)
        outputs, report = GraphExecutor(mode="eager").run(g, feeds)
        logit = outputs[g.outputs[0]]
        assert logit.shape == (batch, 1)
        assert np.isfinite(logit).all()
        # sigmoid output in (0, 1)
        assert (logit > 0).all() and (logit < 1).all()

    def test_interaction_width_accounting(self):
        cfg = MODEL_ZOO["MC1"]
        g = build_dlrm_graph(cfg, 16)
        concat = g.node("feat_concat")
        assert concat.meta.shape[1] == cfg.full_feature_width
        assert cfg.full_feature_width == (cfg.concat_width
                                          + cfg.interaction_width)

    def test_tower_slices_cover_features(self):
        cfg = MODEL_ZOO["MC1"]
        slices = cfg.tower_slices()
        assert slices[0][0] == 0
        assert slices[-1][1] == cfg.full_feature_width
        for (s1, e1), (s2, e2) in zip(slices, slices[1:]):
            assert e1 == s2


class TestWorkloads:
    def test_request_shapes(self):
        cfg = MODEL_ZOO["LC2"]
        gen = WorkloadGenerator(cfg, batch_size=16)
        req = gen.next_request()
        assert req.dense.shape == (16, cfg.dense_features)
        assert len(req.indices) == cfg.num_tables
        assert req.indices["indices0"].shape == (16, cfg.pooling)

    def test_indices_in_range(self):
        cfg = MODEL_ZOO["LC2"]
        gen = WorkloadGenerator(cfg, batch_size=64)
        for req in gen.requests(3):
            for idx in req.indices.values():
                assert idx.min() >= 0
                assert idx.max() < cfg.rows_per_table

    def test_request_ids_increment(self):
        gen = WorkloadGenerator(MODEL_ZOO["LC2"], batch_size=4)
        ids = [r.request_id for r in gen.requests(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_zipf_traffic_is_skewed(self):
        cfg = MODEL_ZOO["LC2"]
        skewed = WorkloadGenerator(cfg, batch_size=256, zipf_alpha=1.05,
                                   seed=3)
        uniform = WorkloadGenerator(cfg, batch_size=256, zipf_alpha=None,
                                    seed=3)
        s = access_skew(skewed.next_request().indices["indices0"])
        u = access_skew(uniform.next_request().indices["indices0"])
        assert s > 5 * u

    def test_feeds_cover_graph_inputs(self):
        cfg = MODEL_ZOO["LC2"]
        g = build_dlrm_graph(cfg, 8)
        gen = WorkloadGenerator(cfg, batch_size=8)
        feeds = gen.feeds_for(gen.next_request())
        input_names = {n.name for n in g if n.op == "input"}
        assert input_names <= set(feeds)

    def test_determinism_by_seed(self):
        cfg = MODEL_ZOO["LC2"]
        a = WorkloadGenerator(cfg, batch_size=8, seed=9).next_request()
        b = WorkloadGenerator(cfg, batch_size=8, seed=9).next_request()
        np.testing.assert_array_equal(a.dense, b.dense)
        np.testing.assert_array_equal(a.indices["indices1"],
                                      b.indices["indices1"])


class TestTrends:
    def test_figure1_growth_shapes(self):
        points = figure1_series()
        # Compute grows faster than memory (Figure 1's visual argument).
        gap = compute_memory_gap(points)
        assert gap["complexity_cagr"] > gap["footprint_cagr"] > 1.0

    def test_figure1_2023_brackets_model_zoo(self):
        points = {p.year: p for p in figure1_series()}
        p2023 = points[2023]
        assert 0.05 <= p2023.complexity_gflops <= 1.0
        assert 100 <= p2023.total_footprint_gb <= 1000

    def test_table_footprint_below_total(self):
        for p in figure1_series():
            assert p.table_footprint_gb < p.total_footprint_gb

    def test_figure2_nnpi_rises_then_falls(self):
        series = figure2_series()
        nnpi = [p.nnpi for p in series]
        peak = nnpi.index(max(nnpi))
        assert 0 < peak < len(nnpi) - 1
        assert nnpi[-1] < max(nnpi) / 2

    def test_figure2_gpu_takes_over_growth(self):
        series = figure2_series()
        gpu = [p.gpu for p in series]
        assert gpu[0] == 0.0
        assert gpu[-1] == max(gpu)
        assert gpu[-1] > series[-1].nnpi

    def test_figure2_total_demand_grows(self):
        series = figure2_series()
        assert series[-1].total > 2 * series[0].total
