"""Sparse byte store."""

import numpy as np
import pytest

from repro.memory.backing_store import PAGE_SIZE, SparseByteStore


class TestSparseByteStore:
    def test_fresh_memory_reads_zero(self):
        store = SparseByteStore(1 << 20)
        assert not store.read(1000, 16).any()

    def test_write_read_roundtrip(self, rng):
        store = SparseByteStore(1 << 20)
        data = rng.integers(0, 256, 300, dtype=np.uint8)
        store.write(12345, data)
        np.testing.assert_array_equal(store.read(12345, 300), data)

    def test_cross_page_write(self, rng):
        store = SparseByteStore(4 * PAGE_SIZE)
        data = rng.integers(0, 256, PAGE_SIZE + 100, dtype=np.uint8)
        addr = PAGE_SIZE - 50
        store.write(addr, data)
        np.testing.assert_array_equal(store.read(addr, data.size), data)

    def test_partial_overwrite(self):
        store = SparseByteStore(1 << 16)
        store.write(0, np.full(10, 1, np.uint8))
        store.write(5, np.full(10, 2, np.uint8))
        out = store.read(0, 15)
        assert out[:5].tolist() == [1] * 5
        assert out[5:].tolist() == [2] * 10

    def test_out_of_bounds_read_rejected(self):
        store = SparseByteStore(100)
        with pytest.raises(IndexError):
            store.read(90, 20)

    def test_out_of_bounds_write_rejected(self):
        store = SparseByteStore(100)
        with pytest.raises(IndexError):
            store.write(95, np.zeros(10, np.uint8))

    def test_negative_address_rejected(self):
        store = SparseByteStore(100)
        with pytest.raises(IndexError):
            store.read(-1, 4)

    def test_non_uint8_payload_viewed_as_bytes(self):
        store = SparseByteStore(1 << 16)
        values = np.arange(10, dtype=np.int32)
        store.write(64, values)
        np.testing.assert_array_equal(
            store.read_array(64, (10,), np.int32), values)

    def test_read_array_2d(self, rng):
        store = SparseByteStore(1 << 16)
        values = rng.standard_normal((4, 8)).astype(np.float32)
        store.write(128, values)
        np.testing.assert_array_equal(
            store.read_array(128, (4, 8), np.float32), values)

    def test_touched_bytes_tracks_pages(self):
        store = SparseByteStore(1 << 30)
        assert store.touched_bytes == 0
        store.write(0, np.zeros(1, np.uint8))
        assert store.touched_bytes == PAGE_SIZE
        store.write(10 * PAGE_SIZE, np.zeros(1, np.uint8))
        assert store.touched_bytes == 2 * PAGE_SIZE

    def test_huge_capacity_is_lazy(self):
        # 64 GB of capacity must not allocate 64 GB.
        store = SparseByteStore(64 << 30)
        store.write(32 << 30, np.arange(100, dtype=np.uint8))
        assert store.touched_bytes <= 2 * PAGE_SIZE

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            SparseByteStore(0)
