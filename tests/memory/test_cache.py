"""Set-associative cache model."""

import pytest

from repro.memory.cache import SetAssociativeCache


def make_cache(capacity=8 * 1024, line=64, ways=4, **kw):
    return SetAssociativeCache(capacity, line_bytes=line, ways=ways, **kw)


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        hits, misses = cache.access(0, 64)
        assert (hits, misses) == (0, 1)
        hits, misses = cache.access(0, 64)
        assert (hits, misses) == (1, 0)

    def test_multi_line_access_counts_each_line(self):
        cache = make_cache()
        hits, misses = cache.access(0, 256)
        assert (hits, misses) == (0, 4)

    def test_unaligned_access_touches_extra_line(self):
        cache = make_cache()
        _, misses = cache.access(60, 8)   # straddles a line boundary
        assert misses == 2

    def test_hit_rate(self):
        cache = make_cache()
        cache.access(0, 64)
        cache.access(0, 64)
        cache.access(0, 64)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_contains_is_nonmutating(self):
        cache = make_cache()
        cache.access(0, 64)
        before = cache.stats.accesses
        assert cache.contains(0)
        assert not cache.contains(1 << 20)
        assert cache.stats.accesses == before

    def test_too_small_cache_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(128, line_bytes=64, ways=4)


class TestReplacement:
    def test_lru_evicts_oldest(self):
        # 1 set x 2 ways: force conflicts on the same set.
        cache = SetAssociativeCache(128, line_bytes=64, ways=2)
        a, b, c = 0, 64, 128  # with one set, every line maps to set 0
        cache.access(a, 1)
        cache.access(b, 1)
        cache.access(a, 1)        # a is now MRU
        cache.access(c, 1)        # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)
        assert cache.stats.evictions == 1

    def test_working_set_within_capacity_never_evicts(self):
        cache = make_cache(capacity=4096, line=64, ways=4)
        for sweep in range(3):
            for addr in range(0, 4096, 64):
                cache.access(addr, 64)
        assert cache.stats.evictions == 0
        assert cache.stats.misses == 64
        assert cache.resident_lines == 64

    def test_thrashing_working_set_evicts(self):
        cache = make_cache(capacity=4096)
        for sweep in range(2):
            for addr in range(0, 8192, 64):
                cache.access(addr, 64)
        assert cache.stats.evictions > 0


class TestWrites:
    def test_dirty_eviction_counts_writeback(self):
        cache = SetAssociativeCache(128, line_bytes=64, ways=2)
        cache.access(0, 1, is_write=True)
        cache.access(64, 1)
        cache.access(128, 1)   # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = SetAssociativeCache(128, line_bytes=64, ways=2)
        cache.access(0, 1)                 # clean fill
        cache.access(0, 1, is_write=True)  # dirty it
        assert cache.flush() == 1

    def test_no_write_allocate_bypasses(self):
        cache = make_cache(write_allocate=False)
        cache.access(0, 64, is_write=True)
        assert not cache.contains(0)

    def test_flush_empties(self):
        cache = make_cache()
        cache.access(0, 256)
        assert cache.flush() == 0   # clean lines: no writebacks
        assert cache.resident_lines == 0

    def test_invalidate_single_line(self):
        cache = make_cache()
        cache.access(0, 64)
        assert cache.invalidate(32)       # same line as addr 0
        assert not cache.invalidate(32)   # already gone
        assert not cache.contains(0)
