"""System address map and interleaving."""

import pytest

from repro.config import MTIA_V1
from repro.memory.address_map import (AddressMap, AddressRange,
                                      INTERLEAVE_BYTES, LOCAL_BASE, SRAM_BASE)


@pytest.fixture
def amap():
    return AddressMap(MTIA_V1)


class TestAddressRange:
    def test_contains(self):
        r = AddressRange(100, 50)
        assert 100 in r and 149 in r
        assert 99 not in r and 150 not in r

    def test_offset(self):
        r = AddressRange(100, 50)
        assert r.offset(120) == 20
        with pytest.raises(IndexError):
            r.offset(150)


class TestRegions:
    def test_dram_region(self, amap):
        assert amap.region(0) == "dram"
        assert amap.region(MTIA_V1.dram.capacity_bytes - 1) == "dram"

    def test_sram_region(self, amap):
        assert amap.region(SRAM_BASE) == "sram"
        assert amap.region(SRAM_BASE + MTIA_V1.sram.capacity_bytes - 1) == "sram"

    def test_local_region(self, amap):
        assert amap.region(LOCAL_BASE) == "local"
        assert amap.local_pe_index(LOCAL_BASE) == 0
        assert amap.local_pe_index(amap.local_address(63, 100)) == 63

    def test_unmapped_hole_raises(self, amap):
        with pytest.raises(IndexError):
            amap.region(MTIA_V1.dram.capacity_bytes + 1000)

    def test_local_pe_index_rejects_non_local(self, amap):
        with pytest.raises(IndexError):
            amap.local_pe_index(0)

    def test_local_address_roundtrip(self, amap):
        addr = amap.local_address(5, 0x40)
        assert amap.region(addr) == "local"
        assert amap.local_ranges[5].offset(addr) == 0x40


class TestInterleaving:
    def test_dram_channels_rotate_per_line(self, amap):
        channels = [amap.dram_channel(i * INTERLEAVE_BYTES)
                    for i in range(MTIA_V1.dram.num_channels)]
        assert sorted(channels) == list(range(MTIA_V1.dram.num_channels))

    def test_same_line_same_channel(self, amap):
        assert amap.dram_channel(0) == amap.dram_channel(INTERLEAVE_BYTES - 1)

    def test_controller_groups_channels(self, amap):
        per = MTIA_V1.dram.channels_per_controller
        for ch in range(MTIA_V1.dram.num_channels):
            addr = ch * INTERLEAVE_BYTES
            assert amap.dram_controller(addr) == amap.dram_channel(addr) // per

    def test_sram_slices_rotate(self, amap):
        slices = {amap.sram_slice(SRAM_BASE + i * INTERLEAVE_BYTES)
                  for i in range(MTIA_V1.sram.num_slices)}
        assert slices == set(range(MTIA_V1.sram.num_slices))

    def test_cache_slice_stays_with_controller(self, amap):
        """In cache mode each slice group caches one controller's
        addresses (Section 3.4)."""
        per = MTIA_V1.sram.slices_per_controller
        for i in range(256):
            addr = i * INTERLEAVE_BYTES
            ctrl = amap.dram_controller(addr)
            s = amap.cache_slice_for_dram(addr)
            assert s // per == ctrl

    def test_cache_slices_spread_within_group(self, amap):
        per = MTIA_V1.sram.slices_per_controller
        seen = set()
        for i in range(0, 4096):
            addr = i * INTERLEAVE_BYTES
            if amap.dram_controller(addr) == 0:
                seen.add(amap.cache_slice_for_dram(addr))
        assert seen == set(range(per))

    def test_split_by_interleave_covers_range(self, amap):
        fragments = list(amap.split_by_interleave(100, 300))
        assert sum(size for _, size in fragments) == 300
        assert fragments[0] == (100, INTERLEAVE_BYTES - 100 % INTERLEAVE_BYTES)
        # fragments are contiguous
        for (a1, s1), (a2, _) in zip(fragments, fragments[1:]):
            assert a1 + s1 == a2

    def test_split_aligned_access(self, amap):
        fragments = list(amap.split_by_interleave(0, 4 * INTERLEAVE_BYTES))
        assert len(fragments) == 4
        assert all(size == INTERLEAVE_BYTES for _, size in fragments)
