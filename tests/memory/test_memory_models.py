"""DRAM, SRAM, local memory, and the memory-system facade."""

import numpy as np
import pytest

from repro.config import MTIA_V1
from repro.memory import (DRAMModel, LocalMemory, MemorySystem, SRAMMode,
                          SRAMModel)
from repro.memory.address_map import AddressMap, SRAM_BASE
from repro.sim import Engine


@pytest.fixture
def memsys_cache(engine):
    return MemorySystem(engine, MTIA_V1, sram_mode=SRAMMode.CACHE)


@pytest.fixture
def memsys_scratch(engine):
    return MemorySystem(engine, MTIA_V1, sram_mode=SRAMMode.SCRATCHPAD)


class TestDRAM:
    def test_functional_roundtrip(self, engine, memsys_cache, rng):
        dram = memsys_cache.dram
        data = rng.integers(0, 256, 1000, dtype=np.uint8)

        def proc():
            yield from dram.write(4096, data)
            out = yield from dram.read(4096, 1000)
            return out

        out = engine.run_process(proc())
        np.testing.assert_array_equal(out, data)

    def test_read_takes_latency_plus_bandwidth(self, engine, memsys_cache):
        dram = memsys_cache.dram

        def proc():
            yield from dram.read(0, 64)
            return engine.now

        elapsed = engine.run_process(proc())
        assert elapsed >= MTIA_V1.dram.access_latency

    def test_streaming_spreads_over_controllers(self, engine, memsys_cache):
        dram = memsys_cache.dram

        def proc():
            yield from dram.read(0, 1 << 20)

        engine.run_process(proc())
        used = [c.total_units for c in dram.controllers]
        assert all(u > 0 for u in used)
        assert max(used) / min(used) < 1.1   # near-even interleave

    def test_peak_bandwidth_approached_under_load(self, engine, memsys_cache):
        dram = memsys_cache.dram
        nbytes = 8 << 20

        def proc():
            yield from dram.read(0, nbytes)
            return engine.now

        cycles = engine.run_process(proc())
        achieved = nbytes / cycles   # bytes per cycle
        peak = MTIA_V1.dram.bytes_per_cycle(MTIA_V1.frequency_ghz)
        assert achieved > 0.9 * peak

    def test_stats_track_bytes(self, engine, memsys_cache):
        dram = memsys_cache.dram

        def proc():
            yield from dram.write(0, np.zeros(128, np.uint8))
            yield from dram.read(0, 256)

        engine.run_process(proc())
        assert dram.stats["write_bytes"] == 128
        assert dram.stats["read_bytes"] == 256


class TestSRAMScratchpad:
    def test_roundtrip(self, engine, memsys_scratch, rng):
        sram = memsys_scratch.sram
        data = rng.integers(0, 256, 512, dtype=np.uint8)

        def proc():
            yield from sram.write(SRAM_BASE + 100, data)
            out = yield from sram.read(SRAM_BASE + 100, 512)
            return out

        np.testing.assert_array_equal(engine.run_process(proc()), data)

    def test_scratchpad_access_in_cache_mode_rejected(self, engine,
                                                      memsys_cache):
        def proc():
            yield from memsys_cache.sram.read(SRAM_BASE, 64)

        with pytest.raises(RuntimeError, match="cache mode"):
            engine.run_process(proc())

    def test_nonuniform_latency_by_position(self, memsys_scratch):
        """Perimeter placement: different PEs see different slice
        latencies (Section 7, "Memory Latency")."""
        sram = memsys_scratch.sram
        corner = sram._slice_latency(0, (0, 0))
        far = sram._slice_latency(0, (7, 7))
        assert far > corner
        assert corner >= MTIA_V1.sram.base_latency

    def test_faster_than_dram_for_same_bytes(self, memsys_scratch):
        engine = memsys_scratch.engine
        nbytes = 1 << 20

        def via_sram():
            yield from memsys_scratch.sram.read(SRAM_BASE, nbytes)
            return engine.now

        start = engine.now
        t_sram = engine.run_process(via_sram()) - start

        engine2 = Engine()
        memsys2 = MemorySystem(engine2, MTIA_V1, sram_mode=SRAMMode.SCRATCHPAD)

        def via_dram():
            yield from memsys2.dram.read(0, nbytes)
            return engine2.now

        t_dram = engine2.run_process(via_dram())
        assert t_sram < t_dram


class TestSRAMCacheMode:
    def test_first_access_misses_then_hits(self, engine, memsys_cache):
        sram = memsys_cache.sram

        def proc():
            yield from sram.cached_access(0, 4096, is_write=False)
            yield from sram.cached_access(0, 4096, is_write=False)

        engine.run_process(proc())
        assert sram.stats["miss_lines"] == 64
        assert sram.stats["hit_lines"] == 64
        assert sram.hit_rate() == pytest.approx(0.5)

    def test_hits_are_faster_than_misses(self, engine, memsys_cache):
        sram = memsys_cache.sram

        def proc():
            t0 = engine.now
            yield from sram.cached_access(0, 1 << 16, is_write=False)
            t_miss = engine.now - t0
            t0 = engine.now
            yield from sram.cached_access(0, 1 << 16, is_write=False)
            return t_miss, engine.now - t0

        t_miss, t_hit = engine.run_process(proc())
        assert t_hit < t_miss

    def test_data_correct_through_cache(self, engine, memsys_cache, rng):
        data = rng.integers(0, 256, 2048, dtype=np.uint8)
        memsys_cache.dram.poke(8192, data)

        def proc():
            out = yield from memsys_cache.sram.cached_access(
                8192, 2048, is_write=False)
            return out

        np.testing.assert_array_equal(engine.run_process(proc()), data)

    def test_flush_caches(self, engine, memsys_cache):
        def proc():
            yield from memsys_cache.sram.cached_access(0, 4096, False)

        engine.run_process(proc())
        memsys_cache.sram.flush_caches()
        assert all(c.resident_lines == 0 for c in memsys_cache.sram.caches)


class TestLocalMemory:
    def test_roundtrip(self, engine, rng):
        lm = LocalMemory(engine, MTIA_V1.local_memory)
        data = rng.integers(0, 256, 128, dtype=np.uint8)

        def proc():
            yield from lm.write(64, data)
            out = yield from lm.read(64, 128)
            return out

        np.testing.assert_array_equal(engine.run_process(proc()), data)

    def test_bounds_check(self, engine):
        lm = LocalMemory(engine, MTIA_V1.local_memory)
        with pytest.raises(IndexError):
            lm.peek(MTIA_V1.local_memory.capacity_bytes - 4, 8)

    def test_peek_array(self, engine):
        lm = LocalMemory(engine, MTIA_V1.local_memory)
        lm.poke(0, np.arange(6, dtype=np.int32))
        out = lm.peek_array(0, (2, 3), np.int32)
        np.testing.assert_array_equal(out, np.arange(6).reshape(2, 3))

    def test_access_charges_latency(self, engine):
        lm = LocalMemory(engine, MTIA_V1.local_memory)

        def proc():
            yield from lm.read(0, 64)
            return engine.now

        assert engine.run_process(proc()) >= MTIA_V1.local_memory.access_latency


class TestMemorySystemFacade:
    def test_region_dispatch(self, engine, memsys_scratch, rng):
        lm = LocalMemory(engine, MTIA_V1.local_memory)
        memsys_scratch.register_local_memory(3, lm)
        local_addr = memsys_scratch.address_map.local_address(3, 0x100)
        data = rng.integers(0, 256, 64, dtype=np.uint8)

        def proc():
            yield from memsys_scratch.write(local_addr, data)
            out = yield from memsys_scratch.read(local_addr, 64)
            return out

        np.testing.assert_array_equal(engine.run_process(proc()), data)
        np.testing.assert_array_equal(lm.peek(0x100, 64), data)

    def test_unregistered_local_memory_raises(self, engine, memsys_scratch):
        addr = memsys_scratch.address_map.local_address(9)

        def proc():
            yield from memsys_scratch.read(addr, 4)

        with pytest.raises(IndexError, match="no local memory"):
            engine.run_process(proc())

    def test_2d_read_gathers_strided_rows(self, engine, memsys_cache):
        matrix = np.arange(64, dtype=np.uint8).reshape(8, 8)
        memsys_cache.poke(0, matrix)

        def proc():
            # read a 4x3 sub-block at row 2, col 1
            out = yield from memsys_cache.read_2d(
                2 * 8 + 1, rows=4, row_bytes=3, stride=8)
            return out

        out = engine.run_process(proc()).reshape(4, 3)
        np.testing.assert_array_equal(out, matrix[2:6, 1:4])

    def test_2d_write_scatters(self, engine, memsys_cache):
        block = np.arange(12, dtype=np.uint8).reshape(4, 3)

        def proc():
            yield from memsys_cache.write_2d(
                1, block, rows=4, row_bytes=3, stride=8)

        engine.run_process(proc())
        out = memsys_cache.peek(0, 32).reshape(4, 8)
        np.testing.assert_array_equal(out[:, 1:4], block)

    def test_2d_write_size_mismatch_rejected(self, engine, memsys_cache):
        def proc():
            yield from memsys_cache.write_2d(0, np.zeros(10, np.uint8),
                                             rows=4, row_bytes=3, stride=8)

        with pytest.raises(ValueError, match="mismatch"):
            engine.run_process(proc())

    def test_peek_array_sram(self, memsys_scratch):
        values = np.arange(16, dtype=np.float32)
        memsys_scratch.poke(SRAM_BASE, values)
        out = memsys_scratch.peek_array(SRAM_BASE, (4, 4), np.float32)
        np.testing.assert_array_equal(out, values.reshape(4, 4))
