"""Bench suite: nonzero cycles everywhere, trajectory aggregation."""

import json

import pytest

from repro.bench import (BENCHES, METRICS, TRAJECTORY_SCHEMA_VERSION,
                         compare, latest_baseline, load_trajectory, main,
                         render_trajectory, run_bench)


@pytest.fixture(scope="module")
def payload():
    return run_bench(label="test")


class TestWorkloads:
    def test_every_workload_reports_nonzero_cycles(self, payload):
        """Regression: the dlrm analytical path used to report
        ``sim_cycles: 0.0``, which broke trajectory comparisons."""
        for name, result in payload["workloads"].items():
            assert result["sim_cycles"] > 0, f"{name} has zero cycles"

    def test_headline_metrics_present_and_finite(self, payload):
        for name, result in payload["workloads"].items():
            for metric in METRICS:
                value = result[metric]
                assert isinstance(value, float), f"{name}.{metric}"
                assert value >= 0.0
            assert result["latency_us"] > 0
            assert isinstance(result["extras"], dict)

    def test_all_workloads_ran(self, payload):
        assert set(payload["workloads"]) == set(BENCHES)
        assert payload["label"] == "test"

    def test_dlrm_cycles_are_modelled_from_latency(self, payload):
        from repro.config import MTIA_V1
        dlrm = payload["workloads"]["dlrm"]
        assert dlrm["extras"]["cycles_modelled"] is True
        expect = dlrm["latency_us"] * 1e-6 * MTIA_V1.frequency_ghz * 1e9
        assert dlrm["sim_cycles"] == pytest.approx(expect, rel=1e-9)

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            run_bench(workloads=["nope"])

    def test_engine_extras_on_every_workload(self, payload):
        """Regression: the dlrm row used to carry no DES throughput
        counters, so the trajectory could not track kernel speed for
        graph workloads.  Every workload now reports them."""
        for name, result in payload["workloads"].items():
            extras = result["extras"]
            assert extras["events_processed"] > 0, name
            assert extras["events_per_sec_wall"] > 0, name
            assert extras["peak_heap_size"] > 0, name

    def test_dlrm_reports_graph_cache_walls(self, payload):
        extras = payload["workloads"]["dlrm"]["extras"]
        assert extras["executor_cold_wall_s"] > 0
        assert extras["executor_warm_wall_s"] > 0
        assert extras["graph_cache_warm_speedup"] > 1.0


class TestCompare:
    def test_detects_cycle_regression(self, payload):
        worse = json.loads(json.dumps(payload))
        worse["workloads"]["fc"]["sim_cycles"] *= 1.5
        lines = compare(worse, payload, threshold=0.10)
        assert any("fc.sim_cycles" in line for line in lines)

    def test_within_threshold_is_clean(self, payload):
        assert compare(payload, payload, threshold=0.10) == []


class TestLatestBaseline:
    def write_bench(self, tmp_path, label, created=0.0):
        path = tmp_path / f"BENCH_{label}.json"
        path.write_text(json.dumps({
            "schema_version": 1, "label": label, "created_unix": created,
            "workloads": {"fc": {"latency_us": 10.0,
                                 "achieved_tflops": 1.0,
                                 "sim_cycles": 100.0,
                                 "wall_time_s": 0.1, "extras": {}}}}))
        return path

    def test_picks_highest_pr_number_not_mtime(self, tmp_path):
        self.write_bench(tmp_path, "pr8", created=900.0)
        self.write_bench(tmp_path, "pr10", created=50.0)
        assert latest_baseline(str(tmp_path)).endswith("BENCH_pr10.json")

    def test_excludes_current_label(self, tmp_path):
        self.write_bench(tmp_path, "pr8")
        self.write_bench(tmp_path, "pr9")
        path = latest_baseline(str(tmp_path), exclude_label="pr9")
        assert path.endswith("BENCH_pr8.json")

    def test_none_when_no_eligible_baseline(self, tmp_path):
        assert latest_baseline(str(tmp_path)) is None
        self.write_bench(tmp_path, "pr9")
        assert latest_baseline(str(tmp_path),
                               exclude_label="pr9") is None

    def test_repo_latest_prior_to_this_pr_is_pr8(self):
        path = latest_baseline(".", exclude_label="pr9")
        assert path.endswith("BENCH_pr8.json")

    def test_cli_compare_latest(self, tmp_path, capsys):
        self.write_bench(tmp_path, "pr1")
        assert main(["fc", "--label", "smoke", "-o", str(tmp_path),
                     "--compare", "latest"]) == 0
        out = capsys.readouterr().out
        assert "BENCH_pr1.json" in out


class TestTrajectory:
    def write_bench(self, tmp_path, label, created, cycles):
        path = tmp_path / f"BENCH_{label}.json"
        path.write_text(json.dumps({
            "schema_version": 1, "label": label,
            "created_unix": created,
            "workloads": {"fc": {"latency_us": 10.0,
                                 "achieved_tflops": 1.0,
                                 "sim_cycles": cycles,
                                 "wall_time_s": 0.1,
                                 "extras": {}}}}))
        return path

    def test_rows_ordered_by_creation_time(self, tmp_path):
        self.write_bench(tmp_path, "pr5", created=200.0, cycles=90.0)
        self.write_bench(tmp_path, "pr4", created=100.0, cycles=100.0)
        trajectory = load_trajectory(str(tmp_path))
        assert trajectory["trajectory_schema_version"] == \
            TRAJECTORY_SCHEMA_VERSION
        assert trajectory["runs"] == 2
        assert [r["label"] for r in trajectory["rows"]] == ["pr4", "pr5"]
        for row in trajectory["rows"]:
            assert set(METRICS) <= set(row)

    def test_pr_labels_order_by_number_not_timestamp(self, tmp_path):
        """A stale clock must not reorder the PR sequence."""
        self.write_bench(tmp_path, "pr10", created=50.0, cycles=80.0)
        self.write_bench(tmp_path, "pr8", created=900.0, cycles=90.0)
        self.write_bench(tmp_path, "nightly", created=10.0, cycles=70.0)
        trajectory = load_trajectory(str(tmp_path))
        assert [r["label"] for r in trajectory["rows"]] == \
            ["pr8", "pr10", "nightly"]

    def test_gaps_in_pr_sequence_reported(self, tmp_path):
        self.write_bench(tmp_path, "pr3", created=100.0, cycles=90.0)
        self.write_bench(tmp_path, "pr6", created=400.0, cycles=80.0)
        trajectory = load_trajectory(str(tmp_path))
        assert trajectory["missing_labels"] == ["pr4", "pr5"]
        assert trajectory["runs"] == 2
        text = render_trajectory(trajectory)
        assert "pr4, pr5" in text

    def test_corrupt_bench_file_skipped_not_fatal(self, tmp_path):
        self.write_bench(tmp_path, "pr4", created=100.0, cycles=90.0)
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        (tmp_path / "BENCH_empty.json").write_text(
            json.dumps({"label": "empty"}))
        trajectory = load_trajectory(str(tmp_path))
        assert [r["label"] for r in trajectory["rows"]] == ["pr4"]
        skipped = {item["file"] for item in trajectory["skipped"]}
        assert skipped == {"BENCH_bad.json", "BENCH_empty.json"}
        assert "skipped BENCH_bad.json" in render_trajectory(trajectory)

    def test_repo_trajectory_includes_this_pr(self):
        trajectory = load_trajectory(".")
        labels = {r["label"] for r in trajectory["rows"]}
        assert "pr6" in labels
        assert "pr8" in labels
        # pr5 and pr7 landed without bench files; the trajectory must
        # report the gap instead of silently renumbering the sequence
        assert {"pr5", "pr7"} <= set(trajectory["missing_labels"])
        assert trajectory["skipped"] == []
        # older BENCH files keep the historical zero-cycle dlrm rows;
        # from this PR on every workload must carry real cycles
        for row in trajectory["rows"]:
            if row["label"] == "pr6":
                assert row["sim_cycles"] > 0, (
                    f"{row['file']}:{row['workload']} has zero cycles")

    def test_render_and_cli(self, tmp_path, capsys):
        self.write_bench(tmp_path, "pr4", created=100.0, cycles=100.0)
        trajectory = load_trajectory(str(tmp_path))
        text = render_trajectory(trajectory)
        assert "pr4" in text and "fc" in text

        assert main(["--trajectory", "-o", str(tmp_path)]) == 0
        assert "pr4" in capsys.readouterr().out

        assert main(["--trajectory", "--json", "-o", str(tmp_path)]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["runs"] == 1
