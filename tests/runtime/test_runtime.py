"""Runtime layer: tensors, device, streams, executor."""

import numpy as np
import pytest

from repro.config import MTIA_V1
from repro.memory import SRAMMode
from repro.runtime import DeviceSet, GraphExecutor, MTIADevice
from repro.runtime.tensor import TensorMeta


@pytest.fixture
def device():
    return MTIADevice()


class TestTensorMeta:
    def test_numel_nbytes(self):
        meta = TensorMeta((4, 8), "fp32")
        assert meta.numel == 32
        assert meta.nbytes == 128

    def test_scalar_shape(self):
        assert TensorMeta((), "int8").numel == 1

    def test_with_shape(self):
        meta = TensorMeta((4, 8), "int8", scale=0.5)
        new = meta.with_shape((2, 16))
        assert new.shape == (2, 16)
        assert new.scale == 0.5


class TestDevice:
    def test_tensor_roundtrip(self, device, rng):
        data = rng.standard_normal((8, 8)).astype(np.float32)
        tensor = device.from_numpy(data, name="x")
        np.testing.assert_array_equal(tensor.to_host(), data)

    def test_from_numpy_charges_pcie_time(self, device, rng):
        data = rng.standard_normal((1024, 1024)).astype(np.float32)
        device.from_numpy(data)
        device.synchronize()
        # 4 MB over 16 GB/s at 0.8 GHz = 4e6/20 = 200k cycles
        assert device.cycles >= data.nbytes / 20 * 0.99

    def test_sram_region_allocation(self):
        device = MTIADevice(sram_mode=SRAMMode.SCRATCHPAD)
        tensor = device.empty((64,), "fp32", region="sram")
        assert tensor.region == "sram"

    def test_unknown_region_rejected(self, device):
        with pytest.raises(ValueError, match="region"):
            device.empty((4,), "fp32", region="l4")

    def test_shape_mismatch_on_from_host(self, device, rng):
        tensor = device.empty((4, 4), "fp32")
        with pytest.raises(ValueError, match="shape"):
            tensor.from_host(rng.standard_normal((5, 5)).astype(np.float32))

    def test_virtual_clock_advance(self, device):
        device.advance(1000)
        assert device.cycles >= 1000
        with pytest.raises(ValueError):
            device.advance(-1)

    def test_seconds(self, device):
        device.advance(8e8)
        assert device.seconds() == pytest.approx(1.0, rel=1e-3)


class TestStreams:
    def test_in_order_within_stream(self, device):
        s = device.stream("s")
        e1 = s.enqueue("a", 100)
        e2 = s.enqueue("b", 50)
        assert e2.at_cycles == e1.at_cycles + 50

    def test_streams_overlap(self, device):
        s1, s2 = device.stream(), device.stream()
        e1 = s1.enqueue("x", 100)
        e2 = s2.enqueue("y", 100)
        assert e1.at_cycles == e2.at_cycles == 100

    def test_wait_event_serialises_across_streams(self, device):
        s1, s2 = device.stream(), device.stream()
        e1 = s1.enqueue("produce", 100)
        s2.wait_event(e1)
        e2 = s2.enqueue("consume", 10)
        assert e2.at_cycles == 110

    def test_synchronize_advances_clock(self, device):
        s = device.stream()
        s.enqueue("work", 500)
        s.synchronize()
        assert device.cycles >= 500

    def test_event_query_and_elapsed(self, device):
        s = device.stream()
        e1 = s.record_event()
        e2 = s.enqueue("w", 42)
        assert e1.elapsed_until(e2) == 42
        assert not e2.query()
        s.synchronize()
        assert e2.query()


class TestDeviceSet:
    def test_p2p_copy_moves_data_and_time(self, rng):
        devices = DeviceSet(2)
        data = rng.standard_normal((256, 256)).astype(np.float32)
        src = devices[0].from_numpy(data, name="t")
        dst = devices.p2p_copy(src, devices[1])
        np.testing.assert_array_equal(dst.to_host(), data)
        devices.synchronize()
        assert devices[1].cycles > 0

    def test_needs_at_least_one_device(self):
        with pytest.raises(ValueError):
            DeviceSet(0)

    def test_makespan(self):
        devices = DeviceSet(2)
        devices[0].advance(100)
        devices[1].advance(300)
        assert devices.cycles == 300


class TestExecutor:
    def _mlp(self):
        from repro.compiler.ir import GraphBuilder
        b = GraphBuilder("mlp")
        x = b.input((16, 32), name="x")
        w1 = b.weight((64, 32), name="w1")
        h = b.add("fc", (x.name, w1.name), name="h")
        a = b.add("relu", (h.name,), name="a")
        w2 = b.weight((8, 64), name="w2")
        out = b.add("fc", (a.name, w2.name), name="out")
        return b.output(out.name)

    def test_functional_result_matches_numpy(self, rng):
        g = self._mlp()
        x = rng.standard_normal((16, 32)).astype(np.float32)
        w1 = rng.standard_normal((64, 32)).astype(np.float32)
        w2 = rng.standard_normal((8, 64)).astype(np.float32)
        outputs, report = GraphExecutor(mode="eager").run(
            g, {"x": x}, {"w1": w1, "w2": w2})
        ref = np.maximum(x @ w1.T, 0) @ w2.T
        np.testing.assert_allclose(outputs["out"], ref, rtol=1e-4)
        assert report.seconds > 0

    def test_graph_mode_faster_than_eager(self, rng):
        x = rng.standard_normal((16, 32)).astype(np.float32)
        _, eager = GraphExecutor(mode="eager").run(self._mlp(), {"x": x})
        _, graph = GraphExecutor(mode="graph").run(self._mlp(), {"x": x})
        assert graph.seconds <= eager.seconds

    def test_missing_feed_raises(self):
        with pytest.raises(KeyError, match="missing feed"):
            GraphExecutor().run(self._mlp(), {})

    def test_unbound_weights_default_to_zero(self, rng):
        g = self._mlp()
        x = rng.standard_normal((16, 32)).astype(np.float32)
        outputs, _ = GraphExecutor(mode="eager").run(g, {"x": x})
        np.testing.assert_array_equal(outputs["out"], np.zeros((16, 8)))

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            GraphExecutor(mode="jit")

    def test_report_categories(self, rng):
        g = self._mlp()
        x = rng.standard_normal((16, 32)).astype(np.float32)
        _, report = GraphExecutor(mode="graph").run(g, {"x": x})
        assert "fc" in report.category_seconds
        fractions = report.category_fractions
        assert sum(fractions.values()) == pytest.approx(1.0)
