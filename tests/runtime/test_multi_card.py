"""Multi-card partitioned inference estimation."""

import numpy as np
import pytest

from repro.compiler.fusion import fuse_graph
from repro.eval.machines import MACHINES
from repro.models.configs import MODEL_ZOO
from repro.models.dlrm import build_dlrm_graph
from repro.runtime.multi_card import estimate_failover, estimate_multi_card


@pytest.fixture(scope="module")
def hc_graph():
    graph = build_dlrm_graph(MODEL_ZOO["HC"], 64)
    fuse_graph(graph)
    return graph


class TestMultiCardEstimate:
    def test_hc_needs_many_cards(self, hc_graph):
        est = estimate_multi_card(hc_graph, MACHINES["mtia"])
        assert est.cards >= 23          # 725 GB / 32 GB
        assert est.total_seconds > 0

    def test_phases_compose(self, hc_graph):
        est = estimate_multi_card(hc_graph, MACHINES["mtia"])
        assert est.total_seconds == pytest.approx(
            est.sparse_seconds + est.gather_seconds + est.dense_seconds)

    def test_gather_traffic_counted(self, hc_graph):
        est = estimate_multi_card(hc_graph, MACHINES["mtia"])
        assert est.gather_bytes > 0
        # gather time = bytes over the 12.8 GB/s PCIe P2P link
        assert est.gather_seconds == pytest.approx(
            est.gather_bytes / 12.8e9)

    def test_faster_interconnect_shrinks_gather(self, hc_graph):
        slow = estimate_multi_card(hc_graph, MACHINES["mtia"],
                                   p2p_gbs=12.8)
        fast = estimate_multi_card(hc_graph, MACHINES["mtia"],
                                   p2p_gbs=80.0)   # NVLink-class
        assert fast.gather_seconds < slow.gather_seconds / 4
        assert fast.total_seconds < slow.total_seconds

    def test_single_card_model_has_no_gather(self):
        graph = build_dlrm_graph(MODEL_ZOO["LC2"], 64)
        fuse_graph(graph)
        est = estimate_multi_card(graph, MACHINES["mtia"])
        assert est.cards == 1
        assert est.gather_bytes == 0
        assert est.gather_seconds == 0.0

    def test_sparse_phase_shrinks_with_more_cards(self, hc_graph):
        big_cards = estimate_multi_card(hc_graph, MACHINES["mtia"],
                                        card_capacity_bytes=16 * 10 ** 9)
        few_cards = estimate_multi_card(hc_graph, MACHINES["mtia"],
                                        card_capacity_bytes=128 * 10 ** 9)
        assert big_cards.cards > few_cards.cards
        assert big_cards.sparse_seconds <= few_cards.sparse_seconds

    def test_scaling_efficiency_below_one(self, hc_graph):
        est = estimate_multi_card(hc_graph, MACHINES["mtia"])
        assert 0.0 < est.scaling_efficiency < 1.0

    def test_one_card_is_the_single_card_baseline(self):
        """With everything resident on one card there is no gather and
        no parallel speedup to dilute: efficiency is exactly 1."""
        graph = build_dlrm_graph(MODEL_ZOO["LC2"], 64)
        fuse_graph(graph)
        est = estimate_multi_card(graph, MACHINES["mtia"])
        assert est.cards == 1
        assert est.scaling_efficiency == pytest.approx(1.0)
        assert est.total_seconds == pytest.approx(
            est.sparse_seconds + est.dense_seconds)

    def test_scaling_efficiency_monotone_in_card_count(self, hc_graph):
        """Splitting the same model over more cards only adds overhead
        (gather traffic, idle dense cards), so efficiency must fall as
        shrinking card memory forces the partitioner to fan out."""
        estimates = [
            estimate_multi_card(hc_graph, MACHINES["mtia"],
                                card_capacity_bytes=cap * 10 ** 9)
            for cap in (128, 64, 32, 16)]
        cards = [e.cards for e in estimates]
        assert cards == sorted(cards) and cards[0] < cards[-1]
        efficiencies = [e.scaling_efficiency for e in estimates]
        assert efficiencies == sorted(efficiencies, reverse=True)


class TestFailoverEstimate:
    def capacity(self):
        """Sized so HC lands on exactly 4 cards with headroom."""
        from repro.models.configs import model_size_bytes
        return int(model_size_bytes(MODEL_ZOO["HC"]) / 3.5)

    def test_one_card_loss_rehomed_to_survivors(self, hc_graph):
        est = estimate_failover(hc_graph, MACHINES["mtia"],
                                failed_cards=[1],
                                card_capacity_bytes=self.capacity())
        assert est.degraded.cards == est.baseline.cards - 1
        assert est.failed_cards == (1,)
        assert est.moved_weight_bytes > 0
        # the orphaned shards slow the survivors down, never speed
        # them up
        assert est.slowdown >= 1.0
        assert est.degraded.total_seconds >= est.baseline.total_seconds

    def test_dense_owner_loss_moves_dense_pipeline(self, hc_graph):
        # card 0 owns the dense pipeline in the first-fit partitioning
        est = estimate_failover(hc_graph, MACHINES["mtia"],
                                failed_cards=[0],
                                card_capacity_bytes=self.capacity())
        assert est.degraded.cards == est.baseline.cards - 1
        assert est.degraded.dense_seconds > 0
        assert est.slowdown >= 1.0

    def test_to_dict_is_json_ready(self, hc_graph):
        import json
        est = estimate_failover(hc_graph, MACHINES["mtia"],
                                failed_cards=[1],
                                card_capacity_bytes=self.capacity())
        data = json.loads(json.dumps(est.to_dict()))
        assert data["cards_before"] == data["cards_after"] + 1
        assert data["slowdown"] == pytest.approx(
            data["degraded_seconds"] / data["baseline_seconds"])
        assert data["efficiency_drop"] == pytest.approx(
            data["baseline_efficiency"] - data["degraded_efficiency"])

    def test_unknown_failed_card_rejected(self, hc_graph):
        with pytest.raises(ValueError, match="not in the"):
            estimate_failover(hc_graph, MACHINES["mtia"],
                              failed_cards=[99],
                              card_capacity_bytes=self.capacity())

    def test_all_cards_failed_rejected(self):
        graph = build_dlrm_graph(MODEL_ZOO["LC2"], 64)
        fuse_graph(graph)
        with pytest.raises(RuntimeError, match="all cards failed"):
            estimate_failover(graph, MACHINES["mtia"], failed_cards=[0])

    def test_losing_more_cards_hurts_more(self, hc_graph):
        one = estimate_failover(hc_graph, MACHINES["mtia"],
                                failed_cards=[1],
                                card_capacity_bytes=self.capacity())
        two = estimate_failover(hc_graph, MACHINES["mtia"],
                                failed_cards=[1, 2],
                                card_capacity_bytes=self.capacity())
        assert two.moved_weight_bytes > one.moved_weight_bytes
        assert two.slowdown >= one.slowdown
