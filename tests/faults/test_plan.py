"""FaultPlan: canonical ordering, seeded generation, serialisation."""

import pytest

from repro.faults import (FAULT_KINDS, HARDWARE_KINDS, PERMANENT,
                          SERVING_KINDS, FaultEvent, FaultPlan, FaultProfile)


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(start=0.0, kind="dram.meltdown")

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(start=-1.0, kind="pe.lockup")
        with pytest.raises(ValueError):
            FaultEvent(start=0.0, kind="pe.lockup", duration=-5.0)

    def test_end_and_domain(self):
        hw = FaultEvent(start=10.0, kind="sram.slice_stall", duration=5.0)
        assert hw.end == 15.0
        assert hw.domain == "hardware"
        sv = FaultEvent(start=0.0, kind="card.failure", duration=PERMANENT)
        assert sv.domain == "serving"

    def test_every_kind_has_a_domain(self):
        for kind in FAULT_KINDS:
            event = FaultEvent(start=0.0, kind=kind)
            expected = ("serving" if kind in SERVING_KINDS else "hardware")
            assert event.domain == expected
        assert set(FAULT_KINDS) == set(HARDWARE_KINDS) | set(SERVING_KINDS)


class TestCanonicalOrder:
    def test_events_sorted_on_construction(self):
        late = FaultEvent(start=100.0, kind="pe.lockup", duration=1.0)
        early = FaultEvent(start=5.0, kind="dram.ecc_correctable",
                           magnitude=40.0)
        plan = FaultPlan(events=(late, early))
        assert plan.events == (early, late)

    def test_same_events_any_order_compare_equal(self):
        a = FaultEvent(start=1.0, kind="pe.slowdown", magnitude=5.0)
        b = FaultEvent(start=1.0, kind="noc.retransmit", magnitude=30.0)
        c = FaultEvent(start=9.0, kind="card.slowdown", magnitude=2.0)
        assert FaultPlan(events=(c, a, b)) == FaultPlan(events=(b, c, a))

    def test_extended_restores_canonical_order(self):
        base = FaultPlan(events=(
            FaultEvent(start=50.0, kind="pe.lockup", duration=2.0),))
        grown = base.extended([FaultEvent(start=1.0, kind="sram.slice_stall",
                                          magnitude=10.0)])
        assert grown.events[0].start == 1.0
        assert len(grown) == 2
        assert len(base) == 1   # immutable: the original is untouched


class TestDomainSplit:
    def test_hardware_and_serving_partition(self):
        plan = FaultPlan(events=(
            FaultEvent(start=0.0, kind="dram.ecc_correctable",
                       magnitude=40.0),
            FaultEvent(start=0.0, kind="card.failure", duration=10.0),
            FaultEvent(start=5.0, kind="noc.link_degrade", magnitude=0.5),
        ))
        assert len(plan.hardware_events) == 2
        assert len(plan.serving_events) == 1
        assert (set(plan.hardware_events) | set(plan.serving_events)
                == set(plan.events))

    def test_counts_by_kind(self):
        plan = FaultPlan(events=(
            FaultEvent(start=0.0, kind="pe.lockup", duration=1.0),
            FaultEvent(start=2.0, kind="pe.lockup", duration=1.0),
            FaultEvent(start=0.0, kind="card.slowdown", magnitude=2.0),
        ))
        assert plan.counts_by_kind() == {"pe.lockup": 2, "card.slowdown": 1}

    def test_empty_plan(self):
        assert FaultPlan().empty
        assert len(FaultPlan()) == 0
        assert not FaultPlan(events=(
            FaultEvent(start=0.0, kind="pe.lockup"),)).empty


class TestGenerate:
    def test_same_seed_same_plan(self):
        profile = FaultProfile(rates={k: 2.0 for k in FAULT_KINDS})
        assert (FaultPlan.generate(7, profile)
                == FaultPlan.generate(7, profile))

    def test_different_seeds_differ(self):
        profile = FaultProfile(rates={k: 3.0 for k in FAULT_KINDS})
        plans = {FaultPlan.generate(s, profile).events for s in range(8)}
        assert len(plans) > 1

    def test_kinds_restriction_respected(self):
        plan = FaultPlan.generate(
            3, FaultProfile(rates={"card.slowdown": 5.0,
                                   "pe.lockup": 5.0}),
            kinds=("card.slowdown",))
        assert plan.counts_by_kind().keys() <= {"card.slowdown"}
        assert len(plan) > 0

    def test_rates_gate_generation(self):
        # with explicit rates, unlisted kinds generate nothing
        plan = FaultPlan.generate(
            11, FaultProfile(rates={"noc.retransmit": 4.0}))
        assert set(plan.counts_by_kind()) <= {"noc.retransmit"}

    def test_targets_stay_in_range(self):
        profile = FaultProfile(num_cards=2, num_pes=4, grid_rows=2,
                               grid_cols=2, num_dram_controllers=3,
                               num_sram_slices=3,
                               rates={k: 4.0 for k in FAULT_KINDS})
        plan = FaultPlan.generate(5, profile)
        for event in plan.events:
            assert 0 <= event.target < profile.targets_for(event.kind)

    def test_serving_kinds_use_us_horizon(self):
        profile = FaultProfile(horizon_cycles=10.0, horizon_us=1e6,
                               rates={"card.slowdown": 6.0,
                                      "pe.slowdown": 6.0})
        plan = FaultPlan.generate(2, profile)
        for event in plan.serving_events:
            assert event.start <= 1e6
        for event in plan.hardware_events:
            assert event.start <= 10.0


class TestSerialisation:
    def test_round_trip(self):
        profile = FaultProfile(rates={k: 2.0 for k in FAULT_KINDS})
        plan = FaultPlan.generate(13, profile)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.seed == 13

    def test_dict_is_json_safe(self):
        import json
        plan = FaultPlan(events=(
            FaultEvent(start=0.0, kind="card.failure",
                       duration=PERMANENT),), seed=1)
        text = json.dumps(plan.to_dict())
        assert FaultPlan.from_dict(json.loads(text)) == plan
