"""Chaos properties: any drawn fault plan keeps the core invariants."""

import numpy as np
from hypothesis import given, settings

from repro.faults import FaultInjector, FaultPlan
from repro.obs import MetricRegistry
from repro.serving import (BatchingConfig, ResilienceConfig,
                           simulate_serving_resilient)
from tests import strategies as shared

#: ~300 requests at 20k qps spans ~15ms — inside FAULT_HORIZON_US, so
#: drawn windows actually intersect the run
_QPS = 20_000.0
_N = 300
_BATCHING = BatchingConfig(max_batch=4, max_wait_us=200.0)
#: no deadline and no shedding: the only abort path is a card failure
#: outliving the retry budget, so the empty plan serves everything
_RES = ResilienceConfig(num_cards=4, max_retries=2,
                        retry_backoff_us=50.0, backoff_cap_us=400.0)


def _run(plan, seed):
    return simulate_serving_resilient(
        lambda b: 150.0 + 2.0 * b, _QPS, _BATCHING, _RES,
        num_requests=_N, seed=seed, faults=FaultInjector(plan),
        registry=MetricRegistry())


class TestServingChaosProperties:
    @settings(max_examples=25, deadline=None)
    @given(plan=shared.fault_plans(), seed=shared.seeds)
    def test_seed_replay_is_bit_identical(self, plan, seed):
        a = _run(plan, seed)
        b = _run(plan, seed)
        for name in ("latencies_us", "queue_wait_us", "batch_wait_us",
                     "execute_us", "retry_overhead_us", "status",
                     "attempts", "abort_us", "batch_index"):
            np.testing.assert_array_equal(getattr(a, name),
                                          getattr(b, name), err_msg=name)
        assert a.batch_sizes == b.batch_sizes
        assert (a.hedged_batches, a.hedge_wins) == (b.hedged_batches,
                                                    b.hedge_wins)

    @settings(max_examples=25, deadline=None)
    @given(plan=shared.fault_plans(), seed=shared.seeds)
    def test_attribution_invariant_under_any_plan(self, plan, seed):
        report = _run(plan, seed)
        total = (report.queue_wait_us + report.batch_wait_us
                 + report.retry_overhead_us + report.execute_us)
        np.testing.assert_allclose(total, report.latencies_us, atol=1e-6)
        # phases are individually non-negative, not just in sum
        for name in ("queue_wait_us", "batch_wait_us",
                     "retry_overhead_us", "execute_us"):
            assert (getattr(report, name) >= 0).all(), name

    @settings(max_examples=25, deadline=None)
    @given(plan=shared.fault_plans(), seed=shared.seeds)
    def test_faults_never_improve_availability(self, plan, seed):
        faulted = _run(plan, seed)
        clean = _run(FaultPlan(events=()), seed)
        assert clean.availability == 1.0
        assert faulted.availability <= clean.availability
        # every request is accounted for exactly once
        assert sum(faulted.counts_by_status().values()) == _N
        served = int(faulted.status.size - (faulted.status != 0).sum())
        assert faulted.availability == served / _N

    @settings(max_examples=25, deadline=None)
    @given(plan=shared.fault_plans(), seed=shared.seeds)
    def test_abort_bookkeeping_is_consistent(self, plan, seed):
        report = _run(plan, seed)
        mask = report.served_mask
        # served requests have no abort stamp; aborted ones have one
        assert np.isnan(report.abort_us[mask]).all()
        assert np.isfinite(report.abort_us[~mask]).all()
        # aborted requests never land in a batch; attempts stay within
        # the retry budget
        assert (report.batch_index[~mask] == -1).all()
        assert (report.attempts <= _RES.max_retries + 1).all()


class TestHardwareChaosProperties:
    @settings(max_examples=5, deadline=None)   # each example runs 2 DES sims
    @given(plan=shared.hardware_fault_plans())
    def test_faulted_kernel_replay_is_bit_identical(self, plan):
        from repro import Accelerator
        from repro.kernels.fc import run_fc

        def once():
            acc = Accelerator(observe=True)
            injector = FaultInjector(plan).attach(acc)
            result = run_fc(acc, m=64, k=64, n=64, dtype="int8",
                            subgrid=acc.subgrid((0, 0), 1, 1), seed=0)
            return (result.cycles, result.c_t, acc.obs.stalls_by_track(),
                    dict(injector.activations))

        cycles_a, out_a, stalls_a, acts_a = once()
        cycles_b, out_b, stalls_b, acts_b = once()
        assert cycles_a == cycles_b
        assert np.array_equal(out_a, out_b)
        assert stalls_a == stalls_b
        assert acts_a == acts_b
