"""FaultInjector: every fault model bites, empty plans are no-ops."""

import math

import numpy as np
import pytest

from repro import Accelerator
from repro.faults import PERMANENT, FaultEvent, FaultPlan, FaultInjector
from repro.kernels.fc import run_fc


def small_fc(acc, seed=0):
    return run_fc(acc, m=64, k=64, n=64, dtype="int8",
                  subgrid=acc.subgrid((0, 0), 1, 1), seed=seed)


def faulted_run(plan):
    """(cycles, stalls_by_cause, activations) of one faulted small FC."""
    acc = Accelerator(observe=True)
    injector = FaultInjector(plan).attach(acc)
    result = small_fc(acc)
    return result.cycles, acc.obs.stalls_by_cause(), dict(
        injector.activations)


def whole_run_plan(kind, magnitude, cycles):
    """One wildcard window of ``kind`` covering the whole kernel."""
    return FaultPlan(events=(
        FaultEvent(start=0.0, kind=kind, target=-1,
                   duration=100.0 * cycles, magnitude=magnitude),))


@pytest.fixture(scope="module")
def clean():
    """One fault-free small FC: (cycles, stalls_by_cause, output)."""
    acc = Accelerator(observe=True)
    result = small_fc(acc)
    return result.cycles, acc.obs.stalls_by_cause(), result.c_t


class TestEmptyPlanIsNoop:
    def test_attached_empty_injector_is_bit_identical(self, clean):
        clean_cycles, clean_stalls, clean_out = clean
        acc = Accelerator(observe=True)
        FaultInjector(FaultPlan(events=())).attach(acc)
        result = small_fc(acc)
        assert result.cycles == clean_cycles
        assert np.array_equal(result.c_t, clean_out)
        assert acc.obs.stalls_by_cause() == clean_stalls
        assert acc.engine.faults.activations == {}

    def test_attach_detach(self):
        acc = Accelerator()
        injector = FaultInjector(FaultPlan(events=())).attach(acc)
        assert acc.engine.faults is injector
        assert injector.grid_rows == acc.config.grid_rows
        injector.detach(acc)
        assert acc.engine.faults is None


class TestHardwareFaultModels:
    def test_dram_ecc_inflates_and_attributes(self, clean):
        clean_cycles, clean_stalls, _ = clean
        cycles, stalls, activations = faulted_run(
            whole_run_plan("dram.ecc_correctable", 60.0, clean_cycles))
        assert cycles > clean_cycles
        assert stalls.get("dram_ecc_retry", 0.0) > clean_stalls.get(
            "dram_ecc_retry", 0.0)
        assert activations["dram.ecc_correctable"] > 0

    def test_sram_slice_stall_attributed(self, clean):
        # arbitration can shift under the stall, so assert the
        # attribution (the contract), not the cycle-count direction
        clean_cycles, clean_stalls, _ = clean
        _cycles, stalls, activations = faulted_run(
            whole_run_plan("sram.slice_stall", 30.0, clean_cycles))
        assert stalls.get("sram_fault_stall", 0.0) > clean_stalls.get(
            "sram_fault_stall", 0.0)
        assert activations["sram.slice_stall"] > 0

    def test_noc_degrade_inflates_cycles(self, clean):
        # degradation charges extra *bytes*, not a stall window
        clean_cycles, _, _ = clean
        cycles, stalls, activations = faulted_run(
            whole_run_plan("noc.link_degrade", 0.5, clean_cycles))
        assert cycles > clean_cycles
        assert "noc_retransmit" not in stalls
        assert activations["noc.link_degrade"] > 0

    def test_noc_retransmit_attributed(self, clean):
        clean_cycles, clean_stalls, _ = clean
        cycles, stalls, activations = faulted_run(
            whole_run_plan("noc.retransmit", 100.0, clean_cycles))
        assert cycles > clean_cycles
        assert stalls.get("noc_retransmit", 0.0) > clean_stalls.get(
            "noc_retransmit", 0.0)
        assert activations["noc.retransmit"] > 0

    def test_pe_slowdown_attributed(self, clean):
        clean_cycles, clean_stalls, _ = clean
        cycles, stalls, activations = faulted_run(
            whole_run_plan("pe.slowdown", 10.0, clean_cycles))
        assert cycles > clean_cycles
        assert stalls.get("pe_fault_stall", 0.0) > clean_stalls.get(
            "pe_fault_stall", 0.0)
        assert activations["pe.slowdown"] > 0

    def test_pe_lockup_freezes_dispatch(self, clean):
        clean_cycles, _, _ = clean
        lockup = 2.0 * clean_cycles
        cycles, stalls, activations = faulted_run(FaultPlan(events=(
            FaultEvent(start=0.0, kind="pe.lockup", target=-1,
                       duration=lockup),)))
        # nothing dispatches before the release, so the run is pushed
        # past the lockup window (the first dispatch starts a little
        # after t=0, hence the slack on the attributed stall)
        assert cycles > lockup
        assert stalls.get("pe_fault_stall", 0.0) >= 0.9 * lockup
        assert activations["pe.lockup"] > 0

    def test_faulted_output_still_correct(self, clean):
        # faults cost time, never bits: the C matrix is unchanged
        _, _, clean_out = clean
        acc = Accelerator(observe=True)
        FaultInjector(whole_run_plan("dram.ecc_correctable", 60.0,
                                     1e6)).attach(acc)
        result = small_fc(acc)
        assert np.array_equal(result.c_t, clean_out)

    def test_window_outside_run_is_noop(self, clean):
        clean_cycles, clean_stalls, _ = clean
        plan = FaultPlan(events=(
            FaultEvent(start=1e12, kind="dram.ecc_correctable", target=-1,
                       duration=1e3, magnitude=500.0),))
        cycles, stalls, activations = faulted_run(plan)
        assert cycles == clean_cycles
        assert stalls == clean_stalls
        assert activations == {}


class TestQuerySemantics:
    def test_sum_active_composes_target_and_wildcard(self):
        injector = FaultInjector(FaultPlan(events=(
            FaultEvent(start=0.0, kind="pe.slowdown", target=3,
                       duration=100.0, magnitude=5.0),
            FaultEvent(start=0.0, kind="pe.slowdown", target=-1,
                       duration=100.0, magnitude=2.0),)))
        assert injector.pe_dispatch_penalty(3, 50.0) == 7.0
        assert injector.pe_dispatch_penalty(0, 50.0) == 2.0
        assert injector.pe_dispatch_penalty(3, 100.0) == 0.0  # end excl.

    def test_noc_targets_split_rows_then_cols(self):
        injector = FaultInjector(FaultPlan(events=(
            FaultEvent(start=0.0, kind="noc.retransmit", target=2,
                       duration=10.0, magnitude=40.0),      # row 2
            FaultEvent(start=0.0, kind="noc.retransmit", target=8 + 5,
                       duration=10.0, magnitude=60.0),)),   # col 5
            grid_rows=8)
        assert injector.noc_retransmit(2, 5, 1.0) == 100.0
        assert injector.noc_retransmit(2, 0, 1.0) == 40.0
        assert injector.noc_retransmit(0, 5, 1.0) == 60.0
        assert injector.noc_retransmit(0, 0, 1.0) == 0.0

    def test_noc_degrade_multiplies_row_and_col(self):
        injector = FaultInjector(FaultPlan(events=(
            FaultEvent(start=0.0, kind="noc.link_degrade", target=0,
                       duration=10.0, magnitude=0.5),
            FaultEvent(start=0.0, kind="noc.link_degrade", target=8,
                       duration=10.0, magnitude=0.25),)), grid_rows=8)
        assert injector.noc_degrade(0, 0, 1.0) == pytest.approx(8.0)
        assert injector.noc_degrade(0, 3, 1.0) == pytest.approx(2.0)
        assert injector.noc_degrade(5, 0, 1.0) == pytest.approx(4.0)

    def test_pe_lockup_release(self):
        injector = FaultInjector(FaultPlan(events=(
            FaultEvent(start=100.0, kind="pe.lockup", target=7,
                       duration=50.0),)))
        assert injector.pe_lockup_release(7, 120.0) == 150.0
        assert injector.pe_lockup_release(7, 99.0) == 0.0
        assert injector.pe_lockup_release(6, 120.0) == 0.0

    def test_rednet_penalty(self):
        injector = FaultInjector(FaultPlan(events=(
            FaultEvent(start=0.0, kind="rednet.retransmit", target=0,
                       duration=10.0, magnitude=75.0),)))
        assert injector.rednet_penalty(5.0) == 75.0
        assert injector.rednet_penalty(10.0) == 0.0


class TestServingQueries:
    def test_card_available_walks_chained_windows(self):
        injector = FaultInjector(FaultPlan(events=(
            FaultEvent(start=100.0, kind="card.failure", target=0,
                       duration=100.0),
            FaultEvent(start=200.0, kind="card.failure", target=0,
                       duration=50.0),)))
        assert injector.card_available_at(0, 150.0) == 250.0
        assert injector.card_available_at(0, 99.0) == 99.0
        assert injector.card_available_at(1, 150.0) == 150.0

    def test_permanent_failure_is_inf(self):
        injector = FaultInjector(FaultPlan(events=(
            FaultEvent(start=500.0, kind="card.failure", target=2,
                       duration=PERMANENT),)))
        assert injector.card_available_at(2, 400.0) == 400.0
        assert math.isinf(injector.card_available_at(2, 600.0))

    def test_card_failure_in_is_exclusive(self):
        injector = FaultInjector(FaultPlan(events=(
            FaultEvent(start=100.0, kind="card.failure", target=0,
                       duration=10.0),
            FaultEvent(start=150.0, kind="card.failure", target=0,
                       duration=10.0),)))
        assert injector.card_failure_in(0, 50.0, 200.0) == 100.0
        assert injector.card_failure_in(0, 100.0, 200.0) == 150.0
        assert injector.card_failure_in(0, 150.0, 200.0) is None
        assert injector.card_failure_in(1, 0.0, 1000.0) is None

    def test_card_slowdown_composes(self):
        injector = FaultInjector(FaultPlan(events=(
            FaultEvent(start=0.0, kind="card.slowdown", target=1,
                       duration=100.0, magnitude=2.0),
            FaultEvent(start=0.0, kind="card.slowdown", target=-1,
                       duration=100.0, magnitude=3.0),)))
        assert injector.card_slowdown(1, 50.0) == 6.0
        assert injector.card_slowdown(0, 50.0) == 3.0
        assert injector.card_slowdown(0, 200.0) == 1.0

    def test_slowdown_magnitude_floor_is_one(self):
        # magnitudes below 1 never *speed up* a card
        injector = FaultInjector(FaultPlan(events=(
            FaultEvent(start=0.0, kind="card.slowdown", target=0,
                       duration=100.0, magnitude=0.25),)))
        assert injector.card_slowdown(0, 50.0) == 1.0


class TestSimCacheInteraction:
    def test_faulted_run_bypasses_sim_cache(self, tmp_path, clean):
        from repro.simcache import SimCache

        clean_cycles, _, _ = clean
        cache = SimCache(tmp_path / "sims")
        acc = Accelerator(observe=True)
        warm = run_fc(acc, m=64, k=64, n=64, dtype="int8",
                      subgrid=acc.subgrid((0, 0), 1, 1), seed=0,
                      cache=cache)
        assert warm.cycles == clean_cycles

        # a faulted run must not replay the clean cached result
        acc = Accelerator(observe=True)
        FaultInjector(whole_run_plan("dram.ecc_correctable", 60.0,
                                     clean_cycles)).attach(acc)
        faulted = run_fc(acc, m=64, k=64, n=64, dtype="int8",
                         subgrid=acc.subgrid((0, 0), 1, 1), seed=0,
                         cache=cache)
        assert faulted.cycles > clean_cycles

        # ... and must not have poisoned the cache for clean runs
        acc = Accelerator(observe=True)
        replay = run_fc(acc, m=64, k=64, n=64, dtype="int8",
                        subgrid=acc.subgrid((0, 0), 1, 1), seed=0,
                        cache=cache)
        assert replay.cycles == clean_cycles
