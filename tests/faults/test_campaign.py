"""The chaos campaign: determinism, graceful degradation, CLI."""

import json

import pytest

from repro.faults.campaign import (CAMPAIGN_BATCHING, SCENARIOS,
                                   CampaignConfig, hardware_microbench,
                                   render_text, run_campaign, run_scenario,
                                   synthetic_latency_model, to_json)


def tiny_config(**overrides):
    base = dict(seeds=2, requests=400, qps=20_000.0, cards=4,
                include_hardware=False, include_failover=False)
    base.update(overrides)
    return CampaignConfig(**base)


@pytest.fixture(scope="module")
def tiny_report():
    return run_campaign(tiny_config())


class TestCampaignDeterminism:
    def test_report_is_pure_function_of_config(self, tiny_report):
        again = run_campaign(tiny_config())
        assert to_json(again) == to_json(tiny_report)

    def test_jobs_do_not_change_the_report(self, tiny_report):
        parallel = run_campaign(tiny_config(), jobs=2)
        assert to_json(parallel) == to_json(tiny_report)

    def test_seed_changes_the_report(self, tiny_report):
        shifted = run_campaign(tiny_config(seed_start=100))
        assert to_json(shifted) != to_json(tiny_report)


class TestCampaignContent:
    def test_every_scenario_runs_every_seed(self, tiny_report):
        rows = tiny_report["scenarios"]
        assert len(rows) == len(SCENARIOS) * 2
        for name in SCENARIOS:
            seeds = sorted(r["seed"] for r in rows
                           if r["scenario"] == name)
            assert seeds == [0, 1]
            assert tiny_report["summary"][name]["cells"] == 2

    def test_card_failure_degrades_gracefully(self, tiny_report):
        rows = [r for r in tiny_report["scenarios"]
                if r["scenario"] == "card_failure"]
        for row in rows:
            # losing 1 of 4 cards keeps availability above the
            # shed-everything strawman (drop all post-failure arrivals)
            assert row["graceful"]
            assert (row["faulted"]["availability"]
                    > row["shed_everything_availability"])
        assert tiny_report["checks"]["graceful_degradation"]

    def test_baseline_is_fault_free(self, tiny_report):
        for row in tiny_report["scenarios"]:
            if row["scenario"] in ("card_failure", "card_slowdown"):
                assert row["baseline"]["availability"] == 1.0

    def test_overload_shed_sheds(self, tiny_report):
        rows = [r for r in tiny_report["scenarios"]
                if r["scenario"] == "overload_shed"]
        assert any(r["faulted"]["counts"]["shed"] > 0 for r in rows)

    def test_timeout_pressure_retries(self, tiny_report):
        rows = [r for r in tiny_report["scenarios"]
                if r["scenario"] == "timeout_pressure"]
        assert all(r["faulted"]["mean_attempts"] > 1.0 for r in rows)

    def test_report_is_json_serialisable(self, tiny_report):
        round_tripped = json.loads(to_json(tiny_report))
        assert round_tripped["checks"]["graceful_degradation"] in (True,
                                                                   False)

    def test_render_text_summarises(self, tiny_report):
        text = render_text(tiny_report)
        assert "fault campaign" in text
        for name in SCENARIOS:
            assert name in text
        assert "graceful degradation: PASS" in text

    def test_capacity_math_overloads(self):
        # the campaign batching caps a card at ~25k qps, so the 3x
        # overload scenario is genuinely over capacity
        b = CAMPAIGN_BATCHING.max_batch
        capacity = b * 1e6 / synthetic_latency_model(b)
        assert capacity < 3.0 * 20_000.0


class TestHardwareMicrobench:
    def test_every_fault_kind_bites(self):
        section = hardware_microbench(seed=0)
        assert section["clean_cycles"] > 0
        kinds = {row["kind"] for row in section["kinds"]}
        assert {"dram.ecc_correctable", "sram.slice_stall",
                "noc.link_degrade", "noc.retransmit",
                "pe.slowdown"} == kinds
        for row in section["kinds"]:
            # each fault model visibly fires: cycle inflation and/or a
            # new stall attribution, plus injector activations
            assert (row["inflation"] > 1.0
                    or row["fault_stall_cycles"]), row["kind"]
            assert row["activations"], row["kind"]

    def test_microbench_is_deterministic(self):
        assert hardware_microbench(seed=0) == hardware_microbench(seed=0)


class TestFailoverFeedback:
    def test_failover_slowdown_feeds_card_failure_scenario(self):
        report = run_campaign(tiny_config(seeds=1, requests=300,
                                          include_failover=True))
        failover = report["failover"]
        assert failover["slowdown"] >= 1.0
        assert report["config"]["failover_slowdown"] == pytest.approx(
            max(1.0, failover["slowdown"]))
        assert failover["cards_after"] == failover["cards_before"] - 1

    def test_run_scenario_applies_failover_slowdown(self):
        fast = run_scenario("card_failure", 0,
                            tiny_config(failover_slowdown=1.0))
        slow = run_scenario("card_failure", 0,
                            tiny_config(failover_slowdown=3.0))
        assert (slow["faulted"]["p99_us"] > fast["faulted"]["p99_us"]
                or slow["faulted"]["availability"]
                < fast["faulted"]["availability"])


class TestCampaignCLI:
    def test_cli_writes_report_and_exits_zero(self, tmp_path, capsys):
        from repro.faults.__main__ import main
        out = tmp_path / "campaign.json"
        code = main(["--seeds", "1", "--requests", "300",
                     "--no-hardware", "--no-failover", "--quiet",
                     "--json", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["checks"]["graceful_degradation"] is True
        text = capsys.readouterr().out
        assert "graceful degradation: PASS" in text

    def test_module_entrypoint_matches_campaign(self, tmp_path):
        # ``python -m repro.faults.campaign`` must resolve to the CLI
        import subprocess
        import sys
        out = tmp_path / "cli.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.faults.campaign",
             "--seeds", "1", "--requests", "300", "--no-hardware",
             "--no-failover", "--quiet", "--json", str(out)],
            capture_output=True, text=True, env=None)
        assert proc.returncode == 0, proc.stderr
        assert json.loads(out.read_text())["schema_version"] == 1
