"""The python -m repro.critpath CLI: schema pin, validation, chrome."""

import json

import pytest

from repro.critpath import (SCHEMA_VERSION, VALIDATION_BAND,
                            analyze_workload, main, parse_whatif_spec,
                            render_text)

#: pinned top-level schema — additive changes must bump SCHEMA_VERSION
REPORT_KEYS = {"schema_version", "workload", "unit", "sim_cycles",
               "extras", "critical_path", "whatif"}
PATH_KEYS = {"unit", "total", "start", "end", "num_segments",
             "num_condensed", "by_resource", "segments", "attrs"}
WHATIF_KEYS = {"requested_factor", "effective_factor", "resource",
               "factor", "unit", "baseline", "projected", "delta",
               "speedup", "scaled_edges", "nodes", "validation"}


@pytest.fixture(scope="module")
def report():
    return analyze_workload("quickstart",
                            whatif=[("noc", 1.5),
                                    ("local_memory", 2.0)],
                            validate=True)


class TestSchema:
    def test_top_level_keys_pinned(self, report):
        assert set(report) == REPORT_KEYS
        assert report["schema_version"] == SCHEMA_VERSION == 1
        assert set(report["critical_path"]) == PATH_KEYS
        for row in report["whatif"]:
            assert set(row) == WHATIF_KEYS

    def test_path_total_matches_cycles_span(self, report):
        path = report["critical_path"]
        assert path["unit"] == "cycles"
        assert path["total"] == path["end"] - path["start"]
        assert path["end"] <= report["sim_cycles"]

    def test_json_has_no_wall_clock(self, report):
        text = json.dumps(report)
        assert "wall" not in text


class TestValidation:
    def test_projections_within_band(self, report):
        assert len(report["whatif"]) == 2
        for row in report["whatif"]:
            validation = row["validation"]
            assert validation is not None
            assert validation["band"] == VALIDATION_BAND
            assert validation["within_band"], (
                f"{row['resource']} x{row['effective_factor']}: "
                f"error {validation['relative_error']:.1%}")
            assert validation["true_delta"] > 0

    def test_report_is_jobs_invariant(self):
        def run(jobs):
            return json.dumps(
                analyze_workload("quickstart", whatif=[("noc", 1.5)],
                                 validate=True, jobs=jobs),
                sort_keys=True)

        assert run(1) == run(2)


class TestCLI:
    def test_spec_parsing(self):
        assert parse_whatif_spec("dram=1.2") == ("dram", 1.2)
        for bad in ("dram", "nope=2", "dram=abc", "dram=-1"):
            with pytest.raises(SystemExit):
                parse_whatif_spec(bad)

    def test_text_render(self, report):
        text = render_text(report)
        assert "== critical path: quickstart ==" in text
        assert "critical cycles by resource:" in text
        assert "re-simulated:" in text

    def test_cli_text_json_chrome(self, tmp_path, capsys):
        assert main(["quickstart"]) == 0
        assert "critical path" in capsys.readouterr().out

        out = tmp_path / "crit.json"
        assert main(["quickstart", "--format", "json",
                     "-o", str(out)]) == 0
        data = json.loads(out.read_text())
        assert set(data) == REPORT_KEYS

        trace = tmp_path / "crit.trace.json"
        assert main(["quickstart", "--format", "chrome",
                     "-o", str(trace)]) == 0
        events = json.loads(trace.read_text())["traceEvents"]
        tracks = {e.get("tid") for e in events if e.get("ph") == "X"}
        assert "critical.path" in tracks
        assert any(t.endswith(".dpe") for t in tracks)
        # the critical track chains flow arrows into hardware spans
        assert any(e.get("ph") == "s" for e in events)
        assert any(e.get("ph") == "f" for e in events)
