"""Graph IR: construction, shape inference, mutation."""

import numpy as np
import pytest

from repro.compiler.ir import Graph, GraphBuilder, Node
from repro.runtime.tensor import TensorMeta


@pytest.fixture
def mlp_graph():
    b = GraphBuilder("mlp")
    x = b.input((8, 16), dtype="fp32", name="x")
    w = b.weight((32, 16), dtype="fp32", name="w")
    fc = b.add("fc", (x.name, w.name), name="fc")
    act = b.add("relu", (fc.name,), name="act")
    return b.output(act.name)


class TestConstruction:
    def test_shape_inference_through_builder(self, mlp_graph):
        assert mlp_graph.node("fc").meta.shape == (8, 32)
        assert mlp_graph.node("act").meta.shape == (8, 32)

    def test_duplicate_name_rejected(self, mlp_graph):
        with pytest.raises(ValueError, match="duplicate"):
            mlp_graph.add_node(Node(name="fc", op="relu", inputs=["x"]))

    def test_undefined_input_rejected(self):
        g = Graph()
        with pytest.raises(ValueError, match="undefined input"):
            g.add_node(Node(name="a", op="relu", inputs=["ghost"]))

    def test_auto_naming_is_unique(self):
        b = GraphBuilder()
        n1 = b.input((4,), name=None)
        n2 = b.input((4,), name=None)
        assert n1.name != n2.name

    def test_mark_unknown_output_rejected(self, mlp_graph):
        with pytest.raises(ValueError):
            mlp_graph.mark_output("nonexistent")

    def test_shape_mismatch_caught_at_build(self):
        b = GraphBuilder()
        x = b.input((8, 16))
        w = b.weight((32, 20))
        with pytest.raises(ValueError, match="k mismatch"):
            b.add("fc", (x.name, w.name))


class TestQueries:
    def test_users(self, mlp_graph):
        assert [n.name for n in mlp_graph.users("fc")] == ["act"]
        assert [n.name for n in mlp_graph.users("x")] == ["fc"]
        assert mlp_graph.users("act") == []

    def test_nodes_by_op(self, mlp_graph):
        assert [n.name for n in mlp_graph.nodes_by_op("fc")] == ["fc"]

    def test_len_and_contains(self, mlp_graph):
        assert len(mlp_graph) == 4
        assert "fc" in mlp_graph
        assert "nope" not in mlp_graph


class TestMutation:
    def test_replace_uses(self, mlp_graph):
        mlp_graph.replace_uses("fc", "x")
        assert mlp_graph.node("act").inputs == ["x"]

    def test_replace_uses_updates_outputs(self, mlp_graph):
        mlp_graph.replace_uses("act", "fc")
        assert mlp_graph.outputs == ["fc"]

    def test_remove_node_with_users_rejected(self, mlp_graph):
        with pytest.raises(ValueError, match="users"):
            mlp_graph.remove_node("fc")

    def test_remove_output_rejected(self, mlp_graph):
        with pytest.raises(ValueError, match="output"):
            mlp_graph.remove_node("act")

    def test_prune_dead(self, mlp_graph):
        b = GraphBuilder("g")
        x = b.input((4, 4), name="x")
        live = b.add("relu", (x.name,), name="live")
        dead = b.add("tanh", (x.name,), name="dead")
        g = b.output(live.name)
        removed = g.prune_dead()
        assert removed == 1
        assert "dead" not in g

    def test_insert_before_maintains_order(self, mlp_graph):
        node = Node(name="pre", op="tanh", inputs=["fc"])
        from repro.compiler.ops import infer_meta
        node.meta = infer_meta(mlp_graph, node)
        mlp_graph.insert_before("act", node)
        order = [n.name for n in mlp_graph]
        assert order.index("pre") < order.index("act")
        assert order.index("pre") > order.index("fc")

    def test_repr_lists_nodes(self, mlp_graph):
        text = repr(mlp_graph)
        assert "%fc = fc(x, w)" in text
        assert "outputs: ['act']" in text


class TestValidate:
    def test_valid_graph_passes(self, mlp_graph):
        mlp_graph.validate()

    def test_fused_dlrm_graph_validates(self):
        from repro.compiler.fusion import fuse_graph
        from repro.models.configs import MODEL_ZOO
        from repro.models.dlrm import build_dlrm_graph
        g = build_dlrm_graph(MODEL_ZOO["LC2"], 16)
        fuse_graph(g)
        g.validate()

    def test_stale_metadata_detected(self, mlp_graph):
        from repro.runtime.tensor import TensorMeta
        mlp_graph.node("fc").meta = TensorMeta((1, 1), "fp32")
        with pytest.raises(ValueError, match="stale"):
            mlp_graph.validate()

    def test_missing_metadata_detected(self, mlp_graph):
        mlp_graph.node("act").meta = None
        with pytest.raises(ValueError, match="no metadata"):
            mlp_graph.validate()

    def test_out_of_order_use_detected(self):
        g = Graph()
        # Bypass the builder to create a broken ordering.
        a = Node(name="a", op="input", attrs={"shape": (4,)})
        from repro.compiler.ops import infer_meta
        a.meta = infer_meta(g, a)
        g.add_node(a)
        b = Node(name="b", op="relu", inputs=["a"])
        b.meta = infer_meta(g, b)
        g.add_node(b)
        g._order.reverse()
        with pytest.raises(ValueError, match="before it is defined"):
            g.validate()
