"""The KNYFE kernel DSL: compile and run pipelines on the simulator."""

import numpy as np
import pytest

from repro import Accelerator
from repro.compiler.knyfe import CompiledKernel, KernelSpec, compile_kernel
from repro.sim import SimulationError


class TestCompilation:
    def test_simple_pipeline_compiles(self):
        spec = (KernelSpec("t").load("x").apply("tanh").store("y"))
        kernel = compile_kernel(spec)
        assert kernel.output_dtype.name == "fp32"
        assert len(kernel.cb_sizes) == 2

    def test_must_start_with_load(self):
        spec = KernelSpec("bad")
        spec.stages.append(spec.stages)  # nothing valid
        with pytest.raises(SimulationError):
            compile_kernel(KernelSpec("empty"))

    def test_must_end_with_store(self):
        spec = KernelSpec("nostore").load("x").apply("tanh")
        with pytest.raises(SimulationError, match="store"):
            compile_kernel(spec)

    def test_load_must_be_first(self):
        spec = KernelSpec("t").load("x")
        with pytest.raises(SimulationError, match="first"):
            spec.load("y")

    def test_type_checking_dequantize(self):
        spec = KernelSpec("bad").load("x", dtype="fp32").dequantize(0.1)
        spec.store("y")
        with pytest.raises(SimulationError, match="int8"):
            compile_kernel(spec)

    def test_type_checking_quantize(self):
        spec = KernelSpec("bad").load("x", dtype="int8").quantize(0.1)
        spec.store("y")
        with pytest.raises(SimulationError, match="float"):
            compile_kernel(spec)

    def test_binary_dtype_mismatch(self):
        spec = (KernelSpec("bad").load("x", dtype="fp32")
                .binary("add", "y", dtype="int8").store("z"))
        with pytest.raises(SimulationError, match="dtype"):
            compile_kernel(spec)

    def test_dtype_propagates_through_stages(self):
        spec = (KernelSpec("chain").load("x", dtype="int8")
                .dequantize(0.5).apply("tanh").quantize(0.1).store("y"))
        kernel = compile_kernel(spec)
        assert kernel.output_dtype.name == "int8"


class TestExecution:
    def test_dequant_tanh_pipeline(self, rng):
        q = rng.integers(-128, 128, 6000, dtype=np.int8)
        spec = (KernelSpec("dq_tanh").tile(2048)
                .load("x", dtype="int8").dequantize(0.05)
                .apply("tanh").store("y"))
        kernel = compile_kernel(spec)
        acc = Accelerator()
        out = kernel.run(acc, {"x": q}, subgrid=acc.subgrid((0, 0), 2, 2))
        ref = kernel.reference({"x": q})
        np.testing.assert_allclose(out["y"], ref, atol=5e-3)
        assert kernel.cycles > 0

    def test_binary_pipeline(self, rng):
        a = rng.standard_normal(3000).astype(np.float32)
        b = rng.standard_normal(3000).astype(np.float32)
        spec = (KernelSpec("axpy").tile(1024)
                .load("a").binary("add", "b").store("y"))
        kernel = compile_kernel(spec)
        acc = Accelerator()
        out = kernel.run(acc, {"a": a, "b": b},
                         subgrid=acc.subgrid((0, 0), 2, 2))
        np.testing.assert_allclose(out["y"], a + b, rtol=1e-6)

    def test_quantize_pipeline_matches_dedicated_kernel(self, rng):
        values = rng.standard_normal(4096).astype(np.float32)
        spec = (KernelSpec("q").tile(1024)
                .load("x").quantize(0.1).store("y"))
        kernel = compile_kernel(spec)
        acc = Accelerator()
        out = kernel.run(acc, {"x": values},
                         subgrid=acc.subgrid((0, 0), 1, 2))
        ref = np.clip(np.round(values / 0.1), -128, 127).astype(np.int8)
        np.testing.assert_array_equal(out["y"], ref)

    def test_fused_beats_unfused_round_trips(self, rng):
        """Fusing dequant+tanh in one kernel avoids a DRAM round trip —
        the operator-fusion benefit the paper's compiler chases."""
        q = rng.integers(-128, 128, 16384, dtype=np.int8)
        fused_spec = (KernelSpec("fused").tile(4096)
                      .load("x", dtype="int8").dequantize(0.05)
                      .apply("tanh").store("y"))
        fused = compile_kernel(fused_spec)
        acc1 = Accelerator()
        fused.run(acc1, {"x": q}, subgrid=acc1.subgrid((0, 0), 2, 2))

        dq_spec = (KernelSpec("dq").tile(4096)
                   .load("x", dtype="int8").dequantize(0.05).store("t"))
        tanh_spec = (KernelSpec("tanh").tile(4096)
                     .load("t").apply("tanh").store("y"))
        acc2 = Accelerator()
        k1 = compile_kernel(dq_spec)
        mid = k1.run(acc2, {"x": q}, subgrid=acc2.subgrid((0, 0), 2, 2))
        k2 = compile_kernel(tanh_spec)
        k2.run(acc2, {"t": mid["t"]}, subgrid=acc2.subgrid((0, 0), 2, 2))
        assert fused.cycles < k1.cycles + k2.cycles

    def test_input_dtype_validated(self, rng):
        spec = (KernelSpec("strict").load("x", dtype="int8")
                .dequantize(1.0).store("y"))
        kernel = compile_kernel(spec)
        with pytest.raises(SimulationError, match="dtype"):
            kernel.run(Accelerator(),
                       {"x": rng.standard_normal(64).astype(np.float32)})

    def test_mismatched_input_lengths_rejected(self, rng):
        spec = (KernelSpec("b").load("a").binary("add", "b").store("y"))
        kernel = compile_kernel(spec)
        with pytest.raises(SimulationError, match="equal length"):
            kernel.run(Accelerator(), {
                "a": np.zeros(64, np.float32),
                "b": np.zeros(32, np.float32)})
