"""Edge cases for the partitioner and tensor placement passes.

Backfill for the corners the autotuner now leans on: non-divisible
work sizes, degenerate 1xN / Nx1 sub-grids, a single-PE grid config,
first-fit boundary behaviour in the memory sharder, and pinned-weight
spill behaviour in the SRAM placer.
"""

import pytest

from repro.compiler.ir import GraphBuilder
from repro.compiler.partitioner import (_fit_pow2, choose_subgrid,
                                        cross_card_traffic,
                                        partition_by_memory)
from repro.compiler.placement import place_tensors
from repro.config import MTIA_V1


def _fc_node(batch, k, n):
    b = GraphBuilder()
    x = b.input((batch, k), name="x")
    w = b.weight((n, k), name="w")      # B^T layout, (n, k)
    return b.add("fc", (x.name, w.name), name="fc")


class TestFitPow2:
    @pytest.mark.parametrize("value,cap,expect", [
        (0, 8, 1), (1, 8, 1), (3, 8, 2), (4, 8, 4), (7, 8, 4),
        (8, 8, 8), (100, 8, 8), (100, 1, 1),
    ])
    def test_largest_power_of_two_capped(self, value, cap, expect):
        assert _fit_pow2(value, cap) == expect


class TestChooseSubgridEdges:
    def test_non_divisible_remainders_round_up(self):
        # 65 rows of output need two 64-row tiles, 100 columns two
        # 64-column tiles — remainders must not drop a PE row/column.
        assert choose_subgrid(_fc_node(65, 32, 100)) == (2, 2)
        assert choose_subgrid(_fc_node(63, 32, 64)) == (1, 1)

    def test_one_by_n_subgrid(self):
        rows, cols = choose_subgrid(_fc_node(32, 64, 4096))
        assert rows == 1
        assert cols == MTIA_V1.grid_cols

    def test_n_by_one_subgrid(self):
        rows, cols = choose_subgrid(_fc_node(4096, 64, 32))
        assert rows == MTIA_V1.grid_rows
        assert cols == 1

    def test_single_pe_grid_config(self):
        tiny = MTIA_V1.scaled(grid_rows=1, grid_cols=1)
        assert choose_subgrid(_fc_node(4096, 64, 4096), tiny) == (1, 1)
        b = GraphBuilder()
        x = b.input((4096, 64), name="x")
        mv = b.add("relu", (x.name,), name="mv")
        assert choose_subgrid(b.graph.node("mv"), tiny) == (1, 1)

    def test_elementwise_sizes_by_4kb_tiles(self):
        b = GraphBuilder()
        small = b.add("relu", (b.input((8, 8), name="x").name,), name="r")
        assert choose_subgrid(b.graph.node("r")) == (1, 1)
        b2 = GraphBuilder()
        b2.add("relu", (b2.input((4096, 4096), name="x").name,), name="r")
        rows, cols = choose_subgrid(b2.graph.node("r"))
        assert rows == MTIA_V1.grid_rows and cols == MTIA_V1.grid_cols


def _table_graph(table_bytes, num_tables, dense_bytes=64):
    """Weights-only graph: one dense weight + int8 embedding tables."""
    b = GraphBuilder()
    dense = b.weight((dense_bytes,), dtype="int8", name="mlp_w")
    for t in range(num_tables):
        b.weight((table_bytes,), dtype="int8", name=f"table{t}")
    return b.output(dense.name)


class TestPartitionerEdges:
    def test_exact_fit_table_occupies_a_whole_card(self):
        cap = 1 << 20
        parts = partition_by_memory(_table_graph(cap, 2), cap)
        # Dense card is full-blocked, so each table gets its own card.
        assert len(parts) == 3
        assert [p.weight_bytes for p in parts[1:]] == [cap, cap]

    def test_max_cards_exhausted_raises(self):
        cap = 1 << 20
        with pytest.raises(MemoryError, match="more than 2 cards"):
            partition_by_memory(_table_graph(cap, 3), cap, max_cards=2)

    def test_dense_only_model_is_one_partition(self):
        parts = partition_by_memory(_table_graph(0, 0), 1 << 20)
        assert len(parts) == 1
        assert parts[0].owns_dense
        assert parts[0].weight_nodes == ["mlp_w"]

    def test_first_fit_backfills_the_dense_card(self):
        # Largest-first: the big table opens card 1, the small one still
        # fits next to the dense weights on card 0.
        cap = 1 << 20
        b = GraphBuilder()
        dense = b.weight((64,), dtype="int8", name="mlp_w")
        b.weight((cap - 32,), dtype="int8", name="table0")
        b.weight((100,), dtype="int8", name="table1")
        parts = partition_by_memory(b.output(dense.name), cap)
        assert len(parts) == 2
        assert "table1" in parts[0].weight_nodes
        assert "table0" in parts[1].weight_nodes


class TestCrossCardTrafficEdges:
    def _eb_graph(self, table_bytes):
        b = GraphBuilder()
        t = b.weight((table_bytes, 8), dtype="int8", name="table0")
        idx = b.input((4, 2), dtype="int32", name="idx")
        eb = b.add("embedding_bag", (t.name, idx.name), batch=4,
                   pooling=2, name="eb0")
        return b.output(eb.name)

    def test_local_tables_move_no_bytes(self):
        g = self._eb_graph(100)
        parts = partition_by_memory(g, 1 << 20)
        assert len(parts) == 1
        assert cross_card_traffic(g, parts) == 0

    def test_remote_table_moves_pooled_output(self):
        g = self._eb_graph(1 << 18)
        parts = partition_by_memory(g, (1 << 18) * 8 + 256)
        # Card 0 is dense-blocked only if the table spills; force it.
        if len(parts) == 1:
            parts[0].weight_nodes.remove("table0")
            from repro.compiler.partitioner import Partition
            parts.append(Partition(card=1, weight_nodes=["table0"]))
        assert cross_card_traffic(g, parts) == g.node("eb0").meta.nbytes


class TestPlacementEdges:
    def test_pinned_weight_that_does_not_fit_spills_to_dram(self):
        b = GraphBuilder()
        x = b.input((4, 1024), name="x")
        w = b.weight((1024, 1024), name="big_w")        # 4 MB fp32
        fc = b.add("fc", (x.name, w.name), name="fc")
        g = b.output(fc.name)
        placement = place_tensors(g, sram_capacity=1 << 20,
                                  pin_weights={"big_w"})
        assert placement.region("big_w") == "dram"

    def test_pinned_weight_stays_resident_for_the_whole_graph(self):
        b = GraphBuilder()
        x = b.input((64, 64), name="x")
        w = b.weight((64, 64), name="hot_w")
        fc = b.add("fc", (x.name, w.name), name="fc")
        a = b.add("relu", (fc.name,), name="a")
        c = b.add("tanh", (a.name,), name="c")
        g = b.output(c.name)
        placement = place_tensors(g, sram_capacity=1 << 20,
                                  pin_weights={"hot_w"})
        assert placement.region("hot_w") == "sram"
        # The pin occupies budget to the very end, alongside the
        # intermediates that fit around it.
        assert placement.sram_peak_bytes >= g.node("hot_w").meta.nbytes

    def test_zero_capacity_spills_every_intermediate(self):
        b = GraphBuilder()
        x = b.input((64, 64), name="x")
        a = b.add("relu", (x.name,), name="a")
        c = b.add("tanh", (a.name,), name="c")
        g = b.output(c.name)
        placement = place_tensors(g, sram_capacity=0)
        assert placement.region("a") == "dram"
        assert placement.spilled == ["a"]       # "c" is a graph output
        assert placement.sram_peak_bytes == 0

    def test_hit_fraction_on_a_graph_with_no_interop_traffic(self):
        b = GraphBuilder()
        x = b.input((8, 8), name="x")
        g = b.output(x.name)
        placement = place_tensors(g, sram_capacity=1 << 20)
        assert placement.sram_hit_fraction(g) == 0.0
