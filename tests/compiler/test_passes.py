"""Fusion, placement, and partitioning passes."""

import numpy as np
import pytest

from repro.compiler.fusion import fuse_graph
from repro.compiler.ir import GraphBuilder
from repro.compiler.partitioner import (choose_subgrid, cross_card_traffic,
                                        partition_by_memory)
from repro.compiler.placement import place_tensors
from repro.models.configs import MODEL_ZOO
from repro.models.dlrm import build_dlrm_graph


def sparse_graph(num_tables=6, batch=4, pooling=2, dim=8):
    """EB nodes feeding one concat — the TBE-merging candidate shape."""
    b = GraphBuilder("sparse")
    ebs = []
    for t in range(num_tables):
        table = b.weight((100, dim), dtype="int8", name=f"table{t}")
        idx = b.input((batch, pooling), dtype="int32", name=f"idx{t}")
        ebs.append(b.add("embedding_bag", (table.name, idx.name),
                         batch=batch, pooling=pooling, name=f"eb{t}"))
    cat = b.add("concat", [e.name for e in ebs], axis=1, name="cat")
    return b.output(cat.name)


class TestEBMerging:
    def test_merges_into_tbe(self):
        g = sparse_graph(num_tables=6)
        g, report = fuse_graph(g)
        assert report.tbe_created == 1
        assert report.eb_merged == 6
        assert len(g.nodes_by_op("embedding_bag")) == 0
        tbe = g.nodes_by_op("tbe")[0]
        assert tbe.meta.shape == (4, 48)

    def test_concat_shape_preserved(self):
        g = sparse_graph(num_tables=5, dim=16)
        before = g.node("cat").meta.shape
        g, _ = fuse_graph(g)
        assert g.node("cat").meta.shape == before

    def test_functional_equivalence(self, rng):
        """The merged graph computes the same pooled concat."""
        from repro.runtime.executor import GraphExecutor
        g1 = sparse_graph(num_tables=4)
        g2 = sparse_graph(num_tables=4)
        feeds = {}
        weights = {}
        for t in range(4):
            weights[f"table{t}"] = rng.integers(-20, 20, (100, 8),
                                                dtype=np.int8)
            feeds[f"idx{t}"] = rng.integers(0, 100, (4, 2))
        eager = GraphExecutor(mode="eager")
        fused = GraphExecutor(mode="graph")
        out1, _ = eager.run(g1, feeds, weights)
        out2, _ = fused.run(g2, feeds, weights)
        np.testing.assert_allclose(out1["cat"], out2["cat"])

    def test_group_size_cap(self):
        g = sparse_graph(num_tables=10)
        g, report = fuse_graph(g, max_tables_per_tbe=4)
        # 10 tables -> groups of 4, 4, 2
        assert report.tbe_created == 3

    def test_incompatible_pooling_not_merged(self):
        b = GraphBuilder()
        ebs = []
        for t, pooling in enumerate((2, 4)):
            table = b.weight((50, 8), dtype="int8", name=f"table{t}")
            idx = b.input((4, pooling), dtype="int32", name=f"idx{t}")
            ebs.append(b.add("embedding_bag", (table.name, idx.name),
                             batch=4, pooling=pooling))
        cat = b.add("concat", [e.name for e in ebs], axis=1)
        g = b.output(cat.name)
        g, report = fuse_graph(g)
        assert report.tbe_created == 0

    def test_mc1_model_ebs_all_merge(self):
        g = build_dlrm_graph(MODEL_ZOO["MC1"], 16)
        assert len(g.nodes_by_op("embedding_bag")) == 550
        g, report = fuse_graph(g)
        assert report.eb_merged == 550
        assert len(g.nodes_by_op("embedding_bag")) == 0
        assert report.tbe_created == (550 + 63) // 64


class TestEpilogueFusion:
    def test_relu_folds_into_fc(self):
        b = GraphBuilder()
        x = b.input((4, 8), name="x")
        w = b.weight((8, 8), name="w")
        fc = b.add("fc", (x.name, w.name), name="fc")
        act = b.add("relu", (fc.name,), name="act")
        g = b.output(act.name)
        g, report = fuse_graph(g)
        assert report.epilogues_fused == 1
        assert g.node("fc").attrs["epilogue"] == "relu"
        assert "act" not in g
        assert g.outputs == ["fc"]

    def test_multi_user_producer_not_fused(self):
        b = GraphBuilder()
        x = b.input((4, 8), name="x")
        w = b.weight((8, 8), name="w")
        fc = b.add("fc", (x.name, w.name), name="fc")
        act = b.add("relu", (fc.name,), name="act")
        other = b.add("tanh", (fc.name,), name="other")
        g = b.output(act.name, other.name)
        g, report = fuse_graph(g)
        assert report.epilogues_fused == 0

    def test_functional_equivalence_with_epilogue(self, rng):
        from repro.runtime.executor import GraphExecutor

        def build():
            b = GraphBuilder()
            x = b.input((4, 8), name="x")
            w = b.weight((8, 8), name="w")
            fc = b.add("fc", (x.name, w.name), name="fc")
            act = b.add("tanh", (fc.name,), name="act")
            return b.output(act.name)

        feeds = {"x": rng.standard_normal((4, 8)).astype(np.float32)}
        weights = {"w": rng.standard_normal((8, 8)).astype(np.float32)}
        out_e, _ = GraphExecutor(mode="eager").run(build(), feeds, weights)
        out_g, rep = GraphExecutor(mode="graph").run(build(), feeds, weights)
        key_e, key_g = list(out_e)[0], list(out_g)[0]
        np.testing.assert_allclose(out_e[key_e], out_g[key_g], rtol=1e-5)


class TestPlacement:
    def test_intermediates_in_sram_when_they_fit(self):
        b = GraphBuilder()
        x = b.input((64, 128), name="x")
        w = b.weight((128, 128), name="w")
        fc = b.add("fc", (x.name, w.name), name="fc")
        act = b.add("relu", (fc.name,), name="act")
        g = b.output(act.name)
        placement = place_tensors(g, sram_capacity=1 << 20)
        assert placement.region("fc") == "sram"
        assert placement.region("w") == "dram"       # weights stay off-chip
        assert placement.region("act") == "dram"     # graph output

    def test_spill_when_budget_exceeded(self):
        b = GraphBuilder()
        x = b.input((1024, 1024), name="x")
        big = b.add("relu", (x.name,), name="big")          # 4 MB
        out = b.add("tanh", (big.name,), name="out")
        g = b.output(out.name)
        placement = place_tensors(g, sram_capacity=1 << 20)  # 1 MB budget
        assert placement.region("big") == "dram"
        assert "big" in placement.spilled

    def test_liveness_frees_space(self):
        """Two sequential 600 KB tensors fit a 1 MB budget because the
        first dies before the second is allocated."""
        b = GraphBuilder()
        x = b.input((600, 256), name="x")          # ~600 KB fp32
        a = b.add("relu", (x.name,), name="a")
        bnode = b.add("tanh", (a.name,), name="b")
        c = b.add("relu", (bnode.name,), name="c")
        g = b.output(c.name)
        placement = place_tensors(g, sram_capacity=1 << 20)
        assert placement.region("a") == "sram"
        assert placement.region("b") == "sram"
        assert placement.sram_peak_bytes <= 1 << 20

    def test_eb_outputs_forced_to_dram(self):
        g = sparse_graph()
        placement = place_tensors(g, sram_capacity=1 << 20)
        for t in range(6):
            assert placement.region(f"eb{t}") == "dram"

    def test_pinned_weights(self):
        b = GraphBuilder()
        x = b.input((4, 64), name="x")
        w = b.weight((64, 64), name="hot_w")
        fc = b.add("fc", (x.name, w.name), name="fc")
        g = b.output(fc.name)
        placement = place_tensors(g, sram_capacity=1 << 20,
                                  pin_weights={"hot_w"})
        assert placement.region("hot_w") == "sram"

    def test_sram_hit_fraction(self):
        b = GraphBuilder()
        x = b.input((64, 64), name="x")
        a = b.add("relu", (x.name,), name="a")
        out = b.add("tanh", (a.name,), name="out")
        g = b.output(out.name)
        placement = place_tensors(g, sram_capacity=1 << 20)
        frac = placement.sram_hit_fraction(g)
        assert 0.0 < frac < 1.0   # "a" in SRAM, "x" in DRAM


class TestPartitioner:
    def test_hc_needs_many_cards(self):
        g = build_dlrm_graph(MODEL_ZOO["HC"], 4)
        card_bytes = 32 * 10 ** 9
        partitions = partition_by_memory(g, card_bytes)
        # 725 GB over 32 GB cards
        assert len(partitions) >= 23
        assert partitions[0].owns_dense
        for part in partitions:
            assert part.weight_bytes <= card_bytes

    def test_lc2_fits_one_card(self):
        g = build_dlrm_graph(MODEL_ZOO["LC2"], 4)
        partitions = partition_by_memory(g, 32 * 10 ** 9)
        assert len(partitions) == 1

    def test_every_table_assigned_once(self):
        g = build_dlrm_graph(MODEL_ZOO["LC1"], 4)
        partitions = partition_by_memory(g, 8 * 10 ** 9)
        assigned = [w for p in partitions for w in p.weight_nodes
                    if w.startswith("table")]
        assert len(assigned) == len(set(assigned)) == 160

    def test_oversized_table_rejected(self):
        b = GraphBuilder()
        t = b.weight((10 ** 6, 1024), dtype="int8", name="table0")
        idx = b.input((4, 2), dtype="int32", name="idx")
        eb = b.add("embedding_bag", (t.name, idx.name), batch=4, pooling=2)
        g = b.output(eb.name)
        with pytest.raises(MemoryError, match="exceeds a whole card"):
            partition_by_memory(g, card_capacity_bytes=10 ** 8)

    def test_cross_card_traffic_counts_remote_ebs(self):
        g = build_dlrm_graph(MODEL_ZOO["LC1"], 8)
        partitions = partition_by_memory(g, 8 * 10 ** 9)
        traffic = cross_card_traffic(g, partitions)
        assert traffic > 0   # some tables landed off the dense card

    def test_choose_subgrid_scales_with_batch(self):
        g = build_dlrm_graph(MODEL_ZOO["LC2"], 64)
        fc = g.nodes_by_op("fc")[0]
        small = choose_subgrid(fc)
        g2 = build_dlrm_graph(MODEL_ZOO["LC2"], 1024)
        big = choose_subgrid(g2.nodes_by_op("fc")[0])
        assert big[0] * big[1] >= small[0] * small[1]
        assert small[0] <= 8 and small[1] <= 8

    def test_choose_subgrid_small_op_gets_small_grid(self):
        b = GraphBuilder()
        x = b.input((64, 64), name="x")
        w = b.weight((64, 64), name="w")
        fc = b.add("fc", (x.name, w.name))
        rows, cols = choose_subgrid(fc)
        assert rows * cols <= 4


class TestCSE:
    def test_identical_quantizes_merge(self, rng):
        from repro.compiler.fusion import fuse_graph
        b = GraphBuilder()
        x = b.input((8, 8), name="x")
        q1 = b.add("quantize", (x.name,), scale=0.1, name="q1")
        q2 = b.add("quantize", (x.name,), scale=0.1, name="q2")
        r1 = b.add("dequantize", (q1.name,), scale=0.1, name="r1")
        r2 = b.add("dequantize", (q2.name,), scale=0.1, name="r2")
        g = b.output(r1.name, r2.name)
        g, report = fuse_graph(g, merge_eb=False, fuse_epilogues=False)
        assert report.cse_merged >= 2     # q2 folds into q1, r2 into r1
        assert "q2" not in g

    def test_different_attrs_not_merged(self):
        from repro.compiler.fusion import fuse_graph
        b = GraphBuilder()
        x = b.input((8, 8), name="x")
        b.add("quantize", (x.name,), scale=0.1, name="q1")
        b.add("quantize", (x.name,), scale=0.2, name="q2")
        g = b.output("q1", "q2")
        g, report = fuse_graph(g)
        assert report.cse_merged == 0
        assert "q1" in g and "q2" in g

    def test_sources_never_merged(self):
        from repro.compiler.fusion import fuse_graph
        b = GraphBuilder()
        x1 = b.input((4,), name="x1")
        x2 = b.input((4,), name="x2")
        out = b.add("add", (x1.name, x2.name), name="out")
        g = b.output(out.name)
        g, report = fuse_graph(g)
        assert report.cse_merged == 0

    def test_functional_equivalence_after_cse(self, rng):
        from repro.compiler.fusion import fuse_graph
        from repro.runtime.executor import GraphExecutor

        def build():
            b = GraphBuilder()
            x = b.input((4, 8), name="x")
            t1 = b.add("tanh", (x.name,), name="t1")
            t2 = b.add("tanh", (x.name,), name="t2")
            out = b.add("add", (t1.name, t2.name), name="out")
            return b.output(out.name)

        feeds = {"x": rng.standard_normal((4, 8)).astype(np.float32)}
        eager, _ = GraphExecutor(mode="eager").run(build(), feeds)
        fused, _ = GraphExecutor(mode="graph").run(build(), feeds)
        np.testing.assert_allclose(eager["out"], fused["out"], rtol=1e-6)
