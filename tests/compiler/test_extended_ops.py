"""Softmax/gelu operators and the SE's gelu path."""

import numpy as np
import pytest

from repro import Accelerator
from repro.compiler.ir import GraphBuilder
from repro.compiler.ops import execute_node, op_costs
from repro.kernels.elementwise import run_nonlinear


def _unary_node(op, shape=(4, 16)):
    b = GraphBuilder()
    x = b.input(shape, name="x")
    return b.add(op, (x.name,))


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        node = _unary_node("softmax")
        x = rng.standard_normal((4, 16)).astype(np.float32) * 3
        out = execute_node(node, [x])
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_numerically_stable_for_large_inputs(self):
        node = _unary_node("softmax", (2, 4))
        x = np.array([[1000., 1000., 1000., 1000.],
                      [-1000., -1000., -1000., -1000.]], dtype=np.float32)
        out = execute_node(node, [x])
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, 0.25, rtol=1e-5)

    def test_axis_attr(self, rng):
        b = GraphBuilder()
        x = b.input((3, 5), name="x")
        node = b.add("softmax", (x.name,), axis=0)
        values = rng.standard_normal((3, 5)).astype(np.float32)
        out = execute_node(node, [values])
        np.testing.assert_allclose(out.sum(axis=0), np.ones(5), rtol=1e-5)

    def test_costs_multiple_passes(self):
        node = _unary_node("softmax")
        costs = op_costs(node, [node.meta.with_shape((4, 16))])
        assert costs.flops > 4 * 64     # more than one pass of work


class TestGelu:
    def test_matches_tanh_approximation(self, rng):
        node = _unary_node("gelu")
        x = rng.standard_normal((4, 16)).astype(np.float32)
        out = execute_node(node, [x])
        ref = 0.5 * x * (1 + np.tanh(np.sqrt(2 / np.pi)
                                     * (x + 0.044715 * x ** 3)))
        np.testing.assert_allclose(out, ref, rtol=1e-5)

    def test_gelu_properties(self):
        node = _unary_node("gelu", (1, 3))
        x = np.array([[-10.0, 0.0, 10.0]], dtype=np.float32)
        out = execute_node(node, [x])
        assert out[0, 0] == pytest.approx(0.0, abs=1e-3)   # kills negatives
        assert out[0, 1] == 0.0
        assert out[0, 2] == pytest.approx(10.0, rel=1e-3)  # passes positives

    def test_gelu_runs_on_the_simulated_se(self, rng):
        values = rng.standard_normal(2048).astype(np.float32)
        acc = Accelerator()
        result = run_nonlinear(acc, values, func="gelu",
                               subgrid=acc.subgrid((0, 0), 1, 2))
        ref = 0.5 * values * (1 + np.tanh(np.sqrt(2 / np.pi)
                                          * (values + 0.044715 * values ** 3)))
        assert np.max(np.abs(result.output - ref)) < 2e-2
