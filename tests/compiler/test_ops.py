"""Operator registry: inference, execution, costs."""

import numpy as np
import pytest

from repro.compiler.ir import GraphBuilder, Node
from repro.compiler.ops import OP_REGISTRY, execute_node, op_costs
from repro.runtime.tensor import TensorMeta


def meta(shape, dtype="fp32"):
    return TensorMeta(tuple(shape), dtype)


def node_for(op, metas, **attrs):
    b = GraphBuilder()
    names = []
    for i, m in enumerate(metas):
        n = b.input(m.shape, dtype=m.dtype.name, name=f"in{i}")
        names.append(n.name)
    return b.add(op, names, **attrs)


class TestShapeInference:
    def test_fc(self):
        n = node_for("fc", [meta((8, 64)), meta((32, 64))])
        assert n.meta.shape == (8, 32)

    def test_concat_axis1(self):
        n = node_for("concat", [meta((4, 8)), meta((4, 12))], axis=1)
        assert n.meta.shape == (4, 20)

    def test_concat_off_axis_mismatch(self):
        with pytest.raises(ValueError, match="off-axis"):
            node_for("concat", [meta((4, 8)), meta((5, 8))], axis=1)

    def test_transpose(self):
        n = node_for("transpose", [meta((3, 7))])
        assert n.meta.shape == (7, 3)

    def test_transpose_requires_2d(self):
        with pytest.raises(ValueError, match="2D"):
            node_for("transpose", [meta((2, 3, 4))])

    def test_bmm(self):
        n = node_for("batch_matmul", [meta((5, 8, 16)), meta((5, 16, 4))])
        assert n.meta.shape == (5, 8, 4)

    def test_bmm_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            node_for("batch_matmul", [meta((5, 8, 16)), meta((5, 15, 4))])

    def test_quantize_produces_int8(self):
        n = node_for("quantize", [meta((4, 4))], scale=0.1)
        assert n.meta.dtype.name == "int8"
        assert n.meta.scale == 0.1

    def test_reshape_conserves_elements(self):
        n = node_for("reshape", [meta((4, 6))], shape=(2, 12))
        assert n.meta.shape == (2, 12)
        with pytest.raises(ValueError, match="element count"):
            node_for("reshape", [meta((4, 6))], shape=(5, 5))

    def test_slice(self):
        n = node_for("slice", [meta((4, 10))], axis=1, start=2, stop=7)
        assert n.meta.shape == (4, 5)
        with pytest.raises(ValueError, match="outside"):
            node_for("slice", [meta((4, 10))], axis=1, start=8, stop=12)

    def test_unknown_op(self):
        b = GraphBuilder()
        with pytest.raises(ValueError, match="unknown operator"):
            b.add("conv3d", ())


class TestExecution:
    def test_fc_numeric(self, rng):
        n = node_for("fc", [meta((4, 8)), meta((6, 8))])
        x = rng.standard_normal((4, 8)).astype(np.float32)
        w = rng.standard_normal((6, 8)).astype(np.float32)
        out = execute_node(n, [x, w])
        np.testing.assert_allclose(out, x @ w.T, rtol=1e-5)

    def test_fc_with_bias(self, rng):
        b = GraphBuilder()
        x = b.input((4, 8), name="x")
        w = b.weight((6, 8), name="w")
        bias = b.weight((6,), name="b")
        n = b.add("fc", (x.name, w.name, bias.name))
        xv = rng.standard_normal((4, 8)).astype(np.float32)
        wv = rng.standard_normal((6, 8)).astype(np.float32)
        bv = rng.standard_normal(6).astype(np.float32)
        out = execute_node(n, [xv, wv, bv])
        np.testing.assert_allclose(out, xv @ wv.T + bv, rtol=1e-5)

    def test_embedding_bag(self, rng):
        b = GraphBuilder()
        t = b.weight((100, 16), dtype="int8", name="t")
        idx = b.input((4, 3), dtype="int32", name="i")
        n = b.add("embedding_bag", (t.name, idx.name), batch=4, pooling=3,
                  scale=0.5)
        table = rng.integers(-128, 128, (100, 16), dtype=np.int8)
        indices = rng.integers(0, 100, (4, 3))
        out = execute_node(n, [table, indices])
        ref = table[indices].astype(np.float32).sum(axis=1) * 0.5
        np.testing.assert_allclose(out, ref)

    def test_tbe_concatenates_tables(self, rng):
        b = GraphBuilder()
        inputs = []
        for i in range(2):
            t = b.weight((50, 8), dtype="int8", name=f"t{i}")
            idx = b.input((4, 2), dtype="int32", name=f"i{i}")
            inputs.extend([t.name, idx.name])
        n = b.add("tbe", inputs, batch=4, pooling=2, scale=1.0)
        assert n.meta.shape == (4, 16)
        tables = [rng.integers(-10, 10, (50, 8), dtype=np.int8)
                  for _ in range(2)]
        idxs = [rng.integers(0, 50, (4, 2)) for _ in range(2)]
        out = execute_node(n, [tables[0], idxs[0], tables[1], idxs[1]])
        ref = np.concatenate(
            [t[i].astype(np.float32).sum(axis=1) for t, i in zip(tables, idxs)],
            axis=1)
        np.testing.assert_allclose(out, ref)

    def test_quantize_dequantize_roundtrip(self, rng):
        x = rng.standard_normal((8, 8)).astype(np.float32)
        qn = node_for("quantize", [meta((8, 8))], scale=0.05)
        q = execute_node(qn, [x])
        dqn = node_for("dequantize", [meta((8, 8), "int8")], scale=0.05)
        back = execute_node(dqn, [q])
        assert np.max(np.abs(back - x)) <= 0.05 / 2 + 1e-6

    def test_layernorm(self, rng):
        x = rng.standard_normal((4, 64)).astype(np.float32) * 3 + 1
        n = node_for("layernorm", [meta((4, 64))])
        out = execute_node(n, [x])
        np.testing.assert_allclose(out.mean(axis=1), 0, atol=1e-5)

    def test_source_without_data_raises(self):
        b = GraphBuilder()
        n = b.input((4,), name="x")
        with pytest.raises(ValueError, match="without bound data"):
            execute_node(n, [])


class TestCosts:
    def test_fc_costs(self):
        n = node_for("fc", [meta((8, 64), "int8"), meta((32, 64), "int8")])
        costs = op_costs(n, [meta((8, 64), "int8"), meta((32, 64), "int8")])
        assert costs.flops == 2 * 8 * 64 * 32
        assert costs.bytes_in == 8 * 64 + 32 * 64
        assert costs.category == "fc"

    def test_eb_costs_count_lookups(self):
        tm, im = meta((1000, 64), "int8"), meta((16, 8), "int32")
        n = node_for("embedding_bag", [tm, im], batch=16, pooling=8)
        costs = op_costs(n, [tm, im])
        assert costs.bytes_in == 16 * 8 * (64 + 4)
        assert costs.category == "eb"

    def test_concat_is_pure_movement(self):
        metas = [meta((4, 8), "int8"), meta((4, 8), "int8")]
        n = node_for("concat", metas, axis=1)
        costs = op_costs(n, metas)
        assert costs.flops == 0
        assert costs.bytes_in == 64
        assert costs.bytes_out == 64

    def test_arithmetic_intensity(self):
        n = node_for("fc", [meta((64, 512), "int8"), meta((512, 512), "int8")])
        costs = op_costs(n, [meta((64, 512), "int8"),
                             meta((512, 512), "int8")])
        assert costs.arithmetic_intensity > 10

    def test_reshape_is_free(self):
        n = node_for("reshape", [meta((4, 4))], shape=(16,))
        costs = op_costs(n, [meta((4, 4))])
        assert costs.bytes_total == 0

    def test_all_registered_ops_have_categories(self):
        categories = {"fc", "eb", "concat", "transpose", "bmm", "quantize",
                      "dequantize", "other"}
        for name, opdef in OP_REGISTRY.items():
            assert opdef.category in categories, name
