"""Shared hypothesis strategies for property and conformance suites.

Extracted from ``tests/property/*`` so the same shape/dtype/CB
vocabulary drives both the focused property tests and the differential
conformance suite.  Keep strategies here *data-only* (no Accelerator
construction) so importing this module stays cheap.
"""

from hypothesis import strategies as st

# -- circular buffers --------------------------------------------------------

#: push/pop command streams against a 256-byte CB.
cb_op_lists = st.lists(
    st.tuples(st.sampled_from(["push", "pop"]),
              st.integers(min_value=1, max_value=64)),
    max_size=60)

#: (offset, nbytes) pairs for non-destructive CB reads.
cb_offset_reads = st.tuples(st.integers(0, 200), st.integers(1, 56))

# -- memory hierarchy --------------------------------------------------------

#: address streams for cache-stats invariants.
cache_addresses = st.lists(st.integers(0, 1 << 16), min_size=1,
                           max_size=200)

#: address streams small enough to re-walk fully from a warm cache.
small_cache_addresses = st.lists(st.integers(0, 1 << 14), min_size=1,
                                 max_size=100)

#: (addr, blob) writes against a 512-KiB sparse backing store.
backing_store_writes = st.lists(
    st.tuples(st.integers(0, 1 << 18),
              st.binary(min_size=1, max_size=300)),
    min_size=1, max_size=30)

# -- dtypes / quantisation ---------------------------------------------------

#: float payloads plus an INT8 quantisation scale.
quant_values = st.lists(st.floats(-1e3, 1e3, allow_nan=False),
                        min_size=1, max_size=100)
quant_scales = st.floats(1e-3, 10.0)

#: float payloads inside bf16's comfortable range.
bf16_values = st.lists(st.floats(-100, 100, allow_nan=False),
                       min_size=1, max_size=64)

# -- kernels -----------------------------------------------------------------

#: FC shapes that tile onto a single PE (TILE_MN=64, TILE_K=32).
fc_m = st.sampled_from([64, 128])
fc_k = st.sampled_from([32, 64, 96])
fc_n = st.sampled_from([64, 128])

#: seeds for operand generation — also the conformance fuzzer's domain.
seeds = st.integers(0, 2 ** 16)

#: wider seed space for the graph fuzzer (any uint32 works).
fuzz_seeds = st.integers(0, 2 ** 32 - 1)

# -- firmware allocator ------------------------------------------------------

#: alloc/free request streams for the sub-grid allocator.
allocator_requests = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(1, 8), st.integers(1, 8)),
        st.tuples(st.just("free"), st.integers(0, 30), st.integers(0, 0)),
    ),
    max_size=40)

allocator_clusters = st.sampled_from([1, 2, 4])

# -- engine ------------------------------------------------------------------

event_delays = st.lists(st.integers(0, 1000), min_size=1, max_size=50)
resource_amounts = st.lists(st.integers(1, 100), min_size=1, max_size=30)
resource_rates = st.integers(1, 50)


@st.composite
def engine_programs(draw):
    """Random process programs for the DES-kernel equivalence test.

    Returns ``(n_events, programs)`` where each program is a list of
    actions interpreted by ``tests/property/test_engine_equivalence.py``
    against both the production engine (deque fast-path) and a
    straight-heap reference.  Zero delays are deliberately common: they
    are exactly the traffic the fast-path reroutes.
    """
    n_events = draw(st.integers(1, 3))
    n_programs = draw(st.integers(1, 4))
    action = st.one_of(
        st.tuples(st.just("delay"), st.integers(0, 3)),
        st.tuples(st.just("timeout"), st.integers(0, 2)),
        st.tuples(st.just("trigger"), st.integers(0, n_events - 1)),
        st.tuples(st.just("fail"), st.integers(0, n_events - 1)),
        st.tuples(st.just("wait"), st.integers(0, n_events - 1)),
        st.tuples(st.just("spawn"), st.integers(0, n_programs - 1)),
    )
    programs = draw(st.lists(st.lists(action, min_size=1, max_size=6),
                             min_size=n_programs, max_size=n_programs))
    return n_events, programs


#: optional run() horizon for the equivalence test.
engine_untils = st.one_of(st.none(), st.integers(0, 6))

# -- KNYFE pipelines ---------------------------------------------------------

_FP32_STAGES = ["quantize", "tanh", "relu", "sigmoid", "binary"]


@st.composite
def knyfe_pipelines(draw):
    """A random, type-correct KNYFE stage sequence starting from a load.

    Returns ``(load_dtype, stages)``; ``dequantize`` is forced whenever
    the running dtype is INT8, mirroring the SE's type rules.
    """
    start_int8 = draw(st.booleans())
    dtype = "int8" if start_int8 else "fp32"
    stages = []
    for _ in range(draw(st.integers(1, 4))):
        if dtype == "int8":
            stage = "dequantize"
            dtype = "fp32"
        else:
            stage = draw(st.sampled_from(_FP32_STAGES))
            if stage == "quantize":
                dtype = "int8"
        stages.append(stage)
    return ("int8" if start_int8 else "fp32"), stages


# -- fault injection ---------------------------------------------------------

#: serving-domain fault horizon for the chaos property tests; matches a
#: ~300-request run at 20k qps (15 ms span) with room past the tail.
FAULT_HORIZON_US = 30_000.0


@st.composite
def fault_plans(draw, num_cards=4):
    """A random serving-domain :class:`FaultPlan` over a short horizon.

    Draws ``card.failure`` / ``card.slowdown`` windows (including
    wildcard targets and the occasional permanent failure) so the
    resilient-serving properties — seed-replay determinism, the
    attribution invariant, availability monotonicity — are exercised
    across outage shapes the scenario presets never produce.
    """
    from repro.faults import PERMANENT, FaultEvent, FaultPlan

    events = []
    for _ in range(draw(st.integers(0, 6))):
        kind = draw(st.sampled_from(["card.failure", "card.slowdown"]))
        start = draw(st.floats(0.0, FAULT_HORIZON_US))
        duration = draw(st.floats(50.0, 8_000.0))
        if kind == "card.failure" and draw(st.sampled_from([0, 0, 0, 1])):
            duration = PERMANENT
        target = draw(st.integers(-1, num_cards - 1))
        magnitude = (draw(st.floats(1.0, 5.0))
                     if kind == "card.slowdown" else 0.0)
        events.append(FaultEvent(start=start, kind=kind, target=target,
                                 duration=duration, magnitude=magnitude))
    return FaultPlan(events=tuple(events))


@st.composite
def hardware_fault_plans(draw):
    """A random hardware-domain plan for determinism-under-replay.

    Uses :meth:`FaultPlan.generate` so the draw is a pure function of
    the seed; the strategy only picks the seed and the kind subset.
    """
    from repro.faults import HARDWARE_KINDS, FaultPlan, FaultProfile

    seed = draw(st.integers(0, 2 ** 16))
    kinds = draw(st.sets(st.sampled_from(HARDWARE_KINDS), min_size=1))
    profile = FaultProfile(horizon_cycles=30_000.0,
                           rates={k: 2.0 for k in kinds})
    return FaultPlan.generate(seed, profile, kinds=tuple(sorted(kinds)))


# -- autotune ----------------------------------------------------------------

#: seeds for the mapping-space search determinism properties.
search_seeds = st.integers(0, 2 ** 32 - 1)


@st.composite
def fc_mapping_shapes(draw):
    """FC shape families with at least one legal mapping each.

    Multiples of the 64/32 tile sizes by construction, small enough
    that enumerating the whole :class:`MappingSpace` stays cheap.
    """
    from repro.autotune.space import FCShape
    return FCShape(m=64 * draw(st.sampled_from([1, 2, 4, 8])),
                   k=32 * draw(st.integers(1, 8)),
                   n=64 * draw(st.sampled_from([1, 2, 4])),
                   dtype=draw(st.sampled_from(["int8", "fp16"])))


@st.composite
def tbe_mapping_shapes(draw):
    """TBE shape families (Figure 12 triplets + batch), enumeration-cheap."""
    from repro.autotune.space import TBEShape
    return TBEShape(num_tables=draw(st.integers(1, 8)),
                    rows_per_table=draw(st.sampled_from([64, 256, 1024])),
                    embedding_dim=draw(st.sampled_from([32, 64, 128])),
                    pooling_factor=draw(st.integers(1, 32)),
                    batch_size=draw(st.sampled_from([4, 16, 32])))


@st.composite
def mapping_shapes(draw):
    """Either operator family, for family-agnostic properties."""
    if draw(st.booleans()):
        return draw(fc_mapping_shapes())
    return draw(tbe_mapping_shapes())


@st.composite
def mapping_candidates(draw):
    """(shape, candidate) with the candidate drawn from the legal set."""
    from repro.autotune.space import MappingSpace
    shape = draw(mapping_shapes())
    space = MappingSpace(shape=shape)
    candidates = space.candidates()
    return shape, candidates[draw(st.integers(0, len(candidates) - 1))]


# -- conformance -------------------------------------------------------------

#: op-family subsets for the graph fuzzer; "fc" is always included so
#: every generated graph has at least one dense operator to fuse into.
@st.composite
def fuzzer_op_subsets(draw):
    from repro.conformance.fuzzer import OP_FAMILIES
    extras = draw(st.sets(st.sampled_from(
        [f for f in OP_FAMILIES if f != "fc"])))
    return tuple(["fc"] + sorted(extras))
