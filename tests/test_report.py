"""The python -m repro.report CLI."""

import pytest

from repro.report import SECTIONS, main


class TestReport:
    def test_every_section_runs(self, capsys):
        assert main(list(SECTIONS)) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Figure 14" in out
        assert "flops-weighted" in out

    def test_selection(self, capsys):
        assert main(["t4"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "Figure 10" not in out

    def test_unknown_section_errors(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown section" in capsys.readouterr().out

    def test_bounds_section(self, capsys):
        assert main(["bounds"]) == 0
        out = capsys.readouterr().out
        assert "Bound analysis" in out
        assert "memory" in out

    def test_no_args_runs_everything(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for needle in ("Table I", "Table II", "Table III", "Table IV",
                       "Figure 1", "Figure 2", "Figure 10", "Figure 11",
                       "Figure 12", "Figure 13", "Figure 14"):
            assert needle in out, needle
