"""Serving simulation and capacity planning."""

import numpy as np
import pytest

from repro.eval.machines import MACHINES
from repro.models.configs import MODEL_ZOO
from repro.serving import BatchingConfig, plan_capacity, simulate_serving
from repro.serving.capacity import max_qps_per_card
from repro.serving.simulator import BatchLatencyModel


def linear_latency(batch):
    """A simple synthetic latency model: 100us + 2us per sample."""
    return 100.0 + 2.0 * batch


class TestServingSimulator:
    def test_low_load_latency_near_window_plus_service(self):
        report = simulate_serving(
            linear_latency, qps=100,
            batching=BatchingConfig(max_batch=64, max_wait_us=200),
            num_requests=2000)
        # At 100 QPS requests mostly ride alone: wait ~200us + ~102us.
        assert report.mean_batch < 2.0
        assert 250 <= report.p50_us <= 400

    def test_high_load_builds_batches(self):
        low = simulate_serving(linear_latency, qps=1_000,
                               num_requests=2000)
        high = simulate_serving(linear_latency, qps=200_000,
                                num_requests=2000)
        assert high.mean_batch > 5 * low.mean_batch

    def test_latency_grows_with_load(self):
        p99 = [simulate_serving(linear_latency, qps, num_requests=3000).p99_us
               for qps in (1_000, 100_000, 400_000)]
        assert p99[0] < p99[1] < p99[2]

    def test_max_batch_respected(self):
        report = simulate_serving(
            linear_latency, qps=1_000_000,
            batching=BatchingConfig(max_batch=32, max_wait_us=100),
            num_requests=3000)
        assert max(report.batch_sizes) <= 32

    def test_all_requests_accounted(self):
        report = simulate_serving(linear_latency, qps=10_000,
                                  num_requests=1234)
        assert report.latencies_us.size == 1234
        assert (report.latencies_us > 0).all()
        assert sum(report.batch_sizes) == 1234

    def test_busy_fraction_bounds(self):
        report = simulate_serving(linear_latency, qps=5_000,
                                  num_requests=1000)
        assert 0.0 < report.busy_fraction <= 1.0

    def test_deterministic_given_seed(self):
        a = simulate_serving(linear_latency, qps=10_000, seed=3,
                             num_requests=500)
        b = simulate_serving(linear_latency, qps=10_000, seed=3,
                             num_requests=500)
        np.testing.assert_array_equal(a.latencies_us, b.latencies_us)

    def test_invalid_qps_rejected(self):
        with pytest.raises(ValueError):
            simulate_serving(linear_latency, qps=0)

    def test_sla_check(self):
        report = simulate_serving(linear_latency, qps=1_000,
                                  num_requests=1000)
        assert report.meets_sla(10_000)
        assert not report.meets_sla(1.0)


class TestBatchLatencyModel:
    @pytest.fixture(scope="class")
    def model(self):
        return BatchLatencyModel(MODEL_ZOO["LC2"], MACHINES["mtia"])

    def test_latency_increases_with_batch(self, model):
        assert model(256) > model(64) > model(1)

    def test_sublinear_scaling(self, model):
        """Per-sample latency falls with batch — the amortisation the
        paper's Section 6.1 describes."""
        assert model(256) / 256 < model(8) / 8

    def test_rounds_up_to_candidate(self, model):
        assert model(3) == model(4)
        assert model(1000) == model(256)


class TestCapacityPlanning:
    def test_max_qps_respects_sla(self):
        qps, report = max_qps_per_card(linear_latency, sla_us=1_000,
                                       num_requests=1500)
        assert qps > 0
        assert report.p99_us <= 1_000

    def test_tighter_sla_means_less_throughput(self):
        loose, _ = max_qps_per_card(linear_latency, sla_us=5_000,
                                    num_requests=1500)
        tight, _ = max_qps_per_card(linear_latency, sla_us=400,
                                    num_requests=1500)
        assert tight < loose

    def test_fleet_power_ordering_on_lc2(self):
        """The TCO thesis: for the small-FC-dominated LC2 at a serving
        SLA, the MTIA fleet burns the least provisioned power."""
        plans = plan_capacity(MODEL_ZOO["LC2"], target_qps=200_000,
                              sla_us=2_000)
        assert plans["mtia"].total_watts < plans["gpu"].total_watts
        assert plans["mtia"].qps_per_watt > plans["gpu"].qps_per_watt
        assert plans["mtia"].qps_per_watt > plans["nnpi"].qps_per_watt

    def test_plans_cover_target(self):
        plans = plan_capacity(MODEL_ZOO["LC2"], target_qps=100_000,
                              sla_us=2_000)
        for plan in plans.values():
            assert plan.cards * plan.card_qps >= 100_000
            assert plan.p99_us <= plan.sla_us
