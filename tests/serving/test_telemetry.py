"""ServingTelemetry: derivation, merging, exemplar span fidelity."""

import copy
import json

import numpy as np
import pytest

from repro.obs.spans import SpanTracer
from repro.serving.resilience import (ResilienceConfig,
                                      simulate_serving_resilient)
from repro.serving.simulator import BatchingConfig, simulate_serving
from repro.serving.telemetry import (PHASES, ServingTelemetry,
                                     emit_exemplar_spans)


def model(batch: int) -> float:
    return 120.0 + 2.0 * batch


BATCHING = BatchingConfig(max_batch=32, max_wait_us=150.0)


def run(seed=7, n=2_000, **kwargs):
    kwargs.setdefault("registry", None)
    return simulate_serving(model, qps=30_000, batching=BATCHING,
                            num_requests=n, seed=seed, **kwargs)


class TestDerivation:
    def test_from_report_counts_and_quantiles(self):
        report = run()
        tel = ServingTelemetry.from_report(report)
        assert tel.num_requests == 2_000
        assert tel.latency.count == 2_000
        for q in (50, 95, 99):
            exact = float(np.percentile(report.latencies_us, q))
            assert abs(tel.latency.percentile(q) - exact) <= 0.0101 * exact

    def test_phase_sketches_cover_attribution(self):
        report = run()
        tel = ServingTelemetry.from_report(report)
        for name in ("queue_wait", "batch_wait", "execute"):
            assert tel.phases[name].count == 2_000
        # plain simulator has no retries
        assert tel.phases["retry_overhead"].count == 0
        assert set(PHASES) == set(tel.phases)

    def test_collect_telemetry_flag_attaches_and_is_noop(self):
        plain = run(collect_telemetry=False)
        collected = run(collect_telemetry=True, replica=3)
        assert plain.telemetry is None
        assert collected.telemetry is not None
        assert collected.telemetry.replicas == [3]
        assert np.array_equal(plain.latencies_us, collected.latencies_us)
        assert np.array_equal(plain.arrivals_us, collected.arrivals_us)

    def test_aborted_requests_excluded_from_latency_counted_in_status(self):
        report = simulate_serving_resilient(
            model, qps=60_000, batching=BatchingConfig(max_batch=4),
            resilience=ResilienceConfig(shed_queue_depth=8),
            num_requests=2_000, seed=1, registry=None,
            collect_telemetry=True)
        tel = report.telemetry
        counts = report.counts_by_status()
        assert counts["shed"] > 0
        assert tel.status_counts == counts
        assert tel.latency.count == counts["served"]
        assert all(r.status == "served" for r in tel.exemplars.slowest)

    def test_series_signals(self):
        report = run(collect_telemetry=True)
        tel = report.telemetry
        assert tel.series["requests"].count == 2_000
        assert tel.series["latency_us"].count == 2_000
        assert tel.series["queue_depth"].count == len(report.batches)

    def test_sketch_vs_exact_within_bound(self):
        report = run()
        tel = ServingTelemetry.from_report(report)
        deltas = tel.sketch_vs_exact(report)
        assert set(deltas) == {"p50", "p95", "p99"}
        for row in deltas.values():
            assert row["relative_error"] <= 0.0101


class TestMerge:
    def make_parts(self, count=3):
        parts = []
        for i in range(count):
            report = run(seed=10 + i, n=800)
            parts.append(ServingTelemetry.from_report(report, replica=i))
        return parts

    def test_merge_all_any_order_is_byte_identical(self):
        parts = self.make_parts()

        def merged(order):
            chosen = [copy.deepcopy(parts[i]) for i in order]
            tel = ServingTelemetry.merge_all(chosen)
            return json.dumps(tel.to_dict(include_state=True),
                              sort_keys=True)

        assert merged((0, 1, 2)) == merged((2, 1, 0)) == merged((1, 0, 2))

    def test_merge_sums_requests_and_replicas(self):
        parts = self.make_parts()
        tel = ServingTelemetry.merge_all(parts)
        assert tel.num_requests == 2_400
        assert tel.replicas == [0, 1, 2]
        assert tel.latency.count == 2_400

    def test_merge_rejects_mismatched_windows(self):
        a = ServingTelemetry(window_us=50_000.0)
        b = ServingTelemetry(window_us=10_000.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_all_empty_raises(self):
        with pytest.raises(ValueError):
            ServingTelemetry.merge_all([])


class TestExemplarSpans:
    def test_slowest_k_spans_match_full_tracer(self):
        """Acceptance: post-hoc exemplar waterfalls == PR 3's live
        span trees for the same seed."""
        report = run(collect_telemetry=True)
        slow_ids = [rid for _rep, rid
                    in report.telemetry.exemplars.slowest_ids()]
        assert len(slow_ids) == 8

        live = SpanTracer(enabled=True)
        run(spans=live, trace_requests_per_batch=10 ** 9)
        post = SpanTracer(enabled=True)
        emitted = emit_exemplar_spans(report, slow_ids, post,
                                      track_prefix="")
        assert emitted == sorted(slow_ids)

        for rid in slow_ids:
            track = f"request.{rid}"
            expect = sorted((s.name, s.start_us, s.end_us)
                            for s in live.spans_on(track))
            got = sorted((s.name, s.start_us, s.end_us)
                         for s in post.spans_on(track))
            assert got == expect, f"request {rid} waterfall differs"

    def test_default_prefix_keeps_exemplar_tracks_distinct(self):
        """Reconstructed waterfalls must not collide with live
        ``request.N`` rows in a merged trace."""
        report = run(collect_telemetry=True)
        slow_ids = [rid for _rep, rid
                    in report.telemetry.exemplars.slowest_ids()]
        post = SpanTracer(enabled=True)
        emitted = emit_exemplar_spans(report, slow_ids, post)
        assert emitted == sorted(slow_ids)
        tracks = {s.track for s in post.spans}
        assert all(t.startswith("exemplar.") for t in tracks)
        for rid in slow_ids:
            assert f"exemplar.request.{rid}" in tracks
        assert {s.pid for s in post.spans} == {"serving.exemplars"}
        # the waterfall itself is unchanged — only the namespace moved
        bare = SpanTracer(enabled=True)
        emit_exemplar_spans(report, slow_ids, bare, track_prefix="")
        strip = sorted((s.track.replace("exemplar.request", "request")
                        .replace("exemplar.device", "serving.device"),
                        s.name, s.start_us, s.end_us)
                       for s in post.spans)
        plain = sorted((s.track, s.name, s.start_us, s.end_us)
                       for s in bare.spans)
        assert strip == plain

    def test_spans_sum_to_latency(self):
        report = run(collect_telemetry=True)
        for record in report.telemetry.exemplars.slowest:
            total = (record.queue_wait_us + record.batch_wait_us
                     + record.execute_us + record.retry_overhead_us)
            assert total == pytest.approx(record.latency_us, abs=1e-6)

    def test_disabled_tracer_is_noop(self):
        report = run(collect_telemetry=True)
        tracer = SpanTracer(enabled=False)
        assert emit_exemplar_spans(report, [0, 1], tracer) == []
        assert not tracer.spans

    def test_out_of_range_ids_skipped(self):
        report = run(collect_telemetry=True, n=100)
        tracer = SpanTracer(enabled=True)
        emitted = emit_exemplar_spans(report, [-1, 5, 10 ** 6], tracer)
        assert emitted == [5]


class TestExportAndDetection:
    def test_to_dict_canonical(self):
        report = run(collect_telemetry=True)
        d = report.telemetry.to_dict()
        assert set(d["series"]) == {"requests", "latency_us",
                                    "queue_depth"}
        assert d["num_requests"] == 2_000
        assert d["latency"]["count"] == 2_000
        # stable under repeated export
        assert json.dumps(d, sort_keys=True) == json.dumps(
            report.telemetry.to_dict(), sort_keys=True)

    def test_record_into_registry_prometheus(self):
        from repro.obs.metrics import MetricRegistry
        registry = MetricRegistry()
        report = run(collect_telemetry=True, registry=registry)
        prom = registry.to_prometheus()
        assert "repro_serving_latency_sketch_us" in prom
        assert 'quantile="0.99"' in prom
        assert "repro_serving_request_rate" in prom

    def test_anomaly_sweep_deterministic(self):
        report = run(collect_telemetry=True)
        first = [r.to_dict() for r in report.telemetry.anomalies()]
        second = [r.to_dict() for r in report.telemetry.anomalies()]
        assert first == second
        assert [r["stat"] for r in first] == [
            "requests.rate", "latency_us.p99", "queue_depth.mean"]

    def test_to_text_smoke(self):
        report = run(collect_telemetry=True)
        text = report.telemetry.to_text()
        assert "latency sketch" in text
        assert "slowest requests" in text
