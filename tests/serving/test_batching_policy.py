"""Batching-policy behaviour of the serving simulator."""

import numpy as np
import pytest

from repro.serving import BatchingConfig, simulate_serving


def step_latency(batch):
    """Latency with a strong fixed cost: batching pays off visibly."""
    return 500.0 + 1.0 * batch


class TestBatchingWindow:
    def test_longer_window_builds_bigger_batches(self):
        short = simulate_serving(step_latency, qps=20_000,
                                 batching=BatchingConfig(max_batch=256,
                                                         max_wait_us=50),
                                 num_requests=3000)
        long = simulate_serving(step_latency, qps=20_000,
                                batching=BatchingConfig(max_batch=256,
                                                        max_wait_us=1000),
                                num_requests=3000)
        assert long.mean_batch > short.mean_batch

    def test_window_bounds_low_load_latency(self):
        report = simulate_serving(step_latency, qps=50,
                                  batching=BatchingConfig(max_batch=256,
                                                          max_wait_us=300),
                                  num_requests=500)
        # At 50 QPS nothing queues: latency ~= window + service(1).
        assert report.p50_us == pytest.approx(300 + step_latency(1),
                                              rel=0.1)

    def test_throughput_vs_latency_tradeoff(self):
        """Bigger windows raise throughput per device (better
        amortisation) at the cost of latency — the serving tension the
        paper's "stringent latency requirements" line refers to."""
        results = {}
        for window in (50, 2000):
            report = simulate_serving(
                step_latency, qps=100_000,
                batching=BatchingConfig(max_batch=512, max_wait_us=window),
                num_requests=4000)
            results[window] = report
        # The long window serves the offered load with slack; the short
        # window saturates (per-batch fixed costs dominate).
        assert results[2000].busy_fraction < results[50].busy_fraction

    def test_saturated_device_batches_up(self):
        """Once the device saturates, the queue itself creates batches
        regardless of the window."""
        report = simulate_serving(step_latency, qps=500_000,
                                  batching=BatchingConfig(max_batch=128,
                                                          max_wait_us=10),
                                  num_requests=4000)
        assert report.mean_batch > 32

    def test_served_qps_tracks_offered_under_light_load(self):
        report = simulate_serving(step_latency, qps=1_000,
                                  num_requests=3000)
        assert report.qps_served == pytest.approx(1_000, rel=0.15)
