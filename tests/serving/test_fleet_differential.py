"""Differential test: a 1-replica fleet is a no-op wrapper.

The fleet layer must add *nothing* at N=1 with free routing: the same
arrival vector through ``simulate_fleet`` and through bare
``simulate_serving_resilient`` must agree bit-for-bit on every report
field, the telemetry serialization, and the stall attributions — that
is what licenses every fleet result to be read as "the per-replica
engine, composed".
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.serving.fleet import (FleetConfig, RouterConfig,
                                 TabularLatencyModel, simulate_fleet,
                                 uniform_fleet)
from repro.serving.resilience import (ResilienceConfig,
                                      simulate_serving_resilient)
from repro.serving.simulator import simulate_serving
from repro.serving.traffic import trace_preset

MODEL = TabularLatencyModel(batches=(1, 4, 16, 64, 256),
                            latency_us=(60.0, 75.0, 110.0, 260.0, 860.0))

RESILIENCE = ResilienceConfig(deadline_us=5_000.0, max_retries=1,
                              shed_queue_depth=128)

ARRAY_FIELDS = ("latencies_us", "queue_wait_us", "batch_wait_us",
                "execute_us", "retry_overhead_us", "status", "attempts",
                "batch_index")


def trivial_fleet(resilience=RESILIENCE):
    return FleetConfig(replicas=uniform_fleet(1),
                       router=RouterConfig(policy="round_robin",
                                           route_latency_us=0.0),
                       resilience=resilience)


def arrivals_for(seed):
    trace = replace(trace_preset("diurnal", target_qps=250_000.0),
                    duration_us=15_000.0)
    return trace.arrivals(seed)


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_single_replica_fleet_is_bit_identical(seed):
    arrivals = arrivals_for(seed)
    fleet = simulate_fleet(MODEL, arrivals, trivial_fleet(), jobs=1)
    bare = simulate_serving_resilient(MODEL, qps=0.0,
                                      resilience=RESILIENCE, seed=0,
                                      collect_telemetry=True,
                                      arrivals=arrivals)
    for name in ARRAY_FIELDS:
        fleet_values = getattr(fleet.per_replica[0], name)
        assert np.array_equal(fleet_values, getattr(bare, name)), name
    # the fleet view itself adds zero overhead with free routing
    assert np.array_equal(fleet.latencies_us, bare.latencies_us)
    assert np.array_equal(fleet.queue_wait_us, bare.queue_wait_us)
    assert np.array_equal(fleet.execute_us, bare.execute_us)
    assert np.all(fleet.route_overhead_us == 0.0)
    assert np.all(fleet.hedge_wait_us == 0.0)
    assert fleet.hedged_requests == 0


def test_telemetry_serialization_is_bit_identical():
    arrivals = arrivals_for(5)
    fleet = simulate_fleet(MODEL, arrivals, trivial_fleet(), jobs=1)
    bare = simulate_serving_resilient(MODEL, qps=0.0,
                                      resilience=RESILIENCE, seed=0,
                                      collect_telemetry=True,
                                      arrivals=arrivals)
    assert (json.dumps(fleet.telemetry.to_dict(include_state=True),
                       sort_keys=True)
            == json.dumps(bare.telemetry.to_dict(include_state=True),
                          sort_keys=True))


def test_batch_boundaries_and_stall_attribution_survive():
    """Batch records (the stall attribution substrate) are identical."""
    arrivals = arrivals_for(7)
    fleet = simulate_fleet(MODEL, arrivals, trivial_fleet(), jobs=1)
    bare = simulate_serving_resilient(MODEL, qps=0.0,
                                      resilience=RESILIENCE, seed=0,
                                      arrivals=arrivals)
    local = fleet.per_replica[0]
    assert len(local.batches) == len(bare.batches)
    for ours, theirs in zip(local.batches, bare.batches):
        assert ours.dispatch_us == theirs.dispatch_us
        assert ours.finish_us == theirs.finish_us
        assert ours.size == theirs.size


def test_default_resilience_chains_down_to_plain_simulator():
    """N=1 fleet + default resilience == simulate_serving, bit for bit.

    Two no-op layers compose: the fleet wraps the resilient engine,
    which with the default config wraps the plain batching simulator.
    """
    arrivals = arrivals_for(2)
    fleet = simulate_fleet(MODEL, arrivals,
                           trivial_fleet(resilience=ResilienceConfig()),
                           jobs=1)
    plain = simulate_serving(MODEL, qps=0.0, arrivals=arrivals)
    assert np.array_equal(fleet.latencies_us, plain.latencies_us)
    assert np.array_equal(fleet.queue_wait_us, plain.queue_wait_us)
    assert np.array_equal(fleet.batch_wait_us, plain.batch_wait_us)
    assert np.array_equal(fleet.execute_us, plain.execute_us)


def test_faulted_single_replica_matches_bare_engine():
    """Per-replica fault splitting preserves bit-identity at N=1."""
    arrivals = arrivals_for(4)
    plan = FaultPlan(events=(
        FaultEvent(start=2_000.0, kind="card.failure", target=0,
                   duration=3_000.0),))
    fleet = simulate_fleet(MODEL, arrivals, trivial_fleet(),
                           fault_plan=plan, jobs=1)
    # the fleet retargets replica events to the whole card pool
    local_plan = FaultPlan(events=(
        FaultEvent(start=2_000.0, kind="card.failure", target=-1,
                   duration=3_000.0),))
    bare = simulate_serving_resilient(MODEL, qps=0.0,
                                      resilience=RESILIENCE, seed=0,
                                      faults=FaultInjector(local_plan),
                                      arrivals=arrivals)
    assert np.array_equal(fleet.latencies_us, bare.latencies_us)
    assert np.array_equal(fleet.status, bare.status)
    assert (fleet.counts_by_status() == bare.counts_by_status())
