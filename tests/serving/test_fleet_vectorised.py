"""The fast fleet router is bit-identical to the reference loop."""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.faults import generate_fleet_plan
from repro.serving import fleet as fleet_mod
from repro.serving.fleet import (ROUTING_POLICIES, FleetConfig,
                                 RouterConfig, TabularLatencyModel,
                                 route_requests, route_requests_vectorised,
                                 simulate_fleet, uniform_fleet)
from repro.serving.resilience import ResilienceConfig
from repro.serving.traffic import trace_preset

MODEL = TabularLatencyModel(batches=(1, 4, 16, 64, 256),
                            latency_us=(60, 72, 110, 260, 860))


def _decisions_equal(a, b):
    np.testing.assert_array_equal(a.assigned, b.assigned)
    np.testing.assert_array_equal(a.hedged, b.hedged)
    if a.probes is None:
        assert b.probes is None
    else:
        np.testing.assert_array_equal(a.probes, b.probes)
    for name in ("probe_backlogs", "chosen_backlog"):
        left, right = getattr(a, name), getattr(b, name)
        if left is None:
            assert right is None
        else:
            # bitwise: the two routers share one arithmetic contract
            np.testing.assert_array_equal(left, right)


def _arrivals(seed, n=4000, spread_us=20_000.0):
    rng = np.random.default_rng(seed)
    return np.sort(rng.uniform(0.0, spread_us, n))


class TestDifferential:
    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    @pytest.mark.parametrize("record_probes", [False, True])
    def test_routers_agree_bitwise(self, policy, record_probes):
        specs = uniform_fleet(5, num_cards=2)
        service = np.array([3.0, 5.0, 2.0, 7.0, 4.0])
        config = RouterConfig(policy=policy, seed=11,
                              hedge_backlog_us=40.0)
        arrivals = _arrivals(seed=policy.encode()[0])
        ref = route_requests(arrivals, config, specs, service,
                             record_probes=record_probes)
        fast = route_requests_vectorised(arrivals, config, specs, service,
                                         record_probes=record_probes)
        _decisions_equal(ref, fast)

    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_routers_agree_under_bursts_and_ties(self, policy):
        # Simultaneous arrivals (dt == 0) and equal service costs force
        # every tie-break branch in both routers.
        arrivals = np.repeat(np.arange(50, dtype=float) * 5.0, 8)
        specs = uniform_fleet(3)
        config = RouterConfig(policy=policy, seed=2,
                              hedge_backlog_us=10.0)
        ref = route_requests(arrivals, config, specs, np.ones(3) * 6.0,
                             record_probes=True)
        fast = route_requests_vectorised(arrivals, config, specs,
                                         np.ones(3) * 6.0,
                                         record_probes=True)
        _decisions_equal(ref, fast)

    def test_single_replica_and_empty_trace(self):
        specs = uniform_fleet(1)
        for policy in ROUTING_POLICIES:
            config = RouterConfig(policy=policy)
            for arrivals in (np.zeros(0), np.array([1.0, 2.0, 3.0])):
                ref = route_requests(arrivals, config, specs, np.ones(1))
                fast = route_requests_vectorised(arrivals, config, specs,
                                                 np.ones(1))
                _decisions_equal(ref, fast)


class TestFleetByteIdentity:
    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_fleet_json_identical_under_reference_router(self, policy,
                                                         monkeypatch):
        """The whole fleet report is byte-identical under either router,
        with a correlated fault plan in the path."""
        trace = replace(trace_preset("diurnal", target_qps=150_000.0),
                        duration_us=40_000.0)
        config = FleetConfig(
            replicas=uniform_fleet(4, racks=2, power_domains=2),
            router=RouterConfig(policy=policy, route_latency_us=8.0,
                                hedge_backlog_us=500.0),
            resilience=ResilienceConfig(deadline_us=8_000.0,
                                        max_retries=1),
            racks=2, power_domains=2)
        plan = generate_fleet_plan(7, config.replicas,
                                   horizon_us=40_000.0)
        fast = simulate_fleet(MODEL, trace, config, fault_plan=plan)
        monkeypatch.setattr(fleet_mod, "route_requests_vectorised",
                            route_requests)
        ref = simulate_fleet(MODEL, trace, config, fault_plan=plan)
        assert (json.dumps(fast.to_dict(), sort_keys=True)
                == json.dumps(ref.to_dict(), sort_keys=True))

    def test_fleet_check_cli_smoke(self, capsys):
        """The CI gate driver passes on a short trace and reports
        per-policy byte-identity."""
        from repro.serving.fleet_check import main
        assert main(["--duration-us", "8000", "--target-qps", "150000",
                     "--jobs", "1", "--replicas", "3"]) == 0
        out = capsys.readouterr().out
        for policy in ROUTING_POLICIES:
            assert f"ok {policy}" in out
        assert "byte-identity held" in out

    def test_fleet_json_identical_across_jobs(self):
        trace = replace(trace_preset("spike", target_qps=120_000.0),
                        duration_us=30_000.0)
        config = FleetConfig(
            replicas=uniform_fleet(4),
            router=RouterConfig(policy="power_of_two", seed=3))
        serial = simulate_fleet(MODEL, trace, config, jobs=1)
        parallel = simulate_fleet(MODEL, trace, config, jobs=4)
        assert (json.dumps(serial.to_dict(), sort_keys=True)
                == json.dumps(parallel.to_dict(), sort_keys=True))
