"""Request-level serving observability: phase attribution, SLO, tail."""

import numpy as np
import pytest

from repro.obs.metrics import MetricRegistry
from repro.obs.spans import SpanTracer
from repro.serving import (BatchingConfig, SLOMonitor, attribute_tail,
                           simulate_serving, slo_from_report)
from repro.serving.slo import SLOSummary


def linear_latency(batch):
    return 100.0 + 2.0 * batch


def run(qps=10_000, n=2000, seed=0, **kw):
    return simulate_serving(linear_latency, qps, num_requests=n,
                            seed=seed, **kw)


class TestPhaseAttribution:
    def test_phases_sum_to_latency_exactly(self):
        for qps in (500, 10_000, 400_000):
            report = run(qps=qps)
            total = (report.queue_wait_us + report.batch_wait_us
                     + report.execute_us)
            np.testing.assert_allclose(total, report.latencies_us,
                                       rtol=0, atol=1e-6)

    def test_phases_nonnegative(self):
        report = run(qps=300_000)
        assert (report.queue_wait_us >= 0).all()
        assert (report.batch_wait_us >= 0).all()
        assert (report.execute_us >= 0).all()

    def test_low_load_has_no_queueing(self):
        # At 100 QPS with ~102us service, the device is idle when each
        # window expires: all pre-dispatch wait is batch formation.
        report = run(qps=100, n=500)
        assert float(report.queue_wait_us.max()) == pytest.approx(0.0)
        assert report.batch_wait_us.max() > 0

    def test_overload_shows_queueing(self):
        report = run(qps=400_000)
        assert report.breakdown_means()["queue_wait"] > 0

    def test_execute_matches_batch_latency(self):
        report = run()
        for r in range(0, 2000, 97):
            batch = report.batches[int(report.batch_index[r])]
            assert report.execute_us[r] == pytest.approx(
                linear_latency(batch.size))

    def test_breakdown_means_keys(self):
        means = run(n=200).breakdown_means()
        assert set(means) == {"queue_wait", "batch_wait", "execute",
                              "retry_overhead"}


class TestBatchRecords:
    def test_records_consistent(self):
        report = run()
        assert len(report.batches) == len(report.batch_sizes)
        for k, b in enumerate(report.batches):
            assert b.index == k
            assert b.size == report.batch_sizes[k]
            assert b.first_arrival_us <= b.ready_us <= b.dispatch_us
            assert b.finish_us == pytest.approx(
                b.dispatch_us + linear_latency(b.size))
            assert b.queue_depth >= 0

    def test_batch_index_covers_all_requests(self):
        report = run(n=1234)
        sizes = np.bincount(report.batch_index.astype(int),
                            minlength=len(report.batches))
        np.testing.assert_array_equal(sizes, report.batch_sizes)

    def test_queue_depth_series_aligned(self):
        report = run()
        series = report.queue_depth_series()
        assert len(series["time_us"]) == len(series["depth"]) == len(
            report.batches)

    def test_occupancy_series_bounded(self):
        report = run(qps=400_000,
                     batching=BatchingConfig(max_batch=32, max_wait_us=100))
        occ = report.batch_occupancy_series(32)["occupancy"]
        assert occ and all(0 < o <= 1.0 for o in occ)
        assert max(occ) == pytest.approx(1.0)   # overload fills batches

    def test_request_rows_capped_and_complete(self):
        report = run(n=500)
        rows = report.request_rows(limit=10)
        assert len(rows) == 10
        row = rows[0]
        assert row["latency_us"] == pytest.approx(
            row["queue_wait_us"] + row["batch_wait_us"]
            + row["execute_us"])
        assert len(report.request_rows()) == 500


class TestEmptyAndEdgeCases:
    def test_percentile_nan_on_empty(self):
        report = run(n=0)
        assert np.isnan(report.percentile(99))
        assert report.qps_served == 0.0
        assert report.busy_fraction == 0.0
        assert not report.meets_sla(1e9)
        assert report.breakdown_means() == {"queue_wait": 0.0,
                                            "batch_wait": 0.0,
                                            "retry_overhead": 0.0,
                                            "execute": 0.0}

    def test_tail_attribution_empty(self):
        tail = attribute_tail(run(n=0))
        assert tail.tail_requests == 0
        assert np.isnan(tail.tail_threshold_us)


class TestSpansFromServing:
    def test_traced_batches_emit_waterfall(self):
        spans = SpanTracer(enabled=True)
        report = run(n=300, spans=spans, trace_batches={0})
        batch0 = spans.find("batch0")
        assert len(batch0) == 1
        req_spans = spans.find("req0")
        assert len(req_spans) == 1
        children = {s.name for s in spans.children_of(req_spans[0])}
        assert "execute" in children
        assert children <= {"batch_wait", "queue_wait", "execute"}
        # request flow-links into the batch's device span
        assert set(batch0[0].flow_in) & set(req_spans[0].flow_out)
        # untraced batches left nothing
        assert not spans.find(f"batch{len(report.batches) - 1}")

    def test_request_phase_spans_tile_the_request(self):
        spans = SpanTracer(enabled=True)
        run(n=300, spans=spans, trace_batches={0})
        req = spans.find("req0")[0]
        children = sorted(spans.children_of(req),
                          key=lambda s: s.start_us)
        assert children[0].start_us == pytest.approx(req.start_us)
        assert children[-1].end_us == pytest.approx(req.end_us)
        for a, b in zip(children, children[1:]):
            assert a.end_us == pytest.approx(b.start_us)

    def test_spans_do_not_change_results(self):
        plain = run(seed=7)
        traced = run(seed=7, spans=SpanTracer(enabled=True))
        np.testing.assert_array_equal(plain.latencies_us,
                                      traced.latencies_us)
        np.testing.assert_array_equal(plain.queue_wait_us,
                                      traced.queue_wait_us)

    def test_disabled_tracer_records_nothing(self):
        spans = SpanTracer(enabled=False)
        run(n=200, spans=spans)
        assert spans.spans == []


class TestMetricsRecording:
    def test_registry_receives_serving_instruments(self):
        reg = MetricRegistry()
        report = run(registry=reg)
        lat = reg.histogram("serving_latency_us").labels()
        assert lat.count == 2000
        assert lat.p99 == pytest.approx(report.p99_us, rel=0.02)
        phases = reg.histogram("serving_phase_us")
        assert phases.labels(phase="execute").count == 2000
        assert reg.counter("serving_requests").labels().value == 2000
        assert (reg.histogram("serving_queue_depth").labels().count
                == len(report.batches))
        occ = reg.gauge("serving_batch_occupancy").labels().value
        assert occ == pytest.approx(report.mean_batch / 256)


class TestSLO:
    def test_burn_rate_zero_when_all_meet_sla(self):
        slo = slo_from_report(run(), sla_us=1e9)
        assert slo.violations == 0
        assert slo.burn_rate == 0.0
        assert slo.budget_remaining == 1.0

    def test_burn_rate_scales_with_violation_rate(self):
        # SLA below every latency: 100% violations vs 0.1% allowed.
        slo = slo_from_report(run(), sla_us=1.0,
                              availability_target=0.999)
        assert slo.violation_rate == 1.0
        assert slo.burn_rate == pytest.approx(1000.0)
        assert slo.budget_remaining < 0

    def test_windows_partition_all_requests(self):
        report = run()
        slo = slo_from_report(report, sla_us=2000, window_us=20_000)
        assert sum(w.count for w in slo.windows) == 2000
        for w in slo.windows:
            assert w.end_us - w.start_us == pytest.approx(20_000)
            assert 0 <= w.violations <= w.count

    def test_peak_window_burn_at_least_mean(self):
        slo = slo_from_report(run(qps=300_000), sla_us=2_000)
        assert slo.peak_window_burn >= slo.burn_rate

    def test_streaming_monitor_matches_one_shot(self):
        report = run(n=500)
        monitor = SLOMonitor(sla_us=700.0)
        for finish, lat in zip(report.arrivals_us + report.latencies_us,
                               report.latencies_us):
            monitor.observe(finish, lat)
        assert monitor.summary().to_dict() == slo_from_report(
            report, 700.0).to_dict()

    def test_empty_monitor(self):
        summary = SLOMonitor(sla_us=100.0).summary()
        assert isinstance(summary, SLOSummary)
        assert summary.total == 0
        assert summary.burn_rate == 0.0
        assert summary.windows == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SLOMonitor(sla_us=100.0, availability_target=1.5)
        with pytest.raises(ValueError):
            SLOMonitor(sla_us=100.0, window_us=0)


class TestTailAttribution:
    def test_cohorts_and_threshold(self):
        report = run()
        tail = attribute_tail(report)
        assert tail.tail_threshold_us == pytest.approx(report.p99_us)
        assert 0 < tail.tail_requests <= report.latencies_us.size * 0.02
        assert tail.median_requests > tail.tail_requests

    def test_tail_slower_in_every_phase_total(self):
        tail = attribute_tail(run(qps=200_000))
        t = sum(tail.phase_us["tail"].values())
        m = sum(tail.phase_us["median"].values())
        assert t > m
        assert tail.phase_us["delta"] == {
            k: pytest.approx(tail.phase_us["tail"][k]
                             - tail.phase_us["median"][k])
            for k in tail.phase_us["delta"]}

    def test_category_mix_requires_model(self):
        tail = attribute_tail(run())
        assert tail.category_mix == {}

        class FakeModel:
            def category_fractions(self, batch):
                return {"fc": 0.75, "eb": 0.25}

        tail = attribute_tail(run(), FakeModel())
        assert tail.category_mix["tail"]["fc"] == pytest.approx(0.75)
        assert sum(tail.category_mix["median"].values()) == pytest.approx(1)

    def test_stall_mix_passthrough_with_delta(self):
        mix = {"tail": {"dram_queue": 0.6, "dep_interlock": 0.4},
               "median": {"dram_queue": 0.2, "dep_interlock": 0.8}}
        tail = attribute_tail(run(), stall_mix=mix)
        assert tail.stall_mix["delta"]["dram_queue"] == pytest.approx(0.4)

    def test_exemplar_batches_valid(self):
        report = run()
        tail = attribute_tail(report)
        for k in tail.exemplar_batches.values():
            assert 0 <= k < len(report.batches)
        worst = int(np.argmax(report.latencies_us))
        assert tail.exemplar_batches["tail"] == int(
            report.batch_index[worst])

    def test_to_text_renders_diff_tables(self):
        tail = attribute_tail(run(), stall_mix={
            "tail": {"dram_queue": 1.0}, "median": {"dram_queue": 1.0}})
        text = tail.to_text()
        assert "queue_wait" in text
        assert "batch size" in text
        assert "dram_queue" in text
