"""Fleet serving: router, replicas, faults, autoscaling, capacity."""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultPlan, generate_fleet_plan
from repro.serving.capacity import plan_fleet_capacity
from repro.serving.fleet import (ROUTING_POLICIES, AutoscaleConfig,
                                 FleetConfig, ReplicaSpec, RouterConfig,
                                 ShardedLatencyModel, TabularLatencyModel,
                                 route_requests, simulate_fleet,
                                 simulate_fleet_autoscaled, uniform_fleet)
from repro.serving.resilience import ResilienceConfig
from repro.serving.simulator import STATUS_SERVED
from repro.serving.traffic import trace_preset

MODEL = TabularLatencyModel(batches=(1, 2, 4, 8, 16, 32, 64, 128, 256),
                            latency_us=(60, 65, 72, 85, 110, 160, 260,
                                        460, 860))


def short_trace(qps=300_000.0, name="steady", duration_us=15_000.0):
    return replace(trace_preset(name, target_qps=qps),
                   duration_us=duration_us)


def fleet_config(policy="round_robin", replicas=3, **router_kw):
    router_kw.setdefault("route_latency_us", 10.0)
    return FleetConfig(
        replicas=uniform_fleet(replicas, racks=2, power_domains=2),
        router=RouterConfig(policy=policy, **router_kw),
        resilience=ResilienceConfig(deadline_us=6_000.0, max_retries=1),
        racks=2, power_domains=2)


def assert_fleet_invariant(report):
    """queue + batch + retry + route + hedge + execute == latency."""
    total = (report.queue_wait_us + report.batch_wait_us
             + report.retry_overhead_us + report.route_overhead_us
             + report.hedge_wait_us + report.execute_us)
    np.testing.assert_allclose(total, report.latencies_us, atol=1e-6)


class TestLatencyModels:
    def test_tabular_rounds_up_to_next_candidate(self):
        assert MODEL(3) == 72.0
        assert MODEL(64) == 260.0
        assert MODEL(1000) == 860.0     # clamps at the top

    def test_tabular_from_batch_model_matches(self):
        from repro.eval.machines import MACHINES
        from repro.models.configs import MODEL_ZOO
        from repro.serving.simulator import BatchLatencyModel
        base = BatchLatencyModel(MODEL_ZOO["LC2"], MACHINES["mtia"],
                                 candidate_batches=(1, 16, 256))
        table = TabularLatencyModel.from_batch_model(base)
        for batch in (1, 16, 256):
            assert table(batch) == pytest.approx(base(batch))

    def test_tabular_validation(self):
        with pytest.raises(ValueError):
            TabularLatencyModel(batches=(4, 1), latency_us=(1.0, 2.0))
        with pytest.raises(ValueError):
            TabularLatencyModel(batches=(), latency_us=())

    def test_sharded_model_fans_out_sparse_time(self):
        base = TabularLatencyModel(batches=(256,), latency_us=(1000.0,))
        solo = ShardedLatencyModel(base=base, shards=1)
        quad = ShardedLatencyModel(base=base, shards=4,
                                   sparse_fraction=0.6,
                                   merge_us_per_shard=5.0, imbalance=0.0)
        assert solo(256) == 1000.0
        # dense 400 + sparse 600/4 + merge 15
        assert quad(256) == pytest.approx(400.0 + 150.0 + 15.0)

    def test_sharded_table_from_multi_card_curves(self):
        from repro.eval.machines import MACHINES
        from repro.models.configs import MODEL_ZOO
        from repro.serving.fleet import sharded_latency_table
        t1 = sharded_latency_table(MODEL_ZOO["LC2"], MACHINES["mtia"],
                                   shards=1, candidate_batches=(64, 256))
        t4 = sharded_latency_table(MODEL_ZOO["LC2"], MACHINES["mtia"],
                                   shards=4, candidate_batches=(64, 256))
        # sharding overlaps sparse lookups: never slower than one card
        assert t4(256) <= t1(256)
        assert t4(256) > 0


class TestRouter:
    def test_round_robin_cycles(self):
        arrivals = np.arange(9, dtype=float) * 10.0
        specs = uniform_fleet(3)
        decision = route_requests(arrivals, RouterConfig(), specs,
                                  np.ones(3))
        assert list(decision.assigned) == [0, 1, 2] * 3

    def test_least_loaded_avoids_expensive_replica(self):
        arrivals = np.arange(40, dtype=float)  # near-simultaneous
        specs = uniform_fleet(2)
        cost = np.array([1000.0, 1.0])         # replica 0 is 1000x slower
        decision = route_requests(
            arrivals, RouterConfig(policy="least_loaded"), specs, cost)
        counts = np.bincount(decision.assigned, minlength=2)
        assert counts[1] > counts[0]

    def test_power_of_two_probes_are_recorded_and_distinct(self):
        arrivals = np.arange(200, dtype=float)
        specs = uniform_fleet(4)
        decision = route_requests(
            arrivals, RouterConfig(policy="power_of_two", seed=5), specs,
            np.ones(4), record_probes=True)
        assert decision.probes.shape == (200, 2)
        assert np.all(decision.probes[:, 0] != decision.probes[:, 1])
        # chosen replica is always one of the two probes
        chosen = decision.assigned
        assert np.all((chosen == decision.probes[:, 0])
                      | (chosen == decision.probes[:, 1]))

    def test_hedge_duplicates_only_above_backlog_threshold(self):
        arrivals = np.zeros(50)                # all at t=0: backlog piles up
        specs = uniform_fleet(2)
        decision = route_requests(
            arrivals, RouterConfig(policy="hedge", hedge_backlog_us=5.0),
            specs, np.ones(2) * 10.0)
        assert decision.num_hedged > 0
        no_hedge = route_requests(
            arrivals, RouterConfig(policy="hedge", hedge_backlog_us=1e9),
            specs, np.ones(2) * 10.0)
        assert no_hedge.num_hedged == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            RouterConfig(policy="random")


class TestFleetSimulation:
    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_attribution_invariant_all_policies(self, policy):
        report = simulate_fleet(MODEL, short_trace(),
                                fleet_config(policy, hedge_backlog_us=50.0))
        assert_fleet_invariant(report)
        assert report.conservation()["conserved"]

    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_attribution_invariant_under_faults(self, policy):
        config = fleet_config(policy, hedge_backlog_us=50.0)
        plan = generate_fleet_plan(11, config.replicas,
                                   horizon_us=15_000.0,
                                   rack_failure_rate=1.0,
                                   power_failure_rate=1.0)
        assert not plan.empty
        report = simulate_fleet(MODEL, short_trace(), config,
                                fault_plan=plan)
        assert_fleet_invariant(report)
        assert report.conservation()["conserved"]

    def test_fleet_spreads_load_across_replicas(self):
        report = simulate_fleet(MODEL, short_trace(), fleet_config())
        per_replica = [r.arrivals_us.size for r in report.per_replica]
        assert all(n > 0 for n in per_replica)
        assert sum(per_replica) == report.arrivals_us.size

    def test_route_latency_shifts_every_latency(self):
        trace = short_trace()
        free = simulate_fleet(MODEL, trace.arrivals(0),
                              fleet_config(route_latency_us=0.0))
        tolled = simulate_fleet(MODEL, trace.arrivals(0),
                                fleet_config(route_latency_us=40.0))
        served = ((free.status == STATUS_SERVED)
                  & (tolled.status == STATUS_SERVED))
        np.testing.assert_allclose(
            tolled.latencies_us[served] - free.latencies_us[served], 40.0,
            atol=1e-6)

    def test_more_replicas_cut_the_tail_under_overload(self):
        trace = short_trace(qps=700_000.0)
        small = simulate_fleet(MODEL, trace,
                               fleet_config(policy="least_loaded",
                                            replicas=2))
        big = simulate_fleet(MODEL, trace,
                             fleet_config(policy="least_loaded",
                                          replicas=6))
        assert big.percentile(99) < small.percentile(99)

    def test_jobs_count_is_invisible_in_the_bytes(self):
        config = fleet_config("power_of_two")
        trace = short_trace()
        serial = simulate_fleet(MODEL, trace, config, jobs=1)
        parallel = simulate_fleet(MODEL, trace, config, jobs=4)
        assert (json.dumps(serial.to_dict(), sort_keys=True)
                == json.dumps(parallel.to_dict(), sort_keys=True))

    def test_heterogeneous_models_one_per_replica(self):
        slow = TabularLatencyModel(
            batches=MODEL.batches,
            latency_us=tuple(2.0 * x for x in MODEL.latency_us))
        report = simulate_fleet([MODEL, slow, MODEL],
                                short_trace(qps=500_000.0),
                                fleet_config("least_loaded"))
        counts = np.bincount(report.assigned, minlength=3)
        assert counts[1] < counts[0]  # router shuns the slow replica
        with pytest.raises(ValueError, match="latency models"):
            simulate_fleet([MODEL, slow], short_trace(), fleet_config())

    def test_telemetry_merges_all_replicas(self):
        report = simulate_fleet(MODEL, short_trace(), fleet_config())
        assert report.telemetry is not None
        total = sum(r.arrivals_us.size for r in report.per_replica)
        assert sum(report.telemetry.status_counts.values()) == total

    def test_correlated_rack_failure_degrades_availability(self):
        config = fleet_config(policy="round_robin", replicas=4)
        # one rack = replicas {0, 1}: both dark for most of the trace
        plan = FaultPlan(events=tuple(
            FaultEvent(start=1_000.0, kind="card.failure", target=t,
                       duration=13_000.0) for t in (0, 1)))
        clean = simulate_fleet(MODEL, short_trace(qps=400_000.0), config)
        faulted = simulate_fleet(MODEL, short_trace(qps=400_000.0),
                                 config, fault_plan=plan)
        assert faulted.availability < clean.availability
        faulted_rows = faulted.replica_rows()
        assert faulted_rows[0]["served"] < faulted_rows[2]["served"]

    def test_slo_from_report_consumes_fleet_report(self):
        from repro.serving.slo import slo_from_report
        report = simulate_fleet(MODEL, short_trace(), fleet_config())
        slo = slo_from_report(report, sla_us=2_000.0)
        assert slo.total == report.arrivals_us.size


class TestFaultPlanGeneration:
    def test_fleet_plan_is_seed_deterministic(self):
        specs = uniform_fleet(6, racks=3, power_domains=2)
        a = generate_fleet_plan(5, specs)
        b = generate_fleet_plan(5, specs)
        assert a.events == b.events
        assert a.events != generate_fleet_plan(6, specs).events

    def test_rack_failures_are_correlated(self):
        specs = uniform_fleet(6, racks=3, power_domains=1)
        plan = generate_fleet_plan(1, specs, rack_failure_rate=2.0,
                                   power_failure_rate=0.0,
                                   replica_slowdown_rate=0.0)
        failures = [e for e in plan.events if e.kind == "card.failure"]
        assert failures
        by_window = {}
        for event in failures:
            by_window.setdefault((event.start, event.duration),
                                 set()).add(event.target)
        racks = {s.rack: {p.replica for p in specs if p.rack == s.rack}
                 for s in specs}
        # every failure window covers exactly one whole rack
        assert all(targets in racks.values()
                   for targets in by_window.values())


class TestAutoscaling:
    def test_scales_up_under_overload(self):
        trace = short_trace(qps=900_000.0, duration_us=40_000.0)
        config = FleetConfig(replicas=uniform_fleet(1),
                             router=RouterConfig(policy="least_loaded"))
        auto = AutoscaleConfig(epoch_us=10_000.0, min_replicas=1,
                               max_replicas=8)
        report = simulate_fleet_autoscaled(MODEL, trace, config, auto,
                                           sla_us=1_500.0)
        timeline = report.replica_timeline
        assert timeline[-1] > timeline[0]
        assert any(e.action == "up" for e in report.epochs)

    def test_scales_down_when_idle(self):
        trace = short_trace(qps=30_000.0, duration_us=40_000.0)
        config = FleetConfig(replicas=uniform_fleet(6),
                             router=RouterConfig(policy="least_loaded"))
        auto = AutoscaleConfig(epoch_us=10_000.0, min_replicas=1,
                               max_replicas=8)
        report = simulate_fleet_autoscaled(MODEL, trace, config, auto,
                                           sla_us=5_000.0)
        assert report.replica_timeline[-1] < 6
        assert any(e.action == "down" for e in report.epochs)

    def test_autoscale_replays_identically(self):
        trace = short_trace(qps=600_000.0, duration_us=30_000.0)
        config = FleetConfig(replicas=uniform_fleet(2),
                             router=RouterConfig(policy="power_of_two"))
        auto = AutoscaleConfig(epoch_us=10_000.0, max_replicas=6)
        a = simulate_fleet_autoscaled(MODEL, trace, config, auto,
                                      sla_us=1_500.0)
        b = simulate_fleet_autoscaled(MODEL, trace, config, auto,
                                      sla_us=1_500.0)
        assert (json.dumps(a.to_dict(), sort_keys=True)
                == json.dumps(b.to_dict(), sort_keys=True))


class TestFleetCapacity:
    def test_returns_minimum_passing_size(self):
        trace = short_trace(qps=600_000.0)
        plan = plan_fleet_capacity(MODEL, trace, sla_us=1_200.0,
                                   policy="power_of_two",
                                   max_replicas=16)
        assert plan.feasible
        # the size below the answer must have failed its probe
        failed = {p["replicas"] for p in plan.probes if not p["ok"]}
        assert plan.replicas - 1 in failed or plan.replicas == 1
        assert plan.p99_us <= 1_200.0
        assert plan.availability >= 0.999

    def test_infeasible_is_reported_not_hidden(self):
        trace = short_trace(qps=600_000.0)
        plan = plan_fleet_capacity(MODEL, trace, sla_us=50.0,
                                   max_replicas=2)
        assert not plan.feasible
        assert plan.replicas == 2

    def test_capacity_answer_is_jobs_invariant(self):
        trace = short_trace(qps=500_000.0)
        a = plan_fleet_capacity(MODEL, trace, sla_us=1_500.0, jobs=1)
        b = plan_fleet_capacity(MODEL, trace, sla_us=1_500.0, jobs=4)
        assert (json.dumps(a.to_dict(), sort_keys=True)
                == json.dumps(b.to_dict(), sort_keys=True))


class TestConfigValidation:
    def test_replicas_must_be_numbered_in_order(self):
        with pytest.raises(ValueError, match="numbered"):
            FleetConfig(replicas=(ReplicaSpec(replica=1),))

    def test_uniform_fleet_topology(self):
        specs = uniform_fleet(6, racks=2, power_domains=3)
        assert [s.rack for s in specs] == [0, 0, 0, 1, 1, 1]
        assert [s.power_domain for s in specs] == [0, 1, 2, 0, 1, 2]

    def test_autoscale_validation(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(min_replicas=5, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscaleConfig(upscale_burn=0.1, downscale_burn=0.5)
