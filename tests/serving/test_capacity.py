"""Capacity-planner edge cases: zero traffic and saturated SLAs."""

from dataclasses import dataclass

import pytest

from repro.serving import BatchingConfig, plan_capacity
from repro.serving.capacity import CapacityPlan, max_qps_per_card


def linear_latency(batch):
    """Synthetic latency model: 100us + 2us per sample (floor 102us)."""
    return 100.0 + 2.0 * batch


@dataclass
class _StubMachine:
    name: str = "stub"
    provisioned_watts: float = 35.0


class _StubLatencyModel:
    """Replaces BatchLatencyModel so the planner tests stay fast."""

    def __init__(self, model_config, machine):
        pass

    def __call__(self, batch):
        return linear_latency(batch)


@pytest.fixture
def stub_planner(monkeypatch):
    monkeypatch.setattr("repro.serving.capacity.BatchLatencyModel",
                        _StubLatencyModel)
    return {"stub": _StubMachine()}


class TestMaxQpsPerCard:
    def test_generous_sla_finds_positive_throughput(self):
        qps, report = max_qps_per_card(linear_latency, sla_us=5000.0)
        assert qps > 0
        assert report.meets_sla(5000.0)

    def test_sla_below_minimum_latency_saturates_to_zero(self):
        # No batch completes under 102us, so a 50us SLA is infeasible
        # at any load: the planner must report zero, not loop.
        qps, report = max_qps_per_card(linear_latency, sla_us=50.0)
        assert qps == 0.0
        assert not report.meets_sla(50.0)

    def test_looser_sla_never_reduces_throughput(self):
        tight, _ = max_qps_per_card(linear_latency, sla_us=400.0)
        loose, _ = max_qps_per_card(linear_latency, sla_us=4000.0)
        assert loose >= tight > 0


class TestPlanCapacity:
    def test_zero_traffic_needs_at_most_one_card(self, stub_planner):
        plans = plan_capacity(None, target_qps=0.0, sla_us=5000.0,
                              machines=stub_planner)
        plan = plans["stub"]
        assert plan.cards == 1
        assert plan.card_qps > 0
        assert plan.total_watts == plan.provisioned_watts

    def test_infeasible_sla_yields_empty_fleet(self, stub_planner):
        plans = plan_capacity(None, target_qps=10_000.0, sla_us=50.0,
                              machines=stub_planner)
        plan = plans["stub"]
        assert plan.card_qps == 0.0
        assert plan.cards == 0
        assert plan.total_watts == 0.0

    def test_fleet_grows_with_target_qps(self, stub_planner):
        small = plan_capacity(None, target_qps=1_000.0, sla_us=5000.0,
                              machines=stub_planner)["stub"]
        large = plan_capacity(None, target_qps=2_000_000.0, sla_us=5000.0,
                              machines=stub_planner)["stub"]
        assert large.cards > small.cards >= 1
        # Both plans use the same per-card throughput; only the fleet
        # size scales with traffic.
        assert large.card_qps == pytest.approx(small.card_qps)


def test_capacity_plan_derived_metrics():
    plan = CapacityPlan(platform="p", cards=4, card_qps=700.0,
                        provisioned_watts=35.0, sla_us=500.0,
                        p99_us=450.0)
    assert plan.total_watts == pytest.approx(140.0)
    assert plan.qps_per_watt == pytest.approx(20.0)
