"""Resilient serving: deadlines, retries, hedging, shedding, failover."""

import numpy as np
import pytest

from repro.faults import PERMANENT, FaultEvent, FaultPlan, FaultInjector
from repro.obs import MetricRegistry
from repro.serving import (BatchingConfig, ResilienceConfig,
                           STATUS_FAILED, STATUS_SERVED, STATUS_SHED,
                           STATUS_TIMEOUT, simulate_serving,
                           simulate_serving_resilient)
from repro.serving.slo import slo_from_report


def linear_latency(batch):
    """150us + 2us per sample — min batch latency 152us."""
    return 150.0 + 2.0 * batch


#: max_batch=4 caps one card's service rate at ~25k qps, so the
#: overload scenarios here actually overload
TIGHT_BATCHING = BatchingConfig(max_batch=4, max_wait_us=200.0)


def resilient(qps=10_000, batching=BatchingConfig(), res=None, n=600,
              seed=0, plan=None):
    faults = FaultInjector(plan) if plan is not None else None
    return simulate_serving_resilient(
        linear_latency, qps, batching, res or ResilienceConfig(),
        num_requests=n, seed=seed, faults=faults,
        registry=MetricRegistry())


def assert_attribution_invariant(report):
    """queue_wait + batch_wait + retry_overhead + execute == latency."""
    total = (report.queue_wait_us + report.batch_wait_us
             + report.retry_overhead_us + report.execute_us)
    np.testing.assert_allclose(total, report.latencies_us, atol=1e-6)


class TestBitIdentityWithPlainSimulator:
    """Default config + no faults must be simulate_serving, bit for bit."""

    def equivalent_reports(self, **kwargs):
        plain = simulate_serving(linear_latency, registry=MetricRegistry(),
                                 **kwargs)
        resil = simulate_serving_resilient(
            linear_latency, registry=MetricRegistry(), **kwargs)
        return plain, resil

    @pytest.mark.parametrize("qps", [500, 10_000, 300_000])
    def test_arrays_bit_identical(self, qps):
        plain, resil = self.equivalent_reports(qps=qps, num_requests=800,
                                               seed=qps)
        for name in ("latencies_us", "queue_wait_us", "batch_wait_us",
                     "execute_us", "arrivals_us", "batch_index"):
            np.testing.assert_array_equal(getattr(plain, name),
                                          getattr(resil, name), err_msg=name)
        assert plain.batch_sizes == resil.batch_sizes
        assert plain.qps_served == resil.qps_served
        assert plain.busy_fraction == resil.busy_fraction

    def test_batch_records_identical(self):
        plain, resil = self.equivalent_reports(qps=50_000, num_requests=500)
        assert [b.to_dict() for b in plain.batches] == \
            [b.to_dict() for b in resil.batches]

    def test_empty_injector_is_bit_identical(self):
        bare = resilient(qps=40_000, n=600)
        armed = resilient(qps=40_000, n=600,
                          plan=FaultPlan(events=()))
        np.testing.assert_array_equal(bare.latencies_us, armed.latencies_us)
        np.testing.assert_array_equal(bare.execute_us, armed.execute_us)
        assert armed.availability == 1.0

    def test_all_served_when_no_failure_features(self):
        report = resilient(qps=20_000, n=400)
        assert report.availability == 1.0
        assert (report.status == STATUS_SERVED).all()
        assert (report.attempts == 1).all()
        assert (report.retry_overhead_us == 0.0).all()
        assert np.isnan(report.abort_us).all()


class TestDeadlines:
    def test_deadline_shorter_than_min_batch_latency_aborts_all(self):
        # 100us deadline < 152us best-case service: nothing can serve,
        # and each request burns its full retry budget first
        res = ResilienceConfig(deadline_us=100.0, max_retries=2)
        report = resilient(qps=5_000, res=res, n=200)
        assert report.availability == 0.0
        assert (report.status == STATUS_TIMEOUT).all()
        assert (report.attempts == 3).all()
        assert np.isnan(report.p99_us)       # percentiles are served-only
        assert np.isfinite(report.abort_us).all()
        assert_attribution_invariant(report)

    def test_loose_deadline_serves_everything(self):
        res = ResilienceConfig(deadline_us=100_000.0, max_retries=2)
        report = resilient(qps=5_000, res=res, n=400)
        assert report.availability == 1.0

    def test_retry_storm_recovers_some_requests(self):
        # over capacity + tight deadline: timeouts spawn retries, some
        # of which land in luckier batches and serve
        res = ResilienceConfig(deadline_us=450.0, max_retries=3,
                               retry_backoff_us=50.0, backoff_cap_us=400.0)
        report = resilient(qps=30_000, batching=TIGHT_BATCHING, res=res,
                           n=800)
        counts = report.counts_by_status()
        assert counts["served"] > 0
        assert counts["timeout"] > 0
        assert float(report.attempts.mean()) > 1.0
        retried = report.attempts > 1
        assert (report.retry_overhead_us[retried] > 0).all()
        assert (report.retry_overhead_us[~retried] == 0).all()
        assert_attribution_invariant(report)

    def test_backoff_is_capped(self):
        res = ResilienceConfig(deadline_us=100.0, max_retries=6,
                               retry_backoff_us=100.0, backoff_cap_us=800.0)
        assert res.backoff_us(0) == 100.0
        assert res.backoff_us(2) == 400.0
        assert res.backoff_us(5) == 800.0   # capped, not 3200


class TestCardFailures:
    def test_all_cards_dead_from_start(self):
        plan = FaultPlan(events=(
            FaultEvent(start=0.0, kind="card.failure", target=-1,
                       duration=PERMANENT),))
        res = ResilienceConfig(num_cards=2, max_retries=1)
        report = resilient(qps=10_000, res=res, n=150, plan=plan)
        assert report.availability == 0.0
        assert (report.status == STATUS_FAILED).all()
        assert (report.attempts == 2).all()
        assert report.qps_served == 0.0
        assert_attribution_invariant(report)

    def test_one_card_dies_survivors_absorb(self):
        # one of two cards dies permanently mid-run; requests arriving
        # after the failure still serve on the survivor
        fail_at = 15_000.0
        plan = FaultPlan(events=(
            FaultEvent(start=fail_at, kind="card.failure", target=0,
                       duration=PERMANENT),))
        res = ResilienceConfig(num_cards=2, max_retries=2)
        report = resilient(qps=15_000, batching=TIGHT_BATCHING, res=res,
                           n=600, plan=plan)
        late = report.arrivals_us > fail_at
        assert late.any()
        assert report.availability == 1.0
        assert (report.status[late] == STATUS_SERVED).all()
        assert_attribution_invariant(report)

    def test_transient_failure_kills_inflight_batch_then_recovers(self):
        # a mid-execute outage: the in-flight batch dies and retries
        plan = FaultPlan(events=(
            FaultEvent(start=300.0, kind="card.failure", target=0,
                       duration=400.0),))
        res = ResilienceConfig(num_cards=1, max_retries=2)
        report = resilient(qps=20_000, batching=TIGHT_BATCHING, res=res,
                           n=60, plan=plan)
        assert report.availability == 1.0
        assert (report.attempts > 1).any()
        assert_attribution_invariant(report)

    def test_card_slowdown_stretches_execute(self):
        plan = FaultPlan(events=(
            FaultEvent(start=0.0, kind="card.slowdown", target=-1,
                       duration=PERMANENT, magnitude=3.0),))
        slow = resilient(qps=1_000, n=300, plan=plan)
        # batch composition may shift (slower service backs the queue
        # up), so check per-request against each batch's own size
        sizes = np.array(slow.batch_sizes)[slow.batch_index]
        np.testing.assert_allclose(slow.execute_us,
                                   3.0 * (150.0 + 2.0 * sizes))
        assert slow.availability == 1.0


class TestHedging:
    def test_hedged_dispatch_can_win(self):
        # card 0 keeps dying mid-execute; under queue pressure batches
        # hedge onto card 1 and the hedge copy survives the outage
        events = tuple(FaultEvent(start=s, kind="card.failure", target=0,
                                  duration=80.0)
                       for s in np.arange(200.0, 120_000.0, 300.0))
        res = ResilienceConfig(num_cards=2, hedge_after_us=30.0,
                               max_retries=1)
        report = resilient(qps=60_000, batching=TIGHT_BATCHING, res=res,
                           n=2000, plan=FaultPlan(events=events))
        assert report.hedged_batches > 0
        assert report.hedge_wins >= 1
        assert report.availability == 1.0
        assert_attribution_invariant(report)

    def test_no_hedging_on_single_card(self):
        res = ResilienceConfig(num_cards=1, hedge_after_us=1.0)
        report = resilient(qps=300_000, batching=TIGHT_BATCHING, res=res,
                           n=400)
        assert report.hedged_batches == 0
        assert report.hedge_wins == 0


class TestShedding:
    def test_overload_sheds_beyond_depth(self):
        res = ResilienceConfig(shed_queue_depth=32)
        report = resilient(qps=80_000, batching=TIGHT_BATCHING, res=res,
                           n=800)
        counts = report.counts_by_status()
        assert counts["shed"] > 0
        assert counts["served"] + counts["shed"] == 800
        assert report.availability < 1.0
        assert_attribution_invariant(report)

    def test_shedding_bounds_served_latency(self):
        res = ResilienceConfig(shed_queue_depth=32)
        shed = resilient(qps=80_000, batching=TIGHT_BATCHING, res=res,
                         n=800)
        unshed = resilient(qps=80_000, batching=TIGHT_BATCHING, n=800)
        # the shed run serves fewer requests but far faster
        assert shed.availability < 1.0
        assert shed.p99_us < 0.5 * unshed.p99_us


class TestAbortedRequestAccounting:
    """Satellite regression: aborts are excluded from percentiles but
    counted against availability (and always burn SLO budget)."""

    @pytest.fixture()
    def mixed(self):
        res = ResilienceConfig(deadline_us=450.0, max_retries=1,
                               retry_backoff_us=50.0)
        return resilient(qps=30_000, batching=TIGHT_BATCHING, res=res,
                         n=800)

    def test_percentiles_are_served_only(self, mixed):
        mask = mixed.served_mask
        assert 0 < mask.sum() < mask.size
        expected = float(np.percentile(mixed.latencies_us[mask], 99.0))
        assert mixed.p99_us == expected
        # aborted latencies would otherwise drag the percentile around
        polluted = float(np.percentile(mixed.latencies_us, 99.0))
        assert mixed.p99_us != polluted

    def test_availability_counts_aborts(self, mixed):
        counts = mixed.counts_by_status()
        assert mixed.availability == counts["served"] / 800.0
        assert sum(counts.values()) == 800

    def test_slo_counts_aborts_as_violations(self, mixed):
        slo = slo_from_report(mixed, sla_us=1_000.0)
        counts = mixed.counts_by_status()
        aborted = 800 - counts["served"]
        assert slo.aborted == aborted
        assert slo.total == 800
        assert slo.violations >= aborted
        window_aborts = sum(w.count for w in slo.windows)
        assert window_aborts == 800

    def test_breakdown_means_are_served_only(self, mixed):
        mask = mixed.served_mask
        means = mixed.breakdown_means()
        assert means["execute"] == pytest.approx(
            float(mixed.execute_us[mask].mean()))
        assert means["retry_overhead"] == pytest.approx(
            float(mixed.retry_overhead_us[mask].mean()))

    def test_request_rows_carry_status(self, mixed):
        rows = mixed.request_rows(limit=50)
        assert {"status", "attempts", "retry_overhead_us"} <= rows[0].keys()
        assert {r["status"] for r in rows} <= {"served", "shed", "timeout",
                                               "failed"}


class TestConfigValidation:
    def test_bad_num_cards_rejected(self):
        with pytest.raises(ValueError):
            ResilienceConfig(num_cards=0)

    @pytest.mark.parametrize("field", ["deadline_us", "max_retries",
                                       "retry_backoff_us", "backoff_cap_us",
                                       "hedge_after_us", "shed_queue_depth"])
    def test_negative_knobs_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            ResilienceConfig(**{field: -1})

    def test_invalid_qps_rejected(self):
        with pytest.raises(ValueError):
            simulate_serving_resilient(linear_latency, qps=0.0,
                                       registry=MetricRegistry())


class TestDeterminism:
    def test_same_seed_and_plan_replay_exactly(self):
        plan = FaultPlan.generate(5, kinds=("card.failure",
                                            "card.slowdown"))
        res = ResilienceConfig(num_cards=2, deadline_us=2_000.0,
                               max_retries=2, hedge_after_us=100.0,
                               shed_queue_depth=64)
        a = resilient(qps=40_000, batching=TIGHT_BATCHING, res=res,
                      n=500, plan=plan)
        b = resilient(qps=40_000, batching=TIGHT_BATCHING, res=res,
                      n=500, plan=plan)
        for name in ("latencies_us", "status", "attempts",
                     "retry_overhead_us", "abort_us", "batch_index"):
            np.testing.assert_array_equal(getattr(a, name),
                                          getattr(b, name), err_msg=name)
        assert a.hedged_batches == b.hedged_batches
        assert a.hedge_wins == b.hedge_wins

    def test_metrics_record_availability_and_outcomes(self):
        registry = MetricRegistry()
        res = ResilienceConfig(deadline_us=100.0, max_retries=0)
        simulate_serving_resilient(linear_latency, qps=5_000,
                                   resilience=res, num_requests=100,
                                   registry=registry)
        text = registry.to_prometheus()
        assert "serving_availability" in text
        assert "serving_outcomes" in text
