"""Traffic traces: seeded determinism, rate shapes, guard rails."""

import numpy as np
import pytest

from repro.serving.traffic import TRACES, Burst, TrafficTrace, trace_preset


def small_trace(**kw):
    base = dict(users_millions=0.01, qps_per_user=0.02,
                duration_us=100_000.0, window_us=5_000.0)
    base.update(kw)
    return TrafficTrace(**base)


class TestRateCurve:
    def test_base_qps_scales_with_population(self):
        assert small_trace().base_qps == pytest.approx(0.01 * 1e6 * 0.02)

    def test_steady_trace_rate_is_flat(self):
        trace = small_trace()
        t = np.linspace(0, trace.duration_us, 50)
        assert np.allclose(trace.rate_at(t), trace.base_qps)

    def test_diurnal_swings_around_base(self):
        trace = small_trace(diurnal_amplitude=0.5, day_us=100_000.0)
        t = np.linspace(0, trace.duration_us, 1000)
        rates = trace.rate_at(t)
        assert rates.max() == pytest.approx(1.5 * trace.base_qps, rel=0.01)
        assert rates.min() == pytest.approx(0.5 * trace.base_qps, rel=0.01)

    def test_burst_multiplies_rate_inside_window_only(self):
        trace = small_trace(bursts=(Burst(start_us=40_000.0,
                                          duration_us=20_000.0,
                                          magnitude=3.0),))
        assert trace.rate_at(50_000.0) == pytest.approx(3 * trace.base_qps)
        assert trace.rate_at(10_000.0) == pytest.approx(trace.base_qps)
        assert trace.rate_at(70_000.0) == pytest.approx(trace.base_qps)

    def test_peak_qps_sees_the_burst(self):
        trace = small_trace(bursts=(Burst(start_us=40_000.0,
                                          duration_us=20_000.0,
                                          magnitude=3.0),))
        assert trace.peak_qps == pytest.approx(3 * trace.base_qps)


class TestArrivals:
    def test_same_seed_same_bytes(self):
        trace = small_trace(diurnal_amplitude=0.3)
        a = trace.arrivals(7)
        b = trace.arrivals(7)
        assert a.tobytes() == b.tobytes()

    def test_different_seeds_differ(self):
        trace = small_trace()
        assert not np.array_equal(trace.arrivals(0), trace.arrivals(1))

    def test_arrivals_sorted_and_in_span(self):
        trace = small_trace(diurnal_amplitude=0.4, day_us=150_000.0)
        arrivals = trace.arrivals(3)
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals[0] >= 0
        assert arrivals[-1] <= trace.duration_us

    def test_count_tracks_expected_requests(self):
        trace = small_trace()
        counts = [trace.arrivals(s).size for s in range(5)]
        expected = trace.expected_requests()
        assert expected * 0.8 < np.mean(counts) < expected * 1.2

    def test_burst_concentrates_arrivals(self):
        trace = small_trace(bursts=(Burst(start_us=40_000.0,
                                          duration_us=20_000.0,
                                          magnitude=4.0),))
        arrivals = trace.arrivals(0)
        inside = np.count_nonzero((arrivals >= 40_000) & (arrivals < 60_000))
        # the burst window is 1/5 of the span but 4x the rate
        assert inside / arrivals.size > 0.4

    def test_max_requests_cap_raises(self):
        trace = small_trace(max_requests=10)
        with pytest.raises(ValueError, match="max_requests"):
            trace.arrivals(0)


class TestScalingAndPresets:
    def test_scaled_to_hits_target_base_qps(self):
        trace = small_trace().scaled_to(1234.0)
        assert trace.base_qps == pytest.approx(1234.0)

    def test_presets_exist_and_scale(self):
        for name in ("steady", "diurnal", "spike", "flash_crowd"):
            assert name in TRACES
            assert trace_preset(name, 500.0).base_qps == pytest.approx(500.0)

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError, match="unknown trace"):
            trace_preset("nope")

    def test_to_dict_round_trip_fields(self):
        data = small_trace(diurnal_amplitude=0.2,
                           bursts=(Burst(1.0, 2.0),)).to_dict()
        assert data["diurnal_amplitude"] == 0.2
        assert data["bursts"][0]["magnitude"] == 2.0


class TestValidation:
    def test_rejects_nonpositive_population(self):
        with pytest.raises(ValueError):
            small_trace(users_millions=0.0)

    def test_rejects_amplitude_of_one(self):
        with pytest.raises(ValueError):
            small_trace(diurnal_amplitude=1.0)

    def test_rejects_bad_burst(self):
        with pytest.raises(ValueError):
            Burst(start_us=-1.0, duration_us=10.0)
        with pytest.raises(ValueError):
            Burst(start_us=0.0, duration_us=10.0, magnitude=0.0)
