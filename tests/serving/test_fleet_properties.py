"""Property tests for the fleet router and fleet composition.

Three properties the ISSUE pins:

* **conservation** — every arrival is served, shed, or aborted, and
  fleet totals equal the sum over replicas (plus hedge duplicates);
* **power-of-two never routes to a strictly worse queue** than its two
  samples (by the router's own backlog estimate at decision time);
* **seeded policy determinism** — the same seed + config yields an
  identical assignment vector, and a different router seed genuinely
  reshuffles the sampled policies.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.fleet import (ROUTING_POLICIES, FleetConfig,
                                 RouterConfig, TabularLatencyModel,
                                 route_requests, simulate_fleet,
                                 uniform_fleet)
from repro.serving.resilience import ResilienceConfig

MODEL = TabularLatencyModel(batches=(1, 4, 16, 64, 256),
                            latency_us=(60.0, 75.0, 110.0, 260.0, 860.0))


def arrivals_strategy(max_n=300):
    """Sorted arrival vectors with bursty inter-arrival gaps."""
    return st.lists(st.floats(min_value=0.0, max_value=200.0,
                              allow_nan=False),
                    min_size=1, max_size=max_n).map(
        lambda gaps: np.cumsum(np.asarray(gaps)))


@st.composite
def router_cases(draw):
    num_replicas = draw(st.integers(min_value=2, max_value=6))
    policy = draw(st.sampled_from(ROUTING_POLICIES))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    arrivals = draw(arrivals_strategy())
    cost = np.asarray(draw(st.lists(
        st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
        min_size=num_replicas, max_size=num_replicas)))
    return num_replicas, policy, seed, arrivals, cost


@given(router_cases())
def test_power_of_two_never_picks_the_worse_probe(case):
    num, _, seed, arrivals, cost = case
    specs = uniform_fleet(num)
    decision = route_requests(
        arrivals, RouterConfig(policy="power_of_two", seed=seed), specs,
        cost, record_probes=True)
    chosen = decision.chosen_backlog   # recorded before the cost charge
    worse = np.maximum(decision.probe_backlogs[:, 0],
                       decision.probe_backlogs[:, 1])
    better = np.minimum(decision.probe_backlogs[:, 0],
                        decision.probe_backlogs[:, 1])
    assert np.all(chosen <= worse + 1e-9)
    # and in fact it always takes the better of the two
    np.testing.assert_allclose(chosen, better, atol=1e-9)


@given(router_cases())
def test_routing_is_a_pure_function_of_seed_and_config(case):
    num, policy, seed, arrivals, cost = case
    specs = uniform_fleet(num)
    config = RouterConfig(policy=policy, seed=seed)
    a = route_requests(arrivals, config, specs, cost)
    b = route_requests(arrivals, config, specs, cost)
    assert np.array_equal(a.assigned, b.assigned)
    assert np.array_equal(a.hedged, b.hedged)


@given(st.integers(min_value=0, max_value=2**31 - 2),
       st.integers(min_value=2, max_value=5))
def test_different_seeds_reshuffle_sampled_probes(seed, num):
    arrivals = np.arange(400, dtype=float) * 2.0
    specs = uniform_fleet(num)
    cost = np.ones(num)
    a = route_requests(arrivals,
                       RouterConfig(policy="power_of_two", seed=seed),
                       specs, cost, record_probes=True)
    b = route_requests(arrivals,
                       RouterConfig(policy="power_of_two", seed=seed + 1),
                       specs, cost, record_probes=True)
    # the pre-drawn sample stream is the seeded quantity: a new seed
    # must genuinely redraw it (at num=2 the deduped pair is always
    # {0, 1}, so the assignment itself may legitimately coincide)
    assert not np.array_equal(a.probes, b.probes)


@settings(max_examples=15)
@given(policy=st.sampled_from(ROUTING_POLICIES),
       seed=st.integers(min_value=0, max_value=10_000),
       num_replicas=st.integers(min_value=1, max_value=4),
       qps=st.floats(min_value=20_000.0, max_value=600_000.0))
def test_every_arrival_is_accounted_for(policy, seed, num_replicas, qps):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(50, 250))
    arrivals = np.cumsum(rng.exponential(1e6 / qps, size=n))
    config = FleetConfig(
        replicas=uniform_fleet(num_replicas, racks=2, power_domains=2),
        router=RouterConfig(policy=policy, seed=seed,
                            hedge_backlog_us=100.0),
        resilience=ResilienceConfig(deadline_us=3_000.0, max_retries=1,
                                    shed_queue_depth=64),
        racks=2, power_domains=2, seed=seed)
    report = simulate_fleet(MODEL, arrivals, config)
    cons = report.conservation()
    assert cons["conserved"]
    assert cons["accounted"] == n
    # fleet totals == sum over replicas once hedge duplicates are removed
    assert cons["replica_requests"] == n + cons["hedged_copies"]
    # the attribution identity holds for every routed request
    total = (report.queue_wait_us + report.batch_wait_us
             + report.retry_overhead_us + report.route_overhead_us
             + report.hedge_wait_us + report.execute_us)
    np.testing.assert_allclose(total, report.latencies_us, atol=1e-6)
