"""Serving/fleet critical paths and the observed-latency feed.

The load-bearing claim: ``path.total`` reproduces the simulator's own
latency arithmetic *bit-for-bit* — for every request, every routing
policy, faults, retries, and hedged duplicates included.
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, FaultProfile, \
    generate_fleet_plan
from repro.obs.critical import (fleet_critical_path,
                                serving_critical_path,
                                slowest_critical_paths)
from repro.serving.fleet import (ROUTING_POLICIES, FleetConfig,
                                 RouterConfig, TabularLatencyModel,
                                 simulate_fleet, uniform_fleet)
from repro.serving.resilience import (ResilienceConfig,
                                      simulate_serving_resilient)
from repro.serving.simulator import BatchingConfig, simulate_serving
from repro.serving.traffic import trace_preset


def model(batch: int) -> float:
    return 120.0 + 2.0 * batch


BATCHING = BatchingConfig(max_batch=32, max_wait_us=150.0)

#: saturating hedge fleet: router-view utilisation > 1 so the hedge
#: policy actually fires (185 hedge wins at these settings)
HEDGE_MODEL = TabularLatencyModel(
    batches=(1, 4, 16, 64, 256),
    latency_us=tuple(150.0 + 2.0 * b for b in (1, 4, 16, 64, 256)))


def hedge_fleet():
    config = FleetConfig(
        replicas=uniform_fleet(3, racks=2, power_domains=2),
        router=RouterConfig(policy="hedge", route_latency_us=15.0,
                            seed=7, hedge_backlog_us=50.0,
                            hedge_delay_us=25.0),
        batching=BatchingConfig(max_batch=16, max_wait_us=200.0),
        resilience=ResilienceConfig(deadline_us=20_000.0, max_retries=1))
    trace = replace(trace_preset("flash_crowd", target_qps=300_000.0),
                    duration_us=20_000.0)
    return simulate_fleet(HEDGE_MODEL, trace, config)


def assert_paths_exact(report, extractor, indices):
    for i in indices:
        path = extractor(report, int(i)).verify()
        assert path.total == float(report.latencies_us[i]), \
            f"request {i}: path total diverges from stored latency"
        assert math.fsum(s.duration for s in path.segments) \
            == pytest.approx(path.total, abs=1e-9)


class TestServingPaths:
    def test_every_request_sums_bitwise(self):
        report = simulate_serving(model, qps=30_000, batching=BATCHING,
                                  num_requests=500, seed=7,
                                  registry=None)
        assert_paths_exact(report, serving_critical_path,
                           range(report.latencies_us.size))

    def test_resilient_with_faults_and_sheds(self):
        plan = FaultPlan.generate(
            3, FaultProfile(horizon_us=30_000.0),
            kinds=("card.failure", "card.slowdown"))
        report = simulate_serving_resilient(
            model, qps=60_000, batching=BatchingConfig(max_batch=4),
            resilience=ResilienceConfig(shed_queue_depth=8,
                                        deadline_us=4_000.0,
                                        max_retries=1),
            num_requests=800, seed=1, registry=None,
            faults=FaultInjector(plan))
        statuses = set(report.counts_by_status())
        assert "served" in statuses
        assert_paths_exact(report, serving_critical_path,
                           range(report.latencies_us.size))
        # non-served paths end at the abort stamp, not a batch finish
        for i in np.flatnonzero(~report.served_mask)[:20]:
            path = serving_critical_path(report, int(i))
            assert path.attrs["status"] != "served"
            assert path.segments[-1].resource == "abort"

    def test_out_of_range_rejected(self):
        report = simulate_serving(model, qps=30_000, batching=BATCHING,
                                  num_requests=10, seed=7, registry=None)
        with pytest.raises(IndexError):
            serving_critical_path(report, 10)


class TestFleetPaths:
    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_every_policy_sums_bitwise(self, policy):
        config = FleetConfig(
            replicas=uniform_fleet(3, racks=2, power_domains=2),
            router=RouterConfig(policy=policy, route_latency_us=10.0,
                                seed=2),
            resilience=ResilienceConfig(deadline_us=6_000.0,
                                        max_retries=1))
        trace = replace(trace_preset("steady", target_qps=300_000.0),
                        duration_us=10_000.0)
        plan = generate_fleet_plan(5, config.replicas,
                                   horizon_us=10_000.0)
        report = simulate_fleet(HEDGE_MODEL, trace, config,
                                fault_plan=plan)
        assert_paths_exact(report, fleet_critical_path,
                           range(report.latencies_us.size))

    def test_hedge_wins_carry_hedge_segment(self):
        report = hedge_fleet()
        assert report.hedged_requests > 0
        assert report.hedge_wins > 0
        assert_paths_exact(report, fleet_critical_path,
                           range(report.latencies_us.size))
        won = np.flatnonzero(report.hedge_wait_us > 0)
        assert won.size == report.hedge_wins
        for i in won[:25]:
            path = fleet_critical_path(report, int(i))
            assert path.attrs["hedge_won"] is True
            kinds = {s.kind for s in path.segments}
            assert "hedge_wait" in kinds and "route" in kinds

    def test_router_hop_is_first_segment(self):
        report = hedge_fleet()
        path = fleet_critical_path(report, 0)
        assert path.segments[0].resource == "router"
        assert path.segments[0].duration == 15.0


class TestSlowestPaths:
    def test_serving_selection_is_descending_and_served_only(self):
        report = simulate_serving(model, qps=30_000, batching=BATCHING,
                                  num_requests=400, seed=7,
                                  registry=None)
        paths = slowest_critical_paths(report, k=6)
        assert len(paths) == 6
        totals = [p.total for p in paths]
        assert totals == sorted(totals, reverse=True)
        assert totals[0] == float(report.latencies_us.max())

    def test_fleet_dispatch(self):
        report = hedge_fleet()
        paths = slowest_critical_paths(report, k=4)
        assert len(paths) == 4
        assert all("replica" in p.attrs for p in paths)
        served = report.latencies_us[report.served_mask]
        assert paths[0].total == float(served.max())

    def test_k_zero_and_empty(self):
        report = simulate_serving(model, qps=30_000, batching=BATCHING,
                                  num_requests=10, seed=7, registry=None)
        assert slowest_critical_paths(report, k=0) == []


class TestObservedFeed:
    @pytest.fixture(scope="class")
    def report(self):
        return hedge_fleet()

    def test_feed_matches_exact_quantiles(self, report):
        feed = report.observed_latency()
        served = report.served_mask
        for replica, sketch in feed.sketches.items():
            mask = served & (report.replica == replica)
            exact = report.latencies_us[mask]
            assert sketch.count == int(mask.sum())
            if exact.size:
                for q, got in ((50, sketch.p50), (95, sketch.p95),
                               (99, sketch.p99)):
                    want = float(np.percentile(exact, q))
                    assert abs(got - want) <= 0.0101 * want
                assert sketch.max == float(exact.max())

    def test_all_served_requests_counted_once(self, report):
        feed = report.observed_latency()
        total = sum(s.count for s in feed.sketches.values())
        assert total == int(report.served_mask.sum())

    def test_series_keyed_by_completion_time(self, report):
        feed = report.observed_latency(window_us=2_000.0)
        for replica, series in feed.series.items():
            assert series.count == feed.sketches[replica].count
            assert len(series) > 1   # completions span many windows
        assert feed.window_us == 2_000.0

    def test_service_estimates_cover_all_replicas(self, report):
        feed = report.observed_latency()
        assert set(feed.service_us) == {0, 1, 2}
        for value in feed.service_us.values():
            assert 0.0 < value < HEDGE_MODEL(16)
        static = [11.0, 12.0, 13.0]
        merged = feed.observed_service_estimates(static)
        assert merged.shape == (3,)
        assert not np.array_equal(merged, static)

    def test_with_observed_service_closes_the_loop(self, report):
        feed = report.observed_latency()
        config = report.with_observed_service()
        for spec in config.replicas:
            assert spec.service_us == feed.service_us[spec.replica]
        # the re-routed run is a valid simulation of the same trace
        trace = replace(trace_preset("flash_crowd",
                                     target_qps=300_000.0),
                        duration_us=20_000.0)
        second = simulate_fleet(HEDGE_MODEL, trace, config)
        assert second.latencies_us.size == report.latencies_us.size
        assert_paths_exact(second, fleet_critical_path,
                           range(0, second.latencies_us.size, 7))

    def test_to_dict_shape_and_determinism(self, report):
        feed = report.observed_latency()
        data = feed.to_dict(max_windows=8)
        assert {row["replica"] for row in data["replicas"]} == {0, 1, 2}
        for row in data["replicas"]:
            assert set(row["latency_us"]) == {"p50", "p95", "p99", "max"}
            assert row["served"] > 0
        import json
        again = hedge_fleet().observed_latency().to_dict(max_windows=8)
        assert json.dumps(data, sort_keys=True) != ""
        assert json.dumps(feed.to_dict(max_windows=8), sort_keys=True) \
            == json.dumps(again, sort_keys=True)

    def test_fleet_to_dict_carries_feed(self, report):
        data = report.to_dict()
        assert "observed_latency" in data
        assert len(data["observed_latency"]["replicas"]) == 3
