"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.config import MTIA_V1, ChipConfig
from repro.core import Accelerator
from repro.memory import SRAMMode
from repro.sim import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def accelerator():
    """A default accelerator (SRAM in cache mode)."""
    return Accelerator(MTIA_V1)


@pytest.fixture
def scratchpad_accelerator():
    """An accelerator with the SRAM configured as scratchpad."""
    return Accelerator(MTIA_V1, sram_mode=SRAMMode.SCRATCHPAD)


@pytest.fixture
def small_config():
    """A 2x2-grid configuration for cheap simulation tests."""
    return MTIA_V1.scaled(grid_rows=2, grid_cols=2)


@pytest.fixture
def small_accelerator(small_config):
    return Accelerator(small_config)
