"""Shared fixtures and hypothesis profiles for the test suite."""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.config import MTIA_V1, ChipConfig
from repro.core import Accelerator
from repro.memory import SRAMMode
from repro.sim import Engine

# Hypothesis profiles: "dev" keeps the local loop fast, "ci" digs
# deeper.  Both disable deadlines (DES runs have high variance) and
# print the reproduction blob so a failing example can be replayed
# with @reproduce_failure.  Select with HYPOTHESIS_PROFILE=ci.
settings.register_profile(
    "dev", max_examples=25, deadline=None, print_blob=True,
    suppress_health_check=[HealthCheck.too_slow])
settings.register_profile(
    "ci", max_examples=100, deadline=None, print_blob=True,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def accelerator():
    """A default accelerator (SRAM in cache mode)."""
    return Accelerator(MTIA_V1)


@pytest.fixture
def scratchpad_accelerator():
    """An accelerator with the SRAM configured as scratchpad."""
    return Accelerator(MTIA_V1, sram_mode=SRAMMode.SCRATCHPAD)


@pytest.fixture
def small_config():
    """A 2x2-grid configuration for cheap simulation tests."""
    return MTIA_V1.scaled(grid_rows=2, grid_cols=2)


@pytest.fixture
def small_accelerator(small_config):
    return Accelerator(small_config)
