"""The figure/table data generators reproduce the paper's shapes.

These are the same checks the benchmark suite makes, at reduced scope,
so a plain ``pytest tests/`` run already validates the reproduction.
"""

import numpy as np
import pytest

from repro.eval.figures import (dlrm_bench, fc_bench, other_operators_bench,
                                tbe_bench)
from repro.eval.tables import (TABLE_III_PAPER, format_table, table_i,
                               table_ii, table_iii, table_iv)
from repro.models.configs import MODEL_ZOO
from repro.models.dlrm import model_flops


class TestFig10And11:
    def test_int8_ratio_declines_with_shape(self):
        rows = fc_bench("int8")
        ratios = [r.ratio_vs_gpu for r in rows]
        assert ratios[0] > ratios[len(ratios) // 2] > ratios[-1]

    def test_small_shapes_reach_2x(self):
        """"In many cases, MTIA achieves 2x or greater performance per
        Watt ... particularly effective for low batch sizes"."""
        rows = fc_bench("int8")
        assert sum(1 for r in rows if r.ratio_vs_gpu >= 2.0) >= len(rows) // 2

    def test_largest_shapes_near_parity(self):
        rows = fc_bench("int8")
        assert 0.7 <= rows[-1].ratio_vs_gpu <= 1.3

    def test_fp16_tracks_int8(self):
        """"the trend lines roughly track for MTIA and the GPU across
        INT8 and FP16"."""
        int8 = fc_bench("int8")
        fp16 = fc_bench("fp16")
        for r8, r16 in zip(int8, fp16):
            assert r16.ratio_vs_gpu == pytest.approx(r8.ratio_vs_gpu,
                                                     rel=0.25)

    def test_int8_roughly_doubles_fp16_throughput(self):
        """"INT8 quantization unlocks a potential 2x improvement in FC
        throughput" — at saturation."""
        int8 = fc_bench("int8")[-1].perf_w["mtia"]
        fp16 = fc_bench("fp16")[-1].perf_w["mtia"]
        assert int8 == pytest.approx(2 * fp16, rel=0.3)


class TestFig12:
    def test_mtia_bw_fraction_in_band(self):
        """"MTIA is reaching just 10-20% of its memory bandwidth"."""
        for row in tbe_bench():
            assert 0.08 <= row.mtia_bw_fraction <= 0.22

    def test_ratio_band(self):
        """MTIA achieves "between 0.6x to 1.5x the perf/W of the GPU";
        we reproduce the band's lower half plus the small-pooling
        crossover (see EXPERIMENTS.md for the documented shortfall)."""
        ratios = [r.ratio_vs_gpu for r in tbe_bench()]
        assert max(ratios) >= 0.95
        assert min(ratios) >= 0.25
        assert sum(1 for r in ratios if 0.55 <= r <= 1.5) >= len(ratios) // 2

    def test_mtia_favoured_at_small_pooling(self):
        rows = tbe_bench()
        assert rows[0].ratio_vs_gpu > rows[-1].ratio_vs_gpu

    def test_hand_tuned_reaches_500_gbs_class(self):
        """"performance levels as high as 500 GB/s ... given sufficient
        locality in the SRAM" -> ~6 GB/s/W."""
        rows = tbe_bench(hand_tuned=True)
        best = max(r.gbs_w["mtia"] for r in rows)
        assert best > 1.0   # production kernels sit at ~0.3-0.5


class TestFig13:
    def test_sram_fractions(self):
        """BMM > ~90 % and Tanh > 80 % of SRAM bandwidth."""
        rows = {(r.operator, r.placement): r
                for r in other_operators_bench()}
        assert rows[("BatchMatMul", "sram")].fraction_of_bw > 0.8
        assert rows[("Tanh", "sram")].fraction_of_bw > 0.8
        for op in ("Concat", "Transpose", "Quantize", "Dequantize"):
            assert rows[(op, "sram")].fraction_of_bw > 0.6

    def test_dram_efficiency_around_40_percent(self):
        """"the efficiency drops down to around 40% on average"."""
        dram = [r.fraction_of_bw for r in other_operators_bench()
                if r.placement == "dram"]
        assert np.mean(dram) == pytest.approx(0.42, abs=0.08)

    def test_sram_absolute_bandwidth_higher(self):
        rows = other_operators_bench()
        by_op = {}
        for r in rows:
            by_op.setdefault(r.operator, {})[r.placement] = r.achieved_gbs
        for op, values in by_op.items():
            assert values["sram"] > 3 * values["dram"], op


class TestFig14:
    @pytest.fixture(scope="class")
    def rows(self):
        return dlrm_bench(batch=256)

    def test_lc2_shows_nearly_3x(self, rows):
        lc2 = next(r for r in rows if r.model == "LC2")
        assert 2.2 <= lc2.ratio_vs_gpu <= 3.8

    def test_medium_models_still_ahead(self, rows):
        for name in ("MC1", "MC2"):
            row = next(r for r in rows if r.model == name)
            assert 1.0 < row.ratio_vs_gpu < 2.0

    def test_hc_behind_gpu(self, rows):
        hc = next(r for r in rows if r.model == "HC")
        assert hc.ratio_vs_gpu < 0.8

    def test_flops_weighted_average_near_0_9(self, rows):
        """The abstract's "We averaged 0.9x perf/W across various
        DLRMs"."""
        weights = [model_flops(MODEL_ZOO[r.model]) for r in rows]
        ratios = [r.ratio_vs_gpu for r in rows]
        avg = np.average(ratios, weights=weights)
        assert avg == pytest.approx(0.9, abs=0.15)

    def test_nnpi_average_near_1_6(self, rows):
        """"Compared to NNPI, MTIA achieves 1.6x higher efficiency"."""
        weights = [model_flops(MODEL_ZOO[r.model]) for r in rows]
        ratios = [r.ratio_vs_nnpi for r in rows]
        avg = np.average(ratios, weights=weights)
        assert 1.2 <= avg <= 2.0
        assert all(r > 1.0 for r in ratios)


class TestTables:
    def test_table_i_round_trip(self):
        rows = table_i()
        assert rows["GEMM TOPS (INT8)"] == pytest.approx(104.9, abs=0.1)

    def test_table_ii_columns(self):
        rows = table_ii()
        assert set(rows) == {"Yosemite V2", "Zion4S", "Yosemite V3"}

    @pytest.mark.parametrize("batch", [64, 256])
    def test_table_iii_dominated_by_fc_and_eb(self, batch):
        breakdown = table_iii(batch)
        assert breakdown["fc"] + breakdown["eb"] > 55
        top_two = sorted(breakdown, key=breakdown.get)[-2:]
        assert set(top_two) == {"fc", "eb"}

    def test_table_iii_fc_leads_at_batch_64(self):
        breakdown = table_iii(64)
        assert breakdown["fc"] == max(breakdown.values())

    def test_table_iii_fc_share_declines_with_batch(self):
        """Paper: FC 42.1 % at batch 64 -> 32.4 % at 256."""
        b64, b256 = table_iii(64), table_iii(256)
        assert b64["fc"] > b256["fc"]
        assert b256["concat"] > b64["concat"]

    def test_table_iii_shares_roughly_match_paper(self):
        b64 = table_iii(64)
        assert b64["fc"] == pytest.approx(TABLE_III_PAPER[64]["fc"], abs=12)
        assert b64["eb"] == pytest.approx(TABLE_III_PAPER[64]["eb"], abs=15)

    def test_table_iv_matches_targets(self):
        rows = table_iv()
        assert rows["HC"]["Size (GB)"] == pytest.approx(725, rel=0.02)

    def test_format_table_renders(self):
        text = format_table(table_ii(), title="Table II")
        assert "Table II" in text
        assert "Zion4S" in text
