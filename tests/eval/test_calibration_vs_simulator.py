"""Cross-validation: the analytical model vs the cycle-level simulator.

The analytical perf model drives the full-figure sweeps; these tests pin
it against the DES on shapes small enough to simulate, requiring
agreement within a small factor (the DES includes effects — NoC
contention, scheduler overheads — the closed-form model abstracts).
"""

import numpy as np
import pytest

from repro import Accelerator
from repro.compiler.ops import OpCosts
from repro.config import MTIA_V1
from repro.eval.machines import MTIA_MACHINE
from repro.eval.opmodel import estimate_op
from repro.kernels.fc import run_fc
from repro.kernels.tbe import TBEConfig, run_tbe


def _simulated_fc_seconds(m, k, n, rows, cols, k_split):
    acc = Accelerator()
    result = run_fc(acc, m=m, k=k, n=n,
                    subgrid=acc.subgrid((0, 0), rows, cols), k_split=k_split)
    frequency = MTIA_V1.frequency_ghz * 1e9
    # Scale the sub-grid measurement to a full-grid-equivalent rate.
    sub_fraction = (rows * cols) / MTIA_V1.num_pes
    return result.cycles / frequency * sub_fraction, result


# Medium shapes only: at tiny shapes the analytical curve floors at the
# measured stack's fixed inefficiency (which the ideal DES kernel does
# not have), so the comparison is only meaningful with real work.
@pytest.mark.parametrize("m,k,n,rows,cols,k_split", [
    (256, 256, 128, 4, 4, 2),
    (512, 1024, 256, 4, 4, 2),
])
def test_fc_model_within_3x_of_simulator(m, k, n, rows, cols, k_split):
    sim_seconds, result = _simulated_fc_seconds(m, k, n, rows, cols, k_split)
    costs = OpCosts(2.0 * m * k * n, (m * k + n * k), m * n * 4, "fc")
    est = estimate_op(MTIA_MACHINE, "fc", costs, dtype="int8", in_sram=False)
    # Remove the fixed launch overhead: the DES measures steady state.
    model_seconds = max(est.compute_seconds, est.memory_seconds)
    ratio = model_seconds / sim_seconds
    # The DES runs an ideal hand-blocked kernel; the analytical curve is
    # calibrated to the paper's *measured* (less mature) stack, so the
    # model may be slower but must stay within an order of magnitude
    # and must never be optimistic by more than ~3x.
    assert 1 / 3 < ratio < 10, f"model {model_seconds}, sim {sim_seconds}"


def test_tbe_simulated_bandwidth_brackets_model_band():
    """The DES with production-like prefetch lands in the same decade
    as the production-kernel curve; with deep prefetch it approaches
    the hand-tuned regime."""
    cfg = TBEConfig(num_tables=8, rows_per_table=50_000, embedding_dim=128,
                    pooling_factor=32, batch_size=16)
    acc = Accelerator()
    shallow = run_tbe(acc, cfg, subgrid=acc.subgrid(), prefetch_rows=1)
    shallow_frac = shallow.gbs(MTIA_V1.frequency_ghz) / MTIA_V1.dram_gbs()

    acc = Accelerator()
    deep = run_tbe(acc, cfg, subgrid=acc.subgrid(), prefetch_rows=16)
    deep_frac = deep.gbs(MTIA_V1.frequency_ghz) / MTIA_V1.dram_gbs()

    # Production-kernel regime: low double-digit percent of roofline.
    assert 0.05 < shallow_frac < 0.45
    # Hand-tuned regime: >60 % of roofline is reachable (Section 6.1).
    assert deep_frac > 0.5


def test_simulated_sram_dram_gap_matches_fig13_direction():
    """Figure 13: the same operator runs much faster with tensors
    resident in SRAM than in DRAM."""
    from repro.kernels.memory_ops import run_transpose
    from repro.memory import SRAMMode

    arr = np.random.default_rng(0).integers(-128, 128, (512, 512),
                                            dtype=np.int8)
    # Scratchpad mode for both runs: the DRAM placement must actually
    # hit DRAM rather than the memory-side cache.
    acc_sram = Accelerator(sram_mode=SRAMMode.SCRATCHPAD)
    t_sram = run_transpose(acc_sram, arr, in_sram=True,
                           subgrid=acc_sram.subgrid((0, 0), 4, 4)).cycles
    acc_dram = Accelerator(sram_mode=SRAMMode.SCRATCHPAD)
    t_dram = run_transpose(acc_dram, arr,
                           subgrid=acc_dram.subgrid((0, 0), 4, 4)).cycles
    assert t_dram > 1.5 * t_sram
