"""Machine models, calibration curves, operator timing, metrics."""

import numpy as np
import pytest

from repro.compiler.ops import OpCosts
from repro.eval import calibration
from repro.eval.machines import (A100_MACHINE, MACHINES, MTIA_MACHINE,
                                 NNPI_MACHINE)
from repro.eval.metrics import geomean, perf_per_watt, relative, weighted_mean
from repro.eval.opmodel import estimate_graph, estimate_op


class TestMachines:
    def test_mtia_derives_from_table_i(self):
        assert MTIA_MACHINE.peak_tops["int8"] == pytest.approx(104.86,
                                                               abs=0.1)
        assert MTIA_MACHINE.onchip_capacity_bytes == 128 * 1024 * 1024

    def test_provisioned_power_is_platform_over_cards(self):
        # Section 6's methodology.
        assert MTIA_MACHINE.provisioned_watts == pytest.approx(780 / 12)
        assert A100_MACHINE.provisioned_watts == pytest.approx(4500 / 8)
        assert NNPI_MACHINE.provisioned_watts == pytest.approx(298 / 6)

    def test_peak_hierarchy(self):
        assert (A100_MACHINE.peak_tops["int8"]
                > MTIA_MACHINE.peak_tops["int8"]
                > NNPI_MACHINE.peak_tops["int8"])

    def test_unknown_dtype_rejected(self):
        with pytest.raises(KeyError):
            MTIA_MACHINE.peak_ops("fp64")


class TestCalibrationCurves:
    def test_gemm_utilization_saturates(self):
        small = calibration.gemm_utilization(MTIA_MACHINE, 0.01)
        large = calibration.gemm_utilization(MTIA_MACHINE, 100.0)
        assert small < large <= MTIA_MACHINE.gemm_util_max

    def test_gpu_needs_more_work_to_saturate(self):
        work = 1.0  # GFLOP
        mtia = (calibration.gemm_utilization(MTIA_MACHINE, work)
                / MTIA_MACHINE.gemm_util_max)
        gpu = (calibration.gemm_utilization(A100_MACHINE, work)
               / A100_MACHINE.gemm_util_max)
        assert mtia > 2 * gpu

    def test_zero_work_zero_util(self):
        assert calibration.gemm_utilization(MTIA_MACHINE, 0.0) == 0.0

    def test_tbe_fraction_in_paper_band_for_bench_shapes(self):
        """Section 6.1: the production kernel reaches 10-20 % of MTIA's
        memory bandwidth."""
        from repro.eval.figures import TBE_BENCH_SHAPES
        for pooling, _, dim in TBE_BENCH_SHAPES:
            frac = calibration.tbe_bw_fraction(MTIA_MACHINE, pooling, dim,
                                               batch=256)
            assert 0.08 <= frac <= 0.22, (pooling, dim)

    def test_hand_tuned_tbe_above_half(self):
        frac = calibration.tbe_bw_fraction(MTIA_MACHINE, 32, 128, 256,
                                           hand_tuned=True)
        assert frac > 0.5

    def test_tbe_fraction_monotone_in_pooling(self):
        fracs = [calibration.tbe_bw_fraction(MTIA_MACHINE, p, 64, 64)
                 for p in (2, 8, 32, 64)]
        assert fracs == sorted(fracs)

    def test_gpu_overfetch_penalises_narrow_rows(self):
        narrow = calibration.tbe_bw_fraction(A100_MACHINE, 32, 64, 256)
        wide = calibration.tbe_bw_fraction(A100_MACHINE, 32, 256, 256)
        assert wide > 1.5 * narrow

    def test_move_fraction_sram_vs_dram(self):
        """Figure 13's placement gap."""
        sram = calibration.move_bw_fraction(MTIA_MACHINE, in_sram=True)
        dram = calibration.move_bw_fraction(MTIA_MACHINE, in_sram=False)
        assert sram > 0.85
        assert 0.35 <= dram <= 0.5

    def test_dispatch_overhead_amortised_by_fusion(self):
        single = calibration.dispatch_overhead_s(A100_MACHINE, 1)
        fused = calibration.dispatch_overhead_s(A100_MACHINE, 4)
        assert fused == pytest.approx(single / 4)


class TestOpModel:
    def _fc_costs(self, gflops=1.0, mb=2.0):
        return OpCosts(gflops * 1e9, mb * 8e5, mb * 2e5, "fc")

    def test_estimate_has_three_terms(self):
        est = estimate_op(MTIA_MACHINE, "fc", self._fc_costs(), dtype="int8")
        assert est.seconds >= max(est.compute_seconds, est.memory_seconds)
        assert est.launch_seconds > 0
        assert est.bound in ("compute", "memory", "launch")

    def test_tiny_movement_op_is_launch_bound(self):
        costs = OpCosts(0.0, 1e3, 1e3, "concat")
        est = estimate_op(MTIA_MACHINE, "concat", costs)
        assert est.bound == "launch"

    def test_sram_placement_speeds_memory_term(self):
        costs = OpCosts(0.0, 50e6, 50e6, "concat")
        dram = estimate_op(MTIA_MACHINE, "concat", costs)
        sram = estimate_op(MTIA_MACHINE, "concat", costs, in_sram=True)
        assert sram.seconds < dram.seconds / 3

    def test_eb_uses_pooling_and_batch(self):
        costs = OpCosts(1e6, 50e6, 1e6, "eb")
        small = estimate_op(MTIA_MACHINE, "eb", costs,
                            attrs={"pooling": 2, "dim": 64, "batch": 64})
        large = estimate_op(MTIA_MACHINE, "eb", costs,
                            attrs={"pooling": 64, "dim": 64, "batch": 256})
        assert large.seconds < small.seconds

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="category"):
            estimate_op(MTIA_MACHINE, "conv", self._fc_costs())

    def test_graph_estimate_breakdown_sums(self):
        from repro.models.configs import MODEL_ZOO
        from repro.models.dlrm import build_dlrm_graph
        g = build_dlrm_graph(MODEL_ZOO["LC2"], 32)
        est = estimate_graph(MTIA_MACHINE, g)
        assert est.total_seconds == pytest.approx(
            sum(est.category_seconds().values()))
        fractions = est.category_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_gemm_dtype_follows_operands(self):
        """Quantized FCs must be costed at the INT8 rate even though
        their accumulator output is FP32."""
        from repro.compiler.ir import GraphBuilder
        b = GraphBuilder()
        x = b.input((64, 256), dtype="fp32", name="x")
        q = b.add("quantize", (x.name,), scale=0.1, name="q")
        w = b.weight((256, 256), dtype="int8", name="w")
        fc = b.add("fc", (q.name, w.name), out_dtype="fp32", name="fc")
        g = b.output(fc.name)
        est = estimate_graph(MTIA_MACHINE, g)
        fc_est = [e for e in est.estimates if e.name == "fc"][0]
        # INT8 rate: compute seconds reflect the 102-TOPS peak, not 52.
        util = calibration.gemm_utilization(MTIA_MACHINE, fc_est.flops / 1e9)
        util *= calibration.model_context_utilization(MTIA_MACHINE)
        expected = fc_est.flops / (MTIA_MACHINE.peak_ops("int8") * util)
        assert fc_est.compute_seconds == pytest.approx(expected, rel=1e-6)


class TestMetrics:
    def test_perf_per_watt(self):
        assert perf_per_watt(650.0, MTIA_MACHINE) == pytest.approx(10.0)

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_weighted_mean(self):
        assert weighted_mean([1, 3], [1, 1]) == pytest.approx(2.0)
        assert weighted_mean([1, 3], [3, 1]) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            weighted_mean([1], [1, 2])

    def test_relative(self):
        series = {"a": 2.0, "b": 4.0}
        rel = relative(series, "a")
        assert rel == {"a": 1.0, "b": 2.0}
        with pytest.raises(KeyError):
            relative(series, "c")
