"""Table I consistency: the machine model derives the published numbers."""

import dataclasses

import pytest

from repro.config import MTIA_V1, ChipConfig, DPEConfig


class TestTableI:
    def test_grid_is_64_pes(self):
        assert MTIA_V1.num_pes == 64
        assert MTIA_V1.grid_rows == 8
        assert MTIA_V1.grid_cols == 8

    def test_int8_gemm_tops_matches_paper(self):
        # Table I: 102.4 INT8 MAC TOPS; exact derivation gives 104.9.
        assert MTIA_V1.gemm_tops("int8") == pytest.approx(104.86, abs=0.1)
        assert 100.0 <= MTIA_V1.gemm_tops("int8") <= 106.0

    def test_fp16_gemm_tops_is_half_of_int8(self):
        assert MTIA_V1.gemm_tops("fp16") == pytest.approx(
            MTIA_V1.gemm_tops("int8") / 2)

    def test_bf16_same_rate_as_fp16(self):
        assert MTIA_V1.gemm_tops("bf16") == MTIA_V1.gemm_tops("fp16")

    def test_vector_simd_tops_ladder(self):
        # Table I: Vector 0.8 FP32 / 1.6 FP16 / 3.2 INT8.
        assert MTIA_V1.simd_tops("fp32", "vector") == pytest.approx(0.82, abs=0.02)
        assert MTIA_V1.simd_tops("fp16", "vector") == pytest.approx(1.64, abs=0.04)
        assert MTIA_V1.simd_tops("int8", "vector") == pytest.approx(3.28, abs=0.08)

    def test_se_simd_tops(self):
        # Table I: SE 1.6 FP16 / 3.2 INT8.
        assert MTIA_V1.simd_tops("fp16", "se") == pytest.approx(1.64, abs=0.04)
        assert MTIA_V1.simd_tops("int8", "se") == pytest.approx(3.28, abs=0.08)

    def test_local_memory_bandwidth(self):
        # Table I: 400 GB/s per PE.
        assert MTIA_V1.local_memory_gbs() == pytest.approx(409.6)

    def test_sram_bandwidth(self):
        # Table I: 800 GB/s.
        assert MTIA_V1.sram_gbs() == pytest.approx(819.2)

    def test_dram_bandwidth(self):
        # Table I: 176 GB/s.
        assert MTIA_V1.dram_gbs() == pytest.approx(176.0)

    def test_capacities(self):
        assert MTIA_V1.local_memory.capacity_bytes == 128 * 1024
        assert MTIA_V1.sram.capacity_bytes == 128 * 1024 * 1024
        assert MTIA_V1.dram.capacity_bytes == 64 * 1024 ** 3

    def test_dram_channels(self):
        # Table I: 16 LPDDR5 channels.
        assert MTIA_V1.dram.num_channels == 16

    def test_frequency_and_tdp(self):
        assert MTIA_V1.frequency_ghz == pytest.approx(0.8)
        assert MTIA_V1.max_frequency_ghz == pytest.approx(1.1)
        assert MTIA_V1.tdp_watts == pytest.approx(25.0)

    def test_summary_contains_headline_rows(self):
        summary = MTIA_V1.summary()
        assert summary["Technology"] == "TSMC 7nm"
        assert summary["GEMM TOPS (INT8)"] == pytest.approx(104.9, abs=0.1)
        assert summary["On-chip SRAM capacity (MB)"] == 128
        assert summary["Off-chip DRAM capacity (GB)"] == 64


class TestConfigBehaviour:
    def test_dpe_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            DPEConfig().macs_per_cycle("fp64")

    def test_se_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            MTIA_V1.se.lanes("fp64")

    def test_simd_tops_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            MTIA_V1.simd_tops("fp32", "dsp")

    def test_scaled_override(self):
        half = MTIA_V1.scaled(grid_rows=4)
        assert half.num_pes == 32
        assert half.gemm_tops("int8") == pytest.approx(
            MTIA_V1.gemm_tops("int8") / 2)
        # the original is untouched (frozen dataclass semantics)
        assert MTIA_V1.grid_rows == 8

    def test_dram_bytes_per_cycle_scales_with_frequency(self):
        at_800 = MTIA_V1.dram.bytes_per_cycle(0.8)
        at_1100 = MTIA_V1.dram.bytes_per_cycle(1.1)
        assert at_800 == pytest.approx(220.0)
        assert at_1100 < at_800  # same GB/s is fewer bytes per faster cycle
