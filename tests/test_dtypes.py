"""Data types and quantisation helpers."""

import numpy as np
import pytest

from repro import dtypes


class TestDTypeLookup:
    def test_lookup_by_name(self):
        assert dtypes.dtype("int8") is dtypes.INT8
        assert dtypes.dtype("fp16") is dtypes.FP16
        assert dtypes.dtype("fp32") is dtypes.FP32

    def test_lookup_is_idempotent(self):
        assert dtypes.dtype(dtypes.BF16) is dtypes.BF16

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            dtypes.dtype("complex128")

    def test_byte_widths(self):
        assert dtypes.INT8.bytes == 1
        assert dtypes.FP16.bytes == 2
        assert dtypes.BF16.bytes == 2
        assert dtypes.FP32.bytes == 4
        assert dtypes.INT32.bytes == 4

    def test_accumulators(self):
        # Section 3.1.2: INT8 accumulates to INT32, floats to FP32.
        assert dtypes.accumulator_for(dtypes.INT8) is dtypes.INT32
        assert dtypes.accumulator_for(dtypes.FP16) is dtypes.FP32
        assert dtypes.accumulator_for(dtypes.BF16) is dtypes.FP32


class TestQuantisation:
    def test_roundtrip_within_half_scale(self, rng):
        values = rng.standard_normal(1000).astype(np.float32)
        scale, zp = dtypes.choose_qparams(values)
        q = dtypes.quantize(values, scale, zp)
        back = dtypes.dequantize(q, scale, zp)
        assert np.max(np.abs(back - values)) <= scale / 2 + 1e-7

    def test_quantize_clamps(self):
        values = np.array([1e6, -1e6], dtype=np.float32)
        q = dtypes.quantize(values, scale=0.1)
        assert q.tolist() == [127, -128]

    def test_quantize_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            dtypes.quantize(np.zeros(4, np.float32), scale=0.0)

    def test_choose_qparams_covers_peak(self):
        values = np.array([-5.0, 2.0], dtype=np.float32)
        scale, zp = dtypes.choose_qparams(values)
        assert zp == 0
        assert scale == pytest.approx(5.0 / 127.0)

    def test_choose_qparams_empty_input(self):
        scale, zp = dtypes.choose_qparams(np.zeros(0, np.float32))
        assert scale == 1.0 and zp == 0

    def test_zero_point_shifts(self):
        values = np.array([0.0, 0.1], dtype=np.float32)
        q = dtypes.quantize(values, scale=0.1, zero_point=10)
        assert q.tolist() == [10, 11]


class TestFloatEmulation:
    def test_fp16_rounding_loses_precision(self):
        x = np.array([1.0 + 2 ** -12], dtype=np.float32)
        assert dtypes.to_fp16(x)[0] == 1.0

    def test_bf16_keeps_8_bit_mantissa(self):
        x = np.array([1.0 + 2 ** -9], dtype=np.float32)
        # below bf16 precision: rounds back to 1.0
        assert dtypes.to_bf16(x)[0] == 1.0

    def test_bf16_preserves_representable(self):
        x = np.array([1.5, -2.25, 1024.0], dtype=np.float32)
        np.testing.assert_array_equal(dtypes.to_bf16(x), x)

    def test_bf16_round_to_nearest_even(self):
        # 1 + 2^-8 is exactly halfway between 1.0 and the next bf16;
        # round-to-nearest-even picks 1.0 (even mantissa).
        x = np.array([1.0 + 2 ** -8], dtype=np.float32)
        assert dtypes.to_bf16(x)[0] == pytest.approx(1.0)
