"""Figures 1-2: model growth trends and server demand by platform."""

from conftest import emit

from repro.models.trends import (compute_memory_gap, figure1_series,
                                 figure2_series)


def test_figure1_scaling_trends(benchmark):
    points = benchmark(figure1_series)
    emit("Figure 1: inference model scaling trends", [
        f"{p.year}: complexity={p.complexity_gflops:.3f} GF/sample, "
        f"total={p.total_footprint_gb:.0f} GB, "
        f"tables={p.table_footprint_gb:.0f} GB"
        for p in points
    ])
    gap = compute_memory_gap(points)
    # The Introduction's argument: both grow strongly, compute faster.
    assert gap["complexity_cagr"] > 1.5
    assert gap["footprint_cagr"] > 1.3
    assert gap["complexity_x"] > gap["footprint_x"]
    # Embedding tables dominate the footprint (the gray line hugs the
    # solid line in Figure 1).
    for p in points:
        assert p.table_footprint_gb > 0.9 * p.total_footprint_gb


def test_figure2_server_demand(benchmark):
    series = benchmark(figure2_series)
    emit("Figure 2: inference server demand (normalised units)", [
        f"{p.year_quarter}: CPU={p.cpu:.0f} NNPI={p.nnpi:.0f} "
        f"GPU={p.gpu:.0f}"
        for p in series
    ])
    nnpi = [p.nnpi for p in series]
    gpu = [p.gpu for p in series]
    # NNPI ramps, peaks, declines; GPU absorbs the growth thereafter.
    peak = nnpi.index(max(nnpi))
    assert 0 < peak < len(series) - 1
    assert nnpi[-1] < 0.5 * max(nnpi)
    assert gpu[-1] == max(gpu) > max(nnpi)
    # Total demand grows throughout.
    totals = [p.total for p in series]
    assert totals[-1] > totals[0]
