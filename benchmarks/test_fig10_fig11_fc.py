"""Figures 10-11: FC (GEMM) perf/W across shapes, INT8 and FP16.

Two layers of evidence:

* the analytical sweep over the full GemmBench shape range (what the
  figures plot), asserting the MTIA-vs-GPU ratio shape;
* a cycle-level simulation of a mid-size shape, verifying the machine
  the analytical model abstracts actually computes the GEMM (bit-exact)
  at a plausible utilisation.
"""

import numpy as np
import pytest
from conftest import emit

from repro import Accelerator
from repro.config import MTIA_V1
from repro.eval.figures import fc_bench
from repro.kernels.fc import run_fc


def _emit_fc(title, rows):
    lines = [f"{'shape (m,k,n)':<20}{'GFLOP':>8}{'MTIA':>9}{'GPU':>9}"
             f"{'NNPI':>9}{'MTIA/GPU':>10}"]
    for r in rows:
        lines.append(f"{str(r.shape):<20}{r.gflops:>8.2f}"
                     f"{r.perf_w['mtia']:>9.4f}{r.perf_w['gpu']:>9.4f}"
                     f"{r.perf_w['nnpi']:>9.4f}{r.ratio_vs_gpu:>10.2f}")
    emit(title, lines)


def test_fig10_int8_fc(benchmark):
    rows = benchmark(fc_bench, "int8")
    _emit_fc("Figure 10: INT8 FC perf/W (TFLOPS/s/W)", rows)
    ratios = [r.ratio_vs_gpu for r in rows]
    # "In many cases, MTIA achieves 2x or greater performance per Watt"
    assert sum(1 for x in ratios if x >= 2.0) >= len(ratios) // 2
    # "particularly effective for low batch sizes"
    assert ratios[0] == max(ratios)
    # "For large batch sizes ... the perf/W gains of MTIA are lower"
    assert ratios[-1] == min(ratios)
    assert 0.7 <= ratios[-1] <= 1.3
    # monotone decline across the sweep
    assert all(a >= b * 0.95 for a, b in zip(ratios, ratios[1:]))


def test_fig11_fp16_fc(benchmark):
    rows = benchmark(fc_bench, "fp16")
    _emit_fc("Figure 11: FP16 FC perf/W (TFLOPS/s/W)", rows)
    ratios = [r.ratio_vs_gpu for r in rows]
    assert ratios[0] > 2.0
    assert 0.7 <= ratios[-1] <= 1.3
    # "the trend lines roughly track ... across INT8 and FP16"
    int8 = [r.ratio_vs_gpu for r in fc_bench("int8")]
    for r8, r16 in zip(int8, ratios):
        assert r16 == pytest.approx(r8, rel=0.25)


def test_fc_simulated_ground_truth(once):
    """The Figure 7 example shape on the cycle-level simulator."""
    def run():
        acc = Accelerator()
        result = run_fc(acc, m=512, k=1024, n=256,
                        subgrid=acc.subgrid((0, 0), 4, 4), k_split=2)
        return acc, result

    acc, result = once(run)
    rng = np.random.default_rng(0)
    a = rng.integers(-128, 128, (512, 1024), dtype=np.int8)
    b_t = rng.integers(-128, 128, (256, 1024), dtype=np.int8)
    assert np.array_equal(result.c_t,
                          b_t.astype(np.int32) @ a.astype(np.int32).T)
    tops = result.tops(MTIA_V1.frequency_ghz)
    subgrid_peak = MTIA_V1.gemm_tops("int8") * 16 / 64
    utilisation = tops / subgrid_peak
    emit("Figure 10 ground truth (DES, 512x1024x256 on 4x4)", [
        f"cycles: {result.cycles:.0f}",
        f"achieved TOPS: {tops:.2f} ({100 * utilisation:.0f}% of sub-grid "
        "peak)",
        f"DRAM bytes read: {acc.memory.dram.stats['read_bytes']:.0f}",
    ])
    assert 0.2 < utilisation < 0.95
