"""Ablations of the design choices DESIGN.md calls out (Section 7).

Not figures from the paper — these turn its "Discussion / lessons
learned" claims into measured experiments on the cycle-level simulator:

* multicast coalescing (Section 3.5) vs per-PE fetching;
* the dual-core PE (Section 7, "Dual-Core PEs") vs a single-core
  variant, in an instruction-bound regime;
* monolithic-grid firmware vs the proposed cluster hierarchy
  (Section 7, "Architecture Hierarchy") for a burst of small jobs;
* the SRAM memory-side cache under skewed embedding traffic
  (Section 6.1's cache configuration).
"""

import dataclasses

import numpy as np
import pytest
from conftest import emit

from repro import Accelerator, MTIA_V1
from repro.firmware import JobScheduler
from repro.firmware.jobs import make_fc_job
from repro.kernels.fc import run_fc
from repro.kernels.tbe import TBEConfig, generate_indices, run_tbe
from repro.memory import SRAMMode


def test_multicast_ablation(once):
    """Section 3.5: coalescing reads 'reduces memory bandwidth and
    increases the energy efficiency of data movement'."""
    def run_pair():
        results = {}
        for multicast in (True, False):
            acc = Accelerator(sram_mode=SRAMMode.SCRATCHPAD)
            result = run_fc(acc, m=256, k=512, n=128,
                            subgrid=acc.subgrid((0, 0), 4, 4), k_split=2,
                            use_multicast=multicast)
            results[multicast] = (result.cycles,
                                  acc.memory.dram.stats["read_bytes"])
        return results

    results = once(run_pair)
    on_cycles, on_bytes = results[True]
    off_cycles, off_bytes = results[False]
    operand_bytes = 256 * 512 + 128 * 512
    emit("Ablation: NoC multicast (FC 256x512x128 on 4x4)", [
        f"multicast on:  {on_cycles:.0f} cycles, DRAM reads "
        f"{on_bytes:.0f} B ({on_bytes / operand_bytes:.2f}x operands)",
        f"multicast off: {off_cycles:.0f} cycles, DRAM reads "
        f"{off_bytes:.0f} B ({off_bytes / operand_bytes:.2f}x operands)",
    ])
    # Coalescing eliminates duplicate fetches entirely.
    assert on_bytes == operand_bytes
    assert off_bytes >= 2 * on_bytes
    assert on_cycles <= off_cycles


def test_dual_core_ablation(once):
    """Section 7: the dual-core PE gives 'twice the overall instruction
    throughput' when an operator is instruction bound."""
    # Model a command-heavy code-generation path (the Section 7
    # "Automated Code Generation" pain) with a high per-command cost.
    config = MTIA_V1.scaled(
        cp=dataclasses.replace(MTIA_V1.cp, issue_cycles=40))

    def run_pair():
        results = {}
        for dual in (True, False):
            acc = Accelerator(config)
            result = run_fc(acc, m=128, k=512, n=128,
                            subgrid=acc.subgrid((0, 0), 1, 1),
                            dual_core=dual)
            results[dual] = result.cycles
        return results

    results = once(run_pair)
    emit("Ablation: dual-core PE (instruction-bound FC, issue=40cyc)", [
        f"dual core:   {results[True]:.0f} cycles",
        f"single core: {results[False]:.0f} cycles "
        f"({results[False] / results[True]:.2f}x slower)",
    ])
    assert results[False] > 1.08 * results[True]


def test_cluster_hierarchy_ablation(once):
    """Section 7: 'having another level of hierarchy ... clusters of
    PEs, might have made this problem easier' — cluster-granular
    firmware pays far less setup for a burst of small jobs."""
    def run_pair():
        results = {}
        for cluster in (1, 2):
            acc = Accelerator()
            sched = JobScheduler(acc, cluster=cluster)
            jobs = [make_fc_job(f"fc{i}", acc, 128, 128, 128, rows=2,
                                cols=2, k_split=2, seed=i)
                    for i in range(16)]
            for job in jobs:
                sched.submit(job)
            stats = sched.run()
            for job in jobs:
                out = acc.download(job.result_addr, job.result_shape,
                                   np.int32)
                np.testing.assert_array_equal(out, job.expected)
            results[cluster] = stats
        return results

    results = once(run_pair)
    emit("Ablation: firmware granularity (16 small FC jobs)", [
        f"per-PE management:  setup {results[1].total_setup_cycles:.0f} "
        f"cycles, makespan {results[1].makespan:.0f}",
        f"2x2-cluster management: setup "
        f"{results[2].total_setup_cycles:.0f} cycles, makespan "
        f"{results[2].makespan:.0f}",
    ])
    assert results[2].total_setup_cycles < results[1].total_setup_cycles / 2
    assert results[2].completed == results[1].completed == 16


def test_reduction_network_ablation(once):
    """Section 3.5: the dedicated reduction network avoids saving and
    restoring partial sums in memory and offloads the main NoC —
    measured against a bit-exact memory-reduce counterfactual."""
    from repro.kernels.fc_variants import run_fc_memory_reduce
    from repro.platforms.power import ChipPowerModel

    def run_pair():
        rng = np.random.default_rng(0)
        a = rng.integers(-128, 128, (256, 512), dtype=np.int8)
        b_t = rng.integers(-128, 128, (128, 512), dtype=np.int8)
        ref = b_t.astype(np.int32) @ a.astype(np.int32).T

        acc1 = Accelerator()
        r1 = run_fc(acc1, a, b_t, subgrid=acc1.subgrid((0, 0), 4, 4),
                    k_split=2)
        acc2 = Accelerator()
        r2 = run_fc_memory_reduce(acc2, a, b_t,
                                  subgrid=acc2.subgrid((0, 0), 4, 4),
                                  k_split=2)
        assert np.array_equal(r1.c_t, ref) and np.array_equal(r2.c_t, ref)
        model = ChipPowerModel()

        def energy(acc, cycles):
            activity = model.activity_from_stats(acc.collect_stats())
            return model.dynamic_energy_j(activity)

        return {
            "rednet": (r1.cycles, acc1.noc.stats["link_bytes"],
                       acc1.memory.dram.stats["read_bytes"]
                       + acc1.memory.dram.stats.get("write_bytes", 0),
                       energy(acc1, r1.cycles)),
            "memory": (r2.cycles, acc2.noc.stats["link_bytes"],
                       acc2.memory.dram.stats["read_bytes"]
                       + acc2.memory.dram.stats.get("write_bytes", 0),
                       energy(acc2, r2.cycles)),
        }

    results = once(run_pair)
    rn_cycles, rn_noc, rn_dram, rn_energy = results["rednet"]
    mr_cycles, mr_noc, mr_dram, mr_energy = results["memory"]
    emit("Ablation: reduction network vs memory round-trip "
         "(FC 256x512x128, k_split=2)", [
             f"reduction network: {rn_cycles:.0f} cycles, "
             f"NoC {rn_noc / 1e3:.0f} KB, DRAM {rn_dram / 1e3:.0f} KB, "
             f"dynamic energy {rn_energy * 1e6:.1f} uJ",
             f"memory reduce:     {mr_cycles:.0f} cycles, "
             f"NoC {mr_noc / 1e3:.0f} KB, DRAM {mr_dram / 1e3:.0f} KB, "
             f"dynamic energy {mr_energy * 1e6:.1f} uJ",
             f"-> {mr_cycles / rn_cycles:.2f}x slower, "
             f"{mr_noc / rn_noc:.2f}x NoC traffic, "
             f"{mr_energy / rn_energy:.2f}x energy without the network",
         ])
    assert mr_cycles > 1.3 * rn_cycles
    assert mr_noc > 1.5 * rn_noc
    assert mr_dram > 1.5 * rn_dram
    assert mr_energy > rn_energy


def test_sram_cache_skew_ablation(once):
    """Section 6.1: the cache-mode SRAM exploits 'locality across and
    within batches' — visible under production-like skewed indices."""
    cfg = TBEConfig(num_tables=4, rows_per_table=200_000, embedding_dim=128,
                    pooling_factor=32, batch_size=32)

    def run_pair():
        results = {}
        for alpha, tag in ((None, "uniform"), (1.1, "zipf")):
            indices = generate_indices(cfg, seed=7, alpha=alpha)
            acc = Accelerator(sram_mode=SRAMMode.CACHE)
            result = run_tbe(acc, cfg, indices=indices,
                             subgrid=acc.subgrid(), prefetch_rows=8)
            results[tag] = (result.cycles, acc.memory.sram.hit_rate())
        return results

    results = once(run_pair)
    emit("Ablation: SRAM cache under index skew (TBE)", [
        f"uniform indices: {results['uniform'][0]:.0f} cycles, "
        f"cache hit rate {results['uniform'][1]:.2f}",
        f"zipf indices:    {results['zipf'][0]:.0f} cycles, "
        f"cache hit rate {results['zipf'][1]:.2f}",
    ])
    assert results["zipf"][1] > results["uniform"][1] + 0.1
    assert results["zipf"][0] < results["uniform"][0]
