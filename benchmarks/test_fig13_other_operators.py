"""Figure 13: BatchMatMul/Concat/Transpose/Quantize/Dequantize/Tanh with
tensors placed in SRAM vs DRAM.

The analytical series reproduces the published fractions; the
cycle-level section runs the actual kernels (MLU/SE/DPE through the CP)
under both placements and checks the gap's direction and magnitude.
"""

import numpy as np
import pytest
from conftest import emit

from repro import Accelerator
from repro.eval.figures import other_operators_bench
from repro.kernels.elementwise import run_nonlinear
from repro.kernels.memory_ops import run_concat, run_transpose
from repro.kernels.quantize import run_quantize
from repro.memory import SRAMMode


def test_fig13_analytical(benchmark):
    rows = benchmark(other_operators_bench)
    lines = [f"{'operator':<14}{'placement':>10}{'GB/s':>8}{'%BW':>7}"]
    for r in rows:
        lines.append(f"{r.operator:<14}{r.placement:>10}"
                     f"{r.achieved_gbs:>8.0f}{100 * r.fraction_of_bw:>7.0f}")
    emit("Figure 13: other operators (analytical)", lines)
    by = {(r.operator, r.placement): r for r in rows}
    # "BatchMatMul and Tanh ... reach more than 90% and 80% of the SRAM
    # bandwidth, respectively"
    assert by[("BatchMatMul", "sram")].fraction_of_bw > 0.8
    assert by[("Tanh", "sram")].fraction_of_bw > 0.8
    # "When data is placed in the DRAM, the efficiency drops down to
    # around 40% on average"
    dram = [r.fraction_of_bw for r in rows if r.placement == "dram"]
    assert np.mean(dram) == pytest.approx(0.42, abs=0.08)
    # SRAM placement always wins on absolute bandwidth.
    for op in ("BatchMatMul", "Concat", "Transpose", "Quantize",
               "Dequantize", "Tanh"):
        assert by[(op, "sram")].achieved_gbs > by[(op, "dram")].achieved_gbs


def test_fig13_simulated_placement_gap(once):
    """Run real kernels under both placements on the DES.

    Both accelerators use scratchpad mode so the DRAM placement truly
    streams from DRAM (no memory-side cache behind it).
    """
    rng = np.random.default_rng(0)
    arr = rng.integers(-128, 128, (512, 512), dtype=np.int8)
    values = (rng.standard_normal(1 << 21) * 2).astype(np.float32)

    def run_all():
        results = {}
        for placement in ("sram", "dram"):
            in_sram = placement == "sram"
            acc = Accelerator(sram_mode=SRAMMode.SCRATCHPAD)
            results[("Transpose", placement)] = run_transpose(
                acc, arr, in_sram=in_sram,
                subgrid=acc.subgrid()).gbs(0.8)
            acc = Accelerator(sram_mode=SRAMMode.SCRATCHPAD)
            results[("Tanh", placement)] = run_nonlinear(
                acc, values, func="tanh", in_sram=in_sram,
                subgrid=acc.subgrid()).gbs(0.8)
            acc = Accelerator(sram_mode=SRAMMode.SCRATCHPAD)
            results[("Quantize", placement)] = run_quantize(
                acc, values, in_sram=in_sram,
                subgrid=acc.subgrid()).gbs(0.8)
            acc = Accelerator(sram_mode=SRAMMode.SCRATCHPAD)
            a = rng.integers(-128, 128, (256, 128), dtype=np.int8)
            b = rng.integers(-128, 128, (256, 128), dtype=np.int8)
            results[("Concat", placement)] = run_concat(
                acc, a, b, in_sram=in_sram,
                subgrid=acc.subgrid()).gbs(0.8)
        return results

    results = once(run_all)
    lines = [f"{'operator':<12}{'SRAM GB/s':>12}{'DRAM GB/s':>12}{'gap':>7}"]
    for op in ("Transpose", "Tanh", "Quantize", "Concat"):
        sram = results[(op, "sram")]
        dram = results[(op, "dram")]
        lines.append(f"{op:<12}{sram:>12.1f}{dram:>12.1f}{sram / dram:>7.1f}")
    emit("Figure 13 ground truth (DES kernels)", lines)
    for op in ("Transpose", "Tanh", "Quantize", "Concat"):
        assert results[(op, "sram")] > 1.3 * results[(op, "dram")], op
