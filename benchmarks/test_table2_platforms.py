"""Table II: the three inference hardware platforms."""

import pytest
from conftest import emit

from repro.eval.tables import format_table, table_ii
from repro.platforms import YOSEMITE_V2, YOSEMITE_V3, ZION_4S


def test_table_ii(benchmark):
    rows = benchmark(table_ii)
    emit("Table II: inference hardware platforms",
         format_table(rows).splitlines())
    # Power accounting matches the published percentages.
    assert YOSEMITE_V2.accelerator_power_fraction == pytest.approx(
        0.272, abs=0.005)
    assert ZION_4S.accelerator_power_fraction == pytest.approx(
        0.587, abs=0.005)
    assert YOSEMITE_V3.accelerator_power_fraction == pytest.approx(
        0.538, abs=0.005)
    # The provisioned-power methodology (Section 6).
    assert YOSEMITE_V3.provisioned_watts_per_card == pytest.approx(65.0)
    assert ZION_4S.provisioned_watts_per_card == pytest.approx(562.5)
    assert YOSEMITE_V2.provisioned_watts_per_card == pytest.approx(49.67,
                                                                   abs=0.01)
    # Platform-level compute and memory ordering the comparison rests on.
    assert ZION_4S.total_int8_tops > YOSEMITE_V3.total_int8_tops
    assert YOSEMITE_V3.total_int8_tops > YOSEMITE_V2.total_int8_tops
    assert ZION_4S.device_bw_gbs_per_card == pytest.approx(1500)
    assert YOSEMITE_V3.device_bw_gbs_per_card == pytest.approx(150)
