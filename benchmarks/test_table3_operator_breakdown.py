"""Table III: operator latency breakdown for a medium-complexity DLRM."""

import pytest
from conftest import emit

from repro.eval.tables import TABLE_III_PAPER, table_iii


def _emit_breakdown(batch, ours):
    paper = TABLE_III_PAPER[batch]
    lines = [f"{'bucket':<12}{'paper %':>10}{'ours %':>10}"]
    for bucket in ("fc", "eb", "concat", "transpose", "quantize",
                   "dequantize", "bmm", "other"):
        lines.append(f"{bucket:<12}{paper.get(bucket, 0):>10.1f}"
                     f"{ours.get(bucket, 0):>10.1f}")
    emit(f"Table III: operator breakdown, MC1, batch {batch}", lines)


def test_table_iii_batch_64(benchmark):
    ours = benchmark.pedantic(table_iii, args=(64,), rounds=1, iterations=1)
    _emit_breakdown(64, ours)
    # FC dominates at batch 64 (paper: 42.1 %), EB second (31.2 %).
    assert ours["fc"] == max(ours.values())
    assert ours["fc"] == pytest.approx(TABLE_III_PAPER[64]["fc"], abs=12)
    assert ours["eb"] == pytest.approx(TABLE_III_PAPER[64]["eb"], abs=15)
    assert ours["fc"] + ours["eb"] > 55


def test_table_iii_batch_256(benchmark):
    ours = benchmark.pedantic(table_iii, args=(256,), rounds=1, iterations=1)
    _emit_breakdown(256, ours)
    # At batch 256 FC and EB together still dominate (~62 % in the
    # paper) and the FC share has dropped from its batch-64 level.
    assert ours["fc"] + ours["eb"] > 55
    b64 = table_iii(64)
    assert ours["fc"] < b64["fc"]
    # Concat's share grows with batch (2.9 % -> 11.5 % in the paper).
    assert ours["concat"] > b64["concat"]
    assert ours["concat"] == pytest.approx(TABLE_III_PAPER[256]["concat"],
                                           abs=6)
