"""Table I: chip features derived from the micro-architecture model."""

import pytest
from conftest import emit

from repro.config import MTIA_V1
from repro.eval.tables import table_i


def test_table_i_summary(benchmark):
    rows = benchmark(table_i)
    emit("Table I: MTIA features and parameters",
         [f"{key}: {value}" for key, value in rows.items()])
    # Headline numbers from the paper, derived (not transcribed):
    assert rows["GEMM TOPS (INT8)"] == pytest.approx(104.9, abs=0.2)
    assert rows["GEMM TOPS (FP16)"] == pytest.approx(52.4, abs=0.2)
    assert rows["SIMD TOPS Vector (FP32)"] == pytest.approx(0.8, abs=0.05)
    assert rows["SIMD TOPS SE (INT8)"] == pytest.approx(3.3, abs=0.1)
    assert rows["Local memory BW (GB/s per PE)"] == pytest.approx(410, abs=2)
    assert rows["On-chip SRAM BW (GB/s)"] == pytest.approx(819, abs=2)
    assert rows["Off-chip DRAM BW (GB/s)"] == pytest.approx(176, abs=1)
    assert rows["Local memory capacity (KB per PE)"] == 128
    assert rows["On-chip SRAM capacity (MB)"] == 128
    assert rows["Off-chip DRAM capacity (GB)"] == 64


def test_grid_arithmetic_consistency(benchmark):
    def derive():
        macs = MTIA_V1.dpe.int8_macs_per_cycle
        return macs * MTIA_V1.num_pes * MTIA_V1.frequency_ghz * 2 / 1e3

    tops = benchmark(derive)
    # 1024 MACs x 64 PEs x 0.8 GHz x 2 = the Table I GEMM figure.
    assert tops == pytest.approx(MTIA_V1.gemm_tops("int8"))
