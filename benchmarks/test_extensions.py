"""Extension experiments beyond the paper's figures.

These quantify stack behaviours the paper discusses but does not plot:

* eager vs compiled-graph execution (the fusion + placement payoff the
  Section 5 compiler exists for);
* multi-card scaling of the HC giant (Section 5's model partitioning);
* serving-fleet power per platform (the Motivation's perf/TCO argument
  turned into kilowatts).
"""

import numpy as np
import pytest
from conftest import emit

from repro.compiler.fusion import fuse_graph
from repro.eval.machines import MACHINES
from repro.eval.opmodel import estimate_graph
from repro.models.configs import MODEL_ZOO
from repro.models.dlrm import build_dlrm_graph
from repro.runtime import GraphExecutor
from repro.runtime.multi_card import estimate_multi_card


def test_eager_vs_graph_mode(benchmark):
    """Section 5: graph compilation exists because eager execution
    leaves launch overhead and DRAM round trips on the table."""
    def measure():
        results = {}
        for model in ("LC2", "MC1"):
            graph_eager = build_dlrm_graph(MODEL_ZOO[model], 64)
            eager = estimate_graph(MACHINES["mtia"], graph_eager, None)
            graph_opt = build_dlrm_graph(MODEL_ZOO[model], 64)
            executor = GraphExecutor(MACHINES["mtia"], mode="graph")
            placement = executor.compile(graph_opt)
            compiled = estimate_graph(MACHINES["mtia"], graph_opt, placement)
            results[model] = (eager.total_seconds, compiled.total_seconds)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = []
    for model, (eager_s, graph_s) in results.items():
        lines.append(f"{model}: eager {eager_s * 1e6:.0f} us -> graph "
                     f"{graph_s * 1e6:.0f} us "
                     f"({eager_s / graph_s:.2f}x speedup)")
    emit("Extension: eager vs compiled-graph execution (MTIA)", lines)
    for model, (eager_s, graph_s) in results.items():
        assert graph_s < eager_s
    # The EB-heavy MC1 benefits most (550 launches merge into ~9 TBEs).
    assert (results["MC1"][0] / results["MC1"][1]
            > results["LC2"][0] / results["LC2"][1])


def test_multi_card_hc_scaling(benchmark):
    """HC (725 GB) must span >=23 Yosemite-V3 cards; the gather over
    PCIe is the distribution tax."""
    def measure():
        graph = build_dlrm_graph(MODEL_ZOO["HC"], 64)
        fuse_graph(graph)
        pcie = estimate_multi_card(graph, MACHINES["mtia"], p2p_gbs=12.8)
        nvlink = estimate_multi_card(graph, MACHINES["mtia"], p2p_gbs=80.0)
        return pcie, nvlink

    pcie, nvlink = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("Extension: HC multi-card inference (batch 64)", [
        f"cards: {pcie.cards}",
        f"phases (PCIe 12.8 GB/s): sparse {pcie.sparse_seconds * 1e6:.0f} "
        f"us || gather {pcie.gather_seconds * 1e6:.0f} us "
        f"({pcie.gather_bytes / 1e6:.1f} MB) || dense "
        f"{pcie.dense_seconds * 1e6:.0f} us",
        f"with an 80 GB/s interconnect the gather drops to "
        f"{nvlink.gather_seconds * 1e6:.0f} us "
        f"(total {nvlink.total_seconds / pcie.total_seconds:.2f}x)",
    ])
    assert pcie.cards >= 23
    assert pcie.gather_seconds > nvlink.gather_seconds
    assert 0 < pcie.scaling_efficiency < 0.5


def test_serving_fleet_power(benchmark):
    """Fleet kilowatts to serve 1M QPS of LC2 under a 2 ms p99 SLA."""
    from repro.serving import BatchingConfig, plan_capacity

    def measure():
        return plan_capacity(MODEL_ZOO["LC2"], target_qps=1_000_000,
                             sla_us=2_000,
                             batching=BatchingConfig(max_batch=128,
                                                     max_wait_us=300))

    plans = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{p.platform}: {p.cards} cards, "
             f"{p.total_watts / 1000:.1f} kW, {p.qps_per_watt:.0f} QPS/W"
             for p in plans.values()]
    emit("Extension: fleet sizing, LC2 @ 1M QPS, p99 <= 2 ms", lines)
    assert plans["mtia"].total_watts < plans["gpu"].total_watts
    assert plans["mtia"].total_watts < plans["nnpi"].total_watts
    for plan in plans.values():
        assert plan.cards * plan.card_qps >= 1_000_000
