"""Figure 14: full-DLRM perf/W across the Table IV zoo on MTIA, GPU, NNPI."""

import numpy as np
import pytest
from conftest import emit

from repro.eval.figures import dlrm_bench
from repro.models.configs import MODEL_ZOO
from repro.models.dlrm import model_flops


def test_fig14_dlrm_perf_per_watt(benchmark):
    rows = benchmark.pedantic(dlrm_bench, kwargs={"batch": 256},
                              rounds=1, iterations=1)
    lines = [f"{'model':<6}{'MTIA':>10}{'GPU':>10}{'NNPI':>10}"
             f"{'vs GPU':>9}{'vs NNPI':>9}"]
    for r in rows:
        lines.append(f"{r.model:<6}{r.tflops_w['mtia']:>10.4f}"
                     f"{r.tflops_w['gpu']:>10.4f}"
                     f"{r.tflops_w['nnpi']:>10.4f}"
                     f"{r.ratio_vs_gpu:>9.2f}{r.ratio_vs_nnpi:>9.2f}")
    weights = [model_flops(MODEL_ZOO[r.model]) for r in rows]
    gpu_avg = np.average([r.ratio_vs_gpu for r in rows], weights=weights)
    nnpi_avg = np.average([r.ratio_vs_nnpi for r in rows], weights=weights)
    lines.append(f"flops-weighted average: vs GPU {gpu_avg:.2f}, "
                 f"vs NNPI {nnpi_avg:.2f}")
    emit("Figure 14: DLRM TFLOPS/s/W (batch 256)", lines)

    by_model = {r.model: r for r in rows}
    # "LC2 shows nearly a 3x improvement" over the GPU.
    assert 2.2 <= by_model["LC2"].ratio_vs_gpu <= 3.8
    # "For medium complexity models, MTIA still sees an efficiency gain
    # over the GPU, but it is lower".
    for name in ("MC1", "MC2"):
        assert 1.0 < by_model[name].ratio_vs_gpu < by_model["LC2"].ratio_vs_gpu
    # "For high complexity models ... the GPU software stack is better
    # optimized for large shapes".
    assert by_model["HC"].ratio_vs_gpu < 0.8
    # Abstract: "We averaged 0.9x perf/W across various DLRMs".
    assert gpu_avg == pytest.approx(0.9, abs=0.15)
    # "Compared to NNPI, MTIA achieves 1.6x higher efficiency".
    assert nnpi_avg == pytest.approx(1.6, abs=0.35)
    assert all(r.ratio_vs_nnpi > 1.0 for r in rows)


def test_fig14_batch_sensitivity(benchmark):
    """MTIA's advantage is largest at serving batch sizes."""
    def sweep():
        return {batch: dlrm_bench(batch=batch, model_names=["MC1"])[0]
                for batch in (64, 256, 1024)}

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"batch {batch}: MTIA/GPU = {row.ratio_vs_gpu:.2f}"
             for batch, row in rows.items()]
    emit("Figure 14 ablation: MC1 ratio vs batch", lines)
    assert rows[64].ratio_vs_gpu > rows[1024].ratio_vs_gpu
