"""Shared helpers for the per-table/per-figure benchmark suite.

Every benchmark (a) regenerates its table/figure's data, (b) prints the
rows (captured into ``bench_output.txt`` for EXPERIMENTS.md), and (c)
asserts the qualitative reproduction targets from DESIGN.md.
"""

import os

import numpy as np
import pytest

#: every emit() block of the session, written to bench_artifacts.txt
_ARTIFACTS = []


def emit(title, lines):
    """Print a labelled block and record it for bench_artifacts.txt.

    pytest captures stdout of passing tests, so the printed copy is
    only visible with ``-s``; the recorded copy is always written next
    to ``bench_output.txt`` at session end.
    """
    block = [f"=== {title} ==="] + list(lines)
    print()
    for line in block:
        print(line)
    _ARTIFACTS.append("\n".join(block))


def pytest_sessionfinish(session, exitstatus):
    if not _ARTIFACTS:
        return
    path = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                        "bench_artifacts.txt")
    with open(path, "w") as fh:
        fh.write("Benchmark data blocks — every table/figure series this "
                 "session regenerated.\n\n")
        fh.write("\n\n".join(_ARTIFACTS))
        fh.write("\n")


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (DES runs are long)."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return runner
