"""Figure 12: TBE (TableBatchedEmbedding) performance in GB/s/W.

Analytical sweep over the (pooling, rows, dim) triplets plus a
cycle-level simulation demonstrating the software-pipelining headroom
the paper describes (production kernel at 10-20 % of bandwidth vs
hand-tuned kernels above 60 % of roofline).
"""

import pytest
from conftest import emit

from repro import Accelerator
from repro.config import MTIA_V1
from repro.eval.figures import tbe_bench
from repro.kernels.tbe import TBEConfig, run_tbe


def test_fig12_tbe_perf_per_watt(benchmark):
    rows = benchmark(tbe_bench)
    lines = [f"{'(pooling,rows,dim)':<24}{'MTIA GB/s/W':>12}"
             f"{'GPU GB/s/W':>12}{'ratio':>8}{'MTIA %BW':>10}"]
    for r in rows:
        lines.append(f"{str(r.shape):<24}{r.gbs_w['mtia']:>12.2f}"
                     f"{r.gbs_w['gpu']:>12.2f}{r.ratio_vs_gpu:>8.2f}"
                     f"{100 * r.mtia_bw_fraction:>10.0f}")
    emit("Figure 12: TBE benchmark", lines)
    # "MTIA is reaching just 10-20% of its memory bandwidth"
    for r in rows:
        assert 0.08 <= r.mtia_bw_fraction <= 0.22, r.shape
    # "MTIA achieves between 0.6x to 1.5x the perf/W of the GPU":
    # we reproduce the band's lower half and the small-pooling
    # crossover; the >1.2x upper end depends on GPU shape cliffs our
    # smooth baseline model does not represent (see EXPERIMENTS.md).
    ratios = [r.ratio_vs_gpu for r in rows]
    assert max(ratios) >= 0.95
    assert min(ratios) >= 0.25
    assert sum(1 for x in ratios if 0.55 <= x <= 1.5) >= len(ratios) // 2
    # MTIA is relatively strongest at small pooling factors.
    assert ratios[0] == max(ratios)


def test_fig12_hand_tuned_headroom(benchmark):
    rows = benchmark(tbe_bench, hand_tuned=True)
    best = max(r.gbs_w["mtia"] for r in rows)
    emit("Figure 12 headroom: hand-tuned kernel regime",
         [f"best hand-tuned: {best:.2f} GB/s/W "
          f"({best * 65:.0f} GB/s at 65 W provisioned)"])
    # "performance levels as high as 500 GB/s ... or 6 GB/s/W" against
    # TDP-class power; against provisioned power the ~100+ GB/s class.
    assert best * MTIA_V1.dram_gbs() / MTIA_V1.dram_gbs() > 1.0


def test_fig12_simulated_pipelining_gap(once):
    """Cycle-level evidence for the 10-20 % vs >60 % software gap."""
    cfg = TBEConfig(num_tables=8, rows_per_table=50_000, embedding_dim=128,
                    pooling_factor=32, batch_size=16)

    def run_both():
        acc1 = Accelerator()
        shallow = run_tbe(acc1, cfg, subgrid=acc1.subgrid(),
                          prefetch_rows=1)
        acc2 = Accelerator()
        deep = run_tbe(acc2, cfg, subgrid=acc2.subgrid(), prefetch_rows=16)
        return shallow, deep

    shallow, deep = once(run_both)
    freq = MTIA_V1.frequency_ghz
    shallow_frac = shallow.gbs(freq) / MTIA_V1.dram_gbs()
    deep_frac = deep.gbs(freq) / MTIA_V1.dram_gbs()
    emit("Figure 12 ground truth (DES): software pipelining", [
        f"1 outstanding row/PE: {shallow.gbs(freq):.1f} GB/s "
        f"({100 * shallow_frac:.0f}% of DRAM peak)",
        f"16 outstanding rows/PE: {deep.gbs(freq):.1f} GB/s "
        f"({100 * deep_frac:.0f}% of DRAM peak)",
    ])
    # Production-kernel regime vs hand-tuned regime (Section 6.1).
    assert shallow_frac < 0.45
    assert deep_frac > 0.5
    assert deep_frac > 1.5 * shallow_frac
