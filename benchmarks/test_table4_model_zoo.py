"""Table IV: the five representative DLRMs."""

import pytest
from conftest import emit

from repro.eval.tables import table_iv
from repro.models.configs import MODEL_ZOO, TABLE_IV_TARGETS
from repro.models.dlrm import build_dlrm_graph, operator_census


def test_table_iv(benchmark):
    rows = benchmark(table_iv)
    lines = [f"{'model':<6}{'paper GB':>10}{'ours GB':>10}"
             f"{'paper GF':>10}{'ours GF':>10}"]
    for name, (size_gb, gflops) in TABLE_IV_TARGETS.items():
        lines.append(
            f"{name:<6}{size_gb:>10.1f}{rows[name]['Size (GB)']:>10.1f}"
            f"{gflops:>10.3f}"
            f"{rows[name]['Complexity (GFLOPS/batch)']:>10.3f}")
    emit("Table IV: DLRM model zoo", lines)
    for name, (size_gb, gflops) in TABLE_IV_TARGETS.items():
        assert rows[name]["Size (GB)"] == pytest.approx(size_gb, rel=0.02)
        assert rows[name]["Complexity (GFLOPS/batch)"] == pytest.approx(
            gflops, rel=0.05)


def test_mc1_structure_matches_section_6_1(benchmark):
    census = benchmark.pedantic(
        lambda: operator_census(build_dlrm_graph(MODEL_ZOO["MC1"], 64)),
        rounds=1, iterations=1)
    emit("MC1 operator census",
         [f"{op}: {count}" for op, count in sorted(census.items())])
    # "approximately 750 layers with nearly 550 consisting of EB
    # operators" (Section 6.1).
    assert census["embedding_bag"] == 550
    assert 650 <= census["total"] <= 950
