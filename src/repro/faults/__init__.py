"""Deterministic fault injection and serving resilience.

Meta-scale serving assumes faults are routine: DRAM ECC events, stuck
PEs, NoC congestion collapse, dead cards, host timeouts.  This package
makes those injectable *reproducibly*:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: seed-driven, frozen
  fault windows over hardware (cycles) and serving (microseconds)
  domains;
* :mod:`repro.faults.injector` — :class:`FaultInjector`: attaches a
  plan to an :class:`~repro.core.accelerator.Accelerator` (hardware
  hooks consult ``engine.faults``) and answers the serving simulator's
  card-failure/slowdown queries;
* :mod:`repro.faults.campaign` — ``python -m repro.faults.campaign``:
  sweeps seeded fault scenarios and emits a resilience report
  (availability, goodput, SLO burn under faults vs. baseline, plus
  hardware fault microbenchmarks and the multi-card failover path).

The determinism contract: an attached injector with an *empty* plan is
bit-identical to no injector (the conformance ``faults`` pillar), and
the same plan seed reproduces identical fault timestamps, retry
counts, and campaign reports at any ``--jobs`` count.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (FAULT_KINDS, HARDWARE_KINDS, PERMANENT,
                               SERVING_KINDS, FaultEvent, FaultPlan,
                               FaultProfile, generate_fleet_plan)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultProfile",
    "HARDWARE_KINDS",
    "PERMANENT",
    "SERVING_KINDS",
    "generate_fleet_plan",
]
