"""The fault injector: frozen plan in, deterministic penalties out.

One :class:`FaultInjector` serves both fault domains:

* the **hardware** queries (``dram_penalty``, ``sram_penalty``,
  ``noc_degrade``, ``noc_retransmit``, ``rednet_penalty``,
  ``pe_dispatch_penalty``, ``pe_lockup_release``) are consulted by the
  hardware models on the discrete-event simulator's hot paths via
  ``engine.faults`` (attached with :meth:`attach`);
* the **serving** queries (``card_available_at``, ``card_failure_in``,
  ``card_slowdown``) are consulted by the request-level serving
  simulator (:func:`repro.serving.resilience.simulate_serving_resilient`).

Injection is *purely reactive*: the injector never schedules events of
its own and never draws randomness.  A query answers "is an access at
virtual time *t* inside a fault window, and what is the penalty?" from
the plan's pre-drawn windows.  With an empty plan every query returns
its neutral value and the hardware models skip their penalty yields,
so an attached-but-empty injector is *bit-identical* to no injector at
all — the conformance ``faults`` pillar pins this.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan, PERMANENT

#: (start, end, magnitude) — one active window of one kind on one target.
_Window = Tuple[float, float, float]


class FaultInjector:
    """Answers penalty queries against one frozen :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan,
                 grid_rows: Optional[int] = None) -> None:
        self.plan = plan
        #: grid rows, needed to split NoC link targets into rows/cols;
        #: :meth:`attach` fills it from the accelerator's config.
        self.grid_rows = grid_rows
        #: kind -> number of times a penalty was actually applied
        #: (deterministic: follows the simulated event order exactly)
        self.activations: Dict[str, int] = {}
        #: (kind, target) -> windows sorted by start
        self._windows: Dict[Tuple[str, int], List[_Window]] = {}
        self._kinds = frozenset(e.kind for e in plan.events)
        for event in plan.events:
            self._windows.setdefault((event.kind, event.target), []).append(
                (event.start, event.end, event.magnitude))

    # -- lifecycle --------------------------------------------------------
    def attach(self, accelerator) -> "FaultInjector":
        """Arm the hardware hooks of ``accelerator`` with this plan."""
        if self.grid_rows is None:
            self.grid_rows = accelerator.config.grid_rows
        accelerator.engine.faults = self
        return self

    def detach(self, accelerator) -> None:
        if accelerator.engine.faults is self:
            accelerator.engine.faults = None

    # -- core window lookup ----------------------------------------------
    def _sum_active(self, kind: str, target: int, now: float) -> float:
        """Summed magnitude of the active windows on ``target`` (+wildcard)."""
        if kind not in self._kinds:
            return 0.0
        total = 0.0
        for tgt in (target, -1) if target != -1 else (-1,):
            for start, end, magnitude in self._windows.get((kind, tgt), ()):
                if start <= now < end:
                    total += magnitude
        return total

    def _count(self, kind: str) -> None:
        self.activations[kind] = self.activations.get(kind, 0) + 1

    # -- hardware queries (times in cycles) ------------------------------
    def dram_penalty(self, controller: int, now: float) -> float:
        """Extra access cycles from ECC retries on ``controller``."""
        extra = self._sum_active("dram.ecc_correctable", controller, now)
        if extra:
            self._count("dram.ecc_correctable")
        fatal = self._sum_active("dram.ecc_uncorrectable", controller, now)
        if fatal:
            self._count("dram.ecc_uncorrectable")
        return extra + fatal

    def sram_penalty(self, slice_index: int, now: float) -> float:
        """Extra access cycles from a stalled SRAM slice."""
        extra = self._sum_active("sram.slice_stall", slice_index, now)
        if extra:
            self._count("sram.slice_stall")
        return extra

    def noc_degrade(self, row: int, col: int, now: float) -> float:
        """Charged-byte multiplier (>= 1) from degraded row/col links.

        A window's magnitude is the usable-bandwidth *fraction* f in
        (0, 1]; traffic is charged 1/f of its bytes while degraded.
        Row and column degradation compose multiplicatively.
        """
        if "noc.link_degrade" not in self._kinds:
            return 1.0
        multiplier = 1.0
        for target in (row, self._col_target(col)):
            fraction = self._sum_active("noc.link_degrade", target, now)
            if fraction > 0.0:
                multiplier *= 1.0 / min(1.0, fraction)
        if multiplier != 1.0:
            self._count("noc.link_degrade")
        return multiplier

    def noc_retransmit(self, row: int, col: int, now: float) -> float:
        """Extra cycles from transient packet retransmission."""
        if "noc.retransmit" not in self._kinds:
            return 0.0
        extra = (self._sum_active("noc.retransmit", row, now)
                 + self._sum_active("noc.retransmit",
                                    self._col_target(col), now))
        if extra:
            self._count("noc.retransmit")
        return extra

    def _col_target(self, col: int) -> int:
        rows = self.grid_rows if self.grid_rows is not None else 8
        return rows + col

    def rednet_penalty(self, now: float) -> float:
        """Extra cycles on a reduction-network transfer."""
        extra = self._sum_active("rednet.retransmit", 0, now)
        if extra:
            self._count("rednet.retransmit")
        return extra

    def pe_dispatch_penalty(self, pe_index: int, now: float) -> float:
        """Extra scheduler dispatch cycles on a slowed-down PE."""
        extra = self._sum_active("pe.slowdown", pe_index, now)
        if extra:
            self._count("pe.slowdown")
        return extra

    def pe_lockup_release(self, pe_index: int, now: float) -> float:
        """End of the lockup window covering ``now`` (0 = not locked)."""
        if "pe.lockup" not in self._kinds:
            return 0.0
        release = 0.0
        for tgt in (pe_index, -1):
            for start, end, _ in self._windows.get(("pe.lockup", tgt), ()):
                if start <= now < end and end > release:
                    release = end
        if release:
            self._count("pe.lockup")
        return release

    # -- serving queries (times in microseconds) -------------------------
    def card_available_at(self, card: int, t: float) -> float:
        """Earliest time >= ``t`` at which ``card`` is up.

        Walks failure windows forward (windows may chain); returns
        ``math.inf`` for a permanent failure (window end past
        :data:`~repro.faults.plan.PERMANENT` / 2).
        """
        if "card.failure" not in self._kinds:
            return t
        moved = True
        while moved:
            moved = False
            for tgt in (card, -1):
                for start, end, _ in self._windows.get(
                        ("card.failure", tgt), ()):
                    if start <= t < end:
                        if end >= PERMANENT / 2:
                            return math.inf
                        t = end
                        moved = True
        return t

    def card_failure_in(self, card: int, t0: float,
                        t1: float) -> Optional[float]:
        """First failure-window start inside ``(t0, t1)``, else None."""
        if "card.failure" not in self._kinds:
            return None
        first: Optional[float] = None
        for tgt in (card, -1):
            for start, _end, _ in self._windows.get(("card.failure", tgt),
                                                    ()):
                if t0 < start < t1 and (first is None or start < first):
                    first = start
        return first

    def card_slowdown(self, card: int, t: float) -> float:
        """Execute-latency multiplier (>= 1) for a batch starting at t."""
        if "card.slowdown" not in self._kinds:
            return 1.0
        multiplier = 1.0
        for tgt in (card, -1):
            for start, end, magnitude in self._windows.get(
                    ("card.slowdown", tgt), ()):
                if start <= t < end:
                    multiplier *= max(1.0, magnitude)
        if multiplier != 1.0:
            self._count("card.slowdown")
        return multiplier
