"""``python -m repro.faults.campaign`` — the chaos campaign CLI.

Examples::

    python -m repro.faults.campaign --seeds 10
    python -m repro.faults.campaign --seeds 10 --jobs 4 --json report.json
    python -m repro.faults.campaign --seeds 2 --no-hardware --no-failover

Exit status 0 when every campaign check passes (currently: graceful
degradation — a 1-of-N card failure must keep availability above the
shed-everything strawman); 1 otherwise.

The report is a pure function of the seed list: the same invocation at
any ``--jobs`` level writes byte-identical JSON, so the artifact can be
diffed across runs and pinned in CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.faults.campaign import (CampaignConfig, render_text, run_campaign,
                                   to_json)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.campaign",
        description="Deterministic chaos campaign: seeded fault scenarios "
                    "against the resilient serving simulator, plus a "
                    "hardware fault microbench and a multi-card failover "
                    "estimate.")
    parser.add_argument("--seeds", type=int, default=10,
                        help="seeds per scenario (default 10)")
    parser.add_argument("--seed-start", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--requests", type=int, default=2000,
                        help="requests per serving run (default 2000)")
    parser.add_argument("--qps", type=float, default=20_000.0,
                        help="baseline offered load (default 20000)")
    parser.add_argument("--cards", type=int, default=4,
                        help="cards behind the serving queue (default 4)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = serial); the "
                        "report is identical at any job count")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the JSON report to PATH ('-' for "
                        "stdout)")
    parser.add_argument("--no-hardware", action="store_true",
                        help="skip the hardware fault microbench")
    parser.add_argument("--no-failover", action="store_true",
                        help="skip the multi-card failover estimate")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress output")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    cfg = CampaignConfig(
        seeds=args.seeds, seed_start=args.seed_start,
        requests=args.requests, qps=args.qps, cards=args.cards,
        include_hardware=not args.no_hardware,
        include_failover=not args.no_failover)

    def progress(row) -> None:
        if args.quiet:
            return
        marker = ("." if row.get("graceful", True) else "F")
        print(f"{marker} seed={row['seed']:<6} {row['scenario']:<18} "
              f"avail={row['faulted']['availability']:.4f}", flush=True)

    report = run_campaign(cfg, jobs=args.jobs, progress=progress)
    print()
    print(render_text(report))

    if args.json:
        text = to_json(report)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote JSON report to {args.json}")

    passed = all(report["checks"].values())
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
