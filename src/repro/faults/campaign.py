"""The chaos campaign: seeded fault scenarios -> resilience report.

``python -m repro.faults.campaign`` sweeps a set of *scenarios* over a
range of seeds.  Every scenario pairs a deterministic fault plan with a
serving configuration and reports availability, goodput, and SLO burn
against a fault-free baseline run on the **same arrival stream** (same
seed), so every delta is attributable to the injected faults alone:

* ``card_failure``  — one of N cards dies permanently mid-run; the
  survivors absorb its shards at a failover slowdown (magnitude from
  :func:`repro.runtime.multi_card.estimate_failover`).  The graceful-
  degradation check compares availability against the *shed-everything*
  strawman (every request after the failure instant is lost).
* ``card_slowdown`` — transient slow-card windows drawn from the seed.
* ``timeout_pressure`` — a tight per-attempt deadline plus retries at
  offered load above capacity: the retry-storm regime.
* ``overload_shed``  — 3x offered load with a queue-depth shed policy:
  availability drops but served-request latency stays bounded.

A campaign additionally runs a *hardware microbench* (one small FC
kernel per hardware-fault family, cycle inflation + stall attribution)
and a *failover estimate* (multi-card re-sharding after a card loss).

Everything is a pure function of the seed list: two runs of the same
campaign — at any ``--jobs`` level — emit byte-identical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import PERMANENT, FaultEvent, FaultPlan, FaultProfile
from repro.parallel import parallel_map
from repro.serving.resilience import (ResilienceConfig,
                                      simulate_serving_resilient)
from repro.serving.simulator import BatchingConfig
from repro.serving.slo import slo_from_report

SCHEMA_VERSION = 1

#: synthetic batch-latency model: microseconds for a batch of b
DEFAULT_BASE_US = 150.0
DEFAULT_SLOPE_US = 2.0

#: campaign-wide batching window; max_batch=4 caps the service rate at
#: ~25k qps so the overload scenarios actually overload
CAMPAIGN_BATCHING = BatchingConfig(max_batch=4, max_wait_us=200.0)

#: per-request SLO the burn rates are measured against
SLA_US = 1_000.0
AVAILABILITY_TARGET = 0.99

SCENARIOS = ("card_failure", "card_slowdown", "timeout_pressure",
             "overload_shed")


def synthetic_latency_model(batch: int) -> float:
    """The campaign's fixed batch-latency model (no model stack needed)."""
    return DEFAULT_BASE_US + DEFAULT_SLOPE_US * batch


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign sweep, fully serialisable (and picklable)."""

    seeds: int = 10
    seed_start: int = 0
    requests: int = 2000
    qps: float = 20_000.0
    cards: int = 4
    #: survivor-card execute multiplier after a failover; overwritten
    #: by the measured failover estimate unless hardware=False
    failover_slowdown: float = 1.3
    include_hardware: bool = True
    include_failover: bool = True

    def seed_list(self) -> List[int]:
        return [self.seed_start + i for i in range(self.seeds)]

    @property
    def makespan_us(self) -> float:
        """Expected arrival-stream span."""
        return self.requests * 1e6 / self.qps

    def to_dict(self) -> Dict:
        return {"schema_version": SCHEMA_VERSION,
                "seeds": self.seed_list(), "requests": self.requests,
                "qps": self.qps, "cards": self.cards,
                "batching": {"max_batch": CAMPAIGN_BATCHING.max_batch,
                             "max_wait_us": CAMPAIGN_BATCHING.max_wait_us},
                "latency_model": {"base_us": DEFAULT_BASE_US,
                                  "slope_us": DEFAULT_SLOPE_US},
                "sla_us": SLA_US,
                "availability_target": AVAILABILITY_TARGET,
                "failover_slowdown": self.failover_slowdown,
                "scenarios": list(SCENARIOS)}


# -- scenario construction ---------------------------------------------------

def _scenario_setup(name: str, seed: int, cfg: CampaignConfig
                    ) -> Tuple[FaultPlan, ResilienceConfig, float]:
    """(plan, resilience, qps) for one scenario instance."""
    span = cfg.makespan_us
    if name == "card_failure":
        dead = seed % cfg.cards
        fail_at = 0.4 * span
        events = [FaultEvent(start=fail_at, kind="card.failure",
                             target=dead, duration=PERMANENT)]
        events += [FaultEvent(start=fail_at, kind="card.slowdown",
                              target=c, duration=PERMANENT,
                              magnitude=cfg.failover_slowdown)
                   for c in range(cfg.cards) if c != dead]
        plan = FaultPlan(events=tuple(events), seed=seed)
        res = ResilienceConfig(num_cards=cfg.cards, max_retries=2)
        return plan, res, cfg.qps
    if name == "card_slowdown":
        profile = FaultProfile(num_cards=cfg.cards, horizon_us=span,
                               rates={"card.slowdown": 3.0})
        plan = FaultPlan.generate(seed, profile, kinds=("card.slowdown",))
        res = ResilienceConfig(num_cards=cfg.cards)
        return plan, res, cfg.qps
    if name == "timeout_pressure":
        # load above single-card capacity + a tight deadline: timeouts
        # spawn retries which add load — the storm regime
        plan = FaultPlan(events=(), seed=seed)
        res = ResilienceConfig(deadline_us=450.0, max_retries=3,
                               retry_backoff_us=50.0, backoff_cap_us=400.0)
        return plan, res, cfg.qps * 1.5
    if name == "overload_shed":
        plan = FaultPlan(events=(), seed=seed)
        res = ResilienceConfig(shed_queue_depth=32)
        return plan, res, cfg.qps * 3.0
    raise ValueError(f"unknown scenario {name!r}")


def _report_stats(report) -> Dict:
    from repro.obs.detect import burn_anomalies

    slo = slo_from_report(report, sla_us=SLA_US,
                          availability_target=AVAILABILITY_TARGET)
    attempts = report.attempts
    mean_attempts = float(attempts.mean()) if attempts.size else 1.0
    telemetry = None
    if report.telemetry is not None:
        t = report.telemetry
        burn = burn_anomalies(slo)
        telemetry = {
            "latency_sketch": t.latency.summary(),
            "slowest": [r.to_dict() for r in t.exemplars.slowest[:3]],
            "anomalous_signals": [r.stat for r in t.anomalies()
                                  if r.anomalous],
            "burn_anomalies": len(burn.anomalies),
            "burn_changepoints": len(burn.changepoints),
        }
    return {
        "telemetry": telemetry,
        "availability": report.availability,
        "counts": report.counts_by_status(),
        "qps_served": report.qps_served,
        "p50_us": report.p50_us,
        "p99_us": report.p99_us,
        "mean_attempts": mean_attempts,
        "retry_overhead_mean_us": report.breakdown_means()["retry_overhead"],
        "hedged_batches": report.hedged_batches,
        "hedge_wins": report.hedge_wins,
        "busy_fraction": report.busy_fraction,
        "slo_burn_rate": slo.burn_rate,
        "slo_violations": slo.violations,
        "slo_aborted": slo.aborted,
    }


def run_scenario(name: str, seed: int, cfg: CampaignConfig) -> Dict:
    """One (scenario, seed) cell plus its fault-free baseline."""
    from repro.obs.metrics import MetricRegistry

    plan, res, qps = _scenario_setup(name, seed, cfg)
    faulted = simulate_serving_resilient(
        synthetic_latency_model, qps, CAMPAIGN_BATCHING, res,
        num_requests=cfg.requests, seed=seed,
        faults=FaultInjector(plan), registry=MetricRegistry(),
        collect_telemetry=True, replica=seed)
    baseline = simulate_serving_resilient(
        synthetic_latency_model, qps, CAMPAIGN_BATCHING,
        ResilienceConfig(num_cards=res.num_cards),
        num_requests=cfg.requests, seed=seed, registry=MetricRegistry(),
        collect_telemetry=True, replica=seed)

    row = {
        "scenario": name,
        "seed": seed,
        "qps_offered": qps,
        "plan": {"events": len(plan), "by_kind": plan.counts_by_kind()},
        "faulted": _report_stats(faulted),
        "baseline": _report_stats(baseline),
    }
    if name == "card_failure":
        fail_at = 0.4 * cfg.makespan_us
        arrivals = faulted.arrivals_us
        before = int(np.searchsorted(arrivals, fail_at, side="right"))
        shed_everything = before / arrivals.size if arrivals.size else 1.0
        row["failure_at_us"] = fail_at
        row["shed_everything_availability"] = shed_everything
        row["graceful"] = bool(
            faulted.availability > shed_everything)
    return row


def _scenario_job(job: Tuple[str, int, CampaignConfig]) -> Dict:
    """Module-level wrapper so the sweep survives ``spawn`` workers."""
    name, seed, cfg = job
    return run_scenario(name, seed, cfg)


# -- hardware microbench -----------------------------------------------------

#: one representative fault per hardware family for the microbench:
#: kind -> magnitude of a wildcard window covering the whole kernel
_MICROBENCH_KINDS = {
    "dram.ecc_correctable": 60.0,   # extra cycles per DRAM access
    "sram.slice_stall": 30.0,       # extra cycles per SRAM access
    "noc.link_degrade": 0.5,        # half the usable link bandwidth
    "noc.retransmit": 100.0,        # extra cycles per traversal
    "pe.slowdown": 10.0,            # extra dispatch cycles per command
}

#: fault-injected stall causes (subset of obs.observer.STALL_CAUSES)
_FAULT_CAUSES = ("dram_ecc_retry", "sram_fault_stall", "noc_retransmit",
                 "pe_fault_stall")


def hardware_microbench(seed: int = 0) -> Dict:
    """Cycle inflation of one small FC kernel per hardware-fault kind.

    The same kernel runs clean once and once per kind under a single
    wildcard fault window covering the whole run, so the table shows
    each fault model actually biting: inflated cycles and/or new stall
    causes in the attribution.
    """
    from repro import Accelerator
    from repro.kernels.fc import run_fc

    def run(plan: Optional[FaultPlan]):
        acc = Accelerator(observe=True)
        if plan is not None:
            FaultInjector(plan).attach(acc)
        result = run_fc(acc, m=64, k=64, n=64, dtype="int8",
                        subgrid=acc.subgrid((0, 0), 1, 1), seed=seed)
        stalls = acc.obs.stalls_by_cause()
        injector = acc.engine.faults
        return result.cycles, stalls, (dict(injector.activations)
                                       if injector else {})

    clean_cycles, clean_stalls, _ = run(None)
    rows = []
    for kind, magnitude in _MICROBENCH_KINDS.items():
        plan = FaultPlan(events=(
            FaultEvent(start=0.0, kind=kind, target=-1,
                       duration=100.0 * max(clean_cycles, 1.0),
                       magnitude=magnitude),), seed=seed)
        cycles, stalls, activations = run(plan)
        rows.append({
            "kind": kind,
            "events": len(plan),
            "cycles": cycles,
            "inflation": cycles / clean_cycles if clean_cycles else 1.0,
            "fault_stall_cycles": {
                cause: stalls.get(cause, 0.0) - clean_stalls.get(cause, 0.0)
                for cause in _FAULT_CAUSES
                if stalls.get(cause, 0.0) != clean_stalls.get(cause, 0.0)},
            "activations": activations,
        })
    return {"seed": seed, "clean_cycles": clean_cycles, "kinds": rows}


# -- failover estimate -------------------------------------------------------

def failover_section(model: str = "HC", cards_target: int = 4,
                     failed_card: int = 1) -> Dict:
    """Multi-card failover estimate for one Table IV model."""
    from repro.compiler.fusion import fuse_graph
    from repro.eval.machines import MACHINES
    from repro.models.configs import MODEL_ZOO, model_size_bytes
    from repro.models.dlrm import build_dlrm_graph
    from repro.runtime.multi_card import estimate_failover

    cfg = MODEL_ZOO[model]
    graph = build_dlrm_graph(cfg, 64)
    fuse_graph(graph)
    capacity = int(model_size_bytes(cfg) / (cards_target - 0.5))
    estimate = estimate_failover(graph, MACHINES["mtia"],
                                 failed_cards=[failed_card],
                                 card_capacity_bytes=capacity)
    return dict(estimate.to_dict(), model=model)


# -- campaign orchestration --------------------------------------------------

def run_campaign(cfg: Optional[CampaignConfig] = None,
                 jobs: int = 1, progress=None) -> Dict:
    """Run every scenario over every seed; returns the JSON-ready report."""
    cfg = cfg or CampaignConfig()

    failover = None
    if cfg.include_failover:
        failover = failover_section(cards_target=cfg.cards)
        # feed the measured degradation back into the card_failure
        # scenario so survivor slowdown is the failover estimate's
        cfg = CampaignConfig(
            seeds=cfg.seeds, seed_start=cfg.seed_start,
            requests=cfg.requests, qps=cfg.qps, cards=cfg.cards,
            failover_slowdown=max(1.0, failover["slowdown"]),
            include_hardware=cfg.include_hardware,
            include_failover=cfg.include_failover)

    cells = [(name, seed, cfg) for seed in cfg.seed_list()
             for name in SCENARIOS]
    callback = (None if progress is None
                else lambda _index, row: progress(row))
    scenarios = parallel_map(_scenario_job, cells, jobs=jobs,
                             progress=callback)

    summary: Dict[str, Dict] = {}
    for name in SCENARIOS:
        rows = [r for r in scenarios if r["scenario"] == name]
        avail = [r["faulted"]["availability"] for r in rows]
        p99 = [r["faulted"]["p99_us"] for r in rows
               if not np.isnan(r["faulted"]["p99_us"])]
        summary[name] = {
            "cells": len(rows),
            "availability_mean": float(np.mean(avail)) if avail else 1.0,
            "availability_min": float(np.min(avail)) if avail else 1.0,
            "p99_served_mean_us": float(np.mean(p99)) if p99 else
            float("nan"),
            "goodput_mean_qps": float(np.mean(
                [r["faulted"]["qps_served"] for r in rows])),
            "slo_burn_mean": float(np.mean(
                [r["faulted"]["slo_burn_rate"] for r in rows])),
            "anomalous_cells": sum(
                1 for r in rows
                if r["faulted"]["telemetry"] is not None
                and (r["faulted"]["telemetry"]["anomalous_signals"]
                     or r["faulted"]["telemetry"]["burn_anomalies"])),
        }

    graceful = all(r["graceful"] for r in scenarios
                   if r["scenario"] == "card_failure")
    report = {
        "schema_version": SCHEMA_VERSION,
        "config": cfg.to_dict(),
        "scenarios": scenarios,
        "summary": summary,
        "checks": {"graceful_degradation": graceful},
    }
    if cfg.include_hardware:
        report["hardware"] = hardware_microbench(seed=cfg.seed_start)
    if failover is not None:
        report["failover"] = failover
    return report


def render_text(report: Dict) -> str:
    """Human-readable resilience summary of one campaign report."""
    lines = []
    cfg = report["config"]
    lines.append(f"fault campaign: {len(cfg['seeds'])} seeds x "
                 f"{len(cfg['scenarios'])} scenarios, "
                 f"{cfg['requests']} requests @ {cfg['qps']:.0f} qps, "
                 f"{cfg['cards']} cards")
    lines.append(f"{'scenario':<18} {'avail mean':>10} {'avail min':>10} "
                 f"{'p99 us':>10} {'goodput':>10} {'SLO burn':>9} "
                 f"{'anomalous':>9}")
    for name, s in report["summary"].items():
        anomalous = s.get("anomalous_cells", 0)
        lines.append(f"{name:<18} {s['availability_mean']:>10.4f} "
                     f"{s['availability_min']:>10.4f} "
                     f"{s['p99_served_mean_us']:>10.1f} "
                     f"{s['goodput_mean_qps']:>10.0f} "
                     f"{s['slo_burn_mean']:>9.2f} "
                     f"{anomalous:>4}/{s['cells']:<4}")
    if "hardware" in report:
        hw = report["hardware"]
        lines.append(f"hardware microbench (clean {hw['clean_cycles']:.0f} "
                     "cycles):")
        for row in hw["kinds"]:
            stalls = ", ".join(f"{k}+{v:.0f}" for k, v in
                               row["fault_stall_cycles"].items()) or "-"
            lines.append(f"  {row['kind']:<24} x{row['inflation']:.3f} "
                         f"({row['events']} events; {stalls})")
    if "failover" in report:
        fo = report["failover"]
        lines.append(
            f"failover ({fo['model']}, {fo['cards_before']} -> "
            f"{fo['cards_after']} cards): slowdown x{fo['slowdown']:.3f}, "
            f"moved {fo['moved_weight_bytes'] / 1e9:.1f} GB, efficiency "
            f"{fo['baseline_efficiency']:.3f} -> "
            f"{fo['degraded_efficiency']:.3f}")
    checks = report["checks"]
    lines.append("graceful degradation: "
                 + ("PASS" if checks["graceful_degradation"] else "FAIL"))
    return "\n".join(lines)


def to_json(report: Dict, indent: int = 2) -> str:
    return json.dumps(report, indent=indent, sort_keys=True)


if __name__ == "__main__":   # pragma: no cover
    import sys

    from repro.faults.__main__ import main
    sys.exit(main())
