"""Deterministic, seed-driven fault plans.

A :class:`FaultPlan` is a *pre-drawn* list of fault windows: every
random decision (which resource, when, how bad) is made up front from a
seeded RNG, never during the simulation.  That is what makes chaos
testing replayable here — the simulator itself consumes only the frozen
event list, so the same seed reproduces identical fault timestamps,
retry counts, and reports bit-for-bit (and a plan can be serialised,
shipped in a bug report, and replayed).

Two fault domains share one plan:

* **hardware** events, timestamped in accelerator *cycles*, consumed by
  the discrete-event simulator through
  :class:`~repro.faults.injector.FaultInjector`'s hardware queries
  (DRAM ECC, SRAM slice stalls, NoC degradation/retransmission, PE
  lockup/slowdown);
* **serving** events, timestamped in *microseconds*, consumed by the
  request-level serving simulator (card failures and slowdowns).

The ``target`` index selects one instance of the faulted resource
(controller, slice, PE, card); ``-1`` is a wildcard meaning *all*.
NoC link faults number the links rows-first: ``target < grid_rows``
names a row link, ``target - grid_rows`` a column link.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

#: Hardware-domain fault kinds (timestamps in cycles).
HARDWARE_KINDS: Tuple[str, ...] = (
    "dram.ecc_correctable",    # magnitude = extra cycles per access
    "dram.ecc_uncorrectable",  # magnitude = detect+retire cycles per access
    "sram.slice_stall",        # magnitude = extra cycles per access
    "noc.link_degrade",        # magnitude = usable-bandwidth fraction (0, 1]
    "noc.retransmit",          # magnitude = extra cycles per traversal
    "rednet.retransmit",       # magnitude = extra cycles per transfer
    "pe.slowdown",             # magnitude = extra dispatch cycles per command
    "pe.lockup",               # window = dead time; magnitude unused
)

#: Serving-domain fault kinds (timestamps in microseconds).
SERVING_KINDS: Tuple[str, ...] = (
    "card.failure",            # card serves nothing inside the window
    "card.slowdown",           # magnitude = execute-latency multiplier >= 1
)

FAULT_KINDS: Tuple[str, ...] = HARDWARE_KINDS + SERVING_KINDS

#: Stand-in for "until the end of the run" (JSON-safe, beyond any run).
PERMANENT = 1e18


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One fault window on one resource instance.

    Ordering is (start, kind, target, duration, magnitude) so a sorted
    event tuple is a canonical representation — two plans with the same
    events compare equal regardless of generation order.
    """

    start: float
    kind: str
    target: int = -1
    duration: float = 0.0
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.start < 0 or self.duration < 0:
            raise ValueError(f"fault window must be non-negative: {self}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def domain(self) -> str:
        return "serving" if self.kind in SERVING_KINDS else "hardware"

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "target": self.target,
                "start": self.start, "duration": self.duration,
                "magnitude": self.magnitude}

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultEvent":
        return cls(start=data["start"], kind=data["kind"],
                   target=data.get("target", -1),
                   duration=data.get("duration", 0.0),
                   magnitude=data.get("magnitude", 0.0))


@dataclass(frozen=True)
class FaultProfile:
    """Shape of the machine + fault intensity for plan generation.

    ``rates`` maps a fault kind to the *expected number of windows* over
    the horizon (a Poisson draw); kinds absent from ``rates`` generate
    nothing.  All draws come from one seeded generator in a fixed kind
    order, so the profile is a pure function ``seed -> plan``.
    """

    grid_rows: int = 8
    grid_cols: int = 8
    num_dram_controllers: int = 16
    num_sram_slices: int = 16
    num_pes: int = 64
    num_cards: int = 4
    horizon_cycles: float = 200_000.0
    horizon_us: float = 200_000.0
    rates: Dict[str, float] = field(default_factory=dict)

    def targets_for(self, kind: str) -> int:
        """How many distinct instances a kind can target."""
        family = kind.split(".", 1)[0]
        return {
            "dram": self.num_dram_controllers,
            "sram": self.num_sram_slices,
            "noc": self.grid_rows + self.grid_cols,
            "rednet": 1,
            "pe": self.num_pes,
            "card": self.num_cards,
        }[family]


#: Window-length and magnitude ranges per kind: (dur_lo, dur_hi,
#: mag_lo, mag_hi) as fractions of the horizon for durations.
_KIND_SHAPES: Dict[str, Tuple[float, float, float, float]] = {
    "dram.ecc_correctable":   (0.02, 0.20, 20.0, 120.0),
    "dram.ecc_uncorrectable": (0.005, 0.05, 400.0, 2000.0),
    "sram.slice_stall":       (0.02, 0.15, 10.0, 80.0),
    "noc.link_degrade":       (0.05, 0.30, 0.25, 0.9),
    "noc.retransmit":         (0.02, 0.20, 30.0, 200.0),
    "rednet.retransmit":      (0.02, 0.20, 30.0, 200.0),
    "pe.slowdown":            (0.05, 0.30, 5.0, 40.0),
    "pe.lockup":              (0.002, 0.02, 0.0, 0.0),
    "card.failure":           (0.10, 0.40, 0.0, 0.0),
    "card.slowdown":          (0.10, 0.40, 1.3, 4.0),
}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, canonically-ordered set of fault windows."""

    events: Tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events))
        if ordered != tuple(self.events):
            object.__setattr__(self, "events", ordered)

    @property
    def empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def by_domain(self, domain: str) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.domain == domain)

    @property
    def hardware_events(self) -> Tuple[FaultEvent, ...]:
        return self.by_domain("hardware")

    @property
    def serving_events(self) -> Tuple[FaultEvent, ...]:
        return self.by_domain("serving")

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def extended(self, events: Iterable[FaultEvent]) -> "FaultPlan":
        """A new plan with ``events`` added (canonical order restored)."""
        return replace(self, events=tuple(self.events) + tuple(events))

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> Dict:
        return {"seed": self.seed,
                "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(events=tuple(FaultEvent.from_dict(e)
                                for e in data["events"]),
                   seed=data.get("seed"))

    # -- generation -------------------------------------------------------
    @classmethod
    def generate(cls, seed: int,
                 profile: Optional[FaultProfile] = None,
                 kinds: Optional[Iterable[str]] = None) -> "FaultPlan":
        """Draw a plan from ``seed``: same seed, same plan, always.

        ``kinds`` restricts which fault kinds are drawn (default: every
        kind with a rate in ``profile.rates``; if the profile has no
        rates, a light default mix of one expected window per kind).
        """
        profile = profile or FaultProfile()
        rng = np.random.default_rng(seed)
        wanted = tuple(kinds) if kinds is not None else FAULT_KINDS
        events: List[FaultEvent] = []
        # Fixed kind order: the draw sequence is part of the contract.
        for kind in FAULT_KINDS:
            if kind not in wanted:
                continue
            rate = profile.rates.get(kind, 1.0 if not profile.rates else 0.0)
            count = int(rng.poisson(rate)) if rate > 0 else 0
            dur_lo, dur_hi, mag_lo, mag_hi = _KIND_SHAPES[kind]
            horizon = (profile.horizon_us if kind in SERVING_KINDS
                       else profile.horizon_cycles)
            targets = profile.targets_for(kind)
            for _ in range(count):
                start = float(rng.uniform(0.0, horizon))
                duration = float(rng.uniform(dur_lo, dur_hi) * horizon)
                magnitude = (float(rng.uniform(mag_lo, mag_hi))
                             if mag_hi > mag_lo else mag_lo)
                target = int(rng.integers(0, targets))
                events.append(FaultEvent(start=start, kind=kind,
                                         target=target, duration=duration,
                                         magnitude=magnitude))
        return cls(events=tuple(events), seed=seed)


def generate_fleet_plan(seed: int, specs,
                        horizon_us: float = 1_000_000.0,
                        rack_failure_rate: float = 0.5,
                        power_failure_rate: float = 0.5,
                        replica_slowdown_rate: float = 1.0) -> FaultPlan:
    """Correlated rack/power-domain failures for a replica fleet.

    ``specs`` is the fleet's replica specs (anything with ``replica``,
    ``rack`` and ``power_domain`` attributes, e.g.
    :class:`repro.serving.fleet.ReplicaSpec`).  Serving-domain events
    target *replica* indices — the fleet layer retargets them to every
    card inside the replica.  Correlation is the point: one rack (or
    power-domain) draw emits a ``card.failure`` window with the *same*
    start and duration for every replica in the blast radius, so the
    fleet loses them together, the way a real rack switch or breaker
    trip takes out its whole span.  ``*_rate`` values are expected
    Poisson counts over the horizon; draws come from one seeded
    generator in a fixed order (racks, then power domains, then
    per-replica slowdowns), so ``(seed, specs)`` is a pure function of
    the plan.
    """
    specs = tuple(specs)
    rng = np.random.default_rng(seed)
    events: List[FaultEvent] = []

    def blast(group_ids, members_of, rate: int) -> None:
        for group in group_ids:
            count = int(rng.poisson(rate)) if rate > 0 else 0
            for _ in range(count):
                start = float(rng.uniform(0.0, horizon_us))
                duration = float(rng.uniform(0.05, 0.25) * horizon_us)
                for spec in members_of(group):
                    events.append(FaultEvent(
                        start=start, kind="card.failure",
                        target=spec.replica, duration=duration))

    racks = sorted({s.rack for s in specs})
    blast(racks, lambda g: [s for s in specs if s.rack == g],
          rack_failure_rate)
    domains = sorted({s.power_domain for s in specs})
    blast(domains, lambda g: [s for s in specs if s.power_domain == g],
          power_failure_rate)

    # uncorrelated per-replica brownouts on top of the blast radii
    dur_lo, dur_hi, mag_lo, mag_hi = _KIND_SHAPES["card.slowdown"]
    for spec in specs:
        count = (int(rng.poisson(replica_slowdown_rate))
                 if replica_slowdown_rate > 0 else 0)
        for _ in range(count):
            start = float(rng.uniform(0.0, horizon_us))
            duration = float(rng.uniform(dur_lo, dur_hi) * horizon_us)
            magnitude = float(rng.uniform(mag_lo, mag_hi))
            events.append(FaultEvent(start=start, kind="card.slowdown",
                                     target=spec.replica,
                                     duration=duration,
                                     magnitude=magnitude))
    return FaultPlan(events=tuple(events), seed=seed)
