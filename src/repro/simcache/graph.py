"""Per-operator memoisation inside a graph execution.

The whole-run :class:`~repro.simcache.SimCache` keys an entire kernel
invocation; editing one FC layer in a 30-op DLRM graph invalidates the
whole entry.  This module caches at *operator* granularity instead:

* **Chained fingerprints.**  Each graph leaf (input feed, bound weight)
  is digested once per run; every compute node's fingerprint is a hash
  of ``(op, attrs, output shape/dtype, epilogue, input fingerprints)``.
  The input fingerprints *are* the upstream-state digest — a node's key
  changes iff its own definition or anything upstream changed, so
  editing one weight invalidates exactly the downstream cone and the
  other operators replay from cache (partial-warm).
* **Functional results only.**  The executor's numpy semantics are
  machine-independent pure functions, so entries store just the output
  array.  Modelled timing is *not* cached: ``estimate_graph`` is O(ops)
  closed-form arithmetic whose result depends on fusion/placement
  context, and recomputing it keeps reports exact for any graph shape.
* **Two tiers.**  In-memory dict always; optional directory tier
  (``.npy`` per entry, atomic rename, content-addressed filenames) so
  sweeps can share warm state across processes.

Correctness contract: a cache hit must be bit-identical to recomputing
the node.  The conformance ``cache`` pillar replays fuzzed graphs
fresh / cold / warm / partial-warm and compares every output bitwise
(:func:`repro.conformance.determinism.check_graph_cache_determinism`).
"""

from __future__ import annotations

import os
import tempfile
from functools import lru_cache
from typing import Any, Dict, List, Optional

import numpy as np

from repro.simcache.cache import array_digest, canonical, fingerprint

__all__ = ["GraphOpCache", "graph_cache_from_env", "resolve_graph_cache",
           "GRAPH_CACHE_ENV_VAR"]

GRAPH_CACHE_ENV_VAR = "REPRO_GRAPH_CACHE"

#: bump on any change to fingerprint composition or entry layout
_SCHEMA = "g1"


def node_fingerprint(node, input_fps: List[str]) -> str:
    """Content key for one compute node given its inputs' keys."""
    attrs = {k: canonical(v) for k, v in node.attrs.items()
             if k != "data"}
    return fingerprint({
        "kind": "graph-op",
        "schema": _SCHEMA,
        "op": node.op,
        "attrs": attrs,
        "shape": list(node.meta.shape),
        "dtype": str(node.meta.dtype),
        "inputs": input_fps,
    })


class GraphOpCache:
    """Memory (+ optional directory) store of per-op output arrays."""

    def __init__(self, path: Optional[str] = None,
                 memory: bool = True) -> None:
        self.path = path
        self.memory = memory
        self._memory: Dict[str, np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        if path:
            os.makedirs(path, exist_ok=True)

    # -- tiers -----------------------------------------------------------

    def _file_for(self, key: str) -> str:
        return os.path.join(self.path, f"{_SCHEMA}_{key}.npy")

    def lookup(self, key: str) -> Optional[np.ndarray]:
        value = self._memory.get(key)
        if value is None and self.path:
            file = self._file_for(key)
            if os.path.exists(file):
                value = np.load(file, allow_pickle=False)
                if self.memory:
                    self._memory[key] = value
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def store(self, key: str, value: np.ndarray) -> None:
        if self.memory:
            self._memory[key] = value
        if self.path:
            file = self._file_for(key)
            if not os.path.exists(file):
                fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as fh:
                        np.save(fh, value, allow_pickle=False)
                    os.replace(tmp, file)
                except BaseException:
                    if os.path.exists(tmp):
                        os.unlink(tmp)
                    raise

    def __len__(self) -> int:
        return len(self._memory)

    def stats(self) -> Dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._memory),
                "hit_rate": (self.hits / (self.hits + self.misses)
                             if (self.hits + self.misses) else 0.0)}


# -- opt-in resolution (mirrors repro.simcache.cache_from_env) -----------

_ENV_CACHE: Optional[GraphOpCache] = None
_ENV_VALUE: Optional[str] = None


def graph_cache_from_env() -> Optional[GraphOpCache]:
    """A process-wide cache configured by ``REPRO_GRAPH_CACHE``.

    ``1`` / ``mem`` / ``memory`` → in-memory only; any other non-empty
    value is a directory path for the persistent tier.  Unset/empty →
    ``None`` (caching off — the default costs nothing).
    """
    global _ENV_CACHE, _ENV_VALUE
    value = os.environ.get(GRAPH_CACHE_ENV_VAR, "")
    if value != _ENV_VALUE:
        _ENV_VALUE = value
        if not value:
            _ENV_CACHE = None
        elif value.lower() in ("1", "mem", "memory"):
            _ENV_CACHE = GraphOpCache()
        else:
            _ENV_CACHE = GraphOpCache(path=value)
    return _ENV_CACHE


def reset_env_graph_cache() -> None:
    global _ENV_CACHE, _ENV_VALUE
    _ENV_CACHE = None
    _ENV_VALUE = None


def resolve_graph_cache(cache) -> Optional[GraphOpCache]:
    """Explicit cache wins; otherwise the env-configured one (or None).

    Pass ``False`` to force caching off even when ``REPRO_GRAPH_CACHE``
    is set (the conformance checks use this for their reference runs).
    """
    if cache is False:
        return None
    if cache is not None:
        return cache
    return graph_cache_from_env()


def leaf_fingerprint(value: np.ndarray) -> str:
    """Content key for a graph leaf (input feed or bound weight)."""
    return "leaf:" + array_digest(np.asarray(value))


@lru_cache(maxsize=4096)
def zero_leaf_fingerprint(shape: tuple, dtype: str) -> str:
    """Content key for a *synthesised* all-zero weight, from metadata.

    Unbound weights are materialised as ``np.zeros(shape, dtype)`` —
    for perf-only runs of multi-hundred-GB DLRM models these are the
    embedding tables, and content-hashing gigabytes of zeros would cost
    more than the computation being cached.  Shape + dtype determine
    the content exactly, so this key is just as content-addressed.
    Arguments must be hashable (tuple shape, str dtype) for the memo.
    """
    return fingerprint({"kind": "zero-leaf", "schema": _SCHEMA,
                        "shape": list(shape), "dtype": dtype})
