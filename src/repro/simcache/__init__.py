"""Content-addressed sim-result cache (see :mod:`repro.simcache.cache`)."""

from repro.simcache.cache import (CACHE_ENV_VAR, CacheEntry, SimCache,
                                  array_digest, cache_from_env, canonical,
                                  fingerprint, resolve_cache, reset_env_cache)
from repro.simcache.graph import (GRAPH_CACHE_ENV_VAR, GraphOpCache,
                                  graph_cache_from_env,
                                  reset_env_graph_cache,
                                  resolve_graph_cache)

__all__ = [
    "CACHE_ENV_VAR",
    "CacheEntry",
    "GRAPH_CACHE_ENV_VAR",
    "GraphOpCache",
    "SimCache",
    "graph_cache_from_env",
    "reset_env_graph_cache",
    "resolve_graph_cache",
    "array_digest",
    "cache_from_env",
    "canonical",
    "fingerprint",
    "resolve_cache",
    "reset_env_cache",
]
