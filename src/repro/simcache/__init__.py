"""Content-addressed sim-result cache (see :mod:`repro.simcache.cache`)."""

from repro.simcache.cache import (CACHE_ENV_VAR, CacheEntry, SimCache,
                                  array_digest, cache_from_env, canonical,
                                  fingerprint, resolve_cache, reset_env_cache)

__all__ = [
    "CACHE_ENV_VAR",
    "CacheEntry",
    "SimCache",
    "array_digest",
    "cache_from_env",
    "canonical",
    "fingerprint",
    "resolve_cache",
    "reset_env_cache",
]
