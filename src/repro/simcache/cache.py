"""Content-addressed sim-result cache.

Cycle-level simulation is deterministic: the same (machine config,
operator, shapes/dtypes, kernel-variant knobs, operands) always
produces the same cycles, outputs, and stall attributions.  That makes
sim results *content-addressable* — a sweep that revisits a
configuration (parameter sweeps, conformance replays, CI) can skip the
DES entirely and replay the recorded result, bit for bit.

Design:

* **Fingerprint** — :func:`fingerprint` hashes a canonical-JSON
  rendering of everything that can influence the result: the full
  :class:`~repro.config.ChipConfig`, the op kind, shapes/dtypes,
  kernel-variant knobs, the SRAM mode, allocator state, and either the
  generating seed or a digest of explicitly-passed operand arrays.
  Anything *not* in the key must be provably result-neutral (the
  observability hooks, by the PR-2 no-op contract).
* **Two tiers** — entries always live in an in-process dict; pass a
  directory path to also persist each entry as one schema-versioned
  JSON file (arrays stored zlib+base64), so warm results survive across
  processes and parallel sweep workers.
* **Opt-in only** — kernels take an explicit ``cache=`` argument, or
  the ``REPRO_SIM_CACHE`` environment variable turns the cache on
  process-wide (``1``/``mem`` for memory-only, any other value is the
  on-disk directory).  Tracing-enabled or already-used accelerators
  bypass the cache: a replayed result has no trace to attach, and a
  machine with prior simulation state is not content-addressed by the
  key.

Hit/miss counts land in the cache's :class:`MetricRegistry`
(``sim_cache_hits`` / ``sim_cache_misses``, labelled by op) and in
:meth:`SimCache.stats`.  The conformance ``cache`` pillar proves hits
are bit-identical to fresh simulation.
"""

from __future__ import annotations

import base64
import enum
import hashlib
import json
import os
import zlib
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import MetricRegistry

#: Environment variable enabling the cache process-wide.
CACHE_ENV_VAR = "REPRO_SIM_CACHE"

#: Bump when the entry layout or key derivation changes; stale disk
#: entries are ignored, never misread.
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Canonical fingerprints
# ---------------------------------------------------------------------------

def canonical(value: Any) -> Any:
    """Reduce ``value`` to canonical JSON-serialisable primitives.

    Dataclasses flatten to sorted dicts, enums to their names, tuples
    to lists, numpy scalars to Python numbers — so equal configurations
    always render to the same JSON text.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return canonical(asdict(value))
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return array_digest(value)
    return value


def array_digest(array: np.ndarray) -> str:
    """Digest of an operand array: dtype + shape + raw bytes."""
    array = np.ascontiguousarray(array)
    h = hashlib.sha256()
    h.update(str(array.dtype).encode())
    h.update(str(array.shape).encode())
    h.update(array.tobytes())
    return "sha256:" + h.hexdigest()


def fingerprint(payload: Dict[str, Any]) -> str:
    """The content address of one simulation: sha256 of canonical JSON."""
    text = json.dumps(canonical(payload), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Entries
# ---------------------------------------------------------------------------

@dataclass
class CacheEntry:
    """One recorded simulation result."""

    key: str
    op: str                                    #: "fc", "tbe", ...
    cycles: float
    #: named output arrays (e.g. ``c_t`` for FC, ``output`` for TBE)
    outputs: Dict[str, np.ndarray] = field(default_factory=dict)
    #: flattened stall attribution: (track, cause, total cycles);
    #: recorded only when the producing run had observability enabled
    stalls: List[Tuple[str, str, float]] = field(default_factory=list)
    #: True when ``stalls`` reflects an observed producing run
    stalls_recorded: bool = False
    #: informational (shape, label, ...) — not part of the key
    extras: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "key": self.key,
            "op": self.op,
            "cycles": self.cycles,
            "outputs": {name: _encode_array(arr)
                        for name, arr in self.outputs.items()},
            "stalls": [list(s) for s in self.stalls],
            "stalls_recorded": self.stalls_recorded,
            "extras": canonical(self.extras),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "CacheEntry":
        return cls(
            key=data["key"], op=data["op"], cycles=data["cycles"],
            outputs={name: _decode_array(spec)
                     for name, spec in data["outputs"].items()},
            stalls=[(t, c, v) for t, c, v in data.get("stalls", [])],
            stalls_recorded=bool(data.get("stalls_recorded", False)),
            extras=dict(data.get("extras", {})))


def _encode_array(array: np.ndarray) -> Dict[str, Any]:
    array = np.ascontiguousarray(array)
    return {"dtype": str(array.dtype), "shape": list(array.shape),
            "data": base64.b64encode(
                zlib.compress(array.tobytes())).decode("ascii")}


def _decode_array(spec: Dict[str, Any]) -> np.ndarray:
    raw = zlib.decompress(base64.b64decode(spec["data"]))
    return np.frombuffer(raw, dtype=np.dtype(spec["dtype"])).reshape(
        spec["shape"]).copy()


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------

class SimCache:
    """Two-tier (memory + optional disk) store of :class:`CacheEntry`.

    Thread-compatibility: each process owns its own memory tier; the
    disk tier uses atomic renames so concurrent sweep workers sharing
    one directory never observe torn files.
    """

    def __init__(self, path: Optional[str] = None,
                 registry: Optional[MetricRegistry] = None) -> None:
        self.path = path
        if path is not None:
            os.makedirs(path, exist_ok=True)
        self.registry = registry if registry is not None else MetricRegistry()
        self._hits = self.registry.counter(
            "sim_cache_hits", "sim-result cache hits")
        self._misses = self.registry.counter(
            "sim_cache_misses", "sim-result cache misses")
        self._memory: Dict[str, CacheEntry] = {}

    # -- lookup / store ------------------------------------------------
    def lookup(self, key: str, op: str = "",
               need_stalls: bool = False) -> Optional[CacheEntry]:
        """Return the entry for ``key`` (memory first, then disk).

        ``need_stalls=True`` (an *observing* consumer) treats an entry
        recorded without stall attributions as a miss: the entry cannot
        fully reproduce an observed run, so the consumer re-simulates
        and the richer entry overwrites the poorer one.
        """
        entry = self._memory.get(key)
        if entry is None and self.path is not None:
            entry = self._read_disk(key)
            if entry is not None:
                self._memory[key] = entry
        if entry is not None and need_stalls and not entry.stalls_recorded:
            entry = None
        if entry is None:
            self._misses.labels(op=op or "unknown").inc()
            return None
        self._hits.labels(op=entry.op or op or "unknown").inc()
        return entry

    def store(self, entry: CacheEntry) -> None:
        self._memory[entry.key] = entry
        if self.path is not None:
            self._write_disk(entry)

    def __contains__(self, key: str) -> bool:
        return key in self._memory or (
            self.path is not None and os.path.exists(self._file_for(key)))

    def __len__(self) -> int:
        return len(self._memory)

    def stats(self) -> Dict[str, float]:
        """Hit/miss/entry counts (also queryable via the registry)."""
        return {"hits": self._hits.total(), "misses": self._misses.total(),
                "entries": float(len(self._memory))}

    # -- disk tier -----------------------------------------------------
    def _file_for(self, key: str) -> str:
        assert self.path is not None
        return os.path.join(self.path, f"{key}.json")

    def _read_disk(self, key: str) -> Optional[CacheEntry]:
        try:
            with open(self._file_for(key)) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        if data.get("schema_version") != SCHEMA_VERSION:
            return None
        if data.get("key") != key:
            return None
        return CacheEntry.from_json_dict(data)

    def _write_disk(self, entry: CacheEntry) -> None:
        final = self._file_for(entry.key)
        tmp = f"{final}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(entry.to_json_dict(), fh)
        os.replace(tmp, final)    # atomic: workers never see torn files


# ---------------------------------------------------------------------------
# Process-wide opt-in via the environment
# ---------------------------------------------------------------------------

_env_cache: Optional[SimCache] = None
_env_value: Optional[str] = None


def cache_from_env() -> Optional[SimCache]:
    """The shared :class:`SimCache` configured by ``REPRO_SIM_CACHE``.

    ``1``, ``mem``, or ``memory`` select the memory-only tier; any
    other non-empty value is used as the on-disk directory.  Returns
    ``None`` (cache off) when the variable is unset or empty.  The
    instance is shared process-wide so repeated kernel runs hit the
    warm memory tier.
    """
    global _env_cache, _env_value
    value = os.environ.get(CACHE_ENV_VAR, "")
    if not value:
        _env_cache, _env_value = None, None
        return None
    if _env_cache is None or value != _env_value:
        path = None if value in ("1", "mem", "memory") else value
        _env_cache = SimCache(path=path)
        _env_value = value
    return _env_cache


def reset_env_cache() -> None:
    """Drop the shared env-configured cache (tests use this)."""
    global _env_cache, _env_value
    _env_cache, _env_value = None, None


def resolve_cache(cache: Optional[SimCache]) -> Optional[SimCache]:
    """The cache a kernel should use: explicit argument, else the env."""
    return cache if cache is not None else cache_from_env()


# ---------------------------------------------------------------------------
# Kernel integration helpers
# ---------------------------------------------------------------------------

def usable_for(cache: Optional[SimCache], acc) -> bool:
    """Whether ``cache`` may serve/record results for ``acc``.

    Tracing bypasses the cache (a replayed result has no trace), and so
    does an accelerator that has already simulated something — its
    internal state (SRAM cache contents, queue histories) is not part
    of the fingerprint, so only a pristine machine is content-addressed
    by the key.  An armed fault injector with a non-empty plan also
    bypasses: the plan is not part of the fingerprint, and a faulted
    run must neither be served a clean cached result nor poison the
    cache for clean runs (an *empty* plan is bit-identical to no
    injector — the conformance ``faults`` pillar — so it may cache).
    """
    faults = getattr(acc.engine, "faults", None)
    return (cache is not None
            and not acc.engine.tracer.enabled
            and acc.engine.now == 0
            and acc.engine.events_processed == 0
            and (faults is None or faults.plan.empty))


def machine_payload(acc) -> Dict[str, Any]:
    """The machine-side portion of a kernel fingerprint."""
    return {
        "chip": acc.config,
        "sram_mode": acc.memory.sram_mode,
        "dram_brk": acc._dram_brk,
        "sram_brk": acc._sram_brk,
    }


def record_stalls(acc) -> Tuple[List[Tuple[str, str, float]], bool]:
    """Flatten the accelerator's stall attributions for storage.

    Order matters: entries are kept in the registry's insertion order
    (first-stall order) so a replay rebuilds the counter family in the
    same order and every downstream float roll-up sums identically.
    """
    obs = acc.engine.obs
    if not obs.enabled:
        return [], False
    family = obs.registry.counter("stall_cycles")
    flat = []
    for label_key, counter in family.samples():
        labels = dict(label_key)
        flat.append((labels.get("track", ""), labels.get("cause", ""),
                     counter.value))
    return flat, True


def replay_stalls(acc, entry: CacheEntry) -> None:
    """Re-attribute a cached entry's stall cycles on a cache hit.

    Only meaningful when the producing run was observed and the
    consuming accelerator observes too; totals (not event counts) are
    replayed, matching what :meth:`Observer.stalls_by_track` reports.
    """
    obs = acc.engine.obs
    if not obs.enabled or not entry.stalls_recorded:
        return
    for track, cause, cycles in entry.stalls:
        obs.stall(track, cause, 0.0, cycles)
