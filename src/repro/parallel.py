"""Spawn-safe parallel map for simulation sweeps.

Conformance sweeps, benchmark suites, and calibration grids are
embarrassingly parallel: every case is a pure function of its inputs
(the determinism pillar proves it), so they can fan out over worker
processes without changing a single result bit.  This module provides
the one primitive those CLIs share::

    from repro.parallel import parallel_map
    results = parallel_map(run_case, cases, jobs=4)

Guarantees:

* **Deterministic ordering** — ``results[i]`` is ``fn(items[i])``
  regardless of worker completion order, so a parallel sweep emits the
  same report as a serial one.
* **Spawn-safe** — workers use the ``spawn`` start method (the only
  method that is safe and portable everywhere, and the macOS/Windows
  default), so ``fn`` and each item must be picklable: module-level
  functions and plain dataclasses, not closures.
* **Graceful serial fallback** — if the pool cannot be created or dies
  (restricted sandboxes, missing semaphores, forbidden ``exec``), the
  map silently degrades to a serial loop; results are identical either
  way, only the wall time changes.

``jobs <= 1`` (the CLI default) never creates a pool, so single-job
runs are byte-for-byte the old serial code path.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """A sensible ``--jobs`` default for "use the machine": CPU count."""
    return os.cpu_count() or 1


def _serial_map(fn: Callable[[T], R], items: Sequence[T],
                progress: Optional[Callable[[int, R], None]]) -> List[R]:
    results: List[R] = []
    for index, item in enumerate(items):
        result = fn(item)
        results.append(result)
        if progress is not None:
            progress(index, result)
    return results


def parallel_map(fn: Callable[[T], R], items: Iterable[T], jobs: int = 1,
                 progress: Optional[Callable[[int, R], None]] = None
                 ) -> List[R]:
    """Map ``fn`` over ``items`` with up to ``jobs`` worker processes.

    Returns results in input order.  ``progress(index, result)``, when
    given, fires once per item — in input order for serial runs, in
    completion order for parallel runs (the returned list is ordered
    either way).  Exceptions raised by ``fn`` propagate to the caller
    (the first one, by input order, in parallel runs); pool
    *infrastructure* failures fall back to serial execution instead.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return _serial_map(fn, items, progress)

    results: List[R] = [None] * len(items)  # type: ignore[list-item]
    errors: List[Optional[BaseException]] = [None] * len(items)
    try:
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=min(jobs, len(items)),
                                 mp_context=context) as pool:
            futures = [pool.submit(fn, item) for item in items]
            for index, future in enumerate(futures):
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    raise           # infrastructure died: retry serially
                except (pickle.PicklingError, TypeError, AttributeError,
                        ImportError) as exc:
                    # fn/item/result not spawn-transportable.
                    raise _Unpicklable(exc)
                except Exception as exc:         # fn itself raised
                    errors[index] = exc
                else:
                    if progress is not None:
                        progress(index, results[index])
    except (_Unpicklable, BrokenProcessPool, OSError, ValueError):
        # No pool for us (sandbox, dead workers, unpicklable payload):
        # degrade to the serial path — same results, longer wall time.
        return _serial_map(fn, items, progress)
    for exc in errors:
        if exc is not None:
            raise exc
    return results


class _Unpicklable(Exception):
    """Internal marker: payload cannot cross a spawn boundary."""
