"""Synchronisation primitives (Section 3.1.6).

The hardware provides atomic update of predefined registers integrated
with the Command Processor, with the ability to stall a core until an
externally-satisfied condition holds (e.g. a counter reaching a value).
Locks, ticketing locks, mutexes and barriers are built on top.  We model
the primitives directly; the higher-level constructs are provided as
classes kernels can share across cores and PEs.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

from repro.sim import Engine, Event


class AtomicCounter:
    """An atomically-updated register with wait-until-value support."""

    def __init__(self, engine: Engine, value: int = 0, name: str = "ctr") -> None:
        self.engine = engine
        self.name = name
        self._value = value
        self._waiters: List[Tuple[int, Event]] = []

    @property
    def value(self) -> int:
        return self._value

    def _wake(self) -> None:
        still = []
        for threshold, ev in self._waiters:
            if self._value >= threshold:
                ev.succeed(self._value)
            else:
                still.append((threshold, ev))
        self._waiters = still

    def add(self, amount: int = 1) -> int:
        """Atomic fetch-and-add; returns the *previous* value."""
        previous = self._value
        self._value += amount
        self._wake()
        return previous

    def set(self, value: int) -> None:
        self._value = value
        self._wake()

    def wait_for(self, threshold: int) -> Event:
        """Event firing once the counter reaches ``threshold``."""
        ev = self.engine.event(f"{self.name}.wait({threshold})")
        if self._value >= threshold:
            ev.succeed(self._value)
        else:
            self._waiters.append((threshold, ev))
        return ev


class Barrier:
    """A reusable barrier over ``parties`` participants.

    Built from an atomic counter per generation, as the firmware would
    build it from the CP's primitives.
    """

    def __init__(self, engine: Engine, parties: int, name: str = "barrier") -> None:
        if parties <= 0:
            raise ValueError("parties must be positive")
        self.engine = engine
        self.parties = parties
        self.name = name
        self._generation = 0
        self._counters: Dict[int, AtomicCounter] = {}

    def _counter(self, generation: int) -> AtomicCounter:
        ctr = self._counters.get(generation)
        if ctr is None:
            ctr = AtomicCounter(self.engine, name=f"{self.name}.gen{generation}")
            self._counters[generation] = ctr
        return ctr

    def wait(self) -> Generator:
        """Process: arrive at the barrier and wait for everyone."""
        generation = self._generation
        ctr = self._counter(generation)
        arrivals = ctr.add(1) + 1
        if arrivals == self.parties:
            self._generation += 1
            self._counters.pop(generation - 2, None)  # garbage-collect
        yield ctr.wait_for(self.parties)


class TicketLock:
    """A FIFO lock built from two atomic counters (ticket + now-serving)."""

    def __init__(self, engine: Engine, name: str = "lock") -> None:
        self.engine = engine
        self.name = name
        self._next_ticket = AtomicCounter(engine, name=f"{name}.ticket")
        self._now_serving = AtomicCounter(engine, name=f"{name}.serving")

    def acquire(self) -> Generator:
        """Process: take a ticket and wait until it is served."""
        ticket = self._next_ticket.add(1)
        yield self._now_serving.wait_for(ticket)
        return ticket

    def release(self) -> None:
        self._now_serving.add(1)

    @property
    def locked(self) -> bool:
        return self._next_ticket.value > self._now_serving.value
