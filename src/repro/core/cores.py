"""Processor-core model (Section 3.2).

Kernels are written as Python generator functions over a
:class:`CoreContext` — the analogue of C++ kernel code running on one
of the PE's two RISC-V cores.  The context provides:

* ``issue(cmd)`` — assemble a command (custom registers) and issue it
  (custom instruction) to the Command Processor; charges the
  per-command issue cost and backpressures on a full scheduler queue;
* ``wait(handle)`` / ``wait_all(handles)`` — stall until completion;
* ``vector`` — the RISC-V vector unit (core 1 only), for operators that
  do not map to the fixed-function units (Section 7,
  "General-Purpose Compute");
* direct (cached) loads/stores to local memory.

The command-issue path validates commands eagerly — the hardware's
"custom exceptions ... raise an exception in case of illegal values in
the command".
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator, Iterable, List, Optional

import numpy as np

from repro.isa.commands import Command
from repro.sim import Engine, Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pe import ProcessingElement


class VectorUnit:
    """The RISC-V vector extension path (RVV 0.8.1 subset, Section 3.2).

    Operations work directly on local-memory regions.  Timing charges
    ``ceil(elements / lanes)`` plus a fixed strip-mining overhead per
    call; Section 7 ("Memory Latency") notes register-pressure limits on
    grouping, which the overhead term stands in for.
    """

    #: Fixed per-call overhead in cycles (loop setup, strip mining).
    CALL_OVERHEAD = 12

    def __init__(self, engine: Engine, pe: "ProcessingElement") -> None:
        self.engine = engine
        self.pe = pe
        self.config = pe.config.vector

    def _lanes(self, dtype: np.dtype) -> int:
        width = np.dtype(dtype).itemsize
        return max(1, self.config.register_bytes // width)

    def _cycles(self, count: int, dtype: np.dtype, passes: int = 1) -> int:
        return self.CALL_OVERHEAD + passes * max(
            1, math.ceil(count / self._lanes(dtype)))

    def binary_op(self, op: str, addr_a: int, addr_b: int, addr_out: int,
                  count: int, dtype=np.float32) -> Generator:
        """Process: elementwise binary op over local-memory arrays."""
        np_dtype = np.dtype(dtype)
        a = self.pe.local_memory.peek_array(addr_a, (count,), np_dtype)
        b = self.pe.local_memory.peek_array(addr_b, (count,), np_dtype)
        if op == "add":
            out = a + b
        elif op == "sub":
            out = a - b
        elif op == "mul":
            out = a * b
        elif op == "max":
            out = np.maximum(a, b)
        else:
            raise SimulationError(f"vector unit: unknown op {op!r}")
        yield self.pe.local_memory.port.delay_for(3 * count * np_dtype.itemsize)
        self.pe.local_memory.poke(addr_out, out.astype(np_dtype))
        yield self._cycles(count, np_dtype)

    def scale(self, addr_src: int, addr_out: int, count: int,
              factor: float, dtype=np.float32) -> Generator:
        """Process: multiply a local-memory array by a scalar."""
        np_dtype = np.dtype(dtype)
        data = self.pe.local_memory.peek_array(addr_src, (count,), np_dtype)
        out = (data.astype(np.float64) * factor).astype(np_dtype)
        yield self.pe.local_memory.port.delay_for(2 * count * np_dtype.itemsize)
        self.pe.local_memory.poke(addr_out, out)
        yield self._cycles(count, np_dtype)

    def reduce_add(self, addr: int, count: int, dtype=np.float32) -> Generator:
        """Process: sum-reduce a local-memory array; returns the sum."""
        np_dtype = np.dtype(dtype)
        data = self.pe.local_memory.peek_array(addr, (count,), np_dtype)
        yield self.pe.local_memory.port.delay_for(count * np_dtype.itemsize)
        yield self._cycles(count, np_dtype)
        return float(data.astype(np.float64).sum())

    def batched_reduce_add(self, addr: int, rows: int, cols: int,
                           addr_out: int, dtype=np.float32) -> Generator:
        """Process: row-wise sum of a (rows, cols) array -> (cols,).

        The paper's BatchedReduceAdd example of a vector-implemented
        operator (Section 7, "General-Purpose Compute").
        """
        np_dtype = np.dtype(dtype)
        data = self.pe.local_memory.peek_array(addr, (rows, cols), np_dtype)
        out = data.astype(np.float64).sum(axis=0).astype(np_dtype)
        total = rows * cols
        yield self.pe.local_memory.port.delay_for(
            (total + cols) * np_dtype.itemsize)
        self.pe.local_memory.poke(addr_out, out)
        yield self._cycles(total, np_dtype)

    def fill(self, addr: int, count: int, value: float = 0.0,
             dtype=np.float32) -> Generator:
        """Process: fill a local-memory array with a constant."""
        np_dtype = np.dtype(dtype)
        out = np.full(count, value, dtype=np_dtype)
        yield self.pe.local_memory.port.delay_for(count * np_dtype.itemsize)
        self.pe.local_memory.poke(addr, out)
        yield self._cycles(count, np_dtype)

    def dequant_accumulate(self, addr_src: int, addr_acc: int, count: int,
                           scale: float, bias: float = 0.0) -> Generator:
        """Process: widen an INT8 row and FMA it onto an FP32 accumulator.

        ``acc[i] += src_int8[i] * scale + bias`` — the inner loop of a
        hand-written embedding-bag kernel on the vector core (8-bit
        quantised rows, Section 6.1 "Sparse computation").
        """
        row = self.pe.local_memory.peek_array(addr_src, (count,), np.int8)
        acc = self.pe.local_memory.peek_array(addr_acc, (count,), np.float32)
        acc = acc + row.astype(np.float32) * scale + bias
        yield self.pe.local_memory.port.delay_for(count * (1 + 4 + 4))
        self.pe.local_memory.poke(addr_acc, acc)
        # Widening int8->fp32 quarters the effective lane count.
        yield self._cycles(count, np.float32)

    def layernorm(self, addr: int, count: int, addr_out: int,
                  eps: float = 1e-5, dtype=np.float32) -> Generator:
        """Process: LayerNorm over a local-memory vector (Section 7)."""
        np_dtype = np.dtype(dtype)
        x = self.pe.local_memory.peek_array(addr, (count,), np_dtype)
        x64 = x.astype(np.float64)
        mean = x64.mean()
        var = x64.var()
        out = ((x64 - mean) / math.sqrt(var + eps)).astype(np_dtype)
        yield self.pe.local_memory.port.delay_for(2 * count * np_dtype.itemsize)
        self.pe.local_memory.poke(addr_out, out)
        # Three passes: mean, variance, normalise.
        yield self._cycles(count, np_dtype, passes=3)


class CoreContext:
    """The kernel-visible view of one processor core."""

    def __init__(self, pe: "ProcessingElement", core_id: int) -> None:
        if core_id not in (0, 1):
            raise SimulationError("PE cores are numbered 0 and 1")
        self.pe = pe
        self.core_id = core_id
        self.engine = pe.engine
        #: Only core 1 carries the vector extension (Section 3.2).
        self.vector: Optional[VectorUnit] = (
            VectorUnit(pe.engine, pe) if core_id == 1 else None)
        self._outstanding: List[Event] = []

    @property
    def coord(self):
        return self.pe.coord

    def issue(self, cmd: Command) -> Generator:
        """Process: issue a command; returns its completion event.

        The issue cost (assembling parameters into the custom command
        registers) is charged here; the core then continues without
        waiting for the command to execute.
        """
        if not isinstance(cmd, Command):
            raise SimulationError(f"cannot issue {cmd!r}: not a Command")
        yield self.pe.config.cp.issue_cycles
        accepted, done = self.pe.command_processor.issue(self.core_id, cmd)
        yield accepted  # backpressure on a full scheduler queue
        self._outstanding.append(done)
        return done

    def issue_and_wait(self, cmd: Command) -> Generator:
        """Process: issue a command and stall until it completes."""
        done = yield from self.issue(cmd)
        yield done

    def wait(self, handle: Event) -> Generator:
        """Process: stall until ``handle`` (a completion event) fires."""
        yield handle

    def wait_all(self, handles: Iterable[Event]) -> Generator:
        """Process: stall until every handle fires."""
        yield self.engine.all_of(list(handles))

    def drain(self) -> Generator:
        """Process: stall until every command this core issued completes."""
        pending = [ev for ev in self._outstanding if not ev.triggered]
        self._outstanding = []
        if pending:
            yield self.engine.all_of(pending)

    # -- direct local-memory access (cached loads/stores) -----------------
    def load(self, addr: int, nbytes: int) -> Generator:
        """Process: scalar-core load from local memory."""
        data = yield from self.pe.local_memory.read(addr, nbytes)
        return data

    def store(self, addr: int, data: np.ndarray) -> Generator:
        """Process: scalar-core store to local memory."""
        yield from self.pe.local_memory.write(addr, data)
