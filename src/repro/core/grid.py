"""The PE grid and sub-grid management (Sections 3 and 7).

The grid instantiates the PEs and wires them to the NoC, the reduction
network, and the memory system.  :class:`SubGrid` captures the firmware
notion the paper discusses under "Architecture Hierarchy": a rectangular
region of PEs set up to run one job, with helpers for row/column
multicast groups and reduction chains.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.config import ChipConfig
from repro.memory.system import MemorySystem
from repro.noc import MulticastGroup, NoC, ReductionNetwork
from repro.core.pe import ProcessingElement
from repro.sim import Engine, SimulationError

Coord = Tuple[int, int]


class Grid:
    """The full rows x cols array of PEs."""

    def __init__(self, engine: Engine, config: ChipConfig,
                 memory: MemorySystem, noc: NoC,
                 reduction_network: ReductionNetwork) -> None:
        self.engine = engine
        self.config = config
        self.memory = memory
        self.noc = noc
        self.reduction_network = reduction_network
        self.pes: List[List[ProcessingElement]] = []
        for r in range(config.grid_rows):
            row = []
            for c in range(config.grid_cols):
                pe = ProcessingElement(engine, config, (r, c), noc,
                                       reduction_network)
                memory.register_local_memory(pe.index, pe.local_memory)
                row.append(pe)
            self.pes.append(row)

    def pe(self, row: int, col: int) -> ProcessingElement:
        if not (0 <= row < self.config.grid_rows
                and 0 <= col < self.config.grid_cols):
            raise SimulationError(f"PE ({row},{col}) outside the grid")
        return self.pes[row][col]

    def __iter__(self) -> Iterator[ProcessingElement]:
        for row in self.pes:
            yield from row

    @property
    def num_pes(self) -> int:
        return self.config.num_pes

    def subgrid(self, origin: Coord = (0, 0),
                rows: int = 0, cols: int = 0) -> "SubGrid":
        """Carve out a rectangular sub-grid (defaults to the whole grid)."""
        rows = rows or self.config.grid_rows
        cols = cols or self.config.grid_cols
        return SubGrid(self, origin, rows, cols)


class SubGrid:
    """A rectangular region of PEs assigned to one job.

    The paper notes that "for smaller jobs the grid must be divided into
    smaller sub-grids so that each can handle a smaller job" (Section 7,
    "Architecture Hierarchy"); this class is the unit of that division.
    """

    def __init__(self, grid: Grid, origin: Coord, rows: int, cols: int) -> None:
        orow, ocol = origin
        if rows <= 0 or cols <= 0:
            raise SimulationError("sub-grid must have positive dimensions")
        if (orow < 0 or ocol < 0
                or orow + rows > grid.config.grid_rows
                or ocol + cols > grid.config.grid_cols):
            raise SimulationError(
                f"sub-grid {origin}+{rows}x{cols} exceeds the "
                f"{grid.config.grid_rows}x{grid.config.grid_cols} grid")
        self.grid = grid
        self.origin = (orow, ocol)
        self.rows = rows
        self.cols = cols

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def coords(self) -> List[Coord]:
        orow, ocol = self.origin
        return [(orow + r, ocol + c)
                for r in range(self.rows) for c in range(self.cols)]

    def pe(self, local_row: int, local_col: int) -> ProcessingElement:
        """PE by *sub-grid local* coordinates."""
        if not (0 <= local_row < self.rows and 0 <= local_col < self.cols):
            raise SimulationError(
                f"local ({local_row},{local_col}) outside {self.rows}x{self.cols}")
        return self.grid.pe(self.origin[0] + local_row,
                            self.origin[1] + local_col)

    def __iter__(self) -> Iterator[ProcessingElement]:
        for coord in self.coords():
            yield self.grid.pe(*coord)

    # -- communication helpers ------------------------------------------
    def row_multicast_group(self, local_row: int,
                            local_cols: Sequence[int]) -> MulticastGroup:
        """Multicast group over selected PEs of one sub-grid row."""
        members = [(self.origin[0] + local_row, self.origin[1] + c)
                   for c in local_cols]
        return self.grid.noc.multicast_group(members)

    def col_multicast_group(self, local_col: int,
                            local_rows: Sequence[int]) -> MulticastGroup:
        """Multicast group over selected PEs of one sub-grid column."""
        members = [(self.origin[0] + r, self.origin[1] + local_col)
                   for r in local_rows]
        return self.grid.noc.multicast_group(members)

    def reduction_chain_east(self, local_row: int) -> List[Coord]:
        """West-to-east reduction chain along a sub-grid row."""
        return [(self.origin[0] + local_row, self.origin[1] + c)
                for c in range(self.cols)]

    def reduction_chain_south(self, local_col: int) -> List[Coord]:
        """North-to-south reduction chain along a sub-grid column."""
        return [(self.origin[0] + r, self.origin[1] + local_col)
                for r in range(self.rows)]
