"""One Processing Element (Figure 4).

A PE aggregates: two processor cores (as :class:`CoreContext` handles),
the Command Processor, 128 KB of local memory, the circular buffers
defined over it, and the five fixed-function units.  It holds references
to the chip-level NoC and reduction network through which it reaches
the rest of the system.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.config import ChipConfig
from repro.isa.commands import Command
from repro.memory.local_memory import LocalMemory
from repro.core.circular_buffer import CircularBuffer
from repro.core.command_processor import CommandProcessor
from repro.core.cores import CoreContext
from repro.core.units import (DotProductEngine, FabricInterface,
                              MemoryLayoutUnit, ReductionEngine, SIMDEngine)
from repro.sim import Engine, SimulationError, StatGroup

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc import NoC, ReductionNetwork


class ProcessingElement:
    """A single PE in the grid."""

    def __init__(self, engine: Engine, config: ChipConfig,
                 coord: Tuple[int, int], noc: "NoC",
                 reduction_network: "ReductionNetwork") -> None:
        self.engine = engine
        self.config = config
        self.coord = tuple(coord)
        self.index = coord[0] * config.grid_cols + coord[1]
        self.noc = noc
        self.reduction_network = reduction_network
        self.stats = StatGroup(f"pe{self.index}")

        self.local_memory = LocalMemory(engine, config.local_memory,
                                        name=f"pe{self.index}.lm")
        self._cbs: Dict[int, CircularBuffer] = {}

        self.mlu_unit = MemoryLayoutUnit(engine, self)
        self.dpe_unit = DotProductEngine(engine, self)
        self.re_unit = ReductionEngine(engine, self)
        self.se_unit = SIMDEngine(engine, self)
        self.fi_unit = FabricInterface(engine, self)
        self.command_processor = CommandProcessor(engine, self)

        self.cores = (CoreContext(self, 0), CoreContext(self, 1))

    # -- circular buffers --------------------------------------------------
    def define_cb(self, cb_id: int, base: int, size: int) -> CircularBuffer:
        """(Re)define circular buffer ``cb_id`` over local memory."""
        if len(self._cbs) >= self.config.local_memory.max_circular_buffers \
                and cb_id not in self._cbs:
            raise SimulationError(
                f"PE {self.index}: exceeded "
                f"{self.config.local_memory.max_circular_buffers} CBs")
        cb = CircularBuffer(self.engine, self.local_memory, cb_id, base, size)
        self._cbs[cb_id] = cb
        return cb

    def cb(self, cb_id: int) -> CircularBuffer:
        try:
            return self._cbs[cb_id]
        except KeyError:
            raise SimulationError(
                f"PE {self.index}: circular buffer {cb_id} not defined "
                "(issue an InitCB first)") from None

    @property
    def circular_buffers(self) -> Dict[int, CircularBuffer]:
        return dict(self._cbs)

    # -- unit routing --------------------------------------------------------
    def unit_for(self, cmd: Command, core_id: int):
        """Route a command to its executing unit (Figure 4's pipeline)."""
        unit = cmd.unit
        if unit == "cp":
            return self.command_processor.cp_units[core_id]
        if unit == "mlu":
            return self.mlu_unit
        if unit == "dpe":
            return self.dpe_unit
        if unit == "re":
            return self.re_unit
        if unit == "se":
            return self.se_unit
        if unit == "fi":
            return self.fi_unit
        raise SimulationError(f"no unit {unit!r} in the PE")

    # -- statistics -----------------------------------------------------------
    def collect_stats(self) -> StatGroup:
        """Roll up unit statistics into one group."""
        rollup = StatGroup(f"pe{self.index}")
        for unit in (self.mlu_unit, self.dpe_unit, self.re_unit,
                     self.se_unit, self.fi_unit):
            rollup.merge(unit.stats, prefix=f"{unit.name}.")
        rollup.merge(self.local_memory.stats, prefix="lm.")
        return rollup

    def __repr__(self) -> str:
        return f"ProcessingElement(coord={self.coord})"
