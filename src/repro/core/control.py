"""The control subsystem and host interface (Sections 3 and 5).

Figure 3 shows "a separate control subsystem with dedicated processors
and peripherals to run the system's control software" plus a host
interface unit with PCIe, DMA engines and a secure-boot processor.
Section 5's firmware list: ROM pre-boot, secure-boot firmware, the
Control Core Processor runtime, and the PE monitor.

This module models the *lifecycle and control plane*:

* a boot state machine (RESET -> ROM -> SECURE_BOOT -> FIRMWARE ->
  READY) with per-stage cycle costs;
* per-PE monitor status registers published on the register network;
* host doorbells: the host rings a job doorbell over PCIe, the control
  processor dispatches, and completion is visible in a status CSR.
"""

from __future__ import annotations

import enum
from typing import Dict, Generator, Optional

from repro.config import ChipConfig
from repro.noc.register_network import RegisterNetwork
from repro.sim import Engine, Event, SimulationError, StatGroup


class BootStage(enum.Enum):
    RESET = 0
    ROM = 1
    SECURE_BOOT = 2
    FIRMWARE = 3
    READY = 4


#: Cycles each boot stage takes (ROM copy, signature check, Zephyr
#: bring-up).  Coarse but ordered: secure boot dominates.
BOOT_STAGE_CYCLES = {
    BootStage.ROM: 20_000,
    BootStage.SECURE_BOOT: 120_000,
    BootStage.FIRMWARE: 60_000,
}

# CSR offsets in the control block.
REG_BOOT_STAGE = 0x00
REG_JOBS_SUBMITTED = 0x08
REG_JOBS_COMPLETED = 0x10
REG_DOORBELL = 0x18

# CSR offsets in each PE monitor block.
REG_PE_STATE = 0x00      # 0 idle, 1 assigned, 2 running
REG_PE_JOBS = 0x08


class ControlSubsystem:
    """The control core processor + PE monitors, on the register network."""

    def __init__(self, engine: Engine, config: ChipConfig,
                 registers: Optional[RegisterNetwork] = None) -> None:
        self.engine = engine
        self.config = config
        self.registers = registers or RegisterNetwork(engine, config)
        self.stats = StatGroup("control")
        self.stage = BootStage.RESET
        self._ready = engine.event("control.ready")

        self.csr = self.registers.register_block("control")
        self.csr.define(REG_BOOT_STAGE, BootStage.RESET.value)
        self.csr.define(REG_JOBS_SUBMITTED, 0)
        self.csr.define(REG_JOBS_COMPLETED, 0)
        self.csr.define(REG_DOORBELL, 0, on_write=self._on_doorbell)
        self._doorbell_waiters = []

        self.pe_monitors: Dict[int, object] = {}
        for index in range(config.num_pes):
            block = self.registers.register_block(f"pe{index}.monitor")
            block.define(REG_PE_STATE, 0)
            block.define(REG_PE_JOBS, 0)
            self.pe_monitors[index] = block

    # -- boot ---------------------------------------------------------------
    def boot(self) -> Event:
        """Start the boot sequence; returns the READY event."""
        if self.stage is not BootStage.RESET:
            raise SimulationError("boot() called twice")
        self.engine.process(self._boot_sequence(), "control.boot")
        return self._ready

    def _boot_sequence(self) -> Generator:
        for stage in (BootStage.ROM, BootStage.SECURE_BOOT,
                      BootStage.FIRMWARE):
            self.stage = stage
            self.csr.poke(REG_BOOT_STAGE, stage.value)
            yield BOOT_STAGE_CYCLES[stage]
        self.stage = BootStage.READY
        self.csr.poke(REG_BOOT_STAGE, BootStage.READY.value)
        self._ready.succeed()

    @property
    def ready(self) -> bool:
        return self.stage is BootStage.READY

    # -- PE monitor interface -------------------------------------------------
    def mark_pe(self, index: int, state: int) -> None:
        monitor = self.pe_monitors[index]
        monitor.poke(REG_PE_STATE, state)
        if state == 2:
            monitor.poke(REG_PE_JOBS, monitor.read(REG_PE_JOBS) + 1)

    def busy_pes(self) -> int:
        return sum(1 for m in self.pe_monitors.values()
                   if m.read(REG_PE_STATE) != 0)

    # -- host doorbells ---------------------------------------------------------
    def _on_doorbell(self, value: int) -> None:
        self.stats.add("doorbells")
        self.csr.poke(REG_JOBS_SUBMITTED,
                      self.csr.read(REG_JOBS_SUBMITTED) + 1)
        waiters, self._doorbell_waiters = self._doorbell_waiters, []
        for event in waiters:
            event.succeed(value)

    def ring_doorbell(self, value: int = 1) -> Generator:
        """Process: host rings the job doorbell over the register net."""
        if not self.ready:
            raise SimulationError("device not booted; doorbell ignored")
        yield from self.registers.write("control", REG_DOORBELL, value)

    def next_doorbell(self) -> Event:
        """Event firing at the next doorbell (control-firmware side)."""
        event = self.engine.event("control.doorbell")
        self._doorbell_waiters.append(event)
        return event

    def complete_job(self) -> None:
        self.csr.poke(REG_JOBS_COMPLETED,
                      self.csr.read(REG_JOBS_COMPLETED) + 1)
