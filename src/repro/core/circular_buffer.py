"""Circular buffers: the buffet-style local-memory abstraction (Section 3.3).

A CB maps a region of PE local memory and adds:

* read/write pointers implementing a hardware FIFO;
* *offset* addressing relative to the pointers, so data can be reused
  several times before being marked consumed;
* element/space accounting used by the Command Processor to stall
  operations until their inputs exist and their outputs fit.

The fill level is tracked explicitly (not derived from pointer
difference) so a completely full buffer is representable.
"""

from __future__ import annotations

from typing import Deque, List, Tuple

import numpy as np

from repro.memory.local_memory import LocalMemory
from repro.sim import Engine, Event, SimulationError


class CircularBuffer:
    """One circular buffer over a PE's local memory."""

    def __init__(self, engine: Engine, memory: LocalMemory,
                 cb_id: int, base: int, size: int) -> None:
        if size <= 0:
            raise ValueError("CB size must be positive")
        if base < 0 or base + size > memory.config.capacity_bytes:
            raise ValueError(
                f"CB {cb_id} [{base}, {base + size}) outside local memory")
        self.engine = engine
        self.memory = memory
        self.cb_id = cb_id
        self.base = base
        self.size = size
        self.read_ptr = 0
        self.write_ptr = 0
        self._fill = 0
        #: space claimed by in-flight DMA loads (reserved at dispatch,
        #: converted to fill at commit) so overlapping loads cannot
        #: oversubscribe the buffer.
        self._reserved = 0
        #: waiters for data: (required_bytes, event, enqueued_at)
        self._element_waiters: List[Tuple[int, Event, float]] = []
        #: waiters for space: (required_bytes, event, enqueued_at)
        self._space_waiters: List[Tuple[int, Event, float]] = []
        self.total_produced = 0
        self.total_consumed = 0
        # Observability track: "pe3.lm" -> "pe3.cb0" (the CB's own view
        # of element/space waits, complementing the per-unit stall
        # attribution in FunctionalUnit).
        prefix = memory.name.rsplit(".", 1)[0]
        self._track = f"{prefix}.cb{cb_id}"
        # Event names, precomputed: waits are created per command.
        self._elem_name = f"cb{cb_id}.elements"
        self._space_name = f"cb{cb_id}.space"

    # -- accounting -----------------------------------------------------
    @property
    def available(self) -> int:
        """Bytes of produced-but-unconsumed data."""
        return self._fill

    @property
    def space(self) -> int:
        """Bytes free for new production (net of reservations)."""
        return self.size - self._fill - self._reserved

    @property
    def reserved(self) -> int:
        return self._reserved

    def _wake(self) -> None:
        if not self._element_waiters and not self._space_waiters:
            return
        obs = self.engine.obs
        if self._element_waiters:
            still = []
            for required, ev, since in self._element_waiters:
                if self._fill >= required:
                    ev.succeed()
                    obs.count("cb_wait_cycles", self.engine.now - since,
                              track=self._track, kind="element")
                else:
                    still.append((required, ev, since))
            self._element_waiters = still
        if self._space_waiters:
            still = []
            for required, ev, since in self._space_waiters:
                if self.space >= required:
                    ev.succeed()
                    obs.count("cb_wait_cycles", self.engine.now - since,
                              track=self._track, kind="space")
                else:
                    still.append((required, ev, since))
            self._space_waiters = still

    def wait_elements(self, nbytes: int) -> Event:
        """Event firing once ``nbytes`` of data are readable."""
        if nbytes > self.size:
            raise SimulationError(
                f"CB {self.cb_id}: waiting for {nbytes} B of data in a "
                f"{self.size} B buffer can never succeed")
        ev = Event(self.engine, self._elem_name)
        if self._fill >= nbytes:
            ev.succeed()
        else:
            self._element_waiters.append((nbytes, ev, self.engine.now))
            self.engine.obs.count("cb_waits", track=self._track,
                                  kind="element")
        return ev

    def wait_space(self, nbytes: int) -> Event:
        """Event firing once ``nbytes`` of space are writable."""
        if nbytes > self.size:
            raise SimulationError(
                f"CB {self.cb_id}: waiting for {nbytes} B of space in a "
                f"{self.size} B buffer can never succeed")
        ev = Event(self.engine, self._space_name)
        if self.space >= nbytes:
            ev.succeed()
        else:
            self._space_waiters.append((nbytes, ev, self.engine.now))
            self.engine.obs.count("cb_waits", track=self._track,
                                  kind="space")
        return ev

    # -- reservations (pipelined DMA, Section 3.5 "MLP") -------------------
    def reserve(self, nbytes: int) -> None:
        """Claim space for an in-flight load (call after wait_space)."""
        if nbytes > self.space:
            raise SimulationError(
                f"CB {self.cb_id}: reserving {nbytes} B with only "
                f"{self.space} B free")
        self._reserved += nbytes

    def commit(self, data: np.ndarray) -> None:
        """Land a previously-reserved load at the tail, in issue order."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        if raw.size > self._reserved:
            raise SimulationError(
                f"CB {self.cb_id}: committing {raw.size} B with only "
                f"{self._reserved} B reserved")
        self._reserved -= raw.size
        self._wrapped_write(self.write_ptr, raw)
        self.write_ptr = (self.write_ptr + raw.size) % self.size
        self._fill += raw.size
        self.total_produced += raw.size
        self._wake()

    # -- pointer movement -------------------------------------------------
    def push(self, nbytes: int) -> None:
        """Mark ``nbytes`` produced (advance the write pointer)."""
        if nbytes > self.space:
            raise SimulationError(
                f"CB {self.cb_id}: push {nbytes} B exceeds free space "
                f"{self.space} B")
        self.write_ptr = (self.write_ptr + nbytes) % self.size
        self._fill += nbytes
        self.total_produced += nbytes
        self._wake()

    def pop(self, nbytes: int) -> None:
        """Mark ``nbytes`` consumed (advance the read pointer)."""
        if nbytes > self.available:
            raise SimulationError(
                f"CB {self.cb_id}: pop {nbytes} B exceeds available "
                f"{self.available} B")
        self.read_ptr = (self.read_ptr + nbytes) % self.size
        self._fill -= nbytes
        self.total_consumed += nbytes
        self._wake()

    # -- data access (functional; timing charged by the caller) -----------
    def _wrapped(self, start: int, nbytes: int) -> np.ndarray:
        """Read possibly-wrapping bytes starting at CB offset ``start``."""
        start %= self.size
        end = start + nbytes
        if end <= self.size:
            return self.memory.peek(self.base + start, nbytes)
        first = self.size - start
        return np.concatenate([
            self.memory.peek(self.base + start, first),
            self.memory.peek(self.base, nbytes - first),
        ])

    def _wrapped_write(self, start: int, data: np.ndarray) -> None:
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        start %= self.size
        end = start + raw.size
        if end <= self.size:
            self.memory.poke(self.base + start, raw)
            return
        first = self.size - start
        self.memory.poke(self.base + start, raw[:first])
        self.memory.poke(self.base, raw[first:])

    def read_at(self, offset: int, nbytes: int) -> np.ndarray:
        """Read ``nbytes`` at ``read_ptr + offset`` without consuming."""
        if offset + nbytes > self.size:
            raise SimulationError(
                f"CB {self.cb_id}: read offset {offset}+{nbytes} exceeds "
                f"buffer size {self.size}")
        return self._wrapped(self.read_ptr + offset, nbytes)

    def write_at(self, offset: int, data: np.ndarray) -> None:
        """Write at ``write_ptr + offset`` without producing."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        if offset + raw.size > self.size:
            raise SimulationError(
                f"CB {self.cb_id}: write offset {offset}+{raw.size} exceeds "
                f"buffer size {self.size}")
        self._wrapped_write(self.write_ptr + offset, raw)

    def write_and_push(self, data: np.ndarray) -> None:
        """Produce ``data`` at the tail (DMA-load semantics)."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        if raw.size > self.space:
            raise SimulationError(
                f"CB {self.cb_id}: producing {raw.size} B with only "
                f"{self.space} B free")
        self._wrapped_write(self.write_ptr, raw)
        self.push(raw.size)

    def read_and_pop(self, nbytes: int) -> np.ndarray:
        """Consume ``nbytes`` from the head (DMA-store semantics)."""
        data = self.read_at(0, nbytes)
        self.pop(nbytes)
        return data

    def __repr__(self) -> str:
        return (f"CircularBuffer(id={self.cb_id}, base={self.base:#x}, "
                f"size={self.size}, fill={self._fill}, "
                f"rp={self.read_ptr}, wp={self.write_ptr})")
