"""Command Processor (Section 3.1.6).

The CP is the PE's orchestrator.  It owns:

* two *schedulers*, one per processor core, each with a bounded command
  queue (issuing into a full queue backpressures the core);
* the CB-ID based *dependency interlocks*: commands from one core that
  access-and-modify the same circular buffer execute in program order,
  while commands on different CBs proceed in parallel (Section 3.3);
* the CB-management operations themselves (INIT/POP/PUSH), executed on
  a per-core CP pseudo-unit;
* the atomic synchronisation registers (exposed via
  :mod:`repro.core.sync` objects shared between cores/PEs).

Cross-core ordering is deliberately *not* enforced here: the paper's
producer-consumer model relies on element/space checks, not program
order, between the two cores (Section 4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from repro.isa.commands import Command, InitCB, PopCB, PushCB
from repro.core.units.base import DispatchedCommand, FunctionalUnit
from repro.sim import Engine, Event, Queue, SimulationError, StatGroup

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pe import ProcessingElement


class CPUnit(FunctionalUnit):
    """Executes CB-management commands (one instance per core).

    Keeping these per-core prevents a blocked POP from one core's stream
    from head-of-line blocking the other core's PUSH that would unblock
    it — in hardware the schedulers are likewise independent.
    """

    name = "cp"

    def __init__(self, engine, pe, core_id: int) -> None:
        self.name = f"cp{core_id}"
        super().__init__(engine, pe)

    def execute(self, cmd: Command) -> Generator:
        if isinstance(cmd, InitCB):
            self.pe.define_cb(cmd.cb_id, cmd.base, cmd.size)
        elif isinstance(cmd, PopCB):
            self.pe.cb(cmd.cb_id).pop(cmd.nbytes)
        elif isinstance(cmd, PushCB):
            self.pe.cb(cmd.cb_id).push(cmd.nbytes)
        else:
            raise SimulationError(f"CP cannot execute {type(cmd).__name__}")
        yield 1


class _Scheduler:
    """One core's in-order command scheduler with CB interlocks."""

    def __init__(self, engine: Engine, pe: "ProcessingElement",
                 core_id: int) -> None:
        self.engine = engine
        self.pe = pe
        self.core_id = core_id
        depth = pe.config.cp.queue_depth
        self.queue = Queue(engine, capacity=depth,
                           name=f"pe{pe.index}.sched{core_id}")
        #: per-CB event+unit of the last read-pointer-moving command
        self._last_consumer: Dict[int, tuple] = {}
        #: per-CB events of pointer-relative readers since that consumer
        self._readers: Dict[int, List[Event]] = {}
        #: per-CB event+unit of the last write-pointer-moving command
        self._last_producer: Dict[int, tuple] = {}
        #: per-register (accumulator bank) event of the last writer
        self._reg_writer: Dict[str, Event] = {}
        self.stats = StatGroup(f"pe{pe.index}.sched{core_id}")
        engine.process(self._run(), f"pe{pe.index}.sched{core_id}")

    def submit(self, cmd: Command, done: Event) -> Event:
        """Enqueue; the returned event fires when the slot is taken."""
        return self.queue.put((cmd, done))

    def _dependencies(self, cmd: Command) -> List[Event]:
        """Interlocks through CB IDs and accumulator banks (Section 3.3).

        The rules distinguish FIFO-side effects from pointer-relative
        accesses, because producer->consumer data flow is ordered by the
        element/space checks, not by interlocks:

        * a *read* (offset-addressed, pointer not moved) must wait for
          the last command that moved the read pointer, so its offsets
          are computed against settled state;
        * a *consume* (read-pointer move) must additionally wait for all
          reads issued since the previous consume — popping under a
          reader would shift its window;
        * a *produce* (write-pointer move) must wait for the previous
          produce only when it executes on a *different* unit: each
          engine commits its own productions in issue order already;
        * accumulator-bank writers chain WAW (MML -> REDUCE -> INIT).
        """
        deps: List[Event] = []

        def alive(ev: Event) -> bool:
            return ev is not None and not ev.triggered

        consumes = set(cmd.consumes_cbs())
        for cb_id in set(cmd.reads_cbs()) | consumes:
            entry = self._last_consumer.get(cb_id)
            if entry and alive(entry[0]):
                deps.append(entry[0])
        for cb_id in consumes:
            for reader in self._readers.get(cb_id, ()):
                if alive(reader):
                    deps.append(reader)
        for cb_id in cmd.produces_cbs():
            entry = self._last_producer.get(cb_id)
            if entry and entry[1] != cmd.unit and alive(entry[0]):
                deps.append(entry[0])
        for reg in cmd.writes_regs():
            ev = self._reg_writer.get(reg)
            if alive(ev):
                deps.append(ev)
        return deps

    def _record(self, cmd: Command, done: Event) -> None:
        consumes = cmd.consumes_cbs()
        for cb_id in consumes:
            self._last_consumer[cb_id] = (done, cmd.unit)
            self._readers[cb_id] = []
        for cb_id in cmd.reads_cbs():
            if cb_id not in consumes:
                self._readers.setdefault(cb_id, []).append(done)
        for cb_id in cmd.produces_cbs():
            self._last_producer[cb_id] = (done, cmd.unit)
        for reg in cmd.writes_regs():
            self._reg_writer[reg] = done

    def _run(self) -> Generator:
        cp_cfg = self.pe.config.cp
        track = f"pe{self.pe.index}.sched{self.core_id}"
        while True:
            cmd, done = yield self.queue.get()
            deps = self._dependencies(cmd)
            self._record(cmd, done)
            if deps:
                # The dependency interlock itself is *waited out* by the
                # target unit (and attributed there as ``dep_interlock``);
                # here we count how often the CP had to attach one.
                self.stats.add("interlocked")
                self.engine.obs.count("cp_interlocks", track=track,
                                      unit=cmd.unit)
            yield cp_cfg.dispatch_cycles
            faults = self.engine.faults
            if faults is not None:
                # PE lockup freezes dispatch until the window ends; a
                # slowdown window inflates every dispatch.  Both are
                # attributed so the profiler can name the dead time.
                now = self.engine.now
                extra = faults.pe_dispatch_penalty(self.pe.index, now)
                release = faults.pe_lockup_release(self.pe.index, now)
                if release > now:
                    extra += release - now
                if extra:
                    self.stats.add("fault_stall_cycles", extra)
                    self.engine.obs.stall(track, "pe_fault_stall",
                                          now, now + extra)
                    yield extra
            unit = self.pe.unit_for(cmd, self.core_id)
            yield unit.dispatch(DispatchedCommand(cmd, deps, done))
            self.stats.add("dispatched")


class CommandProcessor:
    """The per-PE CP: two schedulers plus the CP pseudo-units."""

    def __init__(self, engine: Engine, pe: "ProcessingElement") -> None:
        self.engine = engine
        self.pe = pe
        self.cp_units = [CPUnit(engine, pe, core_id) for core_id in (0, 1)]
        self.schedulers = [_Scheduler(engine, pe, core_id)
                           for core_id in (0, 1)]
        #: completion-event names, keyed (core, command class) — built
        #: lazily; issue() runs once per command so f-strings add up
        self._done_names: Dict[Tuple[int, type], str] = {}

    def issue(self, core_id: int, cmd: Command) -> Tuple[Event, Event]:
        """Issue ``cmd`` from core ``core_id``.

        Returns ``(accepted, done)``: ``accepted`` fires when the
        command enters the scheduler queue (the core stalls on this if
        the queue is full); ``done`` fires at command completion.
        """
        if core_id not in (0, 1):
            raise SimulationError(f"PE has cores 0 and 1, not {core_id}")
        key = (core_id, type(cmd))
        name = self._done_names.get(key)
        if name is None:
            name = (f"pe{self.pe.index}.c{core_id}."
                    f"{type(cmd).__name__}")
            self._done_names[key] = name
        done = Event(self.engine, name)
        accepted = self.schedulers[core_id].submit(cmd, done)
        return accepted, done
