"""Dot-Product Engine (Section 3.1.2).

The DPE holds operand A resident, streams operand B through, and emits
an ``n x m`` block of partial products per MML command, which the
Reduction Engine accumulates.  INT8 runs 1024 MACs/cycle (a 32x32
block per cycle of streamed B row); FP16/BF16 runs at half rate.

The operand cache (Section 3.5 "Caching") holds recently-loaded operand
blocks keyed by their CB/offset; a hit skips the A-load phase and the
local-memory traffic for it.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Generator, Tuple

import numpy as np

from repro.dtypes import DType
from repro.isa.commands import MML, Command
from repro.core.units.base import FunctionalUnit
from repro.sim import SimulationError


class DotProductEngine(FunctionalUnit):
    name = "dpe"

    def __init__(self, engine, pe) -> None:
        super().__init__(engine, pe)
        cfg = pe.config.dpe
        self._cache: OrderedDict = OrderedDict()
        self._cache_entries = cfg.operand_cache_entries

    # -- operand handling -------------------------------------------------
    def _load_block(self, cb_id: int, offset: int, rows: int, cols: int,
                    dtype: DType) -> Tuple[np.ndarray, int, bool]:
        """Read a row-major block from a CB.

        Returns ``(block, lm_bytes, cache_hit)`` where ``block`` is
        already widened to the accumulator dtype (int32 / float32) so
        :meth:`execute` can multiply without a per-command ``astype``,
        and ``lm_bytes`` is the local-memory traffic the load is charged
        at (the pre-widening size for int8, the compute size for fp).
        """
        cb = self.pe.cb(cb_id)
        nbytes = rows * cols * dtype.bytes
        # Key on the absolute FIFO stream position: unlike the raw read
        # pointer it never aliases when the buffer wraps, so a block from
        # an earlier residency can never produce a stale hit.
        key = (cb_id, cb.total_consumed + offset, nbytes, dtype.name)
        entry = self._cache.get(key)
        if entry is not None:
            self._cache.move_to_end(key)
            block, lm_bytes = entry
            self.stats.add("operand_cache_hits")
            return block, lm_bytes, True
        raw = cb.read_at(offset, nbytes)
        block = raw.view(dtype.numpy_dtype)[: rows * cols].reshape(rows, cols)
        if dtype.name == "int8":
            lm_bytes = block.nbytes
            # float64, not int32: int8 products summed over k <= 32 stay
            # far below 2^53, so BLAS DGEMM is exact here — and ~7x
            # faster than numpy's non-BLAS integer matmul.  execute()
            # casts the partial back to int32, bit-identical.
            block = block.astype(np.float64)
        else:
            block = block.astype(np.float32)
            lm_bytes = block.nbytes
        self._cache[key] = (block, lm_bytes)
        if len(self._cache) > self._cache_entries:
            self._cache.popitem(last=False)
        self.stats.add("operand_cache_misses")
        return block, lm_bytes, False

    def _block_cycles(self, cmd: MML, a_hit: bool) -> int:
        """Latency of one MML command.

        Streaming the B operand takes one cycle per row at INT8 (32x32
        MACs per cycle) and two at FP16 (32x16 per cycle); a full
        32x32x32 INT8 block therefore takes the paper's 32 cycles.
        Loading the resident A operand costs one cycle per row on an
        operand-cache miss.
        """
        per_row = 1 if cmd.dtype.name == "int8" else 2
        stream = cmd.n * per_row * max(1, (cmd.k + 31) // 32)
        load_a = 0 if a_hit else cmd.m
        return stream + load_a

    # -- execution ----------------------------------------------------------
    def execute(self, cmd: Command) -> Generator:
        if not isinstance(cmd, MML):
            raise SimulationError(f"DPE cannot execute {type(cmd).__name__}")
        if cmd.dtype.name == "bf16":
            raise SimulationError(
                "bf16 operands are value-emulated in fp32 and cannot be "
                "packed into circular buffers; use fp16 on the simulator "
                "(bf16 is supported by the analytical timing model only)")
        if cmd.m > 32 or cmd.n > 32 or cmd.k > 32:
            raise SimulationError(
                f"MML block ({cmd.m},{cmd.k},{cmd.n}) exceeds the DPE's "
                "32x32x32 maximum; tile the operation")
        a_block, a_bytes, a_hit = self._load_block(cmd.cb_a, cmd.offset_a,
                                                   cmd.m, cmd.k, cmd.dtype)
        b_block, b_bytes, _ = self._load_block(cmd.cb_b, cmd.offset_b,
                                               cmd.n, cmd.k, cmd.dtype)
        # Charge local-memory bandwidth for the operand reads that missed.
        lm_bytes = b_bytes + (0 if a_hit else a_bytes)
        if lm_bytes:
            yield self.pe.local_memory.port.delay_for(lm_bytes)
        partial = b_block @ a_block.T
        if cmd.dtype.name == "int8":
            # Exact: |sum| <= 127*127*32 << 2^53 (see _load_block).
            partial = partial.astype(np.int32)
        # "The result is always sent to the next functional unit in the
        # pipeline for storage and accumulation" (Section 3.1.2).
        self.pe.re_unit.accumulate(cmd.acc, partial)
        self.stats.add("macs", cmd.m * cmd.n * cmd.k)
        yield self._block_cycles(cmd, a_hit)
