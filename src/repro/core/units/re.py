"""Reduction Engine (Section 3.1.3).

Hosts four independent accumulator banks (32x32 INT32/FP32 each) that
collect DPE partial products.  A :class:`repro.isa.commands.Reduce`
command arranges banks into a block, optionally accumulates one inbound
block from the reduction network first, and either forwards the result
to a south/east neighbour or stores it to local memory through a CB
(optionally converting dtype via the SE path on the way out).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.dtypes import dtype as resolve_dtype
from repro.isa.commands import Command, InitAccumulators, Reduce
from repro.core.units.base import FunctionalUnit
from repro.sim import SimulationError


class ReductionEngine(FunctionalUnit):
    name = "re"

    def __init__(self, engine, pe) -> None:
        super().__init__(engine, pe)
        cfg = pe.config.re
        self.banks = [
            np.zeros((cfg.bank_rows, cfg.bank_cols), dtype=np.float64)
            for _ in range(cfg.accumulator_banks)
        ]
        #: dtype discipline per bank: "int32" or "fp32" (set on first use)
        self._bank_mode = [None] * cfg.accumulator_banks

    # -- accumulation interface used by the DPE ---------------------------
    def accumulate(self, bank: int, partial: np.ndarray) -> None:
        """Add an ``n x m`` partial block into accumulator ``bank``."""
        if not 0 <= bank < len(self.banks):
            raise SimulationError(f"RE bank {bank} out of range")
        rows, cols = partial.shape
        mode = "int32" if np.issubdtype(partial.dtype, np.integer) else "fp32"
        if self._bank_mode[bank] is None:
            self._bank_mode[bank] = mode
        self.banks[bank][:rows, :cols] += partial

    def bank_value(self, bank: int, rows: int = 32, cols: int = 32) -> np.ndarray:
        """Current contents of a bank in its accumulation dtype."""
        raw = self.banks[bank][:rows, :cols]
        if self._bank_mode[bank] == "int32":
            return raw.astype(np.int64).astype(np.int32)
        return raw.astype(np.float32)

    def _gather(self, layout) -> np.ndarray:
        """Arrange banks per ``layout`` into one block."""
        rows = []
        for bank_row in layout:
            rows.append(np.hstack([self.banks[b] for b in bank_row]))
        return np.vstack(rows)

    def _scatter_add(self, layout, block: np.ndarray) -> None:
        """Add an inbound block back onto the banks per ``layout``."""
        r0 = 0
        for bank_row in layout:
            c0 = 0
            for bank in bank_row:
                h, w = self.banks[bank].shape
                self.banks[bank] += block[r0:r0 + h, c0:c0 + w]
                c0 += w
            r0 += h

    # -- execution ----------------------------------------------------------
    def execute(self, cmd: Command) -> Generator:
        if isinstance(cmd, InitAccumulators):
            yield from self._execute_init(cmd)
        elif isinstance(cmd, Reduce):
            yield from self._execute_reduce(cmd)
        else:
            raise SimulationError(f"RE cannot execute {type(cmd).__name__}")

    def _execute_init(self, cmd: InitAccumulators) -> Generator:
        for i, bank in enumerate(cmd.banks):
            if cmd.bias_cb is None:
                self.banks[bank][:] = 0.0
                self._bank_mode[bank] = None
            else:
                cb = self.pe.cb(cmd.bias_cb)
                nbytes = self.banks[bank].size * 4
                raw = cb.read_at(cmd.bias_offset + i * nbytes, nbytes)
                bias = raw.view(np.int32).reshape(self.banks[bank].shape)
                self.banks[bank][:] = bias
                self._bank_mode[bank] = "int32"
        yield len(cmd.banks) * self.pe.config.re.reduction_hop_cycles // 4 + 1

    def _mode_of(self, layout) -> str:
        for bank_row in layout:
            for bank in bank_row:
                if self._bank_mode[bank] is not None:
                    return self._bank_mode[bank]
        return "fp32"

    def _execute_reduce(self, cmd: Reduce) -> Generator:
        mode = self._mode_of(cmd.banks_layout)
        if cmd.receive:
            inbound = yield from self.pe.reduction_network.receive(self.pe.coord)
            self._scatter_add(cmd.banks_layout, inbound.astype(np.float64))
            self.stats.add("received_blocks")
        block64 = self._gather(cmd.banks_layout)
        if mode == "int32":
            block = block64.astype(np.int64).astype(np.int32)
        else:
            block = block64.astype(np.float32)
        banks_moved = sum(len(row) for row in cmd.banks_layout)
        yield banks_moved * self.pe.config.re.reduction_hop_cycles
        if cmd.dest_pe is not None:
            yield from self.pe.reduction_network.send(
                self.pe.coord, tuple(cmd.dest_pe), block)
            self.stats.add("sent_blocks")
            return
        # Store to local memory through the destination CB, converting on
        # the way out if requested (the RE "can then send the result to
        # ... the SE, or store it in the PE's local memory directly").
        out = block
        if cmd.out_dtype is not None:
            target = resolve_dtype(cmd.out_dtype)
            if target.name == "int8":
                scaled = np.round(block.astype(np.float64) * cmd.out_scale)
                out = np.clip(scaled, -128, 127).astype(np.int8)
            elif target.name in ("fp16", "bf16", "fp32"):
                out = (block.astype(np.float32) * cmd.out_scale).astype(
                    target.numpy_dtype)
            else:
                raise SimulationError(f"Reduce cannot convert to {target.name}")
        cb = self.pe.cb(cmd.dest_cb)
        yield self.pe.local_memory.port.delay_for(out.nbytes)
        cb.write_and_push(out)
        self.stats.add("stored_blocks")
