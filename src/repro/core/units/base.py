"""Common machinery for fixed-function units.

A unit runs a single server process: it pulls dispatched commands from
its queue in order, waits for the CB-order dependencies the Command
Processor attached, performs the CP's element/space checks (stalling
until producers/consumers catch up — the hardware producer-consumer
synchronisation of Section 3.3), executes the command's functional
effect, charges its latency, and fires the completion event.

Because an operation "is guaranteed to have the necessary resources to
complete and will not stall the functional unit in the middle of its
execution" (Section 3.3), the element/space check happens entirely
before the timed execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List

from repro.isa.commands import Command
from repro.sim import Engine, Event, Queue, StatGroup

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pe import ProcessingElement


class DispatchedCommand:
    """A command in flight, with its dependencies and completion event."""

    __slots__ = ("command", "dependencies", "done")

    def __init__(self, command: Command, dependencies: List[Event],
                 done: Event) -> None:
        self.command = command
        self.dependencies = dependencies
        self.done = done


class FunctionalUnit:
    """Base class: a serially-serviced execution unit."""

    name = "unit"

    def __init__(self, engine: Engine, pe: "ProcessingElement") -> None:
        self.engine = engine
        self.pe = pe
        # Bounded per-unit command queues (the CP's "set of command
        # queues"); a full queue backpressures the scheduler and, in
        # turn, the issuing core.
        self.queue = Queue(engine, capacity=pe.config.cp.queue_depth,
                           name=f"pe{pe.index}.{self.name}.q")
        self.stats = StatGroup(f"pe{pe.index}.{self.name}")
        self._server = engine.process(self._run(), f"pe{pe.index}.{self.name}")

    def dispatch(self, dispatched: DispatchedCommand) -> Event:
        """Called by the Command Processor; returns the enqueue event."""
        return self.queue.put(dispatched)

    def _run(self) -> Generator:
        while True:
            dispatched = yield self.queue.get()
            cmd = dispatched.command
            if dispatched.dependencies:
                yield self.engine.all_of(dispatched.dependencies)
            start = self.engine.now
            try:
                # The CP's element/space check (Section 3.3).
                waits = []
                for cb_id, nbytes in cmd.required_elements().items():
                    waits.append(self.pe.cb(cb_id).wait_elements(nbytes))
                for cb_id, nbytes in cmd.required_space().items():
                    waits.append(self.pe.cb(cb_id).wait_space(nbytes))
                if waits:
                    yield self.engine.all_of(waits)
                    self.stats.add("stall_cycles", self.engine.now - start)
                start = self.engine.now
                yield from self.execute(cmd)
            except Exception as exc:
                # Deliver the failure to whoever waits on the command
                # (the hardware's "custom exceptions" path) and keep
                # serving the queue.
                dispatched.done.fail(exc)
                continue
            self.stats.add("busy_cycles", self.engine.now - start)
            self.stats.add("commands")
            self.engine.tracer.record(
                f"pe{self.pe.index}.{self.name}", type(cmd).__name__,
                start, self.engine.now)
            dispatched.done.succeed()

    def execute(self, cmd: Command) -> Generator:
        """Functional effect + timing of one command (subclass hook)."""
        raise NotImplementedError
        yield  # pragma: no cover
