"""Common machinery for fixed-function units.

A unit runs a single server process: it pulls dispatched commands from
its queue in order, waits for the CB-order dependencies the Command
Processor attached, performs the CP's element/space checks (stalling
until producers/consumers catch up — the hardware producer-consumer
synchronisation of Section 3.3), executes the command's functional
effect, charges its latency, and fires the completion event.

Because an operation "is guaranteed to have the necessary resources to
complete and will not stall the functional unit in the middle of its
execution" (Section 3.3), the element/space check happens entirely
before the timed execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List

from repro.isa.commands import Command
from repro.sim import Engine, Event, Queue, StatGroup

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pe import ProcessingElement


class DispatchedCommand:
    """A command in flight, with its dependencies and completion event."""

    __slots__ = ("command", "dependencies", "done")

    def __init__(self, command: Command, dependencies: List[Event],
                 done: Event) -> None:
        self.command = command
        self.dependencies = dependencies
        self.done = done


class FunctionalUnit:
    """Base class: a serially-serviced execution unit."""

    name = "unit"

    def __init__(self, engine: Engine, pe: "ProcessingElement") -> None:
        self.engine = engine
        self.pe = pe
        # Bounded per-unit command queues (the CP's "set of command
        # queues"); a full queue backpressures the scheduler and, in
        # turn, the issuing core.
        self.queue = Queue(engine, capacity=pe.config.cp.queue_depth,
                           name=f"pe{pe.index}.{self.name}.q")
        self.stats = StatGroup(f"pe{pe.index}.{self.name}")
        self._server = engine.process(self._run(), f"pe{pe.index}.{self.name}")

    def dispatch(self, dispatched: DispatchedCommand) -> Event:
        """Called by the Command Processor; returns the enqueue event."""
        return self.queue.put(dispatched)

    def _run(self) -> Generator:
        engine = self.engine
        track = f"pe{self.pe.index}.{self.name}"
        queue_get = self.queue.get
        pe_cb = self.pe.cb
        stats_add = self.stats.add
        while True:
            dispatched = yield queue_get()
            cmd = dispatched.command
            if dispatched.dependencies:
                entered = engine.now
                yield engine.all_of(dispatched.dependencies)
                if engine.now > entered:
                    stats_add("dep_stall_cycles", engine.now - entered)
                    engine.obs.stall(track, "dep_interlock",
                                     entered, engine.now)
            start = engine.now
            try:
                # The CP's element/space check (Section 3.3).  Both wait
                # sets are registered up front (so waiters exist before
                # any producer/consumer progresses) and then awaited in
                # two steps purely so the idle time can be attributed to
                # its cause; the completion time — the max over all
                # checks — is unchanged.
                element_waits = []
                for cb_id, nbytes in cmd.required_elements().items():
                    element_waits.append(pe_cb(cb_id).wait_elements(nbytes))
                space_waits = []
                for cb_id, nbytes in cmd.required_space().items():
                    space_waits.append(pe_cb(cb_id).wait_space(nbytes))
                if element_waits:
                    entered = engine.now
                    yield engine.all_of(element_waits)
                    if engine.now > entered:
                        stats_add("cb_element_stall_cycles",
                                  engine.now - entered)
                        engine.obs.stall(track, "cb_element_wait",
                                         entered, engine.now)
                if space_waits:
                    entered = engine.now
                    yield engine.all_of(space_waits)
                    if engine.now > entered:
                        stats_add("cb_space_stall_cycles",
                                  engine.now - entered)
                        engine.obs.stall(track, "cb_space_wait",
                                         entered, engine.now)
                if engine.now > start:
                    stats_add("stall_cycles", engine.now - start)
                start = engine.now
                yield from self.execute(cmd)
            except Exception as exc:
                # Deliver the failure to whoever waits on the command
                # (the hardware's "custom exceptions" path) and keep
                # serving the queue.
                dispatched.done.fail(exc)
                continue
            stats_add("busy_cycles", engine.now - start)
            stats_add("commands")
            engine.tracer.record(track, type(cmd).__name__,
                                 start, engine.now)
            dispatched.done.succeed()

    def execute(self, cmd: Command) -> Generator:
        """Functional effect + timing of one command (subclass hook)."""
        raise NotImplementedError
        yield  # pragma: no cover
