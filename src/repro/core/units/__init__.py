"""Fixed-function units inside each PE (Section 3.1).

Each unit is a serially-serviced server fed by the Command Processor:
commands arrive with their CB-order dependencies already attached, and
the unit performs the element/space checks, the functional effect (on
real numpy data), and the timing charge.
"""

from repro.core.units.base import FunctionalUnit
from repro.core.units.dpe import DotProductEngine
from repro.core.units.fi import FabricInterface
from repro.core.units.mlu import MemoryLayoutUnit
from repro.core.units.re import ReductionEngine
from repro.core.units.se import SIMDEngine

__all__ = [
    "DotProductEngine",
    "FabricInterface",
    "FunctionalUnit",
    "MemoryLayoutUnit",
    "ReductionEngine",
    "SIMDEngine",
]
