"""SIMD Engine (Section 3.1.4).

Quantisation/dequantisation, LUT-approximated nonlinear functions, and
predefined elementwise operations.  The nonlinear path uses a 256-entry
lookup table with cubic (Catmull-Rom) interpolation — the paper
provisions "linear or cubic approximation of nonlinear functions"; we
model the cubic option because downstream *quantisation* amplifies the
table error: with linear interpolation the worst-case tanh error is
~3.8e-4, enough to flip one ``round(x / scale)`` quantisation level for
values landing near a rounding boundary, which a later dequantise turns
into a full ``scale``-sized output error.  Cubic interpolation drops
the table error below 1e-6 over the tabulated domain, so level flips
require an input within float32 noise of the boundary.  Results still
carry a small, bounded approximation error relative to numpy, which
the tests assert explicitly.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Generator

import numpy as np

from repro.dtypes import dtype as resolve_dtype
from repro.isa.commands import (Command, ElementwiseCmd, NonlinearCmd,
                                QuantizeCmd)
from repro.core.units.base import FunctionalUnit
from repro.sim import SimulationError

#: Domain over which the LUTs are tabulated; inputs are clamped.
_LUT_LO, _LUT_HI = -8.0, 8.0

_FUNCS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "exp": np.exp,
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "tanh": np.tanh,
    "relu": lambda x: np.maximum(x, 0.0),
    "gelu": lambda x: 0.5 * x * (1.0 + np.tanh(
        math.sqrt(2.0 / math.pi) * (x + 0.044715 * x ** 3))),
}


class SIMDEngine(FunctionalUnit):
    name = "se"

    def __init__(self, engine, pe) -> None:
        super().__init__(engine, pe)
        entries = pe.config.se.lut_entries
        self._lut_x = np.linspace(_LUT_LO, _LUT_HI, entries, dtype=np.float32)
        self._luts = {fn: f(self._lut_x.astype(np.float64)).astype(np.float32)
                      for fn, f in _FUNCS.items()}

    # -- helpers -----------------------------------------------------------
    def _lut_apply(self, func: str, x: np.ndarray) -> np.ndarray:
        """Catmull-Rom cubic interpolation through the lookup table.

        The table is uniform, so the segment index and fractional
        position come straight from the clamped input; edge segments
        reuse the clamped endpoint as the outer control point.
        """
        lut = self._luts[func].astype(np.float64)
        n = lut.shape[0]
        step = (_LUT_HI - _LUT_LO) / (n - 1)
        clamped = np.clip(x.astype(np.float64), _LUT_LO, _LUT_HI)
        t = (clamped - _LUT_LO) / step
        i = np.clip(np.floor(t).astype(np.int64), 0, n - 2)
        frac = t - i
        p0 = lut[np.maximum(i - 1, 0)]
        p1 = lut[i]
        p2 = lut[i + 1]
        p3 = lut[np.minimum(i + 2, n - 1)]
        out = 0.5 * (2.0 * p1
                     + (p2 - p0) * frac
                     + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * frac ** 2
                     + (3.0 * p1 - p0 - 3.0 * p2 + p3) * frac ** 3)
        return out.astype(np.float32)

    def _elem_cycles(self, count: int, dtype_name: str) -> int:
        lanes = self.pe.config.se.lanes(dtype_name)
        return max(1, math.ceil(count / lanes))

    # -- execution -----------------------------------------------------------
    def execute(self, cmd: Command) -> Generator:
        if isinstance(cmd, QuantizeCmd):
            yield from self._execute_quantize(cmd)
        elif isinstance(cmd, NonlinearCmd):
            yield from self._execute_nonlinear(cmd)
        elif isinstance(cmd, ElementwiseCmd):
            yield from self._execute_elementwise(cmd)
        else:
            raise SimulationError(f"SE cannot execute {type(cmd).__name__}")

    def _io(self, src_cb: int, src_bytes: int, pop: bool) -> np.ndarray:
        cb = self.pe.cb(src_cb)
        raw = cb.read_at(0, src_bytes)
        if pop:
            cb.pop(src_bytes)
        return raw

    def _execute_quantize(self, cmd: QuantizeCmd) -> Generator:
        if cmd.direction == "quantize":
            src = resolve_dtype(cmd.src_dtype or "fp32")
            raw = self._io(cmd.src_cb, cmd.count * src.bytes, cmd.pop_input)
            values = raw.view(src.numpy_dtype)[:cmd.count].astype(np.float32)
            q = np.round(values / cmd.scale) + cmd.zero_point
            out = np.clip(q, -128, 127).astype(np.int8)
        else:
            raw = self._io(cmd.src_cb, cmd.count, cmd.pop_input)
            values = raw.view(np.int8)[:cmd.count].astype(np.float32)
            dst = resolve_dtype(cmd.dst_dtype or "fp32")
            out = ((values - cmd.zero_point) * cmd.scale).astype(dst.numpy_dtype)
        yield self.pe.local_memory.port.delay_for(raw.size + out.nbytes)
        self.pe.cb(cmd.dst_cb).write_and_push(out)
        self.stats.add("elements", cmd.count)
        yield self._elem_cycles(cmd.count, "fp16")

    def _execute_nonlinear(self, cmd: NonlinearCmd) -> Generator:
        src = cmd.src_dtype
        raw = self._io(cmd.src_cb, cmd.count * src.bytes, cmd.pop_input)
        x = raw.view(src.numpy_dtype)[:cmd.count].astype(np.float32)
        if cmd.func == "relu":
            out = np.maximum(x, 0.0).astype(np.float32)
        else:
            out = self._lut_apply(cmd.func, x)
        yield self.pe.local_memory.port.delay_for(raw.size + out.nbytes)
        self.pe.cb(cmd.dst_cb).write_and_push(out)
        self.stats.add("elements", cmd.count)
        yield (self._elem_cycles(cmd.count, src.name)
               + self.pe.config.se.nonlinear_latency)

    def _execute_elementwise(self, cmd: ElementwiseCmd) -> Generator:
        nbytes = cmd.count * cmd.dtype.bytes
        raw_a = self._io(cmd.src_cb_a, nbytes, cmd.pop_inputs)
        raw_b = self._io(cmd.src_cb_b, nbytes, cmd.pop_inputs)
        a = raw_a.view(cmd.dtype.numpy_dtype)[:cmd.count]
        b = raw_b.view(cmd.dtype.numpy_dtype)[:cmd.count]
        if cmd.op == "add":
            out = a + b
        elif cmd.op == "sub":
            out = a - b
        elif cmd.op == "mul":
            out = a * b
        else:
            out = np.maximum(a, b)
        out = out.astype(cmd.dtype.numpy_dtype)
        yield self.pe.local_memory.port.delay_for(2 * nbytes + out.nbytes)
        self.pe.cb(cmd.dst_cb).write_and_push(out)
        self.stats.add("elements", cmd.count)
        yield self._elem_cycles(cmd.count, cmd.dtype.name)
