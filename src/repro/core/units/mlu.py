"""Memory Layout Unit (Section 3.1.1).

Copies and re-layouts data in local memory: transpose, concatenation,
reshape/copy, on 4/8/16/32-bit element types, at 64 B/cycle.
"""

from __future__ import annotations

import math
from typing import Generator

import numpy as np

from repro.isa.commands import Command, ConcatCmd, CopyCmd, TransposeCmd
from repro.core.units.base import FunctionalUnit
from repro.sim import SimulationError


class MemoryLayoutUnit(FunctionalUnit):
    name = "mlu"

    def _move_cycles(self, nbytes: int) -> int:
        return max(1, math.ceil(nbytes / self.pe.config.mlu.bytes_per_cycle))

    def execute(self, cmd: Command) -> Generator:
        if isinstance(cmd, TransposeCmd):
            yield from self._execute_transpose(cmd)
        elif isinstance(cmd, ConcatCmd):
            yield from self._execute_concat(cmd)
        elif isinstance(cmd, CopyCmd):
            yield from self._execute_copy(cmd)
        else:
            raise SimulationError(f"MLU cannot execute {type(cmd).__name__}")

    def _execute_transpose(self, cmd: TransposeCmd) -> Generator:
        if cmd.dtype.bits not in self.pe.config.mlu.supported_element_bits:
            raise SimulationError(
                f"MLU cannot transpose {cmd.dtype.bits}-bit elements")
        src = self.pe.cb(cmd.src_cb)
        raw = src.read_at(cmd.src_offset, cmd.nbytes)
        tile = raw.view(cmd.dtype.numpy_dtype)[: cmd.rows * cmd.cols]
        transposed = np.ascontiguousarray(tile.reshape(cmd.rows, cmd.cols).T)
        if cmd.pop_input:
            src.pop(cmd.src_offset + cmd.nbytes)
        # Transpose reads and writes every byte through local memory.
        yield self.pe.local_memory.port.delay_for(2 * cmd.nbytes)
        self.pe.cb(cmd.dst_cb).write_and_push(transposed)
        self.stats.add("bytes", cmd.nbytes)
        yield self._move_cycles(cmd.nbytes)

    def _execute_concat(self, cmd: ConcatCmd) -> Generator:
        pieces = []
        for cb_id, nbytes in zip(cmd.src_cbs, cmd.src_nbytes):
            cb = self.pe.cb(cb_id)
            pieces.append(cb.read_at(0, nbytes))
            if cmd.pop_inputs:
                cb.pop(nbytes)
        out = np.concatenate(pieces) if pieces else np.zeros(0, np.uint8)
        yield self.pe.local_memory.port.delay_for(2 * out.size)
        self.pe.cb(cmd.dst_cb).write_and_push(out)
        self.stats.add("bytes", out.size)
        yield self._move_cycles(out.size)

    def _execute_copy(self, cmd: CopyCmd) -> Generator:
        src = self.pe.cb(cmd.src_cb)
        raw = src.read_at(cmd.src_offset, cmd.nbytes)
        if cmd.pop_input:
            src.pop(cmd.src_offset + cmd.nbytes)
        yield self.pe.local_memory.port.delay_for(2 * cmd.nbytes)
        self.pe.cb(cmd.dst_cb).write_and_push(raw)
        self.stats.add("bytes", cmd.nbytes)
        yield self._move_cycles(cmd.nbytes)
