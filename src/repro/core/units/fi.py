"""Fabric Interface (Section 3.1.5).

The PE's gateway to the rest of the chip: DMA-like transfers between
system memory (DRAM / on-chip SRAM / other PEs' local apertures) and
the PE's circular buffers.  Loads may ride a multicast group so that
identical reads from PEs on the same row/column coalesce at the memory
(Section 3.4).

Two properties of the real hardware matter enough to model explicitly:

* **Separate load and store engines.**  A store waiting on circular
  buffer elements must not be head-of-line blocked behind inbound loads
  that are waiting on the space that store's POP would free.
* **Memory-level parallelism.**  Each engine keeps several requests in
  flight (``FIConfig.max_outstanding_*``); Section 3.5 calls out "many
  outstanding requests" as the MLP mechanism, and the EmbeddingBag
  discussion in Section 7 shows what happens when there are too few.
  Loads *reserve* CB space at dispatch and *commit* their data in issue
  order, so overlap never reorders or oversubscribes the FIFO.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.isa.commands import Command, DMALoad, DMAStore
from repro.core.units.base import DispatchedCommand, FunctionalUnit
from repro.sim import Event, Queue, Semaphore, SimulationError


class FabricInterface(FunctionalUnit):
    name = "fi"

    def __init__(self, engine, pe) -> None:
        super().__init__(engine, pe)
        fi_cfg = pe.config.fi
        self.store_queue = Queue(engine, capacity=pe.config.cp.queue_depth,
                                 name=f"pe{pe.index}.fi.storeq")
        self._load_slots = Semaphore(engine, fi_cfg.max_outstanding_loads,
                                     f"pe{pe.index}.fi.loads")
        self._store_slots = Semaphore(engine, fi_cfg.max_outstanding_stores,
                                      f"pe{pe.index}.fi.stores")
        #: completion event of the most recently dispatched load, used to
        #: chain in-order CB commits.
        self._commit_chain: Optional[Event] = None
        self._track = f"pe{pe.index}.fi"
        self._load_proc_name = f"pe{pe.index}.fi.load"
        self._store_proc_name = f"pe{pe.index}.fi.storexfer"
        engine.process(self._run_store(), f"pe{pe.index}.fi.store")

    def dispatch(self, dispatched: DispatchedCommand) -> Event:
        if isinstance(dispatched.command, DMAStore):
            return self.store_queue.put(dispatched)
        return self.queue.put(dispatched)

    # -- load engine -------------------------------------------------------
    def _run(self) -> Generator:
        """Load engine front end: order, reserve, then fetch in parallel."""
        engine = self.engine
        track = self._track
        while True:
            dispatched = yield self.queue.get()
            cmd = dispatched.command
            if not isinstance(cmd, DMALoad):
                raise SimulationError(
                    f"FI load engine cannot execute {type(cmd).__name__}")
            if dispatched.dependencies:
                entered = engine.now
                yield engine.all_of(dispatched.dependencies)
                if engine.now > entered:
                    engine.obs.stall(track, "dep_interlock",
                                     entered, engine.now)
            try:
                cb = self.pe.cb(cmd.cb_id)
            except Exception as exc:
                dispatched.done.fail(exc)
                continue
            stall_start = self.engine.now
            yield cb.wait_space(cmd.nbytes)
            if engine.now > stall_start:
                engine.obs.stall(track, "cb_space_wait",
                                 stall_start, engine.now)
            entered = engine.now
            yield self._load_slots.acquire()
            if engine.now > entered:
                engine.obs.stall(track, "fi_slot_wait", entered, engine.now)
            self.stats.add("stall_cycles", self.engine.now - stall_start)
            cb.reserve(cmd.nbytes)
            predecessor = self._commit_chain
            self._commit_chain = dispatched.done
            self.engine.process(
                self._do_load(cmd, dispatched.done, predecessor),
                self._load_proc_name)

    def _do_load(self, cmd: DMALoad, done: Event,
                 predecessor: Optional[Event]) -> Generator:
        start = self.engine.now
        try:
            if cmd.multicast is not None:
                data = yield from cmd.multicast.read_2d(
                    self.pe.coord, cmd.addr, cmd.rows, cmd.row_bytes,
                    cmd.stride)
            else:
                data = yield from self.pe.noc.read_2d(
                    self.pe.coord, cmd.addr, cmd.rows, cmd.row_bytes,
                    cmd.stride)
        except Exception as exc:
            self._load_slots.release()
            done.fail(exc)
            return
        # Landing the data in local memory consumes local bandwidth.
        yield self.pe.local_memory.port.delay_for(cmd.nbytes)
        if predecessor is not None and not predecessor.triggered:
            yield predecessor          # commit strictly in issue order
        self.pe.cb(cmd.cb_id).commit(data)
        self.stats.add("load_bytes", cmd.nbytes)
        self.stats.add("busy_cycles", self.engine.now - start)
        self.stats.add("commands")
        self.engine.tracer.record(self._track, "DMALoad",
                                  start, self.engine.now,
                                  bytes=cmd.nbytes)
        self._load_slots.release()
        done.succeed()

    # -- store engine -------------------------------------------------------
    def _run_store(self) -> Generator:
        engine = self.engine
        track = self._track
        while True:
            dispatched = yield self.store_queue.get()
            cmd = dispatched.command
            if not isinstance(cmd, DMAStore):
                raise SimulationError(
                    f"FI store engine cannot execute {type(cmd).__name__}")
            if dispatched.dependencies:
                entered = engine.now
                yield engine.all_of(dispatched.dependencies)
                if engine.now > entered:
                    engine.obs.stall(track, "dep_interlock",
                                     entered, engine.now)
            try:
                cb = self.pe.cb(cmd.cb_id)
            except Exception as exc:
                dispatched.done.fail(exc)
                continue
            stall_start = self.engine.now
            yield cb.wait_elements(cmd.nbytes)
            if engine.now > stall_start:
                engine.obs.stall(track, "cb_element_wait",
                                 stall_start, engine.now)
            entered = engine.now
            yield self._store_slots.acquire()
            if engine.now > entered:
                engine.obs.stall(track, "fi_slot_wait", entered, engine.now)
            self.stats.add("stall_cycles", self.engine.now - stall_start)
            yield self.pe.local_memory.port.delay_for(cmd.nbytes)
            data = cb.read_and_pop(cmd.nbytes)   # pop in issue order
            self.engine.process(self._do_store(cmd, data, dispatched.done),
                                self._store_proc_name)

    def _do_store(self, cmd: DMAStore, data, done: Event) -> Generator:
        start = self.engine.now
        try:
            yield from self.pe.noc.write_2d(self.pe.coord, cmd.addr, data,
                                            cmd.rows, cmd.row_bytes,
                                            cmd.stride)
        except Exception as exc:
            self._store_slots.release()
            done.fail(exc)
            return
        self.stats.add("store_bytes", cmd.nbytes)
        self.stats.add("busy_cycles", self.engine.now - start)
        self.stats.add("commands")
        self.engine.tracer.record(self._track, "DMAStore",
                                  start, self.engine.now,
                                  bytes=cmd.nbytes)
        self._store_slots.release()
        done.succeed()

    def execute(self, cmd: Command) -> Generator:  # pragma: no cover
        raise SimulationError("FI uses dedicated engine loops")
        yield
