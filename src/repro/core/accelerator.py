"""The chip-level facade: one MTIA accelerator card.

Constructs the simulation engine, the memory system, the networks, and
the PE grid, and provides the host-side conveniences used by kernels,
tests, and benchmarks: address allocation in DRAM/SRAM, tensor upload /
download, kernel launch, and statistics collection.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.config import MTIA_V1, ChipConfig
from repro.memory import MemorySystem, SRAMMode
from repro.memory.address_map import SRAM_BASE
from repro.noc import NoC, ReductionNetwork
from repro.core.grid import Grid, SubGrid
from repro.core.sync import Barrier
from repro.sim import Engine, SimulationError, StatGroup


class Accelerator:
    """One MTIA card: grid + memories + networks + host interface."""

    #: Alignment for host allocations, matching the paper's note that
    #: outer-dimension strides are aligned to 32 B boundaries (Section 4).
    ALLOC_ALIGN = 64

    def __init__(self, config: ChipConfig = MTIA_V1,
                 sram_mode: SRAMMode = SRAMMode.CACHE,
                 trace: bool = False,
                 observe: bool = False,
                 registry=None,
                 name: str = "",
                 simulate_boot: bool = False,
                 record_edges: bool = False) -> None:
        from repro.core.control import BootStage, ControlSubsystem
        self.config = config
        self.name = name
        self.engine = Engine()
        self.engine.tracer.enabled = trace
        if record_edges:
            # Causal dependency-edge recording for critical-path
            # extraction (repro.obs.critical); a proven no-op on the
            # simulated results.
            from repro.obs.critical import EdgeRecorder
            self.engine.edges = EdgeRecorder()
        if name:
            # Keep multi-card / serving spans on distinct process rows.
            self.engine.tracer.default_pid = name
        # Telemetry (disabled by default): stall attribution and typed
        # metrics land in ``self.metrics`` when ``observe=True``.
        self.engine.obs.enabled = observe or registry is not None
        if registry is not None:
            from repro.obs.observer import Observer
            self.engine.obs = Observer(enabled=True, registry=registry,
                                       tracer=self.engine.tracer)
        else:
            self.engine.obs.tracer = self.engine.tracer
        self.memory = MemorySystem(self.engine, config, sram_mode=sram_mode)
        self.noc = NoC(self.engine, config, self.memory)
        self.reduction_network = ReductionNetwork(self.engine, config)
        self.grid = Grid(self.engine, config, self.memory, self.noc,
                         self.reduction_network)
        self.control = ControlSubsystem(self.engine, config)
        if not simulate_boot:
            # The typical workload window starts on a booted card; jump
            # the control subsystem to READY.  Pass simulate_boot=True
            # to exercise the ROM/secure-boot/firmware sequence.
            self.control.stage = BootStage.READY
            self.control.csr.poke(0x00, BootStage.READY.value)
            self.control._ready.succeed()
        self.stats = StatGroup("accelerator")
        self._dram_brk = self.ALLOC_ALIGN
        self._sram_brk = SRAM_BASE
        self._launched: List = []

    # -- memory management -------------------------------------------------
    def _align(self, value: int) -> int:
        a = self.ALLOC_ALIGN
        return (value + a - 1) // a * a

    def alloc_dram(self, nbytes: int) -> int:
        """Bump-allocate ``nbytes`` of device DRAM; returns the address."""
        addr = self._dram_brk
        self._dram_brk = self._align(addr + nbytes)
        if self._dram_brk > self.config.dram.capacity_bytes:
            raise MemoryError("device DRAM exhausted")
        return addr

    def alloc_sram(self, nbytes: int) -> int:
        """Bump-allocate on-chip SRAM scratchpad; returns the address."""
        if self.memory.sram_mode is not SRAMMode.SCRATCHPAD:
            raise SimulationError(
                "SRAM is in cache mode; scratchpad allocation unavailable")
        addr = self._sram_brk
        self._sram_brk = self._align(addr + nbytes)
        if self._sram_brk > SRAM_BASE + self.config.sram.capacity_bytes:
            raise MemoryError("on-chip SRAM exhausted")
        return addr

    def upload(self, array: np.ndarray, addr: Optional[int] = None) -> int:
        """Copy a host array into device memory; returns its address."""
        array = np.ascontiguousarray(array)
        if addr is None:
            addr = self.alloc_dram(array.nbytes)
        self.memory.poke(addr, array)
        return addr

    def download(self, addr: int, shape: tuple, dtype) -> np.ndarray:
        """Copy a device array back to the host."""
        return self.memory.peek_array(addr, shape, dtype)

    # -- execution -----------------------------------------------------------
    def launch(self, program: Callable, *args, name: str = "kernel",
               **kwargs):
        """Start a kernel program (a generator function) as a process."""
        proc = self.engine.process(program(*args, **kwargs), name)
        self._launched.append(proc)
        return proc

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation; returns elapsed cycles.

        Raises if any launched program failed to finish (deadlock).
        """
        start = self.engine.now
        self.engine.run(until=until)
        stuck = [p.name for p in self._launched if not p.triggered]
        if stuck:
            raise SimulationError(f"programs did not finish: {stuck}")
        for proc in self._launched:
            proc.value   # re-raises if the kernel program failed
        self._launched = []
        return self.engine.now - start

    def barrier(self, parties: int, name: str = "barrier") -> Barrier:
        return Barrier(self.engine, parties, name)

    def subgrid(self, origin: Tuple[int, int] = (0, 0),
                rows: int = 0, cols: int = 0) -> SubGrid:
        return self.grid.subgrid(origin, rows, cols)

    # -- bookkeeping -----------------------------------------------------------
    @property
    def cycles(self) -> float:
        return self.engine.now

    def seconds(self, cycles: Optional[float] = None) -> float:
        """Convert cycles to wall-clock seconds at the nominal frequency."""
        cycles = self.cycles if cycles is None else cycles
        return cycles / (self.config.frequency_ghz * 1e9)

    @property
    def tracer(self):
        return self.engine.tracer

    @property
    def obs(self):
        """The engine's telemetry observer (stall attribution sink)."""
        return self.engine.obs

    @property
    def edges(self):
        """The causal edge recorder (``record_edges=True``), or None."""
        return self.engine.edges

    @property
    def metrics(self):
        """The observer's metric registry."""
        return self.engine.obs.registry

    def save_trace(self, path: str) -> None:
        """Export the execution trace as Chrome trace-event JSON."""
        self.engine.tracer.save(path, self.config.frequency_ghz)

    def collect_stats(self) -> Dict[str, float]:
        """Chip-wide statistics rollup."""
        rollup = StatGroup("chip")
        for pe in self.grid:
            rollup.merge(pe.collect_stats())
        rollup.merge(self.noc.stats, prefix="noc.")
        rollup.merge(self.memory.dram.stats, prefix="dram.")
        rollup.merge(self.memory.sram.stats, prefix="sram.")
        rollup.merge(self.reduction_network.stats, prefix="rednet.")
        return rollup.as_dict()
