"""The MTIA accelerator core model: PEs, grid, and fixed-function units.

This package implements Section 3 of the paper as an executable model:

* :mod:`repro.core.circular_buffer` — the buffet-style CB abstraction;
* :mod:`repro.core.command_processor` — per-core schedulers, CB-ID
  dependency interlocks, element/space checks, atomic sync primitives;
* :mod:`repro.core.units` — MLU, DPE, RE, SE, FI functional units;
* :mod:`repro.core.cores` — the processor-core model (command issue +
  the RISC-V-vector-like compute path);
* :mod:`repro.core.pe` — one Processing Element;
* :mod:`repro.core.grid` / :mod:`repro.core.accelerator` — the 8x8 grid
  and the chip-level facade.
"""

from repro.core.accelerator import Accelerator
from repro.core.circular_buffer import CircularBuffer
from repro.core.command_processor import CommandProcessor
from repro.core.cores import CoreContext
from repro.core.grid import Grid, SubGrid
from repro.core.pe import ProcessingElement
from repro.core.sync import AtomicCounter, Barrier, TicketLock

__all__ = [
    "Accelerator",
    "AtomicCounter",
    "Barrier",
    "CircularBuffer",
    "CommandProcessor",
    "CoreContext",
    "Grid",
    "ProcessingElement",
    "SubGrid",
    "TicketLock",
]
