"""``python -m repro.bench`` — the repo's perf-trajectory benchmark.

Runs the canonical FC / TBE / DLRM quickstart workloads and emits a
schema-stable ``BENCH_<label>.json`` so the performance trajectory of
the reproduction is tracked from PR to PR::

    python -m repro.bench                       # writes BENCH_pr8.json
    python -m repro.bench --label nightly -o out/
    python -m repro.bench --compare BENCH_pr4.json   # soft regression check
    python -m repro.bench --jobs 3              # workloads in parallel
    python -m repro.bench --trajectory          # all BENCH_*.json, one table

Every workload records the same four headline numbers (``latency_us``,
``achieved_tflops``, ``sim_cycles``, ``wall_time_s``; inapplicable ones
are 0) plus workload-specific ``extras``.  ``--compare`` diffs the
current run against a baseline file and reports per-metric regressions;
it only fails the process when ``--strict`` is given and a simulated
metric regresses beyond the threshold (wall-time is reported but never
enforced — CI machines are noisy).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time
from typing import Dict, List, Optional, Tuple

SCHEMA_VERSION = 1
DEFAULT_LABEL = "pr10"  # bump per PR; the trajectory lives in git
TRAJECTORY_SCHEMA_VERSION = 1

#: headline metrics every workload reports (inapplicable ones are 0)
METRICS = ("latency_us", "achieved_tflops", "sim_cycles", "wall_time_s")

#: Metrics where *bigger* is better (regressions are decreases).
_HIGHER_IS_BETTER = {"achieved_tflops"}
#: Metrics compared against the soft threshold; wall_time_s is
#: excluded (host noise), extras are informational.
_COMPARED = ("latency_us", "achieved_tflops", "sim_cycles")


def _engine_extras(acc) -> Dict:
    """DES-kernel throughput counters for the trajectory record."""
    stats = acc.engine.run_stats()
    return {"events_processed": stats["events_processed"],
            "events_per_sec_wall": stats["events_per_sec_wall"],
            "peak_heap_size": stats["peak_heap_size"]}


#: seed/budget of the opt-in ``--autotuned`` search (fixed so bench
#: rows are reproducible; the replay command is in the extras)
_AUTOTUNE_SEED = 0
_AUTOTUNE_BUDGET = 60


def _autotuned_extras(shape, hand_cycles: float) -> Dict:
    """Tune the bench shape and report the winner next to the hand row.

    The headline metrics of the row stay the hand-written mapping (the
    trajectory must remain comparable PR-over-PR); the tuned mapping
    rides along in ``extras`` with its DES-measured cycles and the
    speedup over this row's own cycles.
    """
    from repro.autotune import autotune

    result = autotune(shape, seed=_AUTOTUNE_SEED,
                      budget=_AUTOTUNE_BUDGET, topk=2, jobs=1)
    winner = result.winner
    return {"autotuned_mapping": winner.candidate.describe(),
            "autotuned_sim_cycles": winner.sim_cycles,
            "autotuned_speedup": (hand_cycles / winner.sim_cycles
                                  if winner.sim_cycles else 0.0),
            "autotuned_replay": result.replay_command()}


def _bench_fc(autotuned: bool = False) -> Dict:
    """The Figure 7 FC mapping on the cycle-level simulator."""
    from repro.core.accelerator import Accelerator
    from repro.kernels.fc import run_fc

    acc = Accelerator()
    t0 = time.perf_counter()
    result = run_fc(acc, m=512, k=1024, n=256, dtype="int8",
                    subgrid=acc.subgrid((0, 0), 4, 4), k_split=2)
    wall = time.perf_counter() - t0
    tops = result.tops(acc.config.frequency_ghz)
    extras = {"m": 512, "k": 1024, "n": 256, "dtype": "int8"}
    extras.update(_engine_extras(acc))
    if autotuned:
        from repro.autotune import FCShape
        extras.update(_autotuned_extras(
            FCShape(m=512, k=1024, n=256, dtype="int8"),
            float(result.cycles)))
    return {
        "latency_us": result.cycles / (acc.config.frequency_ghz * 1e3),
        "achieved_tflops": tops,
        "sim_cycles": float(result.cycles),
        "wall_time_s": wall,
        "extras": extras,
    }


def _bench_tbe(autotuned: bool = False) -> Dict:
    """The Figure 12 TBE gather (production-kernel pipelining)."""
    from repro.core.accelerator import Accelerator
    from repro.kernels.tbe import TBEConfig, run_tbe

    acc = Accelerator()
    config = TBEConfig(num_tables=8, rows_per_table=100_000,
                       embedding_dim=64, pooling_factor=16, batch_size=32)
    t0 = time.perf_counter()
    result = run_tbe(acc, config, prefetch_rows=1)
    wall = time.perf_counter() - t0
    gather_gbs = result.gbs(acc.config.frequency_ghz)
    peak_gbs = (acc.config.dram.bytes_per_cycle(acc.config.frequency_ghz)
                * acc.config.frequency_ghz)
    extras = {"gather_gbs": gather_gbs,
              "gather_percent_of_dram_bw": 100.0 * gather_gbs / peak_gbs}
    extras.update(_engine_extras(acc))
    if autotuned:
        from repro.autotune import TBEShape
        extras.update(_autotuned_extras(
            TBEShape(num_tables=8, rows_per_table=100_000,
                     embedding_dim=64, pooling_factor=16, batch_size=32),
            float(result.cycles)))
    return {
        "latency_us": result.cycles / (acc.config.frequency_ghz * 1e3),
        "achieved_tflops": 0.0,
        "sim_cycles": float(result.cycles),
        "wall_time_s": wall,
        "extras": extras,
    }


def _bench_dlrm(autotuned: bool = False) -> Dict:
    """LC2 quickstart through the compiled-graph analytical path.

    Besides the analytical estimate (the headline metrics, unchanged
    from earlier trajectory rows), the workload now also exercises the
    two end-to-end perf layers this repo tracks:

    * one representative DLRM MLP layer on the cycle-level simulator,
      so the dlrm row carries the same DES-kernel throughput extras
      (``events_processed`` / ``events_per_sec_wall``) as fc/tbe;
    * a cold-then-warm graph execution through the per-op result cache
      (``executor_cold_wall_s`` / ``executor_warm_wall_s``), the number
      the warm-sweep speedup claim is measured by.
    """
    import numpy as np

    from repro.core.accelerator import Accelerator
    from repro.eval.machines import MACHINES
    from repro.eval.opmodel import estimate_graph
    from repro.kernels.fc import run_fc
    from repro.models.configs import MODEL_ZOO
    from repro.models.dlrm import build_dlrm_graph, model_flops
    from repro.runtime.executor import GraphExecutor
    from repro.simcache import GraphOpCache

    batch = 64
    machine = MACHINES["mtia"]
    t0 = time.perf_counter()
    graph = build_dlrm_graph(MODEL_ZOO["LC2"], batch)
    executor = GraphExecutor(machine, mode="graph")
    placement = executor.compile(graph)
    estimate = estimate_graph(machine, graph, placement)
    wall = time.perf_counter() - t0
    seconds = estimate.total_seconds
    flops = model_flops(MODEL_ZOO["LC2"]) * batch
    # The analytical path has no DES run, so report *modelled* device
    # cycles (estimate time x MTIA clock) — every workload must carry a
    # nonzero cycle count for the trajectory to be comparable.
    from repro.config import MTIA_V1
    cycles = seconds * MTIA_V1.frequency_ghz * 1e9
    extras = {"model": "LC2", "batch": batch,
              "ops": len(estimate.estimates),
              "cycles_modelled": True}

    # One LC2 bottom-MLP-shaped layer (batch x 128 -> 128, int8) on the
    # cycle-level simulator: the dlrm trajectory row tracks DES kernel
    # speed too, not just the analytical model.
    acc = Accelerator()
    run_fc(acc, m=batch, k=128, n=128, dtype="int8",
           subgrid=acc.subgrid((0, 0), 1, 1))
    extras["des_op"] = f"fc m={batch} k=128 n=128 int8"
    extras.update(_engine_extras(acc))

    # Cold vs warm full-graph execution through the per-op cache.
    rng = np.random.default_rng(0)
    feeds = {}
    for node in graph:
        if node.op == "input":
            dt = node.meta.dtype.numpy_dtype
            if np.issubdtype(dt, np.integer):
                feeds[node.name] = rng.integers(
                    0, 100, node.meta.shape).astype(dt)
            else:
                feeds[node.name] = rng.standard_normal(
                    node.meta.shape).astype(dt)
    op_cache = GraphOpCache()
    t0 = time.perf_counter()
    GraphExecutor(machine, mode="graph", op_cache=op_cache).run(
        graph.copy(), feeds)
    cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    GraphExecutor(machine, mode="graph", op_cache=op_cache).run(
        graph.copy(), feeds)
    warm = time.perf_counter() - t0
    extras["executor_cold_wall_s"] = cold
    extras["executor_warm_wall_s"] = warm
    extras["graph_cache_warm_speedup"] = cold / warm if warm > 0 else 0.0
    return {
        "latency_us": seconds * 1e6,
        "achieved_tflops": flops / seconds / 1e12 if seconds else 0.0,
        "sim_cycles": cycles,
        "wall_time_s": wall,
        "extras": extras,
    }


BENCHES = {"fc": _bench_fc, "tbe": _bench_tbe, "dlrm": _bench_dlrm}

#: workloads with a mapping space the ``--autotuned`` column can search
_AUTOTUNABLE = ("fc", "tbe")


def _bench_job(job: Tuple[str, bool]) -> Dict:
    """Module-level so ``--jobs`` spawn workers can pickle it."""
    name, autotuned = job
    return BENCHES[name](autotuned=autotuned and name in _AUTOTUNABLE)


def run_bench(label: str = DEFAULT_LABEL,
              workloads: Optional[List[str]] = None,
              jobs: int = 1, autotuned: bool = False) -> Dict:
    """Run the benchmark suite; returns the BENCH_* payload.

    ``jobs > 1`` runs workloads in worker processes.  Simulated metrics
    are identical at any job count; ``wall_time_s`` is only meaningful
    as a trajectory number when measured at ``jobs=1`` on an idle host.
    ``autotuned=True`` additionally tunes each mapping-searchable
    workload (fc, tbe) and records the winner in the row's extras.
    """
    names = workloads or sorted(BENCHES)
    for name in names:
        if name not in BENCHES:
            known = ", ".join(sorted(BENCHES))
            raise SystemExit(f"unknown bench workload {name!r}; "
                             f"choose from {known}")
    payload: Dict = {
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "created_unix": time.time(),
        "workloads": {},
    }
    from repro.parallel import parallel_map
    results = parallel_map(_bench_job, [(n, autotuned) for n in names],
                           jobs=jobs)
    for name, result in zip(names, results):
        payload["workloads"][name] = result
    return payload


def compare(current: Dict, baseline: Dict,
            threshold: float = 0.10,
            wall_threshold: Optional[float] = None) -> List[str]:
    """Regressions of ``current`` vs ``baseline`` beyond ``threshold``.

    Returns human-readable regression lines (empty = within budget).
    Simulated metrics only by default; pass ``wall_threshold`` to also
    report ``wall_time_s`` regressions beyond that (looser) fraction —
    wall lines are tagged ``(wall-clock, soft)`` and never counted by
    ``--strict``.  A missing baseline workload/metric is not a
    regression (new workloads are allowed to appear).
    """
    compared = _COMPARED + (("wall_time_s",)
                            if wall_threshold is not None else ())
    regressions: List[str] = []
    for name, cur in sorted(current.get("workloads", {}).items()):
        base = baseline.get("workloads", {}).get(name)
        if base is None:
            continue
        for metric in compared:
            b, c = base.get(metric), cur.get(metric)
            if not b or c is None:
                continue
            limit = (wall_threshold if metric == "wall_time_s"
                     else threshold)
            change = (c - b) / b
            worse = (-change if metric in _HIGHER_IS_BETTER else change)
            if worse > limit:
                direction = ("dropped" if metric in _HIGHER_IS_BETTER
                             else "grew")
                suffix = (" (wall-clock, soft)"
                          if metric == "wall_time_s" else "")
                regressions.append(
                    f"{name}.{metric} {direction} {100 * abs(change):.1f}% "
                    f"({b:g} -> {c:g}, threshold "
                    f"{100 * limit:.0f}%){suffix}")
    return regressions


_PR_LABEL = re.compile(r"^pr(\d+)$")


def load_trajectory(directory: str = ".",
                    paths: Optional[List[str]] = None) -> Dict:
    """Aggregate every ``BENCH_*.json`` into one trajectory payload.

    Rows are ordered by PR sequence number for ``pr<N>`` labels (the
    canonical trajectory), then by ``created_unix`` for everything else
    — so the table stays correctly ordered even when a PR landed
    without a bench file or a file's timestamp is missing.  Unreadable
    or corrupt ``BENCH_*.json`` files are skipped (reported in
    ``skipped``, never fatal), and gaps in the ``pr<N>`` sequence are
    reported in ``missing_labels``; the schema is stable so the
    trajectory can itself be diffed.
    """
    import glob

    if paths is None:
        paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    runs = []
    skipped: List[Dict] = []
    for path in paths:
        try:
            with open(path) as fh:
                payload = json.load(fh)
            if not isinstance(payload.get("workloads"), dict):
                raise ValueError("no workloads mapping")
        except (OSError, ValueError) as exc:
            skipped.append({"file": os.path.basename(path),
                            "error": str(exc)})
            continue
        label = str(payload.get("label", "?"))
        match = _PR_LABEL.match(label)
        order = ((0, int(match.group(1)), 0.0) if match
                 else (1, 0, float(payload.get("created_unix", 0.0))))
        runs.append((order, os.path.basename(path), payload))
    runs.sort(key=lambda item: (item[0], item[1]))
    rows: List[Dict] = []
    pr_numbers: List[int] = []
    for order, fname, payload in runs:
        label = str(payload.get("label", "?"))
        match = _PR_LABEL.match(label)
        if match:
            pr_numbers.append(int(match.group(1)))
        for name in sorted(payload["workloads"]):
            result = payload["workloads"][name]
            row = {"label": label,
                   "file": fname,
                   "created_unix": float(payload.get("created_unix", 0.0)),
                   "workload": name}
            for metric in METRICS:
                row[metric] = float(result.get(metric, 0.0))
            rows.append(row)
    missing = []
    if pr_numbers:
        have = set(pr_numbers)
        missing = [f"pr{n}" for n in range(min(have), max(have) + 1)
                   if n not in have]
    return {"trajectory_schema_version": TRAJECTORY_SCHEMA_VERSION,
            "runs": len(runs),
            "rows": rows,
            "missing_labels": missing,
            "skipped": skipped}


def latest_baseline(directory: str = ".",
                    exclude_label: Optional[str] = None) -> Optional[str]:
    """Path of the newest prior ``BENCH_*.json`` in ``directory``.

    "Newest" follows :func:`load_trajectory` ordering — ``pr<N>`` labels
    by PR number, then everything else by ``created_unix`` — so a stale
    clock can never select the wrong baseline.  ``exclude_label`` skips
    the run being produced right now (comparing a fresh ``pr9`` run
    against an existing ``BENCH_pr9.json`` would gate against itself).
    Returns ``None`` when no eligible baseline exists.
    """
    trajectory = load_trajectory(directory)
    chosen: Optional[str] = None
    for row in trajectory["rows"]:
        if exclude_label is not None and row["label"] == exclude_label:
            continue
        chosen = row["file"]
    return os.path.join(directory, chosen) if chosen else None


def render_trajectory(trajectory: Dict) -> str:
    """Human-readable trajectory table, newest run last."""
    lines = [f"perf trajectory: {trajectory['runs']} runs",
             f"{'label':<10} {'workload':<8} {'latency_us':>12} "
             f"{'tflops':>8} {'sim_cycles':>14} {'wall_s':>8}"]
    for row in trajectory["rows"]:
        lines.append(f"{row['label']:<10} {row['workload']:<8} "
                     f"{row['latency_us']:>12.1f} "
                     f"{row['achieved_tflops']:>8.2f} "
                     f"{row['sim_cycles']:>14.0f} "
                     f"{row['wall_time_s']:>8.2f}")
    if trajectory.get("missing_labels"):
        lines.append("missing (PR landed without a bench file): "
                     + ", ".join(trajectory["missing_labels"]))
    for item in trajectory.get("skipped", ()):
        lines.append(f"skipped {item['file']}: {item['error']}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the perf-trajectory benchmark suite.")
    parser.add_argument("workloads", nargs="*",
                        help="subset of workloads (default: all of %s)"
                        % "/".join(sorted(BENCHES)))
    parser.add_argument("--label", default=DEFAULT_LABEL,
                        help="trajectory label; output file is "
                        "BENCH_<label>.json (default %(default)s)")
    parser.add_argument("--output-dir", "-o", default=".",
                        help="directory for BENCH_<label>.json")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="baseline BENCH_*.json to diff against, or "
                        "'latest' to gate against the newest prior run "
                        "in the output dir (PR-numeric trajectory order)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="soft regression threshold (default 10%%)")
    parser.add_argument("--wall-threshold", type=float, default=None,
                        metavar="FRAC",
                        help="also report wall_time_s regressions beyond "
                        "FRAC (e.g. 0.5 = 50%%); informational only, "
                        "never counted by --strict")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on simulated-metric "
                        "regressions beyond the threshold "
                        "(default: report only)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the workloads "
                        "(default 1 = serial); simulated metrics are "
                        "identical at any job count, but wall times "
                        "are only trajectory-comparable at --jobs 1")
    parser.add_argument("--autotuned", action="store_true",
                        help="also search each workload's mapping space "
                        "(repro.autotune, fixed seed) and report the "
                        "tuned mapping's DES cycles as an extra column; "
                        "headline metrics stay the hand-written mapping")
    parser.add_argument("--trajectory", action="store_true",
                        help="aggregate all BENCH_*.json in the output "
                        "dir into one trajectory table (and JSON with "
                        "--json); runs no workloads")
    parser.add_argument("--json", action="store_true",
                        help="with --trajectory: emit JSON instead of "
                        "the table")
    parser.add_argument("--sim-cache", default=None, metavar="WHERE",
                        const="mem", nargs="?",
                        help="enable the sim-result cache for the run "
                        "('mem' or a directory path); sets "
                        "REPRO_SIM_CACHE for this process, so wall "
                        "times measure cache replay, not simulation")
    args = parser.parse_args(argv)

    if args.trajectory:
        trajectory = load_trajectory(args.output_dir)
        if args.json:
            print(json.dumps(trajectory, indent=2, sort_keys=True))
        else:
            print(render_trajectory(trajectory))
        return 0

    if args.sim_cache:
        os.environ["REPRO_SIM_CACHE"] = args.sim_cache
        from repro.simcache import reset_env_cache
        reset_env_cache()

    payload = run_bench(args.label, args.workloads or None, jobs=args.jobs,
                        autotuned=args.autotuned)
    path = os.path.join(args.output_dir, f"BENCH_{args.label}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, result in sorted(payload["workloads"].items()):
        line = (f"{name:<6} latency {result['latency_us']:10.1f} us  "
                f"tflops {result['achieved_tflops']:6.2f}  "
                f"cycles {result['sim_cycles']:12.0f}  "
                f"wall {result['wall_time_s']:.2f} s")
        extras = result.get("extras", {})
        if "autotuned_sim_cycles" in extras:
            line += (f"  tuned {extras['autotuned_sim_cycles']:12.0f} "
                     f"({extras['autotuned_speedup']:.2f}x, "
                     f"{extras['autotuned_mapping']})")
        print(line)
    print(f"wrote {path}")

    if args.compare:
        baseline_path = args.compare
        if baseline_path == "latest":
            baseline_path = latest_baseline(args.output_dir,
                                            exclude_label=args.label)
            if baseline_path is None:
                print("no prior BENCH_*.json to compare against")
                return 0
            print(f"comparing against latest prior run: {baseline_path}")
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        regressions = compare(payload, baseline, args.threshold,
                              wall_threshold=args.wall_threshold)
        if regressions:
            print(f"perf regressions vs {baseline_path} "
                  f"(soft threshold {100 * args.threshold:.0f}%):")
            for line in regressions:
                print(f"  {line}")
            hard = [line for line in regressions
                    if "(wall-clock, soft)" not in line]
            if args.strict and hard:
                return 1
        else:
            print(f"no regressions vs {baseline_path} beyond "
                  f"{100 * args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
