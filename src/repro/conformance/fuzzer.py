"""Seeded random generator of valid DLRM-style compiler graphs.

Every case is a pure function of its integer seed: the graph topology,
the shapes/dtypes, *and* the bound input/weight data all come from one
``numpy`` generator, so a failing seed printed by the runner replays
bit-for-bit with ``python -m repro.conformance --replay SEED``.

The generator deliberately produces the structures the fusion passes
rewrite — same-shape EmbeddingBags feeding one concat (TBE merging),
unary activations directly after FC/BMM (epilogue folding), duplicated
pure subexpressions (CSE) — because fused vs. unfused disagreement is
exactly where silent numerical divergence creeps in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.ir import Graph, GraphBuilder

#: Operator families the fuzzer can draw from (``--ops`` filter keys).
OP_FAMILIES = ("fc", "eb", "bmm", "elementwise", "transpose", "quantize")

#: Epilogue-fusable activations (must match fusion.EPILOGUE_OPS).
_FUSABLE_ACTS = ("relu", "tanh", "sigmoid")
#: Activations fusion cannot fold (keep some unfused coverage).
_UNFUSABLE_ACTS = ("gelu",)


@dataclass
class FuzzConfig:
    """Knobs bounding the generated graphs."""

    ops: Tuple[str, ...] = OP_FAMILIES
    max_fc_layers: int = 3
    max_tables: int = 5
    max_rows: int = 192
    max_pooling: int = 8
    max_width: int = 96
    batches: Tuple[int, ...] = (4, 8, 16)
    #: probability an FC layer gets an INT8 quantize/dequantize bracket
    p_quantized: float = 0.5
    #: probability a same-dim EB group is emitted (TBE-mergeable)
    p_same_dim_tables: float = 0.7

    def __post_init__(self):
        unknown = set(self.ops) - set(OP_FAMILIES)
        if unknown:
            raise ValueError(f"unknown op families {sorted(unknown)}; "
                             f"choose from {OP_FAMILIES}")


@dataclass
class FuzzCase:
    """One generated graph plus its bound data."""

    seed: int
    graph: Graph
    feeds: Dict[str, np.ndarray] = field(default_factory=dict)
    weights: Dict[str, np.ndarray] = field(default_factory=dict)
    summary: Dict[str, object] = field(default_factory=dict)


def _rand_width(rng: np.random.Generator, config: FuzzConfig) -> int:
    return int(rng.integers(4, config.max_width + 1))


def _fc_stack(b: GraphBuilder, rng: np.random.Generator,
              config: FuzzConfig, x, prefix: str,
              weights: Dict[str, np.ndarray]):
    """An MLP chain with optional q/dq brackets and activations."""
    layers = int(rng.integers(1, config.max_fc_layers + 1))
    for i in range(layers):
        in_width = x.meta.shape[-1]
        width = _rand_width(rng, config)
        quantized = ("quantize" in config.ops
                     and rng.random() < config.p_quantized)
        if quantized:
            scale = float(rng.choice([0.02, 0.05, 0.1]))
            x = b.add("quantize", (x.name,), scale=scale,
                      name=f"{prefix}_q{i}")
            w = b.weight((width, in_width), dtype="int8",
                         name=f"{prefix}_w{i}")
            weights[w.name] = rng.integers(-16, 16, (width, in_width),
                                           dtype=np.int8)
            x = b.add("fc", (x.name, w.name), out_dtype="fp32",
                      name=f"{prefix}_fc{i}")
            x = b.add("dequantize", (x.name,), scale=scale * 0.05,
                      name=f"{prefix}_dq{i}")
        else:
            w = b.weight((width, in_width), dtype="fp32",
                         name=f"{prefix}_w{i}")
            weights[w.name] = rng.standard_normal(
                (width, in_width)).astype(np.float32) * 0.2
            x = b.add("fc", (x.name, w.name), name=f"{prefix}_fc{i}")
        act_roll = rng.random()
        if act_roll < 0.6:      # fusable epilogue candidate
            act = str(rng.choice(_FUSABLE_ACTS))
            x = b.add(act, (x.name,), name=f"{prefix}_act{i}")
        elif act_roll < 0.75:   # unfusable nonlinearity
            act = str(rng.choice(_UNFUSABLE_ACTS))
            x = b.add(act, (x.name,), name=f"{prefix}_act{i}")
    return x


def _eb_group(b: GraphBuilder, rng: np.random.Generator,
              config: FuzzConfig, batch: int, prefix: str,
              feeds: Dict[str, np.ndarray],
              weights: Dict[str, np.ndarray]):
    """EmbeddingBags feeding one concat — the TBE merge candidate."""
    num_tables = int(rng.integers(2, config.max_tables + 1))
    pooling = int(rng.integers(2, config.max_pooling + 1))
    same_dim = rng.random() < config.p_same_dim_tables
    base_dim = int(rng.integers(4, 33))
    pooled = []
    for t in range(num_tables):
        dim = base_dim if same_dim else int(rng.integers(4, 33))
        rows = int(rng.integers(16, config.max_rows + 1))
        table = b.weight((rows, dim), dtype="int8",
                         name=f"{prefix}_table{t}")
        weights[table.name] = rng.integers(-64, 64, (rows, dim),
                                           dtype=np.int8)
        idx = b.input((batch, pooling), dtype="int32",
                      name=f"{prefix}_idx{t}")
        feeds[idx.name] = rng.integers(0, rows, (batch, pooling),
                                       dtype=np.int32)
        pooled.append(b.add("embedding_bag", (table.name, idx.name),
                            batch=batch, pooling=pooling,
                            scale=1.0 / 64.0, name=f"{prefix}_eb{t}"))
    return b.add("concat", [p.name for p in pooled], axis=1,
                 name=f"{prefix}_concat")


def _interaction(b: GraphBuilder, rng: np.random.Generator, batch: int,
                 x, prefix: str):
    """DLRM-style grouped pairwise interaction: reshape/transpose/BMM."""
    g = int(rng.choice([2, 4]))
    d = int(rng.choice([4, 8]))
    width = x.meta.shape[-1]
    if width < g * d:
        return None
    head = x
    if width > g * d:
        head = b.add("slice", (x.name,), axis=1, start=0, stop=g * d,
                     name=f"{prefix}_head")
    lhs = b.add("reshape", (head.name,), shape=(batch, g, d),
                name=f"{prefix}_lhs")
    rhs2d = b.add("reshape", (head.name,), shape=(batch * g, d),
                  name=f"{prefix}_rhs2d")
    rhs_t = b.add("transpose", (rhs2d.name,), name=f"{prefix}_t")
    rhs = b.add("reshape", (rhs_t.name,), shape=(batch, d, g),
                name=f"{prefix}_rhs")
    sims = b.add("batch_matmul", (lhs.name, rhs.name),
                 name=f"{prefix}_bmm")
    return b.add("reshape", (sims.name,), shape=(batch, g * g),
                 name=f"{prefix}_flat")


def fuzz_graph(seed: int, config: Optional[FuzzConfig] = None) -> FuzzCase:
    """Generate one valid graph + bound data, purely from ``seed``."""
    config = config or FuzzConfig()
    rng = np.random.default_rng(seed)
    batch = int(rng.choice(config.batches))
    b = GraphBuilder(f"fuzz_{seed}")
    feeds: Dict[str, np.ndarray] = {}
    weights: Dict[str, np.ndarray] = {}

    dense_features = _rand_width(rng, config)
    dense = b.input((batch, dense_features), dtype="fp32", name="dense")
    feeds[dense.name] = rng.standard_normal(
        (batch, dense_features)).astype(np.float32)

    branches = []          # 2-D fp32 tensors with leading dim == batch
    bottom = dense
    if "fc" in config.ops:
        bottom = _fc_stack(b, rng, config, dense, "bot", weights)
    branches.append(bottom)

    if "eb" in config.ops:
        branches.append(_eb_group(b, rng, config, batch, "sp", feeds,
                                  weights))

    if len(branches) > 1:
        features = b.add("concat", [n.name for n in branches], axis=1,
                         name="features")
    else:
        features = branches[0]

    extra_outputs: List[str] = []
    if "bmm" in config.ops:
        flat = _interaction(b, rng, batch, features, "int")
        if flat is not None:
            features = b.add("concat", (features.name, flat.name), axis=1,
                             name="feat_bmm_concat")

    if "elementwise" in config.ops and rng.random() < 0.7:
        # A duplicated pure subexpression (CSE candidate) combined
        # elementwise with the original.
        kind = str(rng.choice(["add", "mul"]))
        twin = b.add("relu", (features.name,), name="ew_twin_a")
        twin2 = b.add("relu", (features.name,), name="ew_twin_b")
        mixed = b.add(kind, (twin.name, twin2.name), name="ew_mix")
        if rng.random() < 0.5:
            mixed = b.add("layernorm", (mixed.name,), name="ew_ln")
        if rng.random() < 0.3:
            mixed = b.add("softmax", (mixed.name,), name="ew_sm")
        features = mixed

    if "transpose" in config.ops and rng.random() < 0.4:
        # A transpose round-trip plus a relayout — the Table III
        # Transpose-bucket churn, semantically the identity.
        t1 = b.add("transpose", (features.name,), name="lay_t1")
        t2 = b.add("transpose", (t1.name,), name="lay_t2")
        features = b.add("relayout", (t2.name,), name="lay_rl")

    if "fc" in config.ops and rng.random() < 0.6:
        features = _fc_stack(b, rng, config, features, "top", weights)

    # Sometimes expose an intermediate as a second graph output, so the
    # fusion passes must keep rewritten output names consistent.
    if bottom is not features and rng.random() < 0.5:
        extra_outputs.append(bottom.name)

    graph = b.output(features.name, *extra_outputs)
    graph.validate()
    ops_used = sorted({n.op for n in graph})
    return FuzzCase(seed=seed, graph=graph, feeds=feeds, weights=weights,
                    summary={"batch": batch, "nodes": len(graph),
                             "ops": ops_used,
                             "outputs": list(graph.outputs)})
