"""``python -m repro.conformance`` — the differential conformance gate.

Examples::

    python -m repro.conformance --seeds 25
    python -m repro.conformance --seeds 50 --json report.json
    python -m repro.conformance --ops fc,eb --pillars golden,crossval
    python -m repro.conformance --replay 17        # reproduce one seed

Exit status 0 when the run passes (0 golden divergences, 0 determinism
violations, crossval band-violation rate within ``--max-band-rate``);
1 otherwise.  Every failing case prints its seed and the exact replay
command.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.conformance.crossval import CrossvalBand
from repro.conformance.fuzzer import OP_FAMILIES
from repro.conformance.golden import TolerancePolicy
from repro.conformance.runner import (PILLARS, CaseResult,
                                      ConformanceConfig, run_conformance)


def _csv(choices):
    def parse(text: str):
        items = tuple(t.strip() for t in text.split(",") if t.strip())
        unknown = set(items) - set(choices)
        if unknown:
            raise argparse.ArgumentTypeError(
                f"unknown value(s) {sorted(unknown)}; "
                f"choose from {','.join(choices)}")
        return items
    return parse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description="Differential conformance: fuzzed graphs vs the "
                    "numpy golden reference, sim vs analytical model, "
                    "and determinism replay.")
    parser.add_argument("--seeds", type=int, default=25,
                        help="number of seeds to sweep (default 25)")
    parser.add_argument("--seed-start", type=int, default=0,
                        help="first seed of the sweep (default 0)")
    parser.add_argument("--replay", type=int, action="append", default=None,
                        metavar="SEED",
                        help="replay exactly this seed (repeatable); "
                        "overrides --seeds/--seed-start")
    parser.add_argument("--ops", type=_csv(OP_FAMILIES),
                        default=OP_FAMILIES, metavar="OPS",
                        help="comma-separated op families for the fuzzer "
                        f"(default {','.join(OP_FAMILIES)})")
    parser.add_argument("--pillars", type=_csv(PILLARS), default=PILLARS,
                        metavar="PILLARS",
                        help="comma-separated pillars to run "
                        f"(default {','.join(PILLARS)})")
    parser.add_argument("--band-lo", type=float, default=CrossvalBand().lo,
                        help="lower bound of the model/sim ratio band")
    parser.add_argument("--band-hi", type=float, default=CrossvalBand().hi,
                        help="upper bound of the model/sim ratio band")
    parser.add_argument("--max-band-rate", type=float, default=0.1,
                        help="crossval band-violation rate above which "
                        "the run fails (default 0.1)")
    parser.add_argument("--atol", type=float,
                        default=TolerancePolicy().atol,
                        help="absolute tolerance for fp comparisons")
    parser.add_argument("--rtol", type=float,
                        default=TolerancePolicy().rtol,
                        help="relative tolerance for fp comparisons")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sweep (default 1 "
                        "= serial); results are identical at any job "
                        "count, only wall time changes")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the full JSON report to PATH "
                        "('-' for stdout)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress output")
    return parser


def _replay_command(case: CaseResult, args) -> str:
    parts = [f"python -m repro.conformance --replay {case.seed}",
             f"--pillars {case.pillar}"]
    if tuple(args.ops) != OP_FAMILIES:
        parts.append(f"--ops {','.join(args.ops)}")
    return " ".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = ConformanceConfig(
        seeds=args.seeds, seed_start=args.seed_start,
        ops=tuple(args.ops), pillars=tuple(args.pillars),
        band=CrossvalBand(lo=args.band_lo, hi=args.band_hi),
        tolerance=TolerancePolicy(atol=args.atol, rtol=args.rtol),
        max_band_violation_rate=args.max_band_rate,
        explicit_seeds=tuple(args.replay) if args.replay else None)

    def progress(case: CaseResult) -> None:
        if args.quiet:
            return
        marker = "." if case.ok else "F"
        print(f"{marker} seed={case.seed:<6} {case.pillar:<12} "
              f"{case.status}", flush=True)

    report = run_conformance(config, progress=progress, jobs=args.jobs)

    print()
    totals = report.to_dict()["totals"]
    print(f"conformance: {totals['cases']} cases over "
          f"{len(config.seed_list())} seeds "
          f"(ops: {','.join(config.ops)})")
    print(f"  golden divergences:     {totals['golden_divergences']}")
    print(f"  determinism violations: {totals['determinism_violations']}")
    if "cache" in config.pillars:
        print(f"  cache violations:       {totals['cache_violations']}")
    if "faults" in config.pillars:
        print(f"  faults violations:      {totals['faults_violations']}")
    if "autotune" in config.pillars:
        print(f"  autotune violations:    {totals['autotune_violations']}")
    print(f"  crossval band rate:     {totals['band_violation_rate']:.3f} "
          f"of {totals['crossval_cases']} cases "
          f"(band [{config.band.lo:.2f}, {config.band.hi:.2f}], "
          f"max rate {config.max_band_violation_rate})")
    if totals["errors"]:
        print(f"  errors:                 {totals['errors']}")

    for case in report.failures():
        detail = case.details
        if case.pillar == "crossval":
            extra = (f"ratio {detail.get('ratio', float('nan')):.3f} "
                     f"shape {detail.get('shape')}")
        elif case.pillar == "golden":
            extra = "; ".join(
                f"{d['output']}: {d['reason']}"
                for d in detail.get("divergences", [])) or "error"
        elif case.pillar == "cache":
            extra = "; ".join(detail.get("cache", {}).get("violations", []))
        elif case.pillar == "faults":
            extra = "; ".join(detail.get("faults", {}).get("violations", []))
        elif case.pillar == "autotune":
            extra = "; ".join(
                detail.get("autotune", {}).get("violations", []))
        else:
            extra = "; ".join(detail.get("sim", {}).get("violations", [])
                              + detail.get("graph", {}).get("violations",
                                                            []))
        print(f"  FAIL seed={case.seed} [{case.pillar}] {extra}")
        print(f"       reproduce: {_replay_command(case, args)}")

    if args.json:
        text = report.to_json()
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote JSON report to {args.json}")

    print("PASS" if report.passed else "FAIL")
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
