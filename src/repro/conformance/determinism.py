"""Determinism / replay checking.

Two invariants every future perf PR must preserve:

* **Replay determinism** — the simulator and the graph executor are
  pure functions of their seed: the same seed run twice produces
  identical cycle counts, outputs, and stall attributions.  Without
  this, a "failing seed" printed by the fuzzer would be worthless.
* **Hooks are no-ops** — enabling tracing and stall attribution
  (``Accelerator(observe=True, trace=True)``) must not change a single
  cycle or output bit (the PR-1 observability contract: telemetry
  observes the machine, it never steers it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class DeterminismResult:
    """Violations found while replaying one seed (empty == pass)."""

    seed: int
    kind: str                       #: "sim" or "graph"
    violations: List[str] = field(default_factory=list)
    cycles: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        return {"seed": self.seed, "kind": self.kind,
                "cycles": self.cycles, "violations": list(self.violations)}


def _fc_shape_for(seed: int) -> Dict[str, int]:
    """A tiny tileable FC shape — determinism needs 4 runs per seed."""
    rng = np.random.default_rng(seed)
    cols = int(rng.choice([1, 2]))
    return {"m": 64, "k": 32 * cols * int(rng.integers(1, 4)),
            "n": 64 * int(rng.integers(1, 3)), "rows": 1, "cols": cols,
            "k_split": cols}


def check_sim_determinism(seed: int) -> DeterminismResult:
    """Replay one FC kernel on the DES; see module docstring."""
    from repro import Accelerator
    from repro.kernels.fc import run_fc

    shape = _fc_shape_for(seed)

    def once(observe: bool):
        acc = Accelerator(observe=observe, trace=observe)
        result = run_fc(acc, m=shape["m"], k=shape["k"], n=shape["n"],
                        dtype="int8",
                        subgrid=acc.subgrid((0, 0), shape["rows"],
                                            shape["cols"]),
                        k_split=shape["k_split"], seed=seed)
        stalls = acc.obs.stalls_by_cause() if observe else {}
        return result.cycles, result.c_t, stalls

    res = DeterminismResult(seed=seed, kind="sim")
    cycles_a, out_a, _ = once(observe=False)
    cycles_b, out_b, _ = once(observe=False)
    res.cycles = cycles_a
    if cycles_a != cycles_b:
        res.violations.append(
            f"replay cycles differ: {cycles_a} vs {cycles_b}")
    if not np.array_equal(out_a, out_b):
        res.violations.append("replay outputs differ bit-for-bit")

    cycles_obs, out_obs, stalls_1 = once(observe=True)
    if cycles_obs != cycles_a:
        res.violations.append(
            "enabling metrics/tracing changed cycles: "
            f"{cycles_a} plain vs {cycles_obs} observed")
    if not np.array_equal(out_obs, out_a):
        res.violations.append("enabling metrics/tracing changed outputs")

    _, _, stalls_2 = once(observe=True)
    if stalls_1 != stalls_2:
        res.violations.append(
            f"stall attributions differ between replays: "
            f"{stalls_1} vs {stalls_2}")
    return res


def check_graph_determinism(seed: int,
                            fuzz_config=None) -> DeterminismResult:
    """Replay one fuzzed graph through the GraphExecutor twice."""
    from repro.conformance.fuzzer import fuzz_graph
    from repro.runtime.executor import GraphExecutor

    case = fuzz_graph(seed, fuzz_config)

    def once():
        executor = GraphExecutor(mode="graph")
        return executor.run(case.graph.copy(), case.feeds, case.weights)

    out_a, report_a = once()
    out_b, report_b = once()
    res = DeterminismResult(seed=seed, kind="graph")
    if report_a.seconds != report_b.seconds:
        res.violations.append(
            f"modelled seconds differ: {report_a.seconds} vs "
            f"{report_b.seconds}")
    if sorted(out_a) != sorted(out_b):
        res.violations.append(
            f"output names differ: {sorted(out_a)} vs {sorted(out_b)}")
    else:
        for name in out_a:
            if not np.array_equal(out_a[name], out_b[name]):
                res.violations.append(f"output {name!r} differs between "
                                      "replays")
    return res
