"""Determinism / replay checking.

Two invariants every future perf PR must preserve:

* **Replay determinism** — the simulator and the graph executor are
  pure functions of their seed: the same seed run twice produces
  identical cycle counts, outputs, and stall attributions.  Without
  this, a "failing seed" printed by the fuzzer would be worthless.
* **Hooks are no-ops** — enabling tracing and stall attribution
  (``Accelerator(observe=True, trace=True)``) must not change a single
  cycle or output bit (the PR-1 observability contract: telemetry
  observes the machine, it never steers it).  The same contract covers
  the request-level :class:`~repro.obs.spans.SpanTracer`: attaching an
  enabled tracer to the serving simulator or the graph executor must
  leave latencies, modelled seconds, and outputs bit-identical, and a
  *disabled* tracer must record nothing at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class DeterminismResult:
    """Violations found while replaying one seed (empty == pass)."""

    seed: int
    kind: str                       #: "sim" or "graph"
    violations: List[str] = field(default_factory=list)
    cycles: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        return {"seed": self.seed, "kind": self.kind,
                "cycles": self.cycles, "violations": list(self.violations)}


def _fc_shape_for(seed: int) -> Dict[str, int]:
    """A tiny tileable FC shape — determinism needs 4 runs per seed."""
    rng = np.random.default_rng(seed)
    cols = int(rng.choice([1, 2]))
    return {"m": 64, "k": 32 * cols * int(rng.integers(1, 4)),
            "n": 64 * int(rng.integers(1, 3)), "rows": 1, "cols": cols,
            "k_split": cols}


def check_sim_determinism(seed: int) -> DeterminismResult:
    """Replay one FC kernel on the DES; see module docstring."""
    from repro import Accelerator
    from repro.kernels.fc import run_fc

    shape = _fc_shape_for(seed)

    def once(observe: bool):
        acc = Accelerator(observe=observe, trace=observe)
        result = run_fc(acc, m=shape["m"], k=shape["k"], n=shape["n"],
                        dtype="int8",
                        subgrid=acc.subgrid((0, 0), shape["rows"],
                                            shape["cols"]),
                        k_split=shape["k_split"], seed=seed)
        stalls = acc.obs.stalls_by_cause() if observe else {}
        return result.cycles, result.c_t, stalls

    res = DeterminismResult(seed=seed, kind="sim")
    cycles_a, out_a, _ = once(observe=False)
    cycles_b, out_b, _ = once(observe=False)
    res.cycles = cycles_a
    if cycles_a != cycles_b:
        res.violations.append(
            f"replay cycles differ: {cycles_a} vs {cycles_b}")
    if not np.array_equal(out_a, out_b):
        res.violations.append("replay outputs differ bit-for-bit")

    cycles_obs, out_obs, stalls_1 = once(observe=True)
    if cycles_obs != cycles_a:
        res.violations.append(
            "enabling metrics/tracing changed cycles: "
            f"{cycles_a} plain vs {cycles_obs} observed")
    if not np.array_equal(out_obs, out_a):
        res.violations.append("enabling metrics/tracing changed outputs")

    _, _, stalls_2 = once(observe=True)
    if stalls_1 != stalls_2:
        res.violations.append(
            f"stall attributions differ between replays: "
            f"{stalls_1} vs {stalls_2}")
    return res


def check_cache_determinism(seed: int) -> DeterminismResult:
    """Cached sim results must be bit-identical to fresh simulation.

    Three runs of the same FC shape: one fresh (cache off), one cold
    through a :class:`~repro.simcache.SimCache` (miss → simulate →
    record), one warm (hit → replay).  Cycles, outputs, and stall
    attributions must match bit-for-bit across all three — the
    content-addressed cache may only change wall time, never results.
    """
    from repro import Accelerator
    from repro.kernels.fc import run_fc
    from repro.simcache import SimCache

    shape = _fc_shape_for(seed)

    def once(cache=None):
        acc = Accelerator(observe=True)
        result = run_fc(acc, m=shape["m"], k=shape["k"], n=shape["n"],
                        dtype="int8",
                        subgrid=acc.subgrid((0, 0), shape["rows"],
                                            shape["cols"]),
                        k_split=shape["k_split"], seed=seed, cache=cache)
        return result.cycles, result.c_t, acc.obs.stalls_by_track()

    res = DeterminismResult(seed=seed, kind="cache")
    cycles_fresh, out_fresh, stalls_fresh = once()
    res.cycles = cycles_fresh

    cache = SimCache()
    cycles_cold, out_cold, stalls_cold = once(cache=cache)
    cycles_warm, out_warm, stalls_warm = once(cache=cache)

    stats = cache.stats()
    if stats["misses"] != 1 or stats["hits"] != 1:
        res.violations.append(
            f"expected exactly one miss then one hit, got {stats}")
    for label, cycles, out, stalls in (
            ("cold (cache miss)", cycles_cold, out_cold, stalls_cold),
            ("warm (cache hit)", cycles_warm, out_warm, stalls_warm)):
        if cycles != cycles_fresh:
            res.violations.append(
                f"{label} cycles differ from fresh: "
                f"{cycles} vs {cycles_fresh}")
        if not np.array_equal(out, out_fresh):
            res.violations.append(
                f"{label} output differs from fresh bit-for-bit")
        if stalls != stalls_fresh:
            res.violations.append(
                f"{label} stall attributions differ from fresh")
    return res


def check_graph_cache_determinism(seed: int,
                                  fuzz_config=None) -> DeterminismResult:
    """Per-op graph cache: fresh / cold / warm / partial-warm, bitwise.

    Four executions of one fuzzed DLRM graph through the
    :class:`~repro.runtime.executor.GraphExecutor`:

    * **fresh** — no cache at all (the reference);
    * **cold** — empty :class:`~repro.simcache.GraphOpCache` (every op
      misses, is computed, and is recorded);
    * **warm** — same cache again (every compute op must hit);
    * **partial-warm** — one weight perturbed: exactly the downstream
      cone recomputes, everything else replays, and the outputs must be
      bit-identical to a fresh run with the same perturbed weight.

    Outputs and modelled seconds must match the reference bit-for-bit
    in every mode — the cache may only ever change wall time.
    """
    from repro.conformance.fuzzer import fuzz_graph
    from repro.runtime.executor import GraphExecutor
    from repro.simcache import GraphOpCache

    case = fuzz_graph(seed, fuzz_config)
    res = DeterminismResult(seed=seed, kind="graph-cache")

    def once(weights, cache=False):
        # ``False`` forces caching off for reference runs even if
        # REPRO_GRAPH_CACHE is set in the environment.
        executor = GraphExecutor(mode="graph", op_cache=cache)
        return executor.run(case.graph.copy(), case.feeds, weights)

    def compare(label, got, want):
        out_g, rep_g = got
        out_w, rep_w = want
        if rep_g.seconds != rep_w.seconds:
            res.violations.append(
                f"{label}: modelled seconds differ "
                f"({rep_g.seconds} vs {rep_w.seconds})")
        for name in out_w:
            if not np.array_equal(out_g[name], out_w[name]):
                res.violations.append(
                    f"{label}: output {name!r} differs bit-for-bit")

    fresh = once(case.weights)
    res.cycles = fresh[1].seconds
    cache = GraphOpCache()
    cold = once(case.weights, cache=cache)
    compare("cold (all misses)", cold, fresh)
    if cache.hits != 0 or cache.misses == 0:
        res.violations.append(
            f"cold run expected only misses, got {cache.stats()}")
    misses_cold = cache.misses

    warm = once(case.weights, cache=cache)
    compare("warm (all hits)", warm, fresh)
    if cache.misses != misses_cold:
        res.violations.append(
            f"warm run missed {cache.misses - misses_cold} ops; "
            "expected every compute op to hit")

    # Perturb one weight: downstream cone recomputes, the rest replays.
    # Pick the *last* weight in node order — its downstream cone is the
    # smallest, so the spared-operator assertion below has teeth even on
    # mostly-sequential DLRM chains.
    bound = [n.name for n in case.graph
             if n.op == "weight" and n.name in case.weights]
    if bound:
        name = bound[-1]
        edited = dict(case.weights)
        edited[name] = edited[name] + np.ones_like(edited[name])
        fresh_edited = once(edited)
        hits_before = cache.hits
        misses_before = cache.misses
        partial = once(edited, cache=cache)
        compare("partial-warm (one weight edited)", partial, fresh_edited)
        new_misses = cache.misses - misses_before
        new_hits = cache.hits - hits_before
        if new_misses == 0:
            res.violations.append(
                "editing a weight caused no recomputation — stale hit")
        if new_misses >= misses_cold:
            res.violations.append(
                f"editing one weight invalidated every op "
                f"({new_misses}/{misses_cold} recomputed); chained "
                "fingerprints should spare the off-cone operators")
        if new_hits == 0:
            res.violations.append(
                "partial-warm run replayed nothing from cache")
    return res


def check_graph_determinism(seed: int,
                            fuzz_config=None) -> DeterminismResult:
    """Replay one fuzzed graph through the GraphExecutor twice.

    A third run attaches an *enabled* span tracer: per-op span
    recording must not change the modelled seconds or any output bit
    (the hooks-are-no-ops contract, extended to spans).
    """
    from repro.conformance.fuzzer import fuzz_graph
    from repro.obs.spans import SpanTracer
    from repro.runtime.executor import GraphExecutor

    case = fuzz_graph(seed, fuzz_config)

    def once(spans=None):
        executor = GraphExecutor(mode="graph", spans=spans)
        return executor.run(case.graph.copy(), case.feeds, case.weights)

    out_a, report_a = once()
    out_b, report_b = once()
    res = DeterminismResult(seed=seed, kind="graph")
    if report_a.seconds != report_b.seconds:
        res.violations.append(
            f"modelled seconds differ: {report_a.seconds} vs "
            f"{report_b.seconds}")
    if sorted(out_a) != sorted(out_b):
        res.violations.append(
            f"output names differ: {sorted(out_a)} vs {sorted(out_b)}")
    else:
        for name in out_a:
            if not np.array_equal(out_a[name], out_b[name]):
                res.violations.append(f"output {name!r} differs between "
                                      "replays")

    spans = SpanTracer(enabled=True)
    out_s, report_s = once(spans=spans)
    if report_s.seconds != report_a.seconds:
        res.violations.append(
            "enabling span tracing changed modelled seconds: "
            f"{report_a.seconds} plain vs {report_s.seconds} traced")
    for name in out_a:
        if name in out_s and not np.array_equal(out_s[name], out_a[name]):
            res.violations.append(
                f"enabling span tracing changed output {name!r}")
    if not spans.spans:
        res.violations.append("enabled span tracer recorded nothing")
    return res


def check_fault_injection_noop(seed: int) -> DeterminismResult:
    """An armed-but-empty fault injector must be a perfect no-op.

    :mod:`repro.faults` threads penalty queries through every hardware
    hot path (DRAM, SRAM, NoC, reduction network, CP dispatch) and the
    resilient serving loop.  The contract mirrors PR 1's hooks-are-
    no-ops rule: attaching a :class:`~repro.faults.FaultInjector` whose
    plan is *empty* must leave cycles, outputs, stall attributions, and
    serving latencies bit-identical to no injector at all — faults are
    opt-in per event, never ambient.
    """
    from repro import Accelerator
    from repro.faults import FaultInjector, FaultPlan
    from repro.kernels.fc import run_fc
    from repro.kernels.tbe import TBEConfig, run_tbe
    from repro.obs.metrics import MetricRegistry
    from repro.serving.resilience import simulate_serving_resilient
    from repro.serving.simulator import BatchingConfig, simulate_serving

    res = DeterminismResult(seed=seed, kind="faults")
    empty_plan = FaultPlan(events=())

    # -- cycle-level FC kernel -------------------------------------------
    shape = _fc_shape_for(seed)

    def fc_once(inject: bool):
        acc = Accelerator(observe=True)
        if inject:
            FaultInjector(empty_plan).attach(acc)
        result = run_fc(acc, m=shape["m"], k=shape["k"], n=shape["n"],
                        dtype="int8",
                        subgrid=acc.subgrid((0, 0), shape["rows"],
                                            shape["cols"]),
                        k_split=shape["k_split"], seed=seed)
        return result.cycles, result.c_t, acc.obs.stalls_by_track()

    cycles_plain, out_plain, stalls_plain = fc_once(inject=False)
    cycles_inj, out_inj, stalls_inj = fc_once(inject=True)
    res.cycles = cycles_plain
    if cycles_inj != cycles_plain:
        res.violations.append(
            "empty fault plan changed FC cycles: "
            f"{cycles_plain} plain vs {cycles_inj} injected")
    if not np.array_equal(out_inj, out_plain):
        res.violations.append("empty fault plan changed FC output bits")
    if stalls_inj != stalls_plain:
        res.violations.append(
            "empty fault plan changed FC stall attributions")

    # -- cycle-level TBE kernel (DRAM/SRAM gather paths) -----------------
    rng = np.random.default_rng(seed ^ 0x5EED)
    tbe_cfg = TBEConfig(num_tables=int(rng.integers(1, 3)),
                        rows_per_table=64,
                        embedding_dim=int(rng.choice([32, 64])),
                        pooling_factor=int(rng.integers(2, 6)),
                        batch_size=4)

    def tbe_once(inject: bool):
        acc = Accelerator(observe=True)
        if inject:
            FaultInjector(empty_plan).attach(acc)
        result = run_tbe(acc, tbe_cfg, subgrid=acc.subgrid((0, 0), 1, 1),
                         seed=seed)
        return result.cycles, result.output, acc.obs.stalls_by_track()

    t_cycles_a, t_out_a, t_stalls_a = tbe_once(inject=False)
    t_cycles_b, t_out_b, t_stalls_b = tbe_once(inject=True)
    if t_cycles_b != t_cycles_a:
        res.violations.append(
            "empty fault plan changed TBE cycles: "
            f"{t_cycles_a} plain vs {t_cycles_b} injected")
    if not np.array_equal(t_out_b, t_out_a):
        res.violations.append("empty fault plan changed TBE output bits")
    if t_stalls_b != t_stalls_a:
        res.violations.append(
            "empty fault plan changed TBE stall attributions")

    # -- request-level serving -------------------------------------------
    srng = np.random.default_rng(seed)
    qps = float(srng.uniform(2_000, 100_000))
    base = float(srng.uniform(50, 300))
    slope = float(srng.uniform(0.5, 5.0))
    batching = BatchingConfig(max_batch=int(srng.choice([16, 64, 256])),
                              max_wait_us=float(srng.uniform(50, 400)))

    def latency_model(batch: int) -> float:
        return base + slope * batch

    plain = simulate_serving(latency_model, qps, batching,
                             num_requests=400, seed=seed,
                             registry=MetricRegistry())
    injected = simulate_serving_resilient(
        latency_model, qps, batching, num_requests=400, seed=seed,
        faults=FaultInjector(empty_plan), registry=MetricRegistry())
    for field_name in ("latencies_us", "queue_wait_us", "batch_wait_us",
                       "execute_us", "arrivals_us", "batch_index"):
        if not np.array_equal(getattr(injected, field_name),
                              getattr(plain, field_name)):
            res.violations.append(
                "resilient serving with an empty fault plan changed "
                f"{field_name} vs the plain simulator")
    if injected.batch_sizes != plain.batch_sizes:
        res.violations.append(
            "resilient serving with an empty fault plan changed batch "
            "boundaries")
    if injected.availability != 1.0:
        res.violations.append(
            f"empty fault plan aborted requests "
            f"(availability {injected.availability})")
    return res


def check_serving_determinism(seed: int) -> DeterminismResult:
    """Replay one serving simulation; spans/metrics must be no-ops.

    Three invariants: (a) the same seed replays bit-identically, (b)
    attaching an enabled SpanTracer + registry leaves every latency and
    phase attribution bit-identical, (c) a *disabled* SpanTracer
    records nothing.
    """
    from repro.obs.metrics import MetricRegistry
    from repro.obs.spans import SpanTracer
    from repro.serving.simulator import BatchingConfig, simulate_serving

    rng = np.random.default_rng(seed)
    qps = float(rng.uniform(2_000, 200_000))
    base = float(rng.uniform(50, 300))
    slope = float(rng.uniform(0.5, 5.0))
    batching = BatchingConfig(max_batch=int(rng.choice([16, 64, 256])),
                              max_wait_us=float(rng.uniform(50, 400)))

    def latency_model(batch: int) -> float:
        return base + slope * batch

    def once(spans=None, registry=None):
        return simulate_serving(latency_model, qps, batching,
                                num_requests=400, seed=seed,
                                registry=registry, spans=spans)

    res = DeterminismResult(seed=seed, kind="serving")
    plain_a = once()
    plain_b = once()
    res.cycles = float(plain_a.latencies_us.sum())
    if not np.array_equal(plain_a.latencies_us, plain_b.latencies_us):
        res.violations.append("serving replay latencies differ")

    disabled = SpanTracer(enabled=False)
    observed = once(spans=SpanTracer(enabled=True),
                    registry=MetricRegistry())
    for field_name in ("latencies_us", "queue_wait_us", "batch_wait_us",
                       "execute_us"):
        if not np.array_equal(getattr(observed, field_name),
                              getattr(plain_a, field_name)):
            res.violations.append(
                f"enabling spans/metrics changed {field_name}")
    off = once(spans=disabled)
    if disabled.spans:
        res.violations.append(
            f"disabled span tracer recorded {len(disabled.spans)} spans")
    if not np.array_equal(off.latencies_us, plain_a.latencies_us):
        res.violations.append("disabled span tracer changed latencies")
    return res


def check_telemetry_determinism(seed: int) -> DeterminismResult:
    """Sketch/exemplar merges must be order-invariant, byte-for-byte.

    The fleet-telemetry contract: (a) collecting telemetry never
    perturbs the simulation; (b) sharding one value stream and merging
    the per-shard sketches — in *either* order — serializes
    byte-identically to single-stream ingest; (c) the same holds for
    exemplar stores; (d) merged per-replica telemetry is byte-identical
    at any merge grouping (what makes ``--jobs N`` reports stable).
    """
    import json

    from repro.serving.simulator import BatchingConfig, simulate_serving
    from repro.serving.telemetry import ServingTelemetry

    rng = np.random.default_rng(seed)
    qps = float(rng.uniform(2_000, 200_000))
    base = float(rng.uniform(50, 300))
    slope = float(rng.uniform(0.5, 5.0))
    batching = BatchingConfig(max_batch=int(rng.choice([16, 64, 256])),
                              max_wait_us=float(rng.uniform(50, 400)))

    def latency_model(batch: int) -> float:
        return base + slope * batch

    def run(collect: bool, replica: int = 0, run_seed: int = seed):
        return simulate_serving(latency_model, qps, batching,
                                num_requests=300, seed=run_seed,
                                registry=None, collect_telemetry=collect,
                                replica=replica)

    res = DeterminismResult(seed=seed, kind="telemetry")
    plain = run(collect=False)
    collected = run(collect=True)
    res.cycles = float(plain.latencies_us.sum())
    for field_name in ("latencies_us", "queue_wait_us", "batch_wait_us",
                       "execute_us", "arrivals_us"):
        if not np.array_equal(getattr(collected, field_name),
                              getattr(plain, field_name)):
            res.violations.append(
                f"collecting telemetry changed {field_name}")

    # (b) sketch shard merges, both orders, vs single-stream ingest
    from repro.obs.sketch import QuantileSketch
    values = plain.latencies_us
    cut = values.size // 2
    whole = QuantileSketch()
    whole.add_many(values)
    a, b = QuantileSketch(), QuantileSketch()
    a.add_many(values[:cut])
    b.add_many(values[cut:])
    ab = a.copy().merge(b)
    ba = b.copy().merge(a)
    dumps = [json.dumps(s.to_dict(), sort_keys=True)
             for s in (whole, ab, ba)]
    if len(set(dumps)) != 1:
        res.violations.append(
            "sketch merge is not order-invariant byte-for-byte "
            "(single-stream vs merge(a,b) vs merge(b,a))")

    # (c)+(d) replica telemetry merged in either grouping
    replicas = [collected] + [run(collect=True, replica=i,
                                  run_seed=seed + i) for i in (1, 2)]
    tels = [r.telemetry for r in replicas]

    def merged(order):
        import copy
        parts = [copy.deepcopy(tels[i]) for i in order]
        return ServingTelemetry.merge_all(parts)

    j_fwd = json.dumps(merged((0, 1, 2)).to_dict(include_state=True),
                       sort_keys=True)
    j_rev = json.dumps(merged((2, 1, 0)).to_dict(include_state=True),
                       sort_keys=True)
    if j_fwd != j_rev:
        res.violations.append(
            "merged fleet telemetry differs across merge orders")
    return res


def check_fleet_determinism(seed: int) -> DeterminismResult:
    """Replay one fleet run; jobs parallelism must be invisible.

    Three invariants: (a) the same ``(trace, config)`` replays
    byte-identically (canonical report JSON), (b) ``jobs=1`` and
    ``jobs=2`` produce the same bytes (worker fan-out never reorders or
    perturbs anything), (c) a 1-replica fleet with free round-robin
    routing is *bit-identical* to the bare per-replica engine — the
    fleet layer is a no-op wrapper at N=1.
    """
    import json
    from dataclasses import replace as _replace

    from repro.serving.fleet import (FleetConfig, RouterConfig,
                                     TabularLatencyModel, simulate_fleet,
                                     uniform_fleet)
    from repro.serving.resilience import (ResilienceConfig,
                                          simulate_serving_resilient)
    from repro.serving.traffic import trace_preset

    rng = np.random.default_rng(seed)
    base = float(rng.uniform(50, 300))
    slope = float(rng.uniform(0.5, 5.0))
    batches = (1, 4, 16, 64, 256)
    model = TabularLatencyModel(
        batches=batches,
        latency_us=tuple(base + slope * b for b in batches))
    policy = ("round_robin", "least_loaded", "power_of_two",
              "hedge")[int(rng.integers(0, 4))]
    qps = float(rng.uniform(50_000, 400_000))
    trace = _replace(trace_preset("diurnal", target_qps=qps),
                     duration_us=20_000.0)
    config = FleetConfig(
        replicas=uniform_fleet(3, racks=2, power_domains=2),
        router=RouterConfig(policy=policy, route_latency_us=15.0,
                            seed=seed),
        resilience=ResilienceConfig(deadline_us=8_000.0, max_retries=1),
        seed=seed)

    res = DeterminismResult(seed=seed, kind="fleet")

    def dump(report) -> str:
        return json.dumps(report.to_dict(), sort_keys=True)

    serial_a = simulate_fleet(model, trace, config, jobs=1)
    serial_b = simulate_fleet(model, trace, config, jobs=1)
    res.cycles = float(serial_a.latencies_us.sum())
    if dump(serial_a) != dump(serial_b):
        res.violations.append("fleet replay report JSON differs")
    parallel = simulate_fleet(model, trace, config, jobs=2)
    if dump(serial_a) != dump(parallel):
        res.violations.append("jobs=1 and jobs=2 report JSON differ")

    # (c) N=1 trivial fleet == bare per-replica engine, bit for bit
    solo = FleetConfig(replicas=uniform_fleet(1),
                       router=RouterConfig(policy="round_robin"),
                       resilience=config.resilience, seed=seed)
    arrivals = trace.arrivals(seed)
    fleet = simulate_fleet(model, arrivals, solo, jobs=1)
    bare = simulate_serving_resilient(
        model, qps=0.0, resilience=config.resilience, seed=0,
        collect_telemetry=True, arrivals=arrivals)
    for field_name in ("latencies_us", "queue_wait_us", "batch_wait_us",
                       "execute_us", "retry_overhead_us", "status"):
        if not np.array_equal(getattr(fleet, field_name),
                              getattr(bare, field_name)):
            res.violations.append(
                f"1-replica fleet diverges from the bare engine "
                f"on {field_name}")
    tele_fleet = json.dumps(fleet.telemetry.to_dict(include_state=True),
                            sort_keys=True)
    tele_bare = json.dumps(bare.telemetry.to_dict(include_state=True),
                           sort_keys=True)
    if tele_fleet != tele_bare:
        res.violations.append(
            "1-replica fleet telemetry serialization diverges from "
            "the bare engine")
    return res


def check_fast_forward(seed: int) -> DeterminismResult:
    """Steady-state fast-forward must be invisible, engaged or refused.

    Two halves of the PR-9 contract:

    * a seeded *stationary* pipeline (constant-delay process ensemble
      with stall attribution) run with a
      :class:`~repro.sim.fastforward.FastForward` detector attached
      must finish with identical final time, event count, and per-cause
      stall cycles to the undetected run — *and* the detector must
      actually have skipped periods (a silently-inert detector would
      pass the identity check while delivering nothing);
    * a real FC kernel (generator locals carry loop indices, so the
      signature honestly never repeats) must refuse to engage and stay
      bit-identical in cycles, outputs, and stall attributions.
    """
    from repro import Accelerator
    from repro.kernels.fc import run_fc
    from repro.sim.engine import Engine
    from repro.sim.fastforward import FastForward

    res = DeterminismResult(seed=seed, kind="fastforward")
    rng = np.random.default_rng(seed)
    periods = [int(p) for p in rng.integers(2, 12, size=3)]
    horizon = 100_000

    def pipeline(fast: bool):
        engine = Engine()
        engine.obs.enabled = True
        if fast:
            engine.fast_forward = FastForward()

        def beat(track: str, period: int):
            while True:
                yield period
                engine.obs.stall(track, "cb_element_wait",
                                 engine.now - 1, engine.now)
        for i, p in enumerate(periods):
            engine.process(beat(f"pe{i}.dpe", p), name=f"b{i}")
        engine.run(until=horizon)
        stalls = sorted((key, c.value) for key, c in
                        engine.obs.registry.counter("stall_cycles")
                        .samples())
        return (engine.now, engine.events_processed, stalls), \
            engine.fast_forward

    plain, _ = pipeline(fast=False)
    fast, detector = pipeline(fast=True)
    res.cycles = plain[0]
    if fast != plain:
        res.violations.append(
            f"fast-forward changed the stationary pipeline outcome: "
            f"{plain} plain vs {fast} fast-forwarded")
    if detector.periods_skipped == 0:
        res.violations.append(
            "fast-forward never engaged on a stationary pipeline "
            f"(periods={periods}, stats={detector.stats()})")

    # -- honest refusal on a real kernel ---------------------------------
    shape = _fc_shape_for(seed)

    def fc_once(fast: bool):
        acc = Accelerator(observe=True)
        if fast:
            acc.engine.fast_forward = FastForward()
        result = run_fc(acc, m=shape["m"], k=shape["k"], n=shape["n"],
                        dtype="int8",
                        subgrid=acc.subgrid((0, 0), shape["rows"],
                                            shape["cols"]),
                        k_split=shape["k_split"], seed=seed)
        return result, acc

    fc_plain, acc_plain = fc_once(fast=False)
    fc_fast, acc_fast = fc_once(fast=True)
    if fc_fast.cycles != fc_plain.cycles:
        res.violations.append(
            "fast-forward changed FC cycles: "
            f"{fc_plain.cycles} plain vs {fc_fast.cycles}")
    if not np.array_equal(fc_fast.c_t, fc_plain.c_t):
        res.violations.append("fast-forward changed FC output bits")
    if acc_fast.obs.stalls_by_track() != acc_plain.obs.stalls_by_track():
        res.violations.append("fast-forward changed FC stall attributions")
    if acc_fast.engine.fast_forward.periods_skipped != 0:
        res.violations.append(
            "fast-forward claims to have skipped periods inside an FC "
            "kernel — the signature should never repeat there")
    return res


def check_autotune_determinism(seed: int) -> DeterminismResult:
    """Seeded search replay identity + tuned-mapping re-simulation.

    The autotune contract (PR 10), three invariants per seed:

    * (a) **trace replay** — running the phase-1 search twice with the
      same seed produces byte-identical traces: same event sequence,
      same winner, same SHA-256 digest;
    * (b) **jobs invariance** — the full two-phase ``autotune`` report
      (JSON with ``sort_keys``) is byte-identical at ``jobs=1`` and
      ``jobs=2`` — worker fan-out may only change wall time;
    * (c) **re-simulation identity** — the tuned winner re-simulates to
      the reported cycle count bit-for-bit (the report is a claim about
      the DES, not about one lucky run).
    """
    import json

    from repro.autotune import (MappingSpace, SearchConfig, autotune,
                                run_search, simulate_candidate)
    from repro.autotune.space import FCShape

    rng = np.random.default_rng(seed)
    shape = FCShape(m=64 * int(rng.integers(1, 3)),
                    k=32 * int(rng.integers(1, 5)),
                    n=64 * int(rng.integers(1, 3)))
    # Keep the per-case space tiny: ablation axes pinned to their
    # defaults, placement still explored (it exercises both
    # accelerator modes in phase 2).
    space = MappingSpace(shape=shape,
                         restrict={"use_multicast": (True,),
                                   "dual_core": (True,)})
    config = SearchConfig(seed=seed, budget=24, init=8, beam_width=4,
                          generations=2, population=6)

    res = DeterminismResult(seed=seed, kind="autotune")

    # -- (a) search trace replay -----------------------------------------
    first = run_search(space, config)
    second = run_search(space, config)
    res.cycles = float(first.trace.budget_used)
    if first.trace.events != second.trace.events:
        res.violations.append(
            "search replay produced a different event sequence")
    if first.trace.digest() != second.trace.digest():
        res.violations.append(
            f"search trace digests differ: {first.trace.digest()} vs "
            f"{second.trace.digest()}")
    if first.trace.winner_key != second.trace.winner_key:
        res.violations.append(
            f"search replay picked a different winner: "
            f"{first.trace.winner_key} vs {second.trace.winner_key}")

    # -- (b) jobs invariance of the full two-phase report ----------------
    def report(jobs: int) -> str:
        result = autotune(shape, seed=seed, budget=config.budget,
                          topk=2, jobs=jobs, space=space,
                          search_config=config)
        return json.dumps(result.to_dict(), sort_keys=True)

    serial = report(jobs=1)
    parallel = report(jobs=2)
    if serial != parallel:
        res.violations.append(
            "autotune report JSON differs between jobs=1 and jobs=2")

    # -- (c) tuned winner re-simulates to the reported cycles ------------
    winner = json.loads(serial)["winner"]
    job = {"shape": shape.to_dict(), "candidate": winner["candidate"]}
    resim_a = simulate_candidate(job)["sim_cycles"]
    resim_b = simulate_candidate(job)["sim_cycles"]
    if resim_a != resim_b:
        res.violations.append(
            f"winner re-simulation is not stable: {resim_a} vs {resim_b}")
    if resim_a != winner["sim_cycles"]:
        res.violations.append(
            f"winner re-simulates to {resim_a} cycles, report claims "
            f"{winner['sim_cycles']}")
    return res


def check_critical_noop(seed: int) -> DeterminismResult:
    """Causal edge recording must be a bit-exact no-op, and paths exact.

    Four invariants, extending the hooks-are-no-ops contract to PR 8's
    :class:`~repro.obs.critical.EdgeRecorder`:

    * (a) running an FC kernel with ``record_edges=True`` leaves
      cycles, output bits, and stall attributions bit-identical to a
      plain run — the recorder observes the event order, never steers
      it;
    * (b) the extracted critical path tiles the run exactly: segments
      abut with zero gap, the path ends at ``engine.now``, and
      ``sum(critical segments) == elapsed cycles`` (exact float
      equality, not approximate);
    * (c) per-request serving critical paths — plain *and* resilient
      under a seeded fault plan — have totals bitwise equal to the
      stored ``latencies_us`` for every request, whatever its status;
    * (d) fleet critical paths under a seeded routing policy and a
      correlated rack/power fault plan do too, hedged copies included.
    """
    import math
    from dataclasses import replace as _replace

    from repro import Accelerator
    from repro.faults import (FaultInjector, FaultPlan, FaultProfile,
                              generate_fleet_plan)
    from repro.kernels.fc import run_fc
    from repro.obs.critical import (extract_critical_path,
                                    fleet_critical_path,
                                    serving_critical_path)
    from repro.serving.fleet import (ROUTING_POLICIES, FleetConfig,
                                     RouterConfig, TabularLatencyModel,
                                     simulate_fleet, uniform_fleet)
    from repro.serving.resilience import (ResilienceConfig,
                                          simulate_serving_resilient)
    from repro.serving.simulator import BatchingConfig, simulate_serving
    from repro.serving.traffic import trace_preset

    res = DeterminismResult(seed=seed, kind="critical")

    # -- (a)+(b) cycle-level FC kernel -----------------------------------
    shape = _fc_shape_for(seed)

    def fc_once(record: bool):
        acc = Accelerator(observe=True, record_edges=record)
        result = run_fc(acc, m=shape["m"], k=shape["k"], n=shape["n"],
                        dtype="int8",
                        subgrid=acc.subgrid((0, 0), shape["rows"],
                                            shape["cols"]),
                        k_split=shape["k_split"], seed=seed)
        return acc, result

    acc_plain, fc_plain = fc_once(record=False)
    acc_rec, fc_rec = fc_once(record=True)
    res.cycles = fc_plain.cycles
    if fc_rec.cycles != fc_plain.cycles:
        res.violations.append(
            "edge recording changed FC cycles: "
            f"{fc_plain.cycles} plain vs {fc_rec.cycles} recorded")
    if not np.array_equal(fc_rec.c_t, fc_plain.c_t):
        res.violations.append("edge recording changed FC output bits")
    if acc_rec.obs.stalls_by_track() != acc_plain.obs.stalls_by_track():
        res.violations.append("edge recording changed stall attributions")

    try:
        path = extract_critical_path(acc_rec.edges).verify()
        if path.end != acc_rec.engine.now:
            res.violations.append(
                f"critical path ends at {path.end!r}, engine stopped at "
                f"{acc_rec.engine.now!r}")
        if math.fsum(s.duration for s in path.segments) != path.total:
            res.violations.append(
                "critical segment durations do not sum exactly to the "
                "path total")
    except Exception as exc:   # verify() raises CriticalPathError
        res.violations.append(f"FC critical path invalid: {exc}")

    # -- (c) serving paths, plain and faulted ----------------------------
    rng = np.random.default_rng(seed)
    qps = float(rng.uniform(2_000, 100_000))
    base = float(rng.uniform(50, 300))
    slope = float(rng.uniform(0.5, 5.0))
    batching = BatchingConfig(max_batch=int(rng.choice([16, 64, 256])),
                              max_wait_us=float(rng.uniform(50, 400)))

    def latency_model(batch: int) -> float:
        return base + slope * batch

    def check_paths(report, label: str, extractor) -> None:
        n = int(report.latencies_us.size)
        for i in range(n):
            try:
                p = extractor(report, i)
            except Exception as exc:
                res.violations.append(
                    f"{label}: request {i} path extraction failed: {exc}")
                return
            if p.total != float(report.latencies_us[i]):
                res.violations.append(
                    f"{label}: request {i} path total {p.total!r} != "
                    f"stored latency {report.latencies_us[i]!r}")
                return

    plain = simulate_serving(latency_model, qps, batching,
                             num_requests=300, seed=seed)
    check_paths(plain, "serving", serving_critical_path)

    fault_plan = FaultPlan.generate(
        seed, FaultProfile(horizon_us=30_000.0),
        kinds=("card.failure", "card.slowdown"))
    faulted = simulate_serving_resilient(
        latency_model, qps, batching, num_requests=300, seed=seed,
        resilience=ResilienceConfig(deadline_us=8_000.0, max_retries=1),
        faults=FaultInjector(fault_plan))
    check_paths(faulted, "resilient serving", serving_critical_path)

    # -- (d) fleet paths under a seeded policy + correlated faults -------
    batches = (1, 4, 16, 64, 256)
    model = TabularLatencyModel(
        batches=batches,
        latency_us=tuple(base + slope * b for b in batches))
    policy = ROUTING_POLICIES[seed % len(ROUTING_POLICIES)]
    trace = _replace(trace_preset("diurnal",
                                  target_qps=float(rng.uniform(50_000,
                                                               300_000))),
                     duration_us=15_000.0)
    specs = uniform_fleet(3, racks=2, power_domains=2)
    fleet_plan = generate_fleet_plan(seed, specs, horizon_us=15_000.0)
    config = FleetConfig(
        replicas=specs,
        router=RouterConfig(policy=policy, route_latency_us=15.0,
                            seed=seed, hedge_backlog_us=100.0,
                            hedge_delay_us=50.0),
        resilience=ResilienceConfig(deadline_us=8_000.0, max_retries=1),
        seed=seed)
    fleet = simulate_fleet(model, trace, config, fault_plan=fleet_plan,
                           jobs=1)
    check_paths(fleet, f"fleet[{policy}]", fleet_critical_path)
    return res
