"""Differential conformance testing (the paper's Section 6 methodology).

The accelerator bring-up validated operators and whole DLRMs by
sweeping shapes against known-good results; this package automates the
same discipline over the reproduction so every refactor is checked by
construction rather than by hand-picked examples.  Three pillars:

* :mod:`repro.conformance.fuzzer` — a seeded random generator of valid
  DLRM-style compiler graphs (FC/EB/BMM/Concat/Transpose/elementwise
  chains with randomized shapes, dtypes, and fusion opportunities);
* :mod:`repro.conformance.golden` — a pure-numpy reference evaluator
  for :class:`repro.compiler.ir.Graph`, independent of the operator
  registry's ``execute`` implementations, so fused and unfused
  executions can both be checked against a third opinion;
* :mod:`repro.conformance.crossval` — runs the same operator through
  the cycle-level simulator and the analytical model
  (:func:`repro.eval.opmodel.estimate_op`) and asserts the estimate
  brackets the simulated time within a configurable band;
* :mod:`repro.conformance.determinism` — replays the same seed twice
  (and once with metrics/tracing enabled) and asserts identical cycle
  counts, stall attributions, and outputs.

``python -m repro.conformance --seeds N`` drives all pillars and emits
a JSON report; ``tests/conformance/`` integrates the same machinery
with pytest + hypothesis.
"""

from repro.conformance.fuzzer import FuzzCase, FuzzConfig, fuzz_graph
from repro.conformance.golden import (GOLDEN_OPS, TolerancePolicy,
                                      compare_outputs, evaluate_graph)
from repro.conformance.crossval import (CrossvalBand, crossval_fc,
                                        crossval_tbe, fuzz_fc_shape)
from repro.conformance.determinism import (check_graph_determinism,
                                           check_sim_determinism)
from repro.conformance.runner import (CaseResult, ConformanceConfig,
                                      ConformanceReport, run_conformance)

__all__ = [
    "CaseResult",
    "ConformanceConfig",
    "ConformanceReport",
    "CrossvalBand",
    "FuzzCase",
    "FuzzConfig",
    "GOLDEN_OPS",
    "TolerancePolicy",
    "check_graph_determinism",
    "check_sim_determinism",
    "compare_outputs",
    "crossval_fc",
    "crossval_tbe",
    "evaluate_graph",
    "fuzz_fc_shape",
    "fuzz_graph",
    "run_conformance",
]
