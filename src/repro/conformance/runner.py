"""Conformance run orchestration + JSON report.

One *case* is (seed, pillar).  Each pillar derives its own sub-stream
from the case seed, so pillars can be enabled independently without
shifting each other's randomness, and any failing case replays from
its printed seed alone.
"""

from __future__ import annotations

import json
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.conformance.crossval import (CrossvalBand, crossval_fc,
                                        crossval_tbe, fuzz_fc_shape,
                                        fuzz_tbe_shape)
from repro.conformance.determinism import (check_autotune_determinism,
                                           check_cache_determinism,
                                           check_critical_noop,
                                           check_fast_forward,
                                           check_fault_injection_noop,
                                           check_fleet_determinism,
                                           check_graph_cache_determinism,
                                           check_graph_determinism,
                                           check_serving_determinism,
                                           check_sim_determinism,
                                           check_telemetry_determinism)
from repro.conformance.fuzzer import OP_FAMILIES, FuzzConfig, fuzz_graph
from repro.conformance.golden import (TolerancePolicy, compare_outputs,
                                      evaluate_graph)
from repro.parallel import parallel_map

PILLARS = ("golden", "determinism", "crossval", "cache", "faults",
           "autotune")

#: Every N-th crossval case runs the (slower) TBE gather instead of FC.
_TBE_EVERY = 5


@dataclass
class ConformanceConfig:
    """Everything one conformance run needs, fully serialisable."""

    seeds: int = 25
    seed_start: int = 0
    ops: Tuple[str, ...] = OP_FAMILIES
    pillars: Tuple[str, ...] = PILLARS
    band: CrossvalBand = CrossvalBand()
    tolerance: TolerancePolicy = TolerancePolicy()
    #: fraction of crossval cases allowed outside the band before the
    #: whole run fails (band checks are statistical, not bit-exact)
    max_band_violation_rate: float = 0.1
    explicit_seeds: Optional[Tuple[int, ...]] = None

    def seed_list(self) -> List[int]:
        if self.explicit_seeds is not None:
            return list(self.explicit_seeds)
        return [self.seed_start + i for i in range(self.seeds)]

    def to_dict(self) -> Dict:
        return {"seeds": self.seed_list(), "ops": list(self.ops),
                "pillars": list(self.pillars),
                "band": [self.band.lo, self.band.hi],
                "tolerance": {"atol": self.tolerance.atol,
                              "rtol": self.tolerance.rtol},
                "max_band_violation_rate": self.max_band_violation_rate}


@dataclass
class CaseResult:
    """Outcome of one (seed, pillar) case."""

    seed: int
    pillar: str
    status: str                     #: ok | divergence | violation | error
    details: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict:
        return {"seed": self.seed, "pillar": self.pillar,
                "status": self.status, "details": self.details}


@dataclass
class ConformanceReport:
    """Aggregated results of one run."""

    config: ConformanceConfig
    cases: List[CaseResult] = field(default_factory=list)

    def by_pillar(self, pillar: str) -> List[CaseResult]:
        return [c for c in self.cases if c.pillar == pillar]

    def failures(self) -> List[CaseResult]:
        return [c for c in self.cases if not c.ok]

    @property
    def golden_divergences(self) -> int:
        return sum(1 for c in self.by_pillar("golden") if not c.ok)

    @property
    def determinism_violations(self) -> int:
        return sum(1 for c in self.by_pillar("determinism") if not c.ok)

    @property
    def cache_violations(self) -> int:
        return sum(1 for c in self.by_pillar("cache") if not c.ok)

    @property
    def faults_violations(self) -> int:
        return sum(1 for c in self.by_pillar("faults") if not c.ok)

    @property
    def autotune_violations(self) -> int:
        return sum(1 for c in self.by_pillar("autotune") if not c.ok)

    @property
    def band_violation_rate(self) -> float:
        cases = self.by_pillar("crossval")
        if not cases:
            return 0.0
        return sum(1 for c in cases if c.status == "violation") / len(cases)

    @property
    def passed(self) -> bool:
        if (self.golden_divergences or self.determinism_violations
                or self.cache_violations or self.faults_violations
                or self.autotune_violations):
            return False
        if any(c.status == "error" for c in self.cases):
            return False
        return (self.band_violation_rate
                <= self.config.max_band_violation_rate)

    def to_dict(self) -> Dict:
        return {
            "config": self.config.to_dict(),
            "passed": self.passed,
            "totals": {
                "cases": len(self.cases),
                "golden_divergences": self.golden_divergences,
                "determinism_violations": self.determinism_violations,
                "cache_violations": self.cache_violations,
                "faults_violations": self.faults_violations,
                "autotune_violations": self.autotune_violations,
                "crossval_cases": len(self.by_pillar("crossval")),
                "band_violation_rate": self.band_violation_rate,
                "errors": sum(1 for c in self.cases
                              if c.status == "error"),
            },
            "failures": [c.to_dict() for c in self.failures()],
            "cases": [c.to_dict() for c in self.cases],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


# -- pillar drivers ----------------------------------------------------------

def run_golden_case(seed: int, config: ConformanceConfig) -> CaseResult:
    """Fuzz a graph; check eager and fused executions vs the reference."""
    from repro.runtime.executor import GraphExecutor

    fuzz_config = FuzzConfig(ops=config.ops)
    case = fuzz_graph(seed, fuzz_config)
    reference = evaluate_graph(case.graph, case.feeds, case.weights)

    details: Dict = {"summary": case.summary, "divergences": []}
    for mode in ("eager", "graph"):
        executed = case.graph.copy()
        outputs, _ = GraphExecutor(mode=mode).run(executed, case.feeds,
                                                  case.weights)
        diverged = compare_outputs(
            outputs, reference, config.tolerance,
            actual_names=executed.outputs,
            expected_names=case.graph.outputs)
        details["divergences"].extend(
            dict(d.to_dict(), mode=mode) for d in diverged)
    status = "ok" if not details["divergences"] else "divergence"
    return CaseResult(seed=seed, pillar="golden", status=status,
                      details=details)


def run_determinism_case(seed: int,
                         config: ConformanceConfig) -> CaseResult:
    """Replay one seed at the sim, executor, serving, fleet levels."""
    sim = check_sim_determinism(seed)
    graph = check_graph_determinism(seed, FuzzConfig(ops=config.ops))
    serving = check_serving_determinism(seed)
    telemetry = check_telemetry_determinism(seed)
    fleet = check_fleet_determinism(seed)
    critical = check_critical_noop(seed)
    fastforward = check_fast_forward(seed)
    violations = (sim.violations + graph.violations + serving.violations
                  + telemetry.violations + fleet.violations
                  + critical.violations + fastforward.violations)
    status = "ok" if not violations else "violation"
    return CaseResult(seed=seed, pillar="determinism", status=status,
                      details={"sim": sim.to_dict(),
                               "graph": graph.to_dict(),
                               "serving": serving.to_dict(),
                               "telemetry": telemetry.to_dict(),
                               "fleet": fleet.to_dict(),
                               "critical": critical.to_dict(),
                               "fastforward": fastforward.to_dict()})


def run_crossval_case(seed: int, index: int,
                      config: ConformanceConfig) -> CaseResult:
    """Cross-validate one fuzzed shape (FC, or TBE every N-th case)."""
    use_tbe = "eb" in config.ops and index % _TBE_EVERY == _TBE_EVERY - 1
    if use_tbe:
        result = crossval_tbe(fuzz_tbe_shape(seed))
    else:
        result = crossval_fc(fuzz_fc_shape(seed), config.band)
    status = "ok" if result.in_band else "violation"
    return CaseResult(seed=seed, pillar="crossval", status=status,
                      details=result.to_dict())


def run_cache_case(seed: int, config: ConformanceConfig) -> CaseResult:
    """Prove cache hits are bit-identical to fresh computation.

    Two sub-checks: the whole-run sim cache (kernel granularity) and
    the per-op graph cache (fresh / cold / warm / partial-warm).
    """
    result = check_cache_determinism(seed)
    graph = check_graph_cache_determinism(seed,
                                          FuzzConfig(ops=config.ops))
    status = "ok" if result.ok and graph.ok else "violation"
    return CaseResult(seed=seed, pillar="cache", status=status,
                      details={"cache": result.to_dict(),
                               "graph_cache": graph.to_dict()})


def run_faults_case(seed: int, config: ConformanceConfig) -> CaseResult:
    """Prove an armed-but-empty fault injector is a perfect no-op."""
    result = check_fault_injection_noop(seed)
    status = "ok" if result.ok else "violation"
    return CaseResult(seed=seed, pillar="faults", status=status,
                      details={"faults": result.to_dict()})


def run_autotune_case(seed: int, config: ConformanceConfig) -> CaseResult:
    """Seeded-search replay identity + tuned-mapping re-simulation."""
    result = check_autotune_determinism(seed)
    status = "ok" if result.ok else "violation"
    return CaseResult(seed=seed, pillar="autotune", status=status,
                      details={"autotune": result.to_dict()})


def _case_job(job: Tuple[str, int, int, ConformanceConfig]) -> CaseResult:
    """One (pillar, seed) case — module-level so it survives ``spawn``.

    Exceptions are captured as ``status="error"`` CaseResults so one
    bad seed cannot mask the rest of the sweep (and so workers always
    return a picklable value).
    """
    pillar, seed, index, config = job
    try:
        with np.errstate(over="ignore"):  # saturating sigmoids
            return _run_case(pillar, seed, index, config)
    except Exception as exc:
        return CaseResult(
            seed=seed, pillar=pillar, status="error",
            details={"exception": repr(exc),
                     "traceback": traceback.format_exc(limit=8)})


def run_conformance(config: Optional[ConformanceConfig] = None,
                    progress=None, jobs: int = 1) -> ConformanceReport:
    """Run every enabled pillar over every seed.

    ``progress`` is an optional callable invoked with each finished
    :class:`CaseResult` (the CLI uses it for incremental output).
    Exceptions inside a case are captured as ``status="error"`` so one
    bad seed cannot mask the rest of the sweep.

    ``jobs > 1`` fans the cases out over worker processes via
    :func:`repro.parallel.parallel_map`.  Every case is a pure function
    of (pillar, seed, config) — the determinism pillar proves it — so
    the report is identical at any job count; only wall time changes.
    """
    config = config or ConformanceConfig()
    report = ConformanceReport(config=config)
    cases = [(pillar, seed, index, config)
             for index, seed in enumerate(config.seed_list())
             for pillar in config.pillars]
    callback = (None if progress is None
                else lambda _index, case: progress(case))
    report.cases.extend(parallel_map(_case_job, cases, jobs=jobs,
                                     progress=callback))
    return report


def _run_case(pillar: str, seed: int, index: int,
              config: ConformanceConfig) -> CaseResult:
    if pillar == "golden":
        return run_golden_case(seed, config)
    if pillar == "determinism":
        return run_determinism_case(seed, config)
    if pillar == "crossval":
        return run_crossval_case(seed, index, config)
    if pillar == "cache":
        return run_cache_case(seed, config)
    if pillar == "faults":
        return run_faults_case(seed, config)
    if pillar == "autotune":
        return run_autotune_case(seed, config)
    raise ValueError(f"unknown pillar {pillar!r}")
