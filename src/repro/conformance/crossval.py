"""Sim <-> analytical-model cross-validation over fuzzed shapes.

The analytical operator model (:func:`repro.eval.opmodel.estimate_op`)
drives every full-figure sweep; the cycle-level simulator is the
ground truth it is calibrated against.  The two drift apart silently
when either side changes — `tests/eval/test_calibration_vs_simulator.py`
pins two hand-picked shapes; this module runs the same comparison over
*fuzzed* shapes so calibration drift anywhere in the shape space is
flagged.

The check is a band, not an equality: the DES runs an ideal
hand-blocked kernel while the analytical curves are calibrated to the
paper's measured (less mature) software stack, so the model may be
pessimistic by up to ``band.hi`` but must never be optimistic by more
than ``1 / band.lo``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.compiler.ops import OpCosts
from repro.config import MTIA_V1
from repro.eval.machines import MTIA_MACHINE
from repro.eval.opmodel import estimate_op


@dataclass(frozen=True)
class CrossvalBand:
    """Allowed ``model_seconds / sim_seconds`` ratio range."""

    lo: float = 1.0 / 3.0
    hi: float = 10.0

    def contains(self, ratio: float) -> bool:
        return self.lo < ratio < self.hi


@dataclass
class CrossvalResult:
    """One sim-vs-model comparison."""

    kind: str                 #: "fc" or "tbe"
    shape: Dict[str, int]
    sim_seconds: float
    model_seconds: float
    band: CrossvalBand

    @property
    def ratio(self) -> float:
        return (self.model_seconds / self.sim_seconds
                if self.sim_seconds else float("inf"))

    @property
    def in_band(self) -> bool:
        return self.band.contains(self.ratio)

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "shape": dict(self.shape),
                "sim_seconds": self.sim_seconds,
                "model_seconds": self.model_seconds,
                "ratio": self.ratio, "in_band": self.in_band,
                "band": [self.band.lo, self.band.hi]}


def fuzz_fc_shape(seed: int) -> Dict[str, int]:
    """A random FC shape + sub-grid that satisfies the tiling rules.

    Shapes stay in the *calibrated regime*: medium sizes on 2x2..4x4
    sub-grids with real work per PE.  At tiny shapes (or nearly-empty
    grids) the analytical curve floors at the measured stack's fixed
    inefficiency, which the ideal DES kernel does not have, so the
    band comparison is only meaningful with enough work per PE — the
    same reason ``tests/eval/test_calibration_vs_simulator.py``
    restricts itself to medium shapes.
    """
    rng = np.random.default_rng(seed)
    rows = int(rng.choice([2, 4]))
    cols = int(rng.choice([2, 4]))
    k_split = int(rng.choice([s for s in (2, 4) if s <= cols]))
    n_split = cols // k_split
    m = 64 * rows * int(rng.integers(2, 4))
    n = 64 * n_split * int(rng.integers(2, 4))
    k = 32 * k_split * int(rng.integers(8, 13))
    return {"m": m, "k": k, "n": n, "rows": rows, "cols": cols,
            "k_split": k_split}


def crossval_fc(shape: Dict[str, int],
                band: CrossvalBand = CrossvalBand()) -> CrossvalResult:
    """Run one INT8 FC on the DES and through the analytical model."""
    from repro import Accelerator
    from repro.kernels.fc import run_fc

    m, k, n = shape["m"], shape["k"], shape["n"]
    rows, cols = shape["rows"], shape["cols"]
    acc = Accelerator()
    result = run_fc(acc, m=m, k=k, n=n, dtype="int8",
                    subgrid=acc.subgrid((0, 0), rows, cols),
                    k_split=shape["k_split"])
    frequency = MTIA_V1.frequency_ghz * 1e9
    # Scale the sub-grid measurement to a full-grid-equivalent rate.
    sub_fraction = (rows * cols) / MTIA_V1.num_pes
    sim_seconds = result.cycles / frequency * sub_fraction

    costs = OpCosts(2.0 * m * k * n, float(m * k + n * k),
                    float(m * n * 4), "fc")
    est = estimate_op(MTIA_MACHINE, "fc", costs, dtype="int8",
                      in_sram=False)
    # Drop the fixed launch overhead: the DES measures steady state.
    model_seconds = max(est.compute_seconds, est.memory_seconds)
    return CrossvalResult(kind="fc", shape=dict(shape),
                          sim_seconds=sim_seconds,
                          model_seconds=model_seconds, band=band)


def fuzz_tbe_shape(seed: int) -> Dict[str, int]:
    """A random small TBE shape (kept cheap: the gather DES is slow)."""
    rng = np.random.default_rng(seed)
    return {"num_tables": int(rng.integers(2, 5)),
            "rows_per_table": int(rng.choice([2000, 8000, 20000])),
            "embedding_dim": int(rng.choice([32, 64, 128])),
            "pooling_factor": int(rng.choice([8, 16, 32])),
            "batch_size": int(rng.choice([4, 8]))}


def crossval_tbe(shape: Dict[str, int],
                 band: Optional[CrossvalBand] = None) -> CrossvalResult:
    """Run one TBE gather on the DES and through the analytical model.

    The production-kernel curve models shallow software pipelining, so
    the DES runs with ``prefetch_rows=1``; the band is wider than FC's
    because the gather's achieved bandwidth depends on row-size effects
    the closed-form curve only approximates.
    """
    from repro import Accelerator
    from repro.kernels.tbe import TBEConfig, run_tbe

    band = band or CrossvalBand(lo=0.1, hi=10.0)
    cfg = TBEConfig(num_tables=shape["num_tables"],
                    rows_per_table=shape["rows_per_table"],
                    embedding_dim=shape["embedding_dim"],
                    pooling_factor=shape["pooling_factor"],
                    batch_size=shape["batch_size"])
    acc = Accelerator()
    result = run_tbe(acc, cfg, subgrid=acc.subgrid(), prefetch_rows=1)
    sim_seconds = result.cycles / (MTIA_V1.frequency_ghz * 1e9)

    bytes_in = float(cfg.lookup_bytes + cfg.total_lookups * 4)
    costs = OpCosts(float(cfg.total_lookups * cfg.embedding_dim),
                    bytes_in, float(cfg.num_bags * cfg.embedding_dim * 4),
                    "eb")
    est = estimate_op(MTIA_MACHINE, "eb", costs, dtype="fp32",
                      attrs={"pooling": cfg.pooling_factor,
                             "dim": cfg.embedding_dim,
                             "batch": cfg.batch_size})
    model_seconds = max(est.compute_seconds, est.memory_seconds)
    return CrossvalResult(kind="tbe", shape=dict(shape),
                          sim_seconds=sim_seconds,
                          model_seconds=model_seconds, band=band)
