"""Pure-numpy golden reference evaluator for compiler IR graphs.

This is a second, independent implementation of every operator's
functional semantics — deliberately *not* a call into
``repro.compiler.ops.execute_node`` — so the executor (eager or fused)
is checked against a third opinion rather than against itself.  The
implementations follow the documented precision contract (FP32
accumulation via ``np.matmul``, round-half-to-even quantisation), which
keeps quantized paths comparable bit-for-bit while the floating-point
paths are compared under an atol/rtol policy.

``evaluate_graph`` also understands the *post-fusion* vocabulary (TBE
nodes, ``epilogue`` attrs on FC/BMM), so any compiled-and-executed
graph can be replayed through the reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.compiler.ir import Graph, Node

#: Epilogue semantics (kept in sync with runtime.executor._EPILOGUES).
_EPILOGUES: Dict[str, Callable] = {
    "relu": lambda x: np.maximum(x, 0.0),
    "tanh": np.tanh,
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
}


def _np_dtype(meta) -> np.dtype:
    return meta.dtype.numpy_dtype


# -- independent operator implementations -----------------------------------

def _g_fc(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
    x, w = xs[0].astype(np.float32), xs[1].astype(np.float32)
    acc = np.matmul(x, w.T)
    if len(xs) > 2:
        acc = acc + xs[2].astype(np.float32)
    return acc.astype(_np_dtype(node.meta))


def _g_embedding_bag(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
    table, indices = xs[0], xs[1]
    rows = table[indices].astype(np.float32)
    if len(xs) > 2:
        rows = rows * xs[2].astype(np.float32)[..., None]
    return (rows.sum(axis=1)
            * node.attrs.get("scale", 1.0)).astype(np.float32)


def _g_tbe(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
    scale = node.attrs.get("scale", 1.0)
    pooled = [t[idx].astype(np.float32).sum(axis=1) * scale
              for t, idx in zip(xs[0::2], xs[1::2])]
    return np.concatenate(pooled, axis=1).astype(np.float32)


def _g_concat(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
    return np.concatenate(list(xs), axis=node.attrs.get("axis", 1)).astype(
        _np_dtype(node.meta))


def _g_transpose(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
    return np.ascontiguousarray(np.swapaxes(xs[0], 0, 1))


def _g_relayout(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
    return np.ascontiguousarray(xs[0])


def _g_batch_matmul(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
    out = np.matmul(xs[0].astype(np.float32), xs[1].astype(np.float32))
    return out.astype(_np_dtype(node.meta))


def _g_quantize(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
    scale = node.attrs.get("scale", 1.0)
    zp = node.attrs.get("zero_point", 0)
    levels = np.rint(xs[0].astype(np.float32) / np.float32(scale)) + zp
    return np.clip(levels, -128, 127).astype(np.int8)


def _g_dequantize(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
    scale = node.attrs.get("scale", 1.0)
    zp = node.attrs.get("zero_point", 0)
    return ((xs[0].astype(np.float32) - zp) * scale).astype(np.float32)


def _g_unary(fn: Callable) -> Callable:
    def run(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
        return fn(xs[0].astype(np.float32)).astype(np.float32)
    return run


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(
        np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)))


def _g_softmax(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
    x = xs[0].astype(np.float64)
    axis = node.attrs.get("axis", -1)
    e = np.exp(x - x.max(axis=axis, keepdims=True))
    return (e / e.sum(axis=axis, keepdims=True)).astype(np.float32)


def _g_layernorm(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
    x = xs[0].astype(np.float64)
    eps = node.attrs.get("eps", 1e-5)
    centered = x - x.mean(axis=-1, keepdims=True)
    return (centered / np.sqrt(x.var(axis=-1, keepdims=True)
                               + eps)).astype(np.float32)


def _g_binary(fn: Callable) -> Callable:
    def run(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
        out = fn(xs[0].astype(np.float32), xs[1].astype(np.float32))
        return out.astype(_np_dtype(node.meta))
    return run


def _g_reshape(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
    return xs[0].reshape(node.meta.shape)


def _g_slice(node: Node, xs: Sequence[np.ndarray]) -> np.ndarray:
    axis = node.attrs.get("axis", 1)
    index = [slice(None)] * xs[0].ndim
    index[axis] = slice(node.attrs["start"], node.attrs["stop"])
    return np.ascontiguousarray(xs[0][tuple(index)])


GOLDEN_OPS: Dict[str, Callable] = {
    "fc": _g_fc,
    "embedding_bag": _g_embedding_bag,
    "tbe": _g_tbe,
    "concat": _g_concat,
    "transpose": _g_transpose,
    "relayout": _g_relayout,
    "batch_matmul": _g_batch_matmul,
    "quantize": _g_quantize,
    "dequantize": _g_dequantize,
    "relu": _g_unary(lambda x: np.maximum(x, 0.0)),
    "tanh": _g_unary(np.tanh),
    "sigmoid": _g_unary(lambda x: 1.0 / (1.0 + np.exp(-x))),
    "gelu": _g_unary(_gelu),
    "softmax": _g_softmax,
    "layernorm": _g_layernorm,
    "add": _g_binary(np.add),
    "mul": _g_binary(np.multiply),
    "reshape": _g_reshape,
    "slice": _g_slice,
}


def evaluate_graph(graph: Graph, feeds: Dict[str, np.ndarray],
                   weights: Optional[Dict[str, np.ndarray]] = None
                   ) -> Dict[str, np.ndarray]:
    """Evaluate ``graph`` with the reference semantics.

    Returns ``{output_name: array}``.  Raises ``KeyError`` for an
    unbound input and ``ValueError`` for an operator the reference
    does not model (a safety net against silently skipping coverage).
    """
    weights = weights or {}
    values: Dict[str, np.ndarray] = {}
    for node in graph:
        if node.op == "input":
            values[node.name] = np.asarray(feeds[node.name])
        elif node.op == "weight":
            if node.name in weights:
                values[node.name] = np.asarray(weights[node.name])
            elif node.attrs.get("data") is not None:
                values[node.name] = np.asarray(node.attrs["data"])
            else:
                values[node.name] = np.zeros(node.meta.shape,
                                             _np_dtype(node.meta))
        else:
            impl = GOLDEN_OPS.get(node.op)
            if impl is None:
                raise ValueError(
                    f"golden reference has no semantics for {node.op!r}")
            out = impl(node, [values[i] for i in node.inputs])
            epilogue = node.attrs.get("epilogue")
            if epilogue:
                out = _EPILOGUES[epilogue](
                    out.astype(np.float32)).astype(np.float32)
            values[node.name] = out
    return {name: values[name] for name in graph.outputs}


# -- comparison --------------------------------------------------------------

@dataclass(frozen=True)
class TolerancePolicy:
    """How closely two executions must agree.

    Integer (quantized) outputs must match bit-for-bit; floating-point
    outputs within ``atol``/``rtol`` (numpy broadcasting rules).
    """

    atol: float = 1e-4
    rtol: float = 1e-4


@dataclass
class Divergence:
    """One output pair that disagreed."""

    output: str
    reason: str
    max_abs_err: float = float("nan")

    def to_dict(self) -> Dict:
        return {"output": self.output, "reason": self.reason,
                "max_abs_err": self.max_abs_err}


def compare_outputs(actual: Dict[str, np.ndarray],
                    expected: Dict[str, np.ndarray],
                    policy: TolerancePolicy = TolerancePolicy(),
                    actual_names: Optional[Sequence[str]] = None,
                    expected_names: Optional[Sequence[str]] = None
                    ) -> List[Divergence]:
    """Compare two output dicts; returns the list of divergences.

    Fusion may rename graph outputs (an epilogue-folded activation's
    output becomes its producer), so callers comparing a fused run
    against an unfused reference pass both graphs' ``outputs`` lists;
    the comparison is positional.  With the name sequences omitted the
    dicts are matched key-by-key.
    """
    if actual_names is None or expected_names is None:
        actual_names = expected_names = sorted(expected)
    divergences: List[Divergence] = []
    for a_name, e_name in zip(actual_names, expected_names):
        got, want = actual[a_name], expected[e_name]
        label = (e_name if a_name == e_name
                 else f"{e_name} (fused: {a_name})")
        if got.shape != want.shape:
            divergences.append(Divergence(
                label, f"shape {got.shape} != {want.shape}"))
            continue
        if got.dtype != want.dtype:
            divergences.append(Divergence(
                label, f"dtype {got.dtype} != {want.dtype}"))
            continue
        if np.issubdtype(want.dtype, np.integer):
            if not np.array_equal(got, want):
                err = float(np.max(np.abs(got.astype(np.int64)
                                          - want.astype(np.int64))))
                divergences.append(Divergence(
                    label, "quantized outputs differ (exact match "
                    "required)", err))
        else:
            close = np.isclose(got, want, atol=policy.atol,
                               rtol=policy.rtol, equal_nan=True)
            if not close.all():
                err = float(np.max(np.abs(got.astype(np.float64)
                                          - want.astype(np.float64))))
                divergences.append(Divergence(
                    label, f"{int((~close).sum())} elements outside "
                    f"atol={policy.atol}/rtol={policy.rtol}", err))
    return divergences
