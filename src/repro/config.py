"""Chip and machine configuration for the MTIA v1 accelerator.

All parameters come from Table I of the paper ("Summary of MTIA features
and parameters") and from the architecture description in Section 3.
Quantities that the paper reports as headline numbers (GEMM TOPS, memory
bandwidths) are *derived* from the micro-architectural parameters here,
and :mod:`tests.test_config` checks that the derivations land on the
published values.  That gives us confidence that the simulator's machine
model is internally consistent with the silicon the paper describes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class DPEConfig:
    """Dot-Product Engine parameters (Section 3.1.2).

    The DPE multiplies a resident operand-A block against a streamed
    operand-B block.  It performs 1024 INT8 MACs (a 32x32 block) or 512
    FP16/BF16 MACs (a 32x16 block) per cycle, and a full 32x32x32
    multiplication takes 32 cycles.
    """

    block_m: int = 32
    block_n: int = 32
    block_k: int = 32
    int8_macs_per_cycle: int = 1024
    fp16_macs_per_cycle: int = 512
    #: Cycles to multiply two maximum-size (32x32x32) blocks.
    block_matmul_cycles: int = 32
    #: Entries in the operand cache that lets the DPE skip local-memory
    #: reads on operand reuse (Section 3.5, "Caching").
    operand_cache_entries: int = 8

    def macs_per_cycle(self, dtype: str) -> int:
        """MAC throughput for ``dtype`` ("int8", "fp16", or "bf16")."""
        if dtype == "int8":
            return self.int8_macs_per_cycle
        if dtype in ("fp16", "bf16"):
            return self.fp16_macs_per_cycle
        raise ValueError(f"DPE does not support dtype {dtype!r}")


@dataclass(frozen=True)
class SEConfig:
    """SIMD Engine parameters (Section 3.1.4).

    Throughputs correspond to Table I's "SIMD TOPS" row: the SE reaches
    1.6 TOPS FP16 and 3.2 TOPS INT8 chip-wide, i.e. 32 INT8 (16 FP16)
    lanes per PE at 800 MHz x 64 PEs x 2 ops = 3.28/1.64 TOPS.
    """

    int8_lanes: int = 32
    fp16_lanes: int = 16
    fp32_lanes: int = 8
    #: Latency in cycles of a table lookup + interpolation for a
    #: nonlinear function approximation (exp, sigmoid, tanh, ...).
    nonlinear_latency: int = 4
    lut_entries: int = 256

    def lanes(self, dtype: str) -> int:
        """Elementwise lanes per cycle for ``dtype``."""
        table = {"int8": self.int8_lanes, "fp16": self.fp16_lanes,
                 "bf16": self.fp16_lanes, "fp32": self.fp32_lanes,
                 "int32": self.fp32_lanes}
        if dtype not in table:
            raise ValueError(f"SE does not support dtype {dtype!r}")
        return table[dtype]


@dataclass(frozen=True)
class MLUConfig:
    """Memory Layout Unit parameters (Section 3.1.1)."""

    #: Bytes the MLU can move/re-layout per cycle.
    bytes_per_cycle: int = 64
    supported_element_bits: tuple = (4, 8, 16, 32)


@dataclass(frozen=True)
class REConfig:
    """Reduction Engine parameters (Section 3.1.3)."""

    #: Independent accumulator banks (the FC mapping in Section 4 uses
    #: all four to hold a 2x2 arrangement of 32x32 partial blocks).
    accumulator_banks: int = 4
    #: Each bank holds one 32x32 block of FP32/INT32 partials.
    bank_rows: int = 32
    bank_cols: int = 32
    #: Cycles to push one bank over the reduction network to a neighbour.
    reduction_hop_cycles: int = 32


@dataclass(frozen=True)
class VectorConfig:
    """RISC-V vector extension parameters (Section 3.2).

    One of the two cores implements RVV 0.8.1 with 32 vector registers,
    each 64 B wide; Table I reports 0.8 TFLOPS FP32 / 1.6 FP16 / 3.2 INT8
    chip-wide, i.e. 8 FP32 FMA lanes per PE (a 64 B register retired
    over two cycles).
    """

    num_registers: int = 32
    register_bytes: int = 64
    fp32_lanes: int = 8
    fp16_lanes: int = 16
    int8_lanes: int = 32


@dataclass(frozen=True)
class LocalMemoryConfig:
    """PE-local memory (Section 3.3) and its arbitration."""

    capacity_bytes: int = 128 * KIB
    num_banks: int = 8
    #: Aggregate bandwidth per PE (Table I: 400 GB/s per PE at 800 MHz
    #: nominal = 512 B/cycle -> 64 B/cycle per bank over 8 banks).
    bytes_per_cycle: int = 512
    #: Access latency in cycles.  The paper calls out "longer than
    #: typical" latencies caused by multi-client arbitration
    #: (Section 7, "Memory Latency").
    access_latency: int = 6
    max_circular_buffers: int = 32


@dataclass(frozen=True)
class SRAMConfig:
    """On-chip SRAM (Section 3.4): 128 MB in slices around the grid."""

    capacity_bytes: int = 128 * MIB
    num_slices: int = 16
    #: Table I: 800 GB/s aggregate = 1024 B/cycle at 800 MHz.
    bytes_per_cycle: int = 1024
    #: Base access latency (cycles); non-uniform placement adds
    #: per-hop distance costs (Section 7, "Memory Latency").
    base_latency: int = 30
    per_hop_latency: int = 2
    #: In cache mode each group of four slices fronts one DRAM
    #: controller (Section 3.4).
    slices_per_controller: int = 4
    cache_line_bytes: int = 64
    cache_ways: int = 8


@dataclass(frozen=True)
class DRAMConfig:
    """Off-chip LPDDR5 (Section 3.4 / Table I)."""

    num_controllers: int = 4
    channels_per_controller: int = 4
    capacity_bytes: int = 64 * GIB
    #: Table I: 176 GB/s theoretical aggregate = 225 B/cycle at 800 MHz.
    total_bandwidth_gbs: float = 176.0
    access_latency: int = 100
    #: Achievable fraction of theoretical bandwidth under random access.
    random_access_efficiency: float = 0.55

    @property
    def num_channels(self) -> int:
        return self.num_controllers * self.channels_per_controller

    def bytes_per_cycle(self, frequency_ghz: float) -> float:
        """Aggregate DRAM bytes per accelerator clock cycle."""
        return self.total_bandwidth_gbs / frequency_ghz


@dataclass(frozen=True)
class NoCConfig:
    """On-chip network (Section 3.4)."""

    #: Link width of the AXI data network, bytes per cycle per link.
    link_bytes_per_cycle: int = 64
    #: Router traversal latency per hop, cycles.
    hop_latency: int = 2
    #: Multicast is supported only along a full row or column.
    multicast_row_col_only: bool = True


@dataclass(frozen=True)
class FIConfig:
    """Fabric Interface DMA engines (Sections 3.1.5 and 3.5).

    "Memory level parallelism (MLP) is achieved by allowing many
    outstanding requests to on-chip and off-chip memories from each
    PE" — the outstanding-request limits below set how deep that
    pipelining goes.
    """

    max_outstanding_loads: int = 8
    max_outstanding_stores: int = 4


@dataclass(frozen=True)
class CommandProcessorConfig:
    """Command Processor (Section 3.1.6)."""

    #: Command queue depth per scheduler (one scheduler per core).
    queue_depth: int = 16
    #: Cycles for a core to assemble and issue one command to the CP.
    #: Section 7 ("Automated Code Generation") notes that commands carry
    #: many parameters; this is the per-command issue overhead.
    issue_cycles: int = 8
    #: Dispatch overhead once dependencies are satisfied.
    dispatch_cycles: int = 2


@dataclass(frozen=True)
class ChipConfig:
    """Top-level MTIA chip configuration (Table I).

    The default instance is the 64-PE (8x8) part at 800 MHz nominal.
    """

    name: str = "MTIA v1"
    grid_rows: int = 8
    grid_cols: int = 8
    frequency_ghz: float = 0.8
    max_frequency_ghz: float = 1.1
    tdp_watts: float = 25.0
    process: str = "TSMC 7nm"
    die_area_mm2: float = 373.0
    pcie_gen: int = 4
    pcie_lanes: int = 8
    pcie_gbs: float = 16.0

    dpe: DPEConfig = field(default_factory=DPEConfig)
    se: SEConfig = field(default_factory=SEConfig)
    mlu: MLUConfig = field(default_factory=MLUConfig)
    re: REConfig = field(default_factory=REConfig)
    vector: VectorConfig = field(default_factory=VectorConfig)
    local_memory: LocalMemoryConfig = field(default_factory=LocalMemoryConfig)
    sram: SRAMConfig = field(default_factory=SRAMConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    noc: NoCConfig = field(default_factory=NoCConfig)
    cp: CommandProcessorConfig = field(default_factory=CommandProcessorConfig)
    fi: FIConfig = field(default_factory=FIConfig)

    @property
    def num_pes(self) -> int:
        return self.grid_rows * self.grid_cols

    def gemm_tops(self, dtype: str) -> float:
        """Peak GEMM TOPS for ``dtype`` (Table I: 102.4 INT8, 51.2 FP16).

        Table I quotes MAC TOPS, i.e. one multiply-accumulate counted as
        two operations at the *quoted* 102.4 figure corresponds to
        1024 MACs x 64 PEs x 0.8 GHz x 2 ops / 1e12 = 104.9; the paper
        rounds to the marketing figure 102.4 (= 1024 x 64 x 0.8 x 2 with
        a 1000/1024 scaling).  We report the exact derivation.
        """
        macs = self.dpe.macs_per_cycle(dtype)
        return macs * self.num_pes * self.frequency_ghz * 2 / 1e3

    def simd_tops(self, dtype: str, engine: str = "se") -> float:
        """Peak SIMD TOPS chip-wide for the SE or the vector cores."""
        if engine == "se":
            lanes = self.se.lanes(dtype)
        elif engine == "vector":
            lanes = {"fp32": self.vector.fp32_lanes,
                     "fp16": self.vector.fp16_lanes,
                     "int8": self.vector.int8_lanes}[dtype]
        else:
            raise ValueError(f"unknown SIMD engine {engine!r}")
        return lanes * self.num_pes * self.frequency_ghz * 2 / 1e3

    def local_memory_gbs(self) -> float:
        """Per-PE local memory bandwidth in GB/s (Table I: 400)."""
        return self.local_memory.bytes_per_cycle * self.frequency_ghz

    def sram_gbs(self) -> float:
        """Aggregate on-chip SRAM bandwidth in GB/s (Table I: 800)."""
        return self.sram.bytes_per_cycle * self.frequency_ghz

    def dram_gbs(self) -> float:
        """Aggregate off-chip DRAM bandwidth in GB/s (Table I: 176)."""
        return self.dram.total_bandwidth_gbs

    def summary(self) -> dict:
        """Table I as a dictionary (used by the Table I benchmark)."""
        return {
            "Technology": self.process,
            "Frequency": f"{self.frequency_ghz * 1000:.0f}MHz nominal "
                         f"({self.max_frequency_ghz:.1f} GHz max)",
            "Dimensions": f"{self.die_area_mm2:.0f} mm2",
            "TDP": f"{self.tdp_watts:.0f} W",
            "Host Connectivity": f"{self.pcie_lanes}x PCIe Gen{self.pcie_gen} "
                                 f"({self.pcie_gbs:.0f} GB/s)",
            "GEMM TOPS (INT8)": round(self.gemm_tops("int8"), 1),
            "GEMM TOPS (FP16)": round(self.gemm_tops("fp16"), 1),
            "SIMD TOPS Vector (FP32)": round(self.simd_tops("fp32", "vector"), 1),
            "SIMD TOPS SE (FP16)": round(self.simd_tops("fp16", "se"), 1),
            "SIMD TOPS SE (INT8)": round(self.simd_tops("int8", "se"), 1),
            "Local memory BW (GB/s per PE)": round(self.local_memory_gbs()),
            "On-chip SRAM BW (GB/s)": round(self.sram_gbs()),
            "Off-chip DRAM BW (GB/s)": round(self.dram_gbs()),
            "Local memory capacity (KB per PE)":
                self.local_memory.capacity_bytes // KIB,
            "On-chip SRAM capacity (MB)": self.sram.capacity_bytes // MIB,
            "Off-chip DRAM capacity (GB)": self.dram.capacity_bytes // GIB,
        }

    def scaled(self, **overrides) -> "ChipConfig":
        """Return a copy with top-level fields replaced (for ablations)."""
        return dataclasses.replace(self, **overrides)


#: The canonical chip instance used throughout the library.
MTIA_V1 = ChipConfig()
