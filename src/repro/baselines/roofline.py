"""Roofline model.

The paper uses roofline reasoning throughout Section 6 ("roofline
modeling indicates there is significant room for improvement", ">60 %
of roofline").  This module implements the classic two-ceiling model:
attainable performance = min(peak compute, arithmetic intensity x
bandwidth), with optional extra bandwidth ceilings for multi-level
memory (DRAM vs on-chip SRAM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on a roofline."""

    name: str
    arithmetic_intensity: float     #: FLOPs per byte
    achieved_gflops: float

    def efficiency(self, roofline: "Roofline",
                   ceiling: Optional[str] = None) -> float:
        """Achieved / attainable at this intensity."""
        attainable = roofline.attainable_gflops(self.arithmetic_intensity,
                                                ceiling)
        return self.achieved_gflops / attainable if attainable else 0.0


@dataclass
class Roofline:
    """A compute ceiling plus one or more bandwidth ceilings."""

    name: str
    peak_gflops: float
    #: bandwidth ceilings in GB/s, keyed by level name ("dram", "sram")
    bandwidth_gbs: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.peak_gflops <= 0:
            raise ValueError("peak must be positive")
        if not self.bandwidth_gbs:
            raise ValueError("need at least one bandwidth ceiling")
        for level, bw in self.bandwidth_gbs.items():
            if bw <= 0:
                raise ValueError(f"bandwidth {level!r} must be positive")

    def attainable_gflops(self, intensity: float,
                          ceiling: Optional[str] = None) -> float:
        """Attainable GFLOP/s at ``intensity`` under one ceiling.

        ``ceiling=None`` uses the *highest* bandwidth level (data
        resident at the fastest level), the optimistic bound.
        """
        if intensity <= 0:
            return 0.0
        if ceiling is None:
            bw = max(self.bandwidth_gbs.values())
        else:
            bw = self.bandwidth_gbs[ceiling]
        return min(self.peak_gflops, intensity * bw)

    def ridge_intensity(self, ceiling: Optional[str] = None) -> float:
        """Intensity where the workload turns compute bound."""
        if ceiling is None:
            bw = max(self.bandwidth_gbs.values())
        else:
            bw = self.bandwidth_gbs[ceiling]
        return self.peak_gflops / bw

    def bound_kind(self, intensity: float,
                   ceiling: Optional[str] = None) -> str:
        """"memory" or "compute" at this intensity."""
        return ("compute" if intensity >= self.ridge_intensity(ceiling)
                else "memory")

    def sweep(self, intensities, ceiling: Optional[str] = None
              ) -> List[Tuple[float, float]]:
        """(intensity, attainable) series for plotting."""
        return [(x, self.attainable_gflops(x, ceiling)) for x in intensities]
