"""Per-device roofline constructors.

Built from the same Table I/II specifications as the analytical machine
models, so roofline reasoning and operator timing share one source of
truth.
"""

from __future__ import annotations

from repro.baselines.roofline import Roofline
from repro.eval.machines import (A100_MACHINE, MTIA_MACHINE, NNPI_MACHINE,
                                 MachineModel)


def _from_machine(machine: MachineModel, dtype: str) -> Roofline:
    return Roofline(
        name=f"{machine.name} ({dtype})",
        peak_gflops=machine.peak_tops[dtype] * 1000.0,
        bandwidth_gbs={"dram": machine.dram_gbs,
                       "onchip": machine.onchip_gbs},
    )


def mtia_roofline(dtype: str = "int8") -> Roofline:
    """MTIA's roofline: 102.4 INT8 TOPS over 176 GB/s DRAM / 800 GB/s SRAM."""
    return _from_machine(MTIA_MACHINE, dtype)


def gpu_roofline(dtype: str = "int8") -> Roofline:
    """A100's roofline: 624 INT8 TOPS over ~1.5 TB/s HBM."""
    return _from_machine(A100_MACHINE, dtype)


def nnpi_roofline(dtype: str = "int8") -> Roofline:
    """NNPI's roofline: 50 INT8 TOPS over 50 GB/s LPDDR."""
    return _from_machine(NNPI_MACHINE, dtype)
