"""Baseline accelerator models and roofline analysis.

The evaluation compares MTIA against the NNPI accelerator (Yosemite V2)
and the A100 GPU (Zion4S).  Their analytical machine models live in
:mod:`repro.eval.machines`; this package adds the roofline framework
used to reason about them and the per-device convenience wrappers.
"""

from repro.baselines.roofline import Roofline, RooflinePoint
from repro.baselines.devices import (gpu_roofline, mtia_roofline,
                                     nnpi_roofline)

__all__ = [
    "Roofline",
    "RooflinePoint",
    "gpu_roofline",
    "mtia_roofline",
    "nnpi_roofline",
]
