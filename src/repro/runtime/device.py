"""The MTIA device abstraction and multi-card sets (Section 5).

``MTIADevice`` wraps one simulated accelerator card with the host-side
services the PyTorch runtime layer provides: tensor allocation in DRAM
or the SRAM scratchpad, host<->device copies (charged against the PCIe
link), streams, and a virtual clock that analytical-model execution can
advance.  ``DeviceSet`` groups cards for models "split into partitions
spanning multiple cards".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import MTIA_V1, ChipConfig
from repro.core.accelerator import Accelerator
from repro.memory import SRAMMode
from repro.runtime.stream import Stream
from repro.runtime.tensor import DeviceTensor, TensorMeta


class MTIADevice:
    """One accelerator card plus its host-side runtime state."""

    def __init__(self, config: ChipConfig = MTIA_V1,
                 sram_mode: SRAMMode = SRAMMode.SCRATCHPAD,
                 index: int = 0) -> None:
        self.config = config
        self.index = index
        self.accelerator = Accelerator(config, sram_mode=sram_mode)
        self.default_stream = Stream(self, "default")
        self._streams: List[Stream] = [self.default_stream]
        #: virtual cycles consumed by analytical-model execution, on top
        #: of whatever the cycle-level simulator has consumed.
        self._virtual_cycles: float = 0.0
        #: host<->device copy bandwidth in bytes/cycle (PCIe Gen4 x8).
        self._pcie_bytes_per_cycle = (config.pcie_gbs
                                      / config.frequency_ghz)

    # -- clock ----------------------------------------------------------
    @property
    def cycles(self) -> float:
        return self.accelerator.cycles + self._virtual_cycles

    def advance(self, cycles: float) -> None:
        """Consume virtual time (analytical execution)."""
        if cycles < 0:
            raise ValueError("cannot advance the clock backwards")
        self._virtual_cycles += cycles

    def advance_to(self, horizon: float) -> None:
        if horizon > self.cycles:
            self.advance(horizon - self.cycles)

    def seconds(self, cycles: Optional[float] = None) -> float:
        cycles = self.cycles if cycles is None else cycles
        return cycles / (self.config.frequency_ghz * 1e9)

    # -- streams -----------------------------------------------------------
    def stream(self, name: str = "") -> Stream:
        s = Stream(self, name or f"stream{len(self._streams)}")
        self._streams.append(s)
        return s

    def synchronize(self) -> None:
        for s in self._streams:
            self.advance_to(s.horizon)

    # -- memory -----------------------------------------------------------
    def empty(self, shape, dtype="fp32", region: str = "dram",
              name: str = "", scale: float = 1.0,
              zero_point: int = 0) -> DeviceTensor:
        """Allocate an uninitialised device tensor."""
        meta = TensorMeta(tuple(shape), dtype, scale, zero_point)
        if region == "sram":
            addr = self.accelerator.alloc_sram(meta.nbytes)
        elif region == "dram":
            addr = self.accelerator.alloc_dram(meta.nbytes)
        else:
            raise ValueError(f"unknown region {region!r}")
        return DeviceTensor(meta=meta, device=self, addr=addr,
                            region=region, name=name)

    def from_numpy(self, array: np.ndarray, region: str = "dram",
                   name: str = "", scale: float = 1.0,
                   zero_point: int = 0,
                   stream: Optional[Stream] = None) -> DeviceTensor:
        """Copy a host array to the device (charging PCIe time)."""
        from repro.dtypes import _BY_NAME  # local import to avoid cycle
        np_to_dev = {np.dtype(np.int8): "int8", np.dtype(np.int32): "int32",
                     np.dtype(np.float16): "fp16",
                     np.dtype(np.float32): "fp32"}
        dev_dtype = np_to_dev.get(array.dtype)
        if dev_dtype is None:
            raise ValueError(f"unsupported host dtype {array.dtype}")
        tensor = self.empty(array.shape, dev_dtype, region, name,
                            scale, zero_point)
        tensor.from_host(array)
        stream = stream or self.default_stream
        stream.enqueue(f"h2d:{name}",
                       array.nbytes / self._pcie_bytes_per_cycle)
        return tensor

    def to_numpy(self, tensor: DeviceTensor,
                 stream: Optional[Stream] = None) -> np.ndarray:
        """Copy a device tensor to the host (charging PCIe time)."""
        stream = stream or self.default_stream
        stream.enqueue(f"d2h:{tensor.name}",
                       tensor.nbytes / self._pcie_bytes_per_cycle)
        return tensor.to_host()

    def __repr__(self) -> str:
        return f"MTIADevice(index={self.index}, cycles={self.cycles:.0f})"


class DeviceSet:
    """A group of cards a partitioned model spans (Section 5).

    Cards are connected over PCIe; ``p2p_copy`` charges the
    card-to-card bandwidth from Table II (12.8 GB/s for Yosemite V3).
    """

    def __init__(self, num_devices: int, config: ChipConfig = MTIA_V1,
                 sram_mode: SRAMMode = SRAMMode.SCRATCHPAD,
                 p2p_gbs: float = 12.8) -> None:
        if num_devices < 1:
            raise ValueError("need at least one device")
        self.devices = [MTIADevice(config, sram_mode, index=i)
                        for i in range(num_devices)]
        self.p2p_gbs = p2p_gbs

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, index: int) -> MTIADevice:
        return self.devices[index]

    def p2p_copy(self, src: DeviceTensor, dst_device: MTIADevice,
                 name: str = "") -> DeviceTensor:
        """Copy a tensor to another card over the device-to-device path."""
        data = src.to_host()
        dst = dst_device.from_numpy(data, region="dram",
                                    name=name or src.name)
        cycles = src.nbytes / (self.p2p_gbs
                               / dst_device.config.frequency_ghz)
        src.device.default_stream.enqueue(f"p2p:{src.name}", cycles)
        dst_device.default_stream.enqueue(f"p2p:{src.name}", cycles)
        return dst

    def synchronize(self) -> None:
        for device in self.devices:
            device.synchronize()

    @property
    def cycles(self) -> float:
        """Makespan across cards."""
        return max(device.cycles for device in self.devices)
