"""Device tensors and tensor metadata.

A :class:`DeviceTensor` is the runtime's handle to an array in device
memory: shape, dtype, the device address, the memory region it lives in
("dram" or "sram" — the placement the compiler's tensor-placement pass
decided, Section 5), and quantisation parameters for INT8 data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.dtypes import DType, dtype as resolve_dtype


@dataclass(frozen=True)
class TensorMeta:
    """Shape/dtype/quantisation metadata, independent of storage."""

    shape: Tuple[int, ...]
    dtype: DType
    scale: float = 1.0
    zero_point: int = 0

    def __post_init__(self):
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        object.__setattr__(self, "dtype", resolve_dtype(self.dtype))

    @property
    def numel(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.numel * self.dtype.bytes

    def with_shape(self, shape: Tuple[int, ...]) -> "TensorMeta":
        return TensorMeta(shape, self.dtype, self.scale, self.zero_point)


@dataclass
class DeviceTensor:
    """An array resident in one device's memory."""

    meta: TensorMeta
    device: "object"            # MTIADevice; untyped to avoid a cycle
    addr: int
    region: str = "dram"        # "dram" or "sram"
    name: str = ""

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.meta.shape

    @property
    def dtype(self) -> DType:
        return self.meta.dtype

    @property
    def nbytes(self) -> int:
        return self.meta.nbytes

    def to_host(self) -> np.ndarray:
        """Copy the tensor back to the host as a numpy array."""
        return self.device.accelerator.download(
            self.addr, self.shape, self.dtype.numpy_dtype)

    def from_host(self, array: np.ndarray) -> "DeviceTensor":
        """Overwrite device contents from a host array."""
        array = np.ascontiguousarray(array, dtype=self.dtype.numpy_dtype)
        if array.shape != self.shape:
            raise ValueError(f"shape mismatch: {array.shape} vs {self.shape}")
        self.device.accelerator.memory.poke(self.addr, array)
        return self

    def __repr__(self) -> str:
        return (f"DeviceTensor({self.name or 'anon'}, shape={self.shape}, "
                f"dtype={self.dtype.name}, region={self.region}, "
                f"addr={self.addr:#x})")
