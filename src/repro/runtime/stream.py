"""CUDA-like streams for the MTIA runtime (Section 5).

A stream is an in-order queue of host-scheduled work items; separate
streams may overlap on the device.  The runtime uses streams to overlap
host-to-device copies with compute and to express multi-card pipeline
parallelism.  In the simulator a work item is any callable returning a
duration in cycles (or a kernel launch on the DES); the stream tracks
its own completion horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class StreamEvent:
    """A marker in a stream, recorded at enqueue and queried later."""

    stream: "Stream"
    at_cycles: float

    def query(self) -> bool:
        """Has the device progressed past this event?"""
        return self.stream.device_cycles() >= self.at_cycles

    def elapsed_until(self, other: "StreamEvent") -> float:
        """Cycles between two events (CUDA ``event_elapsed_time``)."""
        return other.at_cycles - self.at_cycles


class Stream:
    """An in-order work queue with a completion horizon in cycles."""

    def __init__(self, device, name: str = "stream") -> None:
        self.device = device
        self.name = name
        #: cycle at which all enqueued work completes
        self._horizon: float = 0.0
        self._items: List[str] = []

    def device_cycles(self) -> float:
        return self.device.cycles

    @property
    def horizon(self) -> float:
        return self._horizon

    def enqueue(self, label: str, duration_cycles: float,
                not_before: Optional[float] = None) -> StreamEvent:
        """Schedule ``duration_cycles`` of work; returns its end event.

        ``not_before`` expresses a cross-stream dependency (the effect
        of ``wait_event`` on another stream's event).
        """
        start = max(self._horizon, self.device.cycles)
        if not_before is not None:
            start = max(start, not_before)
        self._horizon = start + duration_cycles
        self._items.append(label)
        return StreamEvent(self, self._horizon)

    def wait_event(self, event: StreamEvent) -> None:
        """Make subsequent work on this stream wait for ``event``."""
        self._horizon = max(self._horizon, event.at_cycles)

    def record_event(self) -> StreamEvent:
        return StreamEvent(self, self._horizon)

    def synchronize(self) -> float:
        """Advance the device clock to this stream's horizon."""
        self.device.advance_to(self._horizon)
        return self._horizon

    def __repr__(self) -> str:
        return (f"Stream({self.name!r}, items={len(self._items)}, "
                f"horizon={self._horizon:.0f})")
