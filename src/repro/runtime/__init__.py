"""PyTorch-Runtime-like layer for MTIA (Section 5).

The paper's runtime provides "MTIA Tensors, a host-side memory
allocator, and CUDA-like streaming APIs", plus eager and full-graph
execution modes and multi-card partitioning.  This package mirrors that
surface:

* :mod:`repro.runtime.tensor` — device tensors with dtype/quantisation
  metadata;
* :mod:`repro.runtime.device` — an ``MTIADevice`` wrapping one
  simulated accelerator card, and ``DeviceSet`` for multi-card;
* :mod:`repro.runtime.stream` — in-order command streams with events;
* :mod:`repro.runtime.executor` — eager and graph execution of compiled
  operator graphs, functionally with numpy and with timing from either
  the cycle-level simulator (small operators) or the analytical
  performance model (full models).
"""

from repro.runtime.device import DeviceSet, MTIADevice
from repro.runtime.executor import ExecutionReport, GraphExecutor
from repro.runtime.stream import Stream, StreamEvent
from repro.runtime.tensor import DeviceTensor, TensorMeta

__all__ = [
    "DeviceSet",
    "DeviceTensor",
    "ExecutionReport",
    "GraphExecutor",
    "MTIADevice",
    "Stream",
    "StreamEvent",
    "TensorMeta",
]
