"""Multi-card model execution estimation.

Section 5: the runtime "supports running models split into partitions
spanning multiple cards, providing the necessary synchronization and
communication channels between them".  For the Table IV giants (HC is
725 GB against 32 GB of device DRAM), inference is distributed:

* every card holds a shard of the embedding tables and performs its
  share of the sparse lookups;
* the pooled vectors are gathered over the card-to-card links (PCIe on
  Yosemite V3) to the card owning the dense pipeline;
* the dense (interaction + MLP) part runs there.

``estimate_multi_card`` composes those three phases from the operator
model, the partitioner, and the Table II link bandwidths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler.ir import Graph
from repro.compiler.ops import op_costs
from repro.compiler.partitioner import Partition, partition_by_memory


@dataclass
class MultiCardEstimate:
    """Timing of one partitioned-inference batch."""

    cards: int
    sparse_seconds: float       #: max over cards of local lookup time
    gather_seconds: float       #: pooled-output transfer to the dense card
    dense_seconds: float        #: interaction + MLPs on the dense card
    gather_bytes: int

    @property
    def total_seconds(self) -> float:
        # Sparse lookups overlap across cards; the gather and the dense
        # pipeline serialise behind them.
        return self.sparse_seconds + self.gather_seconds + self.dense_seconds

    @property
    def scaling_efficiency(self) -> float:
        """Useful-work fraction vs a hypothetical infinite-memory card."""
        single = self.sparse_seconds * self.cards + self.dense_seconds
        return single / (self.total_seconds * self.cards)


def estimate_multi_card(graph: Graph, machine,
                        card_capacity_bytes: int = 32 * 10 ** 9,
                        p2p_gbs: float = 12.8,
                        partitions: Optional[List[Partition]] = None
                        ) -> MultiCardEstimate:
    """Estimate a partitioned inference batch on ``machine`` cards."""
    from repro.eval.opmodel import estimate_op

    if partitions is None:
        partitions = partition_by_memory(graph, card_capacity_bytes)
    owner: Dict[str, int] = {}
    for part in partitions:
        for name in part.weight_nodes:
            owner[name] = part.card

    per_card_sparse = [0.0] * len(partitions)
    gather_bytes = 0
    dense_seconds = 0.0
    for node in graph:
        if node.op in ("input", "weight"):
            continue
        input_metas = [graph.node(i).meta for i in node.inputs]
        costs = op_costs(node, input_metas)
        attrs = {"name": node.name}
        if node.op in ("embedding_bag", "tbe"):
            attrs["pooling"] = node.attrs.get("pooling", 32)
            attrs["batch"] = node.attrs.get("batch", 256)
            tables = node.inputs[0::2]
            dims = [graph.node(t).meta.shape[1] for t in tables]
            attrs["dim"] = int(sum(dims) / len(dims)) if dims else 128
            card = owner.get(tables[0], 0)
            est = estimate_op(machine, "eb", costs, attrs=attrs)
            per_card_sparse[card] += est.seconds
            if card != 0:
                gather_bytes += node.meta.nbytes
        else:
            dtype = (input_metas[0].dtype.name
                     if node.op in ("fc", "batch_matmul") and input_metas
                     else "fp16")
            if dtype not in ("int8", "fp16", "fp32"):
                dtype = "fp16"
            est = estimate_op(machine, costs.category, costs, dtype=dtype,
                              attrs=attrs)
            dense_seconds += est.seconds

    gather_seconds = gather_bytes / (p2p_gbs * 1e9) if gather_bytes else 0.0
    return MultiCardEstimate(
        cards=len(partitions),
        sparse_seconds=max(per_card_sparse) if per_card_sparse else 0.0,
        gather_seconds=gather_seconds,
        dense_seconds=dense_seconds,
        gather_bytes=gather_bytes,
    )
