"""Multi-card model execution estimation.

Section 5: the runtime "supports running models split into partitions
spanning multiple cards, providing the necessary synchronization and
communication channels between them".  For the Table IV giants (HC is
725 GB against 32 GB of device DRAM), inference is distributed:

* every card holds a shard of the embedding tables and performs its
  share of the sparse lookups;
* the pooled vectors are gathered over the card-to-card links (PCIe on
  Yosemite V3) to the card owning the dense pipeline;
* the dense (interaction + MLP) part runs there.

``estimate_multi_card`` composes those three phases from the operator
model, the partitioner, and the Table II link bandwidths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.ir import Graph
from repro.compiler.ops import op_costs
from repro.compiler.partitioner import Partition, partition_by_memory


@dataclass
class MultiCardEstimate:
    """Timing of one partitioned-inference batch."""

    cards: int
    sparse_seconds: float       #: max over cards of local lookup time
    gather_seconds: float       #: pooled-output transfer to the dense card
    dense_seconds: float        #: interaction + MLPs on the dense card
    gather_bytes: int

    @property
    def total_seconds(self) -> float:
        # Sparse lookups overlap across cards; the gather and the dense
        # pipeline serialise behind them.
        return self.sparse_seconds + self.gather_seconds + self.dense_seconds

    @property
    def scaling_efficiency(self) -> float:
        """Useful-work fraction vs a hypothetical infinite-memory card."""
        single = self.sparse_seconds * self.cards + self.dense_seconds
        return single / (self.total_seconds * self.cards)


def estimate_multi_card(graph: Graph, machine,
                        card_capacity_bytes: int = 32 * 10 ** 9,
                        p2p_gbs: float = 12.8,
                        partitions: Optional[List[Partition]] = None
                        ) -> MultiCardEstimate:
    """Estimate a partitioned inference batch on ``machine`` cards."""
    from repro.eval.opmodel import estimate_op

    if partitions is None:
        partitions = partition_by_memory(graph, card_capacity_bytes)
    owner: Dict[str, int] = {}
    for part in partitions:
        for name in part.weight_nodes:
            owner[name] = part.card

    per_card_sparse = [0.0] * len(partitions)
    gather_bytes = 0
    dense_seconds = 0.0
    for node in graph:
        if node.op in ("input", "weight"):
            continue
        input_metas = [graph.node(i).meta for i in node.inputs]
        costs = op_costs(node, input_metas)
        attrs = {"name": node.name}
        if node.op in ("embedding_bag", "tbe"):
            attrs["pooling"] = node.attrs.get("pooling", 32)
            attrs["batch"] = node.attrs.get("batch", 256)
            tables = node.inputs[0::2]
            dims = [graph.node(t).meta.shape[1] for t in tables]
            attrs["dim"] = int(sum(dims) / len(dims)) if dims else 128
            card = owner.get(tables[0], 0)
            est = estimate_op(machine, "eb", costs, attrs=attrs)
            per_card_sparse[card] += est.seconds
            if card != 0:
                gather_bytes += node.meta.nbytes
        else:
            dtype = (input_metas[0].dtype.name
                     if node.op in ("fc", "batch_matmul") and input_metas
                     else "fp16")
            if dtype not in ("int8", "fp16", "fp32"):
                dtype = "fp16"
            est = estimate_op(machine, costs.category, costs, dtype=dtype,
                              attrs=attrs)
            dense_seconds += est.seconds

    gather_seconds = gather_bytes / (p2p_gbs * 1e9) if gather_bytes else 0.0
    return MultiCardEstimate(
        cards=len(partitions),
        sparse_seconds=max(per_card_sparse) if per_card_sparse else 0.0,
        gather_seconds=gather_seconds,
        dense_seconds=dense_seconds,
        gather_bytes=gather_bytes,
    )


@dataclass
class FailoverEstimate:
    """Graceful degradation: inference timing after losing cards.

    When a card dies mid-serving, the runtime re-homes its embedding
    shards onto the survivors (overcommitting their memory if it must —
    an emergency failover trades capacity headroom for availability)
    and keeps serving at a recomputed, lower scaling efficiency.  This
    estimate quantifies that trade for the fault campaign's
    ``card.slowdown`` magnitudes.
    """

    baseline: MultiCardEstimate
    degraded: MultiCardEstimate
    failed_cards: Tuple[int, ...]
    #: embedding-shard bytes re-homed from the failed cards
    moved_weight_bytes: int

    @property
    def slowdown(self) -> float:
        """Degraded / baseline batch latency (>= 1 in practice)."""
        if self.baseline.total_seconds <= 0:
            return 1.0
        return self.degraded.total_seconds / self.baseline.total_seconds

    @property
    def efficiency_drop(self) -> float:
        """Scaling-efficiency points lost to the failover."""
        return (self.baseline.scaling_efficiency
                - self.degraded.scaling_efficiency)

    def to_dict(self) -> Dict:
        return {
            "failed_cards": list(self.failed_cards),
            "cards_before": self.baseline.cards,
            "cards_after": self.degraded.cards,
            "moved_weight_bytes": self.moved_weight_bytes,
            "baseline_seconds": self.baseline.total_seconds,
            "degraded_seconds": self.degraded.total_seconds,
            "slowdown": self.slowdown,
            "baseline_efficiency": self.baseline.scaling_efficiency,
            "degraded_efficiency": self.degraded.scaling_efficiency,
            "efficiency_drop": self.efficiency_drop,
        }


def estimate_failover(graph: Graph, machine,
                      failed_cards: Sequence[int],
                      card_capacity_bytes: int = 32 * 10 ** 9,
                      p2p_gbs: float = 12.8) -> FailoverEstimate:
    """Estimate serving after ``failed_cards`` drop out of a partition.

    The baseline partitioning is recomputed first-fit as usual; then
    each failed card's weight shards are re-homed largest-first onto
    the least-loaded survivor (capacity overcommit allowed — failover
    prefers degraded service over none).  If the dense-pipeline owner
    failed, the dense part moves to the first survivor.  Raises
    ``RuntimeError`` when no card survives.
    """
    baseline_parts = partition_by_memory(graph, card_capacity_bytes)
    baseline = estimate_multi_card(graph, machine, card_capacity_bytes,
                                   p2p_gbs, partitions=baseline_parts)

    failed = set(failed_cards)
    unknown = failed - {p.card for p in baseline_parts}
    if unknown:
        raise ValueError(f"failed cards {sorted(unknown)} not in the "
                         f"{len(baseline_parts)}-card partitioning")
    survivors = [p for p in baseline_parts if p.card not in failed]
    if not survivors:
        raise RuntimeError("all cards failed; nothing to fail over to")

    sizes: Dict[str, int] = {n.name: n.meta.nbytes
                             for n in graph.nodes_by_op("weight")}
    orphans = sorted(
        (name for p in baseline_parts if p.card in failed
         for name in p.weight_nodes),
        key=lambda name: -sizes.get(name, 0))

    # the dense pipeline must live somewhere; the gather model assumes
    # it is card 0 of the (renumbered) partition list
    if not any(p.owns_dense for p in survivors):
        survivors[0] = Partition(card=survivors[0].card,
                                 weight_nodes=list(survivors[0].weight_nodes),
                                 weight_bytes=survivors[0].weight_bytes,
                                 owns_dense=True)
    survivors.sort(key=lambda p: (not p.owns_dense, p.card))
    rehomed = [Partition(card=i, weight_nodes=list(p.weight_nodes),
                         weight_bytes=p.weight_bytes,
                         owns_dense=p.owns_dense)
               for i, p in enumerate(survivors)]

    moved = 0
    for name in orphans:
        size = sizes.get(name, 0)
        target = min(rehomed, key=lambda p: (p.weight_bytes, p.card))
        target.weight_nodes.append(name)
        target.weight_bytes += size
        moved += size

    degraded = estimate_multi_card(graph, machine, card_capacity_bytes,
                                   p2p_gbs, partitions=rehomed)
    return FailoverEstimate(
        baseline=baseline,
        degraded=degraded,
        failed_cards=tuple(sorted(failed)),
        moved_weight_bytes=moved,
    )
