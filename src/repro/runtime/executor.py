"""Graph execution: functional numpy semantics + modelled timing.

Two execution modes, mirroring Section 5's "eager mode, as well as full
graph compilation and execution":

* ``mode="eager"`` — each operator is dispatched individually: no
  fusion, every intermediate round-trips through DRAM, full per-op
  launch overhead;
* ``mode="graph"`` — the compiler pipeline runs first (fusion, tensor
  placement), so epilogues fold into their producers and intermediates
  stay in SRAM when they fit.

Functionally both produce identical numpy results; the difference is in
the :class:`ExecutionReport` timing, which comes from the analytical
operator model.  (Individual operators can also be run on the
cycle-level simulator through :mod:`repro.kernels`; the executor is the
model-level path.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class ExecutionReport:
    """What one graph execution cost."""

    seconds: float
    per_op_seconds: Dict[str, float] = field(default_factory=dict)
    category_seconds: Dict[str, float] = field(default_factory=dict)
    placement: Optional["object"] = None  # PlacementResult

    @property
    def category_fractions(self) -> Dict[str, float]:
        total = sum(self.category_seconds.values())
        if total <= 0:
            return {}
        return {k: v / total for k, v in self.category_seconds.items()}


_EPILOGUES = {
    "relu": lambda x: np.maximum(x, 0.0),
    "tanh": np.tanh,
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
}


class GraphExecutor:
    """Runs IR graphs functionally and reports modelled timing."""

    def __init__(self, machine=None, mode: str = "graph",
                 registry=None, spans=None, op_cache=None) -> None:
        from repro.eval.machines import MTIA_MACHINE  # late import (cycle)
        if mode not in ("eager", "graph"):
            raise ValueError(f"unknown execution mode {mode!r}")
        self.machine = machine or MTIA_MACHINE
        self.mode = mode
        #: optional repro.obs MetricRegistry; per-op timing spans land
        #: here (falls back to the opt-in process default registry)
        self.registry = registry
        #: optional repro.obs.spans.SpanTracer; each run() records a
        #: graph_execute span with per-op children, attached under
        #: whatever span is currently open (a serving batch span, say)
        self.spans = spans
        #: optional :class:`~repro.simcache.graph.GraphOpCache`; when
        #: set (explicitly or via ``REPRO_GRAPH_CACHE``), per-operator
        #: outputs are memoised under chained content fingerprints so a
        #: one-weight edit recomputes only its downstream cone.  Hits
        #: are bit-identical to recomputation (conformance cache pillar).
        self.op_cache = op_cache

    def compile(self, graph):
        """Run the compiler pipeline in graph mode; returns placement."""
        from repro.compiler.fusion import fuse_graph
        from repro.compiler.placement import place_tensors
        if self.mode == "graph":
            fuse_graph(graph)
            graph.validate()
        budget = (self.machine.onchip_capacity_bytes
                  if self.machine.family == "mtia" else 0)
        return place_tensors(graph, budget)

    def run(self, graph, feeds: Dict[str, np.ndarray],
            weights: Optional[Dict[str, np.ndarray]] = None):
        """Execute ``graph``; returns (outputs, ExecutionReport).

        ``feeds`` binds input nodes; ``weights`` binds weight nodes (a
        weight node may also carry ``data`` in its attrs).  Zero-filled
        weights are synthesised for anything unbound — convenient for
        perf-only runs of multi-hundred-GB models.
        """
        from repro.compiler.ops import execute_node
        from repro.eval.opmodel import estimate_graph
        from repro.simcache.graph import (leaf_fingerprint,
                                          node_fingerprint,
                                          resolve_graph_cache,
                                          zero_leaf_fingerprint)
        placement = self.compile(graph)
        weights = weights or {}
        cache = resolve_graph_cache(self.op_cache)

        values: Dict[str, np.ndarray] = {}
        fps: Dict[str, str] = {}
        synthesized: Dict[str, "object"] = {}

        def materialize(name: str) -> np.ndarray:
            value = values.get(name)
            if value is None and name in synthesized:
                meta = synthesized[name]
                value = np.zeros(meta.shape, meta.dtype.numpy_dtype)
                values[name] = value
            return value

        for node in graph:
            if node.op == "input":
                if node.name not in feeds:
                    raise KeyError(f"missing feed for input {node.name!r}")
                values[node.name] = np.asarray(feeds[node.name])
                if cache is not None:
                    fps[node.name] = leaf_fingerprint(values[node.name])
            elif node.op == "weight":
                if node.name in weights:
                    values[node.name] = np.asarray(weights[node.name])
                elif node.attrs.get("data") is not None:
                    values[node.name] = np.asarray(node.attrs["data"])
                else:
                    # Deferred: only built if a consumer actually misses
                    # the cache, so warm runs never allocate (or hash)
                    # the multi-GB zero tables of perf-only models.
                    synthesized[node.name] = node.meta
                    if cache is None:
                        materialize(node.name)
                if cache is not None:
                    fps[node.name] = (
                        zero_leaf_fingerprint(tuple(node.meta.shape),
                                              str(node.meta.dtype))
                        if node.name in synthesized
                        else leaf_fingerprint(values[node.name]))
            else:
                if cache is not None:
                    fp = node_fingerprint(node, [fps[i]
                                                 for i in node.inputs])
                    fps[node.name] = fp
                    hit = cache.lookup(fp)
                    if hit is not None:
                        values[node.name] = hit
                        continue
                inputs = [materialize(i) for i in node.inputs]
                out = execute_node(node, inputs)
                epilogue = node.attrs.get("epilogue")
                if epilogue:
                    out = _EPILOGUES[epilogue](
                        out.astype(np.float32)).astype(np.float32)
                values[node.name] = out
                if cache is not None:
                    cache.store(fp, out)

        estimate = estimate_graph(self.machine, graph,
                                  placement if self.mode == "graph" else None)
        report = ExecutionReport(
            seconds=estimate.total_seconds,
            per_op_seconds={e.name: e.seconds for e in estimate.estimates},
            category_seconds=estimate.category_seconds(),
            placement=placement)
        self._record_metrics(estimate)
        self._record_spans(estimate)
        outputs = {name: materialize(name) for name in graph.outputs}
        return outputs, report

    def _record_metrics(self, estimate) -> None:
        """Emit per-op timing spans into the metric registry, if any."""
        registry = self.registry
        if registry is None:
            from repro.obs.metrics import default_registry
            registry = default_registry()
        if registry is None:
            return
        registry.counter("executor_runs",
                         "graph executions").labels(mode=self.mode).inc()
        op_seconds = registry.counter(
            "op_seconds", "modelled per-operator execution time")
        op_us = registry.histogram(
            "op_us", "per-operator latency distribution (us)")
        for op in estimate.estimates:
            op_seconds.labels(op=op.name, category=op.category,
                              bound=op.bound).inc(op.seconds)
            op_us.labels(category=op.category).observe(op.seconds * 1e6)

    def _record_spans(self, estimate) -> None:
        """Emit the graph-execution span tree, if a tracer is attached."""
        if self.spans is None or not self.spans.enabled:
            return
        parent = self.spans.current
        base = parent.start_us if parent is not None else 0.0
        record_graph_spans(self.spans, estimate, base_us=base,
                           pid=parent.pid if parent is not None else "")


def record_graph_spans(spans, estimate, base_us: float = 0.0,
                       pid: str = "") -> Optional["object"]:
    """Record a modelled graph execution as a span tree at ``base_us``.

    One ``graph_execute`` span covering the whole estimate, with one
    child span per operator laid out sequentially (the analytical model
    is serial: total = sum of per-op seconds).  Returns the root span
    (or ``None`` when tracing is disabled).  Shared by
    :class:`GraphExecutor` and ``python -m repro.serve_report``, which
    replays cached per-batch estimates into serving batch windows.
    """
    if spans is None or not spans.enabled:
        return None
    total_us = estimate.total_seconds * 1e6
    with spans.span("executor.graph", "graph_execute", base_us,
                    base_us + total_us, pid=pid,
                    ops=len(estimate.estimates)) as root:
        t = base_us
        for op in estimate.estimates:
            op_us = op.seconds * 1e6
            spans.add("executor.ops", op.name, t, t + op_us, pid=pid,
                      category=op.category, bound=op.bound)
            t += op_us
    return root
