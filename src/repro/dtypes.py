"""Data types supported by the accelerator and their numpy emulation.

MTIA's fixed-function units operate on INT8 / FP16 / BF16 inputs with
INT32 / FP32 accumulation (Section 3.1.2).  This module centralises the
dtype metadata (byte width, accumulator type) and the quantisation
helpers used by the SE model and the quantize/dequantize kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class DType:
    """A device data type."""

    name: str
    bits: int
    numpy_dtype: np.dtype
    is_float: bool

    @property
    def bytes(self) -> int:
        return self.bits // 8

    def __str__(self) -> str:
        return self.name


INT8 = DType("int8", 8, np.dtype(np.int8), False)
INT32 = DType("int32", 32, np.dtype(np.int32), False)
FP16 = DType("fp16", 16, np.dtype(np.float16), True)
# BF16 has no native numpy dtype; we emulate values in float32 and only
# the *timing* treats it as a 16-bit type.
BF16 = DType("bf16", 16, np.dtype(np.float32), True)
FP32 = DType("fp32", 32, np.dtype(np.float32), True)

_BY_NAME: Dict[str, DType] = {t.name: t for t in (INT8, INT32, FP16, BF16, FP32)}


def dtype(name) -> DType:
    """Look up a :class:`DType` by name (idempotent for DType inputs)."""
    if isinstance(name, DType):
        return name
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown dtype {name!r}") from None


def accumulator_for(t: DType) -> DType:
    """Accumulation type used by the DPE/RE pipeline (Section 3.1.2/3)."""
    return INT32 if not t.is_float else FP32


def quantize(values: np.ndarray, scale: float, zero_point: int = 0) -> np.ndarray:
    """Symmetric/affine quantisation of float data to INT8.

    ``q = clamp(round(x / scale) + zero_point, -128, 127)``.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    q = np.round(values / scale) + zero_point
    return np.clip(q, -128, 127).astype(np.int8)


def dequantize(values: np.ndarray, scale: float, zero_point: int = 0) -> np.ndarray:
    """Inverse of :func:`quantize` (lossy)."""
    return (values.astype(np.float32) - zero_point) * scale


def choose_qparams(values: np.ndarray) -> Tuple[float, int]:
    """Pick symmetric INT8 quantisation parameters covering ``values``."""
    peak = float(np.max(np.abs(values))) if values.size else 0.0
    scale = peak / 127.0 if peak > 0 else 1.0
    return scale, 0


def to_fp16(values: np.ndarray) -> np.ndarray:
    """Round float data through IEEE FP16 (value emulation)."""
    return values.astype(np.float16).astype(np.float32)


def to_bf16(values: np.ndarray) -> np.ndarray:
    """Round float32 data to bfloat16 precision (round-to-nearest-even)."""
    raw = np.asarray(values, dtype=np.float32).view(np.uint32)
    rounded = (raw + 0x7FFF + ((raw >> 16) & 1)) & 0xFFFF0000
    return rounded.astype(np.uint32).view(np.float32)
