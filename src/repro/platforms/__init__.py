"""Inference hardware platforms (Table II) and power accounting."""

from repro.platforms.server import (PLATFORMS, PlatformSpec, YOSEMITE_V2,
                                    YOSEMITE_V3, ZION_4S)
from repro.platforms.power import ChipPowerModel

__all__ = [
    "ChipPowerModel",
    "PLATFORMS",
    "PlatformSpec",
    "YOSEMITE_V2",
    "YOSEMITE_V3",
    "ZION_4S",
]
