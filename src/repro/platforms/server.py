"""Server platform specifications — Table II of the paper.

Three deployment platforms are compared:

* **Yosemite V2** with six NNPI accelerator cards;
* **Zion4S** with eight NVIDIA A100 GPUs;
* **Yosemite V3** with twelve MTIA cards.

The evaluation's power methodology (Section 6): "We use the total
platform power divided by the number of accelerator cards to determine
power provisioned for each accelerator, as opposed to using the maximum
TDP for the card."  :attr:`PlatformSpec.provisioned_watts_per_card`
implements exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PlatformSpec:
    """One row-set of Table II."""

    name: str
    accelerator: str
    num_cards: int
    system_power_w: float
    card_power_w: float
    int8_tops_per_card: float
    fp16_tflops_per_card: float
    device_memory_type: str
    device_memory_gb_per_card: float
    device_bw_gbs_per_card: float
    host_memory_gb: float
    host_bw_gbs: float
    interconnect: str
    p2p_gbs_per_card: float
    nic_gbps: float

    @property
    def provisioned_watts_per_card(self) -> float:
        """Platform power / cards — the paper's perf/W denominator."""
        return self.system_power_w / self.num_cards

    @property
    def accelerator_power_fraction(self) -> float:
        """Table II's "Percentage" row: card power share of the system."""
        return self.num_cards * self.card_power_w / self.system_power_w

    @property
    def total_int8_tops(self) -> float:
        return self.int8_tops_per_card * self.num_cards

    @property
    def total_device_memory_gb(self) -> float:
        return self.device_memory_gb_per_card * self.num_cards

    def as_table_row(self) -> Dict[str, object]:
        """Table II column for this platform."""
        return {
            "System power (W)": self.system_power_w,
            "Card power (W)": self.card_power_w,
            "Percentage": f"{100 * self.accelerator_power_fraction:.1f} %",
            "INT8 (TOPS/s)": f"{self.int8_tops_per_card:g} x {self.num_cards}",
            "FP16 (TF/s)": f"{self.fp16_tflops_per_card:g} x {self.num_cards}",
            "Memory type": self.device_memory_type,
            "Memory size (device)":
                f"{self.device_memory_gb_per_card:g} GB x {self.num_cards}",
            "Memory BW (device)":
                f"{self.device_bw_gbs_per_card:g} GB/s x {self.num_cards}",
            "Memory size (host)": f"{self.host_memory_gb:g} GB",
            "Memory BW (host)": f"{self.host_bw_gbs:g} GB/s",
            "Dev.-to-Dev.": self.interconnect,
            "P2P BW (card)": f"{self.p2p_gbs_per_card:g} GB/s",
            "NIC BW": f"{self.nic_gbps:g} Gbps",
        }


YOSEMITE_V2 = PlatformSpec(
    name="Yosemite V2",
    accelerator="NNPI",
    num_cards=6,
    system_power_w=298.0,
    card_power_w=13.5,
    int8_tops_per_card=50.0,
    fp16_tflops_per_card=6.25,
    device_memory_type="LPDDR",
    device_memory_gb_per_card=16.0,
    device_bw_gbs_per_card=50.0,
    host_memory_gb=64.0,
    host_bw_gbs=50.0,
    interconnect="PCIe",
    p2p_gbs_per_card=3.2,
    nic_gbps=50.0,
)

ZION_4S = PlatformSpec(
    name="Zion4S",
    accelerator="A100 GPU",
    num_cards=8,
    system_power_w=4500.0,
    card_power_w=330.0,
    int8_tops_per_card=624.0,
    fp16_tflops_per_card=312.0,
    device_memory_type="HBM",
    device_memory_gb_per_card=40.0,
    device_bw_gbs_per_card=1500.0,
    host_memory_gb=1536.0,
    host_bw_gbs=400.0,
    interconnect="NVLink",
    p2p_gbs_per_card=80.0,
    nic_gbps=400.0,
)

YOSEMITE_V3 = PlatformSpec(
    name="Yosemite V3",
    accelerator="MTIA",
    num_cards=12,
    system_power_w=780.0,
    card_power_w=35.0,
    int8_tops_per_card=104.0,
    fp16_tflops_per_card=52.0,
    device_memory_type="LPDDR",
    device_memory_gb_per_card=32.0,
    device_bw_gbs_per_card=150.0,
    host_memory_gb=96.0,
    host_bw_gbs=76.0,
    interconnect="PCIe",
    p2p_gbs_per_card=12.8,
    nic_gbps=100.0,
)

PLATFORMS: Dict[str, PlatformSpec] = {
    "nnpi": YOSEMITE_V2,
    "gpu": ZION_4S,
    "mtia": YOSEMITE_V3,
}
