"""Activity-based chip power model for ablations.

The paper's evaluation uses static provisioned power (platform power /
cards).  For design-space ablations it is useful to also estimate how
chip power splits across components and scales with activity; this
model assigns the 25 W TDP (Table I) across the major blocks using
per-event energy costs consistent with 7 nm-class accelerators and the
architecture's own energy arguments (spatial reduction trees and
multicast exist *because* data movement dominates, Section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import ChipConfig, MTIA_V1

#: Energy per event, picojoules.  Sources: Horowitz-style scaling of
#: published 7 nm numbers; these are model inputs, not measurements.
ENERGY_PJ = {
    "int8_mac": 0.15,
    "fp16_mac": 0.6,
    "local_memory_byte": 1.0,
    "sram_byte": 3.0,
    "dram_byte": 20.0,
    "noc_byte_per_hop": 0.8,
    "reduction_byte": 0.5,
    "command": 40.0,
}


@dataclass
class ChipPowerModel:
    """Estimates dynamic + static chip power from activity counters."""

    config: ChipConfig = None
    #: Fraction of TDP that is static/idle (clock tree, leakage, DDR PHY).
    idle_fraction: float = 0.35

    def __post_init__(self):
        self.config = self.config or MTIA_V1

    @property
    def idle_watts(self) -> float:
        return self.idle_fraction * self.config.tdp_watts

    def dynamic_energy_j(self, activity: Dict[str, float]) -> float:
        """Energy in joules for the given activity counters.

        ``activity`` keys match :data:`ENERGY_PJ` (e.g. the counters a
        simulation's :meth:`Accelerator.collect_stats` can be mapped
        onto).  Unknown keys raise — silent typos would zero out a
        component.
        """
        total_pj = 0.0
        for key, count in activity.items():
            if key not in ENERGY_PJ:
                raise KeyError(f"unknown activity counter {key!r}")
            total_pj += ENERGY_PJ[key] * count
        return total_pj * 1e-12

    def average_watts(self, activity: Dict[str, float],
                      elapsed_cycles: float) -> float:
        """Average power over a simulated interval."""
        if elapsed_cycles <= 0:
            raise ValueError("elapsed_cycles must be positive")
        seconds = elapsed_cycles / (self.config.frequency_ghz * 1e9)
        dynamic = self.dynamic_energy_j(activity) / seconds
        return min(self.idle_watts + dynamic,
                   self.config.tdp_watts * 1.2)

    def activity_from_stats(self, stats: Dict[str, float]) -> Dict[str, float]:
        """Map simulator rollup counters onto energy-model activity."""
        activity: Dict[str, float] = {}
        activity["int8_mac"] = stats.get("dpe.macs", 0.0)
        lm = (stats.get("lm.read_bytes", 0.0)
              + stats.get("lm.write_bytes", 0.0))
        activity["local_memory_byte"] = lm
        activity["sram_byte"] = (stats.get("sram.hit_lines", 0.0) * 64
                                 + stats.get("sram.read_bytes", 0.0)
                                 + stats.get("sram.write_bytes", 0.0))
        activity["dram_byte"] = (stats.get("dram.read_bytes", 0.0)
                                 + stats.get("dram.write_bytes", 0.0))
        activity["noc_byte_per_hop"] = stats.get("noc.link_bytes", 0.0) * 2
        activity["reduction_byte"] = stats.get("rednet.bytes", 0.0)
        commands = sum(v for k, v in stats.items()
                       if k.endswith(".commands"))
        activity["command"] = commands
        return activity
